// ringstab-serve — the warm verdict-cache daemon (docs/serve.md).
//
//   ringstab-serve --socket /path/to.sock [--jobs N] [--cache N]
//                  [--stats] [--metrics FILE] [--trace FILE] [--jsonl FILE]
//
// Listens on a Unix-domain socket for JSONL requests
// (`{"cmd":"check"|"lint"|"synthesize"|"analyze", "source":..., ...}`),
// answers repeated requests out of an exact-key verdict cache, and on
// SIGINT/SIGTERM drains in-flight requests, flushes every observability
// sink (writing the run manifest), removes the socket, and exits 0.
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "core/types.hpp"
#include "obs/session.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/server.hpp"
#include "serve/shutdown.hpp"

namespace {

using namespace ringstab;

int usage() {
  std::cerr <<
      "usage: ringstab-serve --socket <path> [options]\n"
      "  --socket <path>  Unix-domain socket to listen on (required;\n"
      "                   created at start, removed at shutdown)\n"
      "  --jobs N         worker threads for requests that don't set their\n"
      "                   own (default 1; 0 = all cores; never changes a\n"
      "                   result, so it is not part of the cache key)\n"
      "  --cache N        verdict-cache capacity in entries (default 1024;\n"
      "                   0 disables caching)\n"
      "observability:\n"
      "  --stats          phase/counter summary on stderr at shutdown\n"
      "  --metrics <file> versioned run manifest (ringstab.metrics.v2),\n"
      "                   written when the daemon shuts down; includes the\n"
      "                   serve.request_ns histogram and serve.cache_*\n"
      "                   counters\n"
      "  --trace <file>   Chrome trace-event JSON\n"
      "  --jsonl <file>   JSON-lines event stream\n"
      "  --progress       periodic requests/sec heartbeat on stderr\n"
      "shutdown: SIGINT/SIGTERM drain in-flight requests, flush sinks,\n"
      "unlink the socket, exit 0.\n";
  return 2;
}

const char* take_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc)
    throw ModelError(std::string("flag ") + flag + " requires a value");
  if (std::strncmp(argv[i + 1], "--", 2) == 0)
    throw ModelError(std::string("flag ") + flag +
                     " is missing its value (found '" + argv[i + 1] + "')");
  return argv[++i];
}

std::size_t parse_count(const char* flag, const char* raw) {
  char* end = nullptr;
  const long long n = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0)
    throw ModelError(std::string("invalid ") + flag + " value '" + raw +
                     "': expected a non-negative integer");
  return static_cast<std::size_t>(n);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions server_opts;
  server_opts.default_jobs = 1;
  obs::SessionOptions obs_opts;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--socket") == 0) {
        server_opts.socket_path = take_value(argc, argv, i, "--socket");
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        server_opts.default_jobs = resolve_threads(
            parse_count("--jobs", take_value(argc, argv, i, "--jobs")));
      } else if (std::strcmp(argv[i], "--cache") == 0) {
        server_opts.cache_capacity =
            parse_count("--cache", take_value(argc, argv, i, "--cache"));
      } else if (std::strcmp(argv[i], "--stats") == 0) {
        obs_opts.stats = true;
      } else if (std::strcmp(argv[i], "--progress") == 0) {
        obs_opts.progress = true;
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        obs_opts.trace_path = take_value(argc, argv, i, "--trace");
      } else if (std::strcmp(argv[i], "--jsonl") == 0) {
        obs_opts.jsonl_path = take_value(argc, argv, i, "--jsonl");
      } else if (std::strcmp(argv[i], "--metrics") == 0) {
        obs_opts.metrics_path = take_value(argc, argv, i, "--metrics");
      } else {
        std::cerr << "unknown option: " << argv[i] << "\n";
        return usage();
      }
    }
    if (server_opts.socket_path.empty()) return usage();

    obs_opts.command = "serve";
    for (int i = 1; i < argc; ++i)
      obs_opts.command += std::string(" ") + argv[i];

    // Order matters: the watcher first (so every later thread inherits the
    // blocked signal mask), then the session (so the drain can flush it).
    std::mutex mu;
    std::condition_variable cv;
    bool shutdown_requested = false;
    int shutdown_sig = 0;
    const serve::ShutdownWatcher watcher([&](int sig) {
      std::lock_guard lock(mu);
      shutdown_requested = true;
      shutdown_sig = sig;
      cv.notify_all();
    });

    obs::Session obs_session(obs_opts);

    serve::Server server(server_opts);
    server.start();
    std::cerr << "ringstab-serve: listening on " << server_opts.socket_path
              << " (jobs " << server_opts.default_jobs << ", cache "
              << server_opts.cache_capacity << " entries)\n";

    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return shutdown_requested; });
    }
    std::cerr << "ringstab-serve: "
              << (shutdown_sig == SIGINT ? "SIGINT" : "SIGTERM")
              << " received, draining\n";

    // Graceful drain: finish in-flight requests, then report and flush.
    server.stop();
    const serve::ServerStats stats = server.stats();
    std::cerr << "ringstab-serve: served " << stats.requests << " requests ("
              << stats.cache_hits << " cache hits, " << stats.cache_misses
              << " misses)\n";
    // A drained shutdown is the daemon's *normal* exit: the manifest is
    // complete, not "interrupted". Sink health still gates the exit code.
    return obs_session.finish() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
