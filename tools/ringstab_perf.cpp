// ringstab-perf: validate, diff, and report the project's performance
// artifacts — ringstab.metrics.v2 run manifests (`--metrics out.json`,
// RINGSTAB_BENCH_METRICS) and ringstab.bench.v1 BENCH_*.json documents.
//
//   ringstab-perf validate FILE...
//       Schema-check each file. Exit 0 when all valid, 2 otherwise.
//   ringstab-perf diff BASE CURRENT [--threshold R] [--min-abs-ms M]
//       Compare matching timing rows with a noise-aware gate: a row
//       regresses only when current > base*(1+R) AND current-base > M ms
//       (relative delta alone flags microsecond noise; the absolute floor
//       alone misses slow creep on big runs). Exit 0 clean, 1 regression,
//       2 usage/schema error.
//   ringstab-perf report FILE
//       Render one artifact as a markdown perf report on stdout.
//
// Matching model for diff: every top-level array of objects is a run
// table; within a row, numeric fields named *ms / *_ms are measurements,
// and strings plus integer-valued numbers (engine, threads, ring_size, …)
// are identity. Derived per-run fields — floats, speedup*, *per_sec — are
// neither: they vary run to run, so folding them into identity would
// leave a fresh run with zero matching rows against a committed baseline.
// Rows pair up when section + identity agree, so reordering rows or adding
// new configurations never misreports a regression. Manifests contribute
// wall_time_ns and per-phase total_ns as measurement rows the same way.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics_json.hpp"

namespace {

using ringstab::obs::json::Value;

constexpr const char* kBenchSchema = "ringstab.bench.v1";
constexpr const char* kMetricsSchema = "ringstab.metrics.v2";

int usage() {
  std::cerr <<
      "usage: ringstab-perf <command> ...\n"
      "  validate FILE...                      schema-check manifests /\n"
      "                                        BENCH_*.json (exit 2 if bad)\n"
      "  diff BASE CURRENT [--threshold R]     compare timing rows; exit 1\n"
      "       [--min-abs-ms M]                 iff any regresses beyond\n"
      "                                        both thresholds (defaults\n"
      "                                        R=0.25, M=5ms)\n"
      "  report FILE                           markdown perf report\n";
  return 2;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse a file; on any I/O or JSON error print it and return nullopt
/// (callers turn that into exit code 2).
std::optional<Value> load(const std::string& path) {
  const auto text = slurp(path);
  if (!text) {
    std::cerr << "ringstab-perf: cannot read " << path << "\n";
    return std::nullopt;
  }
  try {
    return ringstab::obs::json::parse(*text);
  } catch (const std::exception& e) {
    std::cerr << "ringstab-perf: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::string schema_of(const Value& doc) {
  const Value* s = doc.find("schema");
  return s != nullptr && s->is_string() ? s->str : "";
}

/// Structural check for bench documents (the manifest check lives in
/// validate_manifest). Returns "" when valid.
std::string validate_bench(const Value& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const Value* git = doc.find("git_describe");
  if (git == nullptr || !git->is_string())
    return "missing string \"git_describe\"";
  for (const auto& [key, v] : doc.members) {
    if (!v.is_array()) continue;
    for (std::size_t i = 0; i < v.items.size(); ++i)
      if (!v.items[i].is_object())
        return "\"" + key + "\"[" + std::to_string(i) + "] is not an object";
  }
  return "";
}

std::string validate_any(const Value& doc) {
  const std::string schema = schema_of(doc);
  if (schema == kMetricsSchema) return ringstab::obs::validate_manifest(doc);
  if (schema == kBenchSchema) return validate_bench(doc);
  if (schema.empty()) return "missing string \"schema\"";
  return "unknown schema \"" + schema + "\"";
}

int cmd_validate(const std::vector<std::string>& files) {
  if (files.empty()) return usage();
  bool ok = true;
  for (const std::string& f : files) {
    const auto doc = load(f);
    if (!doc) {
      ok = false;
      continue;
    }
    const std::string err = validate_any(*doc);
    if (err.empty()) {
      std::cout << f << ": valid " << schema_of(*doc) << "\n";
    } else {
      std::cerr << "ringstab-perf: " << f << ": " << err << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 2;
}

// ── measurement extraction ──────────────────────────────────────────────

struct Measurement {
  std::string key;   // "section {identity}" + metric field name
  std::string label; // human-readable row label
  double ms = 0;
};

bool is_ms_field(const std::string& name) {
  return name == "ms" || (name.size() > 3 &&
                          name.compare(name.size() - 3, 3, "_ms") == 0);
}

/// True for numbers whose source text is a plain integer. Floats are
/// derived quantities (speedup, states_per_sec) — stable identity fields
/// are configuration integers and strings only.
bool is_integer_number(const Value& v) {
  return v.is_number() &&
         v.number.find_first_of(".eE") == std::string::npos;
}

/// Derived per-run quantities that must never be identity, even when a
/// particular run happens to round them to an integer (a rate of exactly
/// 370904/s would otherwise split rows across runs).
bool is_derived_field(const std::string& name) {
  return is_ms_field(name) || name.find("per_sec") != std::string::npos ||
         name.rfind("speedup", 0) == 0;
}

/// Flatten one document into named timing measurements (see file header
/// for the matching model).
std::vector<Measurement> measurements_of(const Value& doc) {
  std::vector<Measurement> out;
  if (schema_of(doc) == kMetricsSchema) {
    if (const Value* wall = doc.find("wall_time_ns"))
      out.push_back({"wall_time", "wall time",
                     static_cast<double>(wall->as_u64()) / 1e6});
    if (const Value* phases = doc.find("phases"); phases && phases->is_array())
      for (const Value& p : phases->items) {
        const Value* name = p.find("name");
        const Value* total = p.find("total_ns");
        if (name == nullptr || total == nullptr) continue;
        out.push_back({"phase " + name->str, "phase " + name->str,
                       static_cast<double>(total->as_u64()) / 1e6});
      }
    return out;
  }
  for (const auto& [section, v] : doc.members) {
    if (!v.is_array()) continue;
    for (const Value& row : v.items) {
      if (!row.is_object()) continue;
      std::string identity;
      for (const auto& [field, fv] : row.members) {
        if (fv.is_string())
          identity += " " + field + "=" + fv.str;
        else if (is_integer_number(fv) && !is_derived_field(field))
          identity += " " + field + "=" + fv.number;
      }
      for (const auto& [field, fv] : row.members) {
        if (!fv.is_number() || !is_ms_field(field)) continue;
        const std::string label = section + identity + " " + field;
        out.push_back({label, label, fv.as_double()});
      }
    }
  }
  return out;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  double threshold = 0.25;
  double min_abs_ms = 5.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" || args[i] == "--min-abs-ms") {
      if (i + 1 >= args.size() || args[i + 1].rfind("--", 0) == 0) {
        std::cerr << "ringstab-perf: flag " << args[i]
                  << " requires a value\n";
        return 2;
      }
      char* end = nullptr;
      const double v = std::strtod(args[i + 1].c_str(), &end);
      if (end == args[i + 1].c_str() || *end != '\0' || !(v >= 0)) {
        std::cerr << "ringstab-perf: invalid " << args[i] << " value '"
                  << args[i + 1] << "'\n";
        return 2;
      }
      (args[i] == "--threshold" ? threshold : min_abs_ms) = v;
      ++i;
    } else if (args[i].rfind("--", 0) == 0) {
      std::cerr << "ringstab-perf: unknown option " << args[i] << "\n";
      return 2;
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) return usage();

  const auto base = load(files[0]);
  const auto cur = load(files[1]);
  if (!base || !cur) return 2;
  for (const auto* doc : {&*base, &*cur}) {
    const std::string err = validate_any(*doc);
    if (!err.empty()) {
      std::cerr << "ringstab-perf: "
                << (doc == &*base ? files[0] : files[1]) << ": " << err
                << "\n";
      return 2;
    }
  }
  if (schema_of(*base) != schema_of(*cur)) {
    std::cerr << "ringstab-perf: schema mismatch: " << schema_of(*base)
              << " vs " << schema_of(*cur) << "\n";
    return 2;
  }

  std::map<std::string, double> base_ms;
  for (const Measurement& m : measurements_of(*base)) base_ms[m.key] = m.ms;

  std::size_t matched = 0, regressions = 0, improvements = 0;
  std::printf("| measurement | base ms | current ms | delta | verdict |\n");
  std::printf("|---|---:|---:|---:|---|\n");
  for (const Measurement& m : measurements_of(*cur)) {
    const auto it = base_ms.find(m.key);
    if (it == base_ms.end()) continue;
    ++matched;
    const double b = it->second;
    const double delta = m.ms - b;
    const double rel = b > 0 ? delta / b : 0;
    const bool regressed = delta > min_abs_ms && m.ms > b * (1.0 + threshold);
    const bool improved = -delta > min_abs_ms && b > m.ms * (1.0 + threshold);
    if (regressed) ++regressions;
    if (improved) ++improvements;
    std::printf("| %s | %.3f | %.3f | %+.1f%% | %s |\n", m.label.c_str(), b,
                m.ms, rel * 100,
                regressed ? "REGRESSED" : improved ? "improved" : "ok");
  }
  std::printf(
      "\n%zu measurements matched, %zu regressed, %zu improved "
      "(threshold +%.0f%% and >%.1f ms)\n",
      matched, regressions, improvements, threshold * 100, min_abs_ms);
  if (matched == 0) {
    std::cerr << "ringstab-perf: no matching measurements between "
              << files[0] << " and " << files[1] << "\n";
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}

// ── report ──────────────────────────────────────────────────────────────

void report_manifest(const std::string& path, const Value& doc) {
  const Value* cmd = doc.find("command");
  const Value* git = doc.find("git_describe");
  std::printf("# ringstab run manifest — %s\n\n", path.c_str());
  std::printf("- command: `%s`\n", cmd ? cmd->str.c_str() : "?");
  std::printf("- build: `%s`\n", git ? git->str.c_str() : "?");
  if (const Value* hw = doc.find("hardware"))
    if (const Value* t = hw->find("threads_available"))
      std::printf("- hardware threads: %llu\n",
                  static_cast<unsigned long long>(t->as_u64()));
  if (const Value* wall = doc.find("wall_time_ns"))
    std::printf("- wall time: %.3f ms\n",
                static_cast<double>(wall->as_u64()) / 1e6);
  if (const Value* phases = doc.find("phases");
      phases && !phases->items.empty()) {
    std::printf("\n## Phases\n\n");
    std::printf("| phase | calls | total ms | self ms |\n|---|---:|---:|---:|\n");
    for (const Value& p : phases->items)
      std::printf("| %s | %llu | %.3f | %.3f |\n",
                  p.find("name")->str.c_str(),
                  static_cast<unsigned long long>(p.find("calls")->as_u64()),
                  static_cast<double>(p.find("total_ns")->as_u64()) / 1e6,
                  static_cast<double>(p.find("self_ns")->as_u64()) / 1e6);
  }
  if (const Value* hists = doc.find("histograms");
      hists && !hists->items.empty()) {
    std::printf("\n## Histograms\n\n");
    std::printf("| histogram | count | p50 | p90 | p99 | max |\n"
                "|---|---:|---:|---:|---:|---:|\n");
    for (const Value& h : hists->items)
      std::printf("| %s | %llu | %llu | %llu | %llu | %llu |\n",
                  h.find("name")->str.c_str(),
                  static_cast<unsigned long long>(h.find("count")->as_u64()),
                  static_cast<unsigned long long>(h.find("p50")->as_u64()),
                  static_cast<unsigned long long>(h.find("p90")->as_u64()),
                  static_cast<unsigned long long>(h.find("p99")->as_u64()),
                  static_cast<unsigned long long>(h.find("max")->as_u64()));
  }
  if (const Value* gauges = doc.find("gauges");
      gauges && !gauges->items.empty()) {
    std::printf("\n## Memory / gauges\n\n");
    std::printf("| gauge | value | peak |\n|---|---:|---:|\n");
    for (const Value& g : gauges->items)
      std::printf("| %s | %llu | %llu |\n", g.find("name")->str.c_str(),
                  static_cast<unsigned long long>(g.find("value")->as_u64()),
                  static_cast<unsigned long long>(g.find("peak")->as_u64()));
  }
  if (const Value* counters = doc.find("counters");
      counters && !counters->items.empty()) {
    std::printf("\n## Counters\n\n| counter | value |\n|---|---:|\n");
    for (const Value& c : counters->items) {
      const Value* approx = c.find("approx");
      std::printf("| %s%s | %llu |\n",
                  approx != nullptr && approx->boolean ? "~" : "",
                  c.find("name")->str.c_str(),
                  static_cast<unsigned long long>(c.find("value")->as_u64()));
    }
  }
}

void report_bench(const std::string& path, const Value& doc) {
  std::printf("# ringstab bench report — %s\n\n", path.c_str());
  for (const auto& [key, v] : doc.members) {
    if (v.is_string())
      std::printf("- %s: `%s`\n", key.c_str(), v.str.c_str());
    else if (v.is_number())
      std::printf("- %s: %s\n", key.c_str(), v.number.c_str());
  }
  for (const auto& [key, v] : doc.members) {
    if (!v.is_array() || v.items.empty() || !v.items[0].is_object()) continue;
    std::printf("\n## %s\n\n|", key.c_str());
    for (const auto& [field, fv] : v.items[0].members)
      std::printf(" %s |", field.c_str());
    std::printf("\n|");
    for (const auto& [field, fv] : v.items[0].members)
      std::printf(fv.is_number() ? "---:|" : "---|");
    std::printf("\n");
    for (const Value& row : v.items) {
      std::printf("|");
      for (const auto& [field, fv] : row.members) {
        if (fv.is_string())
          std::printf(" %s |", fv.str.c_str());
        else if (fv.is_number())
          std::printf(" %s |", fv.number.c_str());
        else
          std::printf(" %s |", fv.boolean ? "true" : "false");
      }
      std::printf("\n");
    }
  }
}

int cmd_report(const std::vector<std::string>& files) {
  if (files.size() != 1) return usage();
  const auto doc = load(files[0]);
  if (!doc) return 2;
  const std::string err = validate_any(*doc);
  if (!err.empty()) {
    std::cerr << "ringstab-perf: " << files[0] << ": " << err << "\n";
    return 2;
  }
  if (schema_of(*doc) == kMetricsSchema)
    report_manifest(files[0], *doc);
  else
    report_bench(files[0], *doc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "validate") return cmd_validate(args);
  if (command == "diff") return cmd_diff(args);
  if (command == "report") return cmd_report(args);
  return usage();
}
