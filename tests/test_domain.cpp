#include "core/domain.hpp"

#include <gtest/gtest.h>

namespace ringstab {
namespace {

TEST(Domain, RangeHasNumericNames) {
  const Domain d = Domain::range(3);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.name(0), "0");
  EXPECT_EQ(d.name(2), "2");
  EXPECT_EQ(d.abbrev(1), '1');
}

TEST(Domain, NamedLookup) {
  const Domain d = Domain::named({"left", "right", "self"});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.value_of("right"), Value{1});
  EXPECT_EQ(d.value_of("nope"), std::nullopt);
  EXPECT_EQ(d.abbrev(2), 's');
}

TEST(Domain, Contains) {
  const Domain d = Domain::range(2);
  EXPECT_TRUE(d.contains(0));
  EXPECT_TRUE(d.contains(1));
  EXPECT_FALSE(d.contains(2));
  EXPECT_FALSE(d.contains(-1));
}

TEST(Domain, RejectsEmpty) {
  EXPECT_THROW(Domain::named({}), ModelError);
}

TEST(Domain, RejectsDuplicateNames) {
  EXPECT_THROW(Domain::named({"a", "a"}), ModelError);
}

TEST(Domain, RejectsEmptyName) {
  EXPECT_THROW(Domain::named({"a", ""}), ModelError);
}

TEST(Domain, RejectsOversize) {
  EXPECT_THROW(Domain::range(65), ModelError);
}

TEST(Domain, EqualityIsStructural) {
  EXPECT_EQ(Domain::range(2), Domain::named({"0", "1"}));
  EXPECT_NE(Domain::range(2), Domain::range(3));
}

}  // namespace
}  // namespace ringstab
