#include "local/self_disabling.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace ringstab {
namespace {

LocalStateSpace space3() {
  return LocalStateSpace(Domain::range(3), {1, 0});
}

// Convenience: encode (x[-1], x[0]).
LocalStateId st(const LocalStateSpace& sp, Value a, Value b) {
  return sp.encode(std::vector<Value>{a, b});
}

TEST(SelfDisabling, DetectsChains) {
  const auto sp = space3();
  // 00 → 01 → 02 (a chain through enabled state 01).
  std::vector<LocalTransition> delta{{st(sp, 0, 0), st(sp, 0, 1)},
                                     {st(sp, 0, 1), st(sp, 0, 2)}};
  const Protocol p("chain", sp, delta, std::vector<bool>(sp.size(), false));
  EXPECT_FALSE(is_self_disabling(p));
  EXPECT_TRUE(is_self_terminating(p));

  const Protocol q = make_self_disabling(p);
  EXPECT_TRUE(is_self_disabling(q));
  // 00 now jumps directly to the terminal 02; 01 still goes to 02.
  EXPECT_EQ(q.delta(),
            (std::vector<LocalTransition>{{st(sp, 0, 0), st(sp, 0, 2)},
                                          {st(sp, 0, 1), st(sp, 0, 2)}}));
}

TEST(SelfDisabling, NondeterministicChainsCollectAllTerminals) {
  const auto sp = space3();
  // 00 → 01; 01 → 02 and 01 → 00?? no: targets must differ in self only.
  // 01 → {00, 02}: both terminal... make 00 terminal by not firing it:
  std::vector<LocalTransition> delta{{st(sp, 1, 0), st(sp, 1, 1)},
                                     {st(sp, 1, 1), st(sp, 1, 0)},
                                     {st(sp, 1, 1), st(sp, 1, 2)}};
  // 10 → 11, 11 → {10, 12}: 10 is enabled, so this has a t-cycle 10→11→10.
  const Protocol p("cyc", sp, delta, std::vector<bool>(sp.size(), false));
  EXPECT_FALSE(is_self_terminating(p));
  EXPECT_THROW(make_self_disabling(p), ModelError);
}

TEST(SelfDisabling, IdempotentOnAlreadySelfDisabling) {
  for (const auto& p : testing::protocol_zoo()) {
    if (!is_self_disabling(p)) continue;
    const Protocol q = make_self_disabling(p);
    EXPECT_EQ(q.delta(), p.delta()) << p.name();
  }
}

// The transform must preserve the deadlock set and terminal reachability.
TEST(SelfDisabling, PreservesDeadlocksAndTerminals) {
  const auto sp = space3();
  std::vector<LocalTransition> delta{{st(sp, 2, 0), st(sp, 2, 1)},
                                     {st(sp, 2, 1), st(sp, 2, 2)}};
  const Protocol p("chain2", sp, delta, std::vector<bool>(sp.size(), false));
  const Protocol q = make_self_disabling(p);
  for (LocalStateId s = 0; s < sp.size(); ++s)
    EXPECT_EQ(p.is_deadlock(s), q.is_deadlock(s));
  // Every transformed target is a deadlock of the original protocol.
  for (const auto& t : q.delta()) EXPECT_TRUE(p.is_deadlock(t.to));
}

TEST(SelfDisabling, UnidirectionalZooProtocolsAreSelfDisabling) {
  // All the paper's *unidirectional* protocols satisfy Assumption 2 out of
  // the box (Section 5 assumes it). The bidirectional matching variants may
  // legitimately violate it; the transform must still apply cleanly.
  for (const auto& p : testing::protocol_zoo()) {
    if (p.locality().is_unidirectional()) {
      EXPECT_TRUE(is_self_disabling(p)) << p.name();
    }
    ASSERT_TRUE(is_self_terminating(p)) << p.name();
    EXPECT_TRUE(is_self_disabling(make_self_disabling(p))) << p.name();
  }
}

}  // namespace
}  // namespace ringstab
