// Tree topology (parent-read in-trees): the array reduction validated
// against exhaustive tree checking on random shapes.
#include "global/tree_instance.hpp"

#include <gtest/gtest.h>

#include <random>

#include "global/array_instance.hpp"

#include "helpers.hpp"
#include "protocols/arrays.hpp"

namespace ringstab {
namespace {

TEST(Tree, ValidatesShapeAndLocality) {
  const Protocol p = protocols::array_agreement(2);
  EXPECT_THROW(TreeInstance(p, {1}), ModelError);  // parent(1) must be < 1
  EXPECT_NO_THROW(TreeInstance(p, {0, 0, 1}));
  const Protocol bidi = testing::protocol_zoo()[0];  // matching: window 3
  EXPECT_THROW(TreeInstance(bidi, {0}), ModelError);
}

TEST(Tree, LocalStatesUseParentValues) {
  const Protocol p = protocols::array_agreement(2);
  // Star: nodes 1,2,3 all children of the root.
  const TreeInstance t(p, {0, 0, 0});
  const GlobalStateId s = t.encode(std::vector<Value>{1, 0, 1, 0});
  // Root sees (⊥, 1); children see (1, own).
  EXPECT_EQ(p.space().decode(t.local_state(s, 0)),
            (std::vector<Value>{2, 1}));
  EXPECT_EQ(p.space().decode(t.local_state(s, 1)),
            (std::vector<Value>{1, 0}));
  EXPECT_EQ(p.space().decode(t.local_state(s, 3)),
            (std::vector<Value>{1, 0}));
}

// A path tree IS an array: verdicts coincide exactly.
TEST(Tree, PathTreeMatchesArray) {
  for (const Protocol& p :
       {protocols::array_two_coloring(),
        protocols::array_two_coloring_broken(), protocols::array_sort(3)}) {
    for (std::size_t n = 3; n <= 7; ++n) {
      std::vector<std::size_t> path(n - 1);
      for (std::size_t i = 1; i < n; ++i) path[i - 1] = i - 1;
      const auto tree = check_tree(TreeInstance(p, path));
      const auto array = check_array(ArrayInstance(p, n));
      EXPECT_EQ(tree.num_deadlocks_outside_i, array.num_deadlocks_outside_i)
          << p.name() << " n=" << n;
      EXPECT_EQ(tree.has_livelock, array.has_livelock) << p.name();
      EXPECT_EQ(tree.terminates, array.terminates) << p.name();
    }
  }
}

// The reduction: array-certified deadlock-freedom transfers to EVERY tree
// shape (a bad tree would contain a bad root-to-node path).
TEST(Tree, ArrayCertificationCoversRandomTrees) {
  const std::vector<Protocol> certified = {
      protocols::array_agreement(2), protocols::array_two_coloring(),
      protocols::array_sort(3)};
  for (const auto& p : certified) {
    ASSERT_TRUE(analyze_array_deadlocks(p, 16).deadlock_free_all_n)
        << p.name();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto shape = random_tree_shape(7, seed);
      const auto check = check_tree(TreeInstance(p, shape));
      EXPECT_EQ(check.num_deadlocks_outside_i, 0u)
          << p.name() << " seed=" << seed;
      EXPECT_TRUE(check.terminates) << p.name() << " seed=" << seed;
    }
  }
}

// Conversely, an array witness embeds as a deadlocked path tree.
TEST(Tree, ArrayWitnessEmbedsAsPathTree) {
  const Protocol p = protocols::array_two_coloring_broken();
  const auto witness = array_deadlock_witness(p, 6);
  ASSERT_TRUE(witness.has_value());
  std::vector<std::size_t> path(5);
  for (std::size_t i = 1; i < 6; ++i) path[i - 1] = i - 1;
  const TreeInstance t(p, path);
  const GlobalStateId s = t.encode(*witness);
  EXPECT_TRUE(t.is_deadlock(s));
  EXPECT_FALSE(t.in_invariant(s));
}

// Broken protocols also deadlock on bushier shapes (the bad pair can appear
// on any edge).
TEST(Tree, BrokenProtocolDeadlocksOnRandomTrees) {
  const Protocol p = protocols::array_two_coloring_broken();
  std::size_t deadlocked_shapes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto check =
        check_tree(TreeInstance(p, random_tree_shape(6, seed)));
    if (check.num_deadlocks_outside_i > 0) ++deadlocked_shapes;
  }
  EXPECT_EQ(deadlocked_shapes, 10u);
}

TEST(Tree, RandomShapesAreValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto shape = random_tree_shape(9, seed);
    ASSERT_EQ(shape.size(), 8u);
    for (std::size_t i = 1; i <= shape.size(); ++i)
      EXPECT_LT(shape[i - 1], i);
  }
}

}  // namespace
}  // namespace ringstab
