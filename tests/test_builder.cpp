#include "core/builder.hpp"

#include <gtest/gtest.h>

#include "protocols/agreement.hpp"

namespace ringstab {
namespace {

TEST(ProtocolBuilder, RequiresLegitimacy) {
  ProtocolBuilder b("t", Domain::range(2), {1, 0});
  EXPECT_THROW(b.build(), ModelError);
}

TEST(ProtocolBuilder, ExpandsGuardOverAllStates) {
  ProtocolBuilder b("t", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] == v[0]; });
  b.action("fix", [](const LocalView& v) { return v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  const Protocol p = b.build();
  // Guard holds in states 00 and 10; both get a transition to x0 := 1.
  EXPECT_EQ(p.delta().size(), 2u);
  for (const auto& t : p.delta()) {
    EXPECT_EQ(p.space().self(t.from), 0);
    EXPECT_EQ(p.space().self(t.to), 1);
  }
}

TEST(ProtocolBuilder, NoopEffectsProduceNoTransition) {
  ProtocolBuilder b("t", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView&) { return true; });
  b.action("idem", [](const LocalView&) { return true; },
           [](const LocalView& v) { return v.self(); });
  EXPECT_EQ(b.build().delta().size(), 0u);
}

TEST(ProtocolBuilder, MultiEffectAddsAllAlternatives) {
  ProtocolBuilder b("t", Domain::range(3), {1, 0});
  b.legitimate([](const LocalView&) { return false; });
  b.action("split", [](const LocalView& v) { return v[0] == 0 && v[-1] == 0; },
           ProtocolBuilder::MultiEffect([](const LocalView&) {
             return std::vector<Value>{1, 2};
           }));
  const Protocol p = b.build();
  EXPECT_EQ(p.delta().size(), 2u);
}

TEST(ProtocolBuilder, OutOfDomainEffectThrows) {
  ProtocolBuilder b("t", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView&) { return true; });
  b.action("bad", [](const LocalView&) { return true; },
           [](const LocalView&) { return Value{7}; });
  EXPECT_THROW(b.build(), ModelError);
}

TEST(ProtocolBuilder, RawTransitionEscapeHatch) {
  ProtocolBuilder b("t", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView&) { return false; });
  b.transition(0, 1);
  const Protocol p = b.build();
  ASSERT_EQ(p.delta().size(), 1u);
  EXPECT_EQ(p.delta()[0].from, 0u);
}

TEST(ProtocolBuilder, LocalViewExposesDomain) {
  ProtocolBuilder b("t", Domain::named({"a", "b"}), {1, 0});
  b.legitimate([](const LocalView& v) {
    return v[0] == *v.domain().value_of("a");
  });
  const Protocol p = b.build();
  EXPECT_EQ(p.num_legit(), 2u);  // states with x[0] = a
}

TEST(ProtocolBuilder, AgreementMatchesHandEncoding) {
  const Protocol p = protocols::agreement_both();
  // t01: 10 → 11 and t10: 01 → 00, exactly two transitions.
  ASSERT_EQ(p.delta().size(), 2u);
  const auto& space = p.space();
  const LocalStateId s10 = space.encode(std::vector<Value>{1, 0});
  const LocalStateId s01 = space.encode(std::vector<Value>{0, 1});
  EXPECT_TRUE(p.is_enabled(s10));
  EXPECT_TRUE(p.is_enabled(s01));
  EXPECT_EQ(space.self(p.transitions_from(s10)[0].to), 1);
  EXPECT_EQ(space.self(p.transitions_from(s01)[0].to), 0);
}

}  // namespace
}  // namespace ringstab
