// Shared test utilities: the protocol zoo, random protocol generation, and
// local-vs-global cross-validation helpers.
#pragma once

#include <random>
#include <vector>

#include "core/builder.hpp"
#include "core/protocol.hpp"
#include "global/checker.hpp"

namespace ringstab::testing {

/// Every built-in protocol, for parameterized sweeps.
std::vector<Protocol> protocol_zoo();

/// Deterministic random protocols: domain size in [2,3], unidirectional or
/// bidirectional window, random legitimacy mask (nonempty, not full), and a
/// random self-disabling transition set. Suitable for cross-validating the
/// local theorems against global model checking.
struct RandomProtocolOptions {
  std::size_t max_domain = 3;
  bool allow_bidirectional = false;
  double transition_density = 0.3;  // probability a deadlockable state fires
  double legit_density = 0.5;
};

Protocol random_protocol(std::mt19937_64& rng,
                         const RandomProtocolOptions& opts = {});

/// True iff p(K) has a global deadlock outside I.
bool global_has_deadlock(const Protocol& p, std::size_t k);

/// True iff p(K) has a livelock (cycle outside I).
bool global_has_livelock(const Protocol& p, std::size_t k);

}  // namespace ringstab::testing
