#include "local/closure.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "helpers.hpp"

namespace ringstab {
namespace {

// Every zoo protocol keeps its invariant closed globally; the local check
// certifies all of them except matching_nongen, where it conservatively
// flags a mover/neighbor pair that cannot be embedded in a fully legitimate
// ring (documented incompleteness of the local closure check).
TEST(Closure, ZooProtocolsAreClosed) {
  for (const auto& p : testing::protocol_zoo()) {
    const auto local = check_invariant_closure(p);
    const bool known_conservative =
        p.name() == "matching_nongen" || p.name() == "matching_nongen_fixed";
    if (known_conservative) {
      EXPECT_EQ(local.verdict, ClosureCheck::Verdict::kMaybeViolated);
    } else {
      EXPECT_EQ(local.verdict, ClosureCheck::Verdict::kClosed) << p.name();
    }
    for (std::size_t k = 4; k <= 6; ++k)
      EXPECT_TRUE(GlobalChecker(RingInstance(p, k)).check_closure())
          << p.name() << " K=" << k;
  }
}

// Local kClosed must imply global closure (soundness) for sampled K.
TEST(Closure, LocalClosedImpliesGlobalClosed) {
  for (const auto& p : testing::protocol_zoo()) {
    if (check_invariant_closure(p).verdict != ClosureCheck::Verdict::kClosed)
      continue;
    for (std::size_t k = 3; k <= 6; ++k) {
      const RingInstance ring(p, k);
      EXPECT_TRUE(GlobalChecker(ring).check_closure())
          << p.name() << " K=" << k;
    }
  }
}

TEST(Closure, SelfViolationIsDetected) {
  // A transition from a legitimate state to an illegitimate one.
  ProtocolBuilder b("bad_self", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView& v) { return v[0] == 0; });
  b.action("break", [](const LocalView& v) { return v[0] == 0 && v[-1] == 0; },
           [](const LocalView&) { return Value{1}; });
  const auto res = check_invariant_closure(b.build());
  EXPECT_EQ(res.verdict, ClosureCheck::Verdict::kMaybeViolated);
  EXPECT_TRUE(res.self_violation);
}

TEST(Closure, NeighborCorruptionIsDetected) {
  // LC_r: x_{r-1} == x_r. Firing 11 → 10 keeps LC_r of the mover false →
  // self-violation... instead craft: LC: x[0]==0; transition at an
  // illegitimate state is fine. Use LC over both variables:
  // LC: x[-1] <= x[0]; transition 11 → 10 is from legit (1<=1) to 1<=0
  // false → self. For a pure neighbor case: LC: x[-1] == 0.
  // Mover's own LC ignores x[0]; writing x[0] := 1 corrupts the successor
  // (whose x[-1] becomes 1).
  ProtocolBuilder b("bad_nbr", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] == 0; });
  b.action("emit", [](const LocalView& v) { return v[-1] == 0 && v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  const auto res = check_invariant_closure(b.build());
  EXPECT_EQ(res.verdict, ClosureCheck::Verdict::kMaybeViolated);
  EXPECT_FALSE(res.self_violation);
  EXPECT_EQ(res.neighbor_offset, 1);
}

TEST(Closure, ViolationIsConfirmedGlobally) {
  ProtocolBuilder b("bad_nbr2", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView& v) { return v[-1] == 0; });
  b.action("emit", [](const LocalView& v) { return v[-1] == 0 && v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  const Protocol p = b.build();
  const RingInstance ring(p, 4);
  EXPECT_FALSE(GlobalChecker(ring).check_closure());
}

TEST(Closure, DescribeReportsWitness) {
  ProtocolBuilder b("bad", Domain::range(2), {1, 0});
  b.legitimate([](const LocalView& v) { return v[0] == 0; });
  b.action("break", [](const LocalView& v) { return v[0] == 0 && v[-1] == 1; },
           [](const LocalView&) { return Value{1}; });
  const Protocol p = b.build();
  const auto res = check_invariant_closure(p);
  EXPECT_NE(res.describe(p).find("closure violation"), std::string::npos);
  const Protocol ok = testing::protocol_zoo().front();
  EXPECT_NE(check_invariant_closure(ok).describe(ok).find("closed"),
            std::string::npos);
}

}  // namespace
}  // namespace ringstab
