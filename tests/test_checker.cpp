#include "global/checker.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

TEST(Checker, EmptyAgreementDeadlocksEverywhereOutsideI) {
  const RingInstance r(protocols::agreement_empty(), 4);
  const GlobalChecker c(r);
  // Every state is a deadlock; 16 states, 2 in I.
  EXPECT_EQ(c.count_deadlocks_outside_invariant(), 14u);
  EXPECT_FALSE(c.find_livelock().has_value());
  EXPECT_FALSE(c.check_weak_convergence());
}

TEST(Checker, OneSidedAgreementStronglyConverges) {
  for (std::size_t k = 2; k <= 9; ++k) {
    const RingInstance r(protocols::agreement_one_sided(true), k);
    const auto res = GlobalChecker(r).check_all();
    EXPECT_TRUE(res.strongly_converges()) << k;
    EXPECT_TRUE(res.weakly_converges) << k;
    EXPECT_TRUE(res.closure_ok) << k;
    EXPECT_EQ(res.max_recovery_steps, k - 1) << k;
  }
}

TEST(Checker, AgreementBothLivelockWitnessIsValid) {
  const RingInstance r(protocols::agreement_both(), 4);
  const auto cycle = GlobalChecker(r).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 2u);
  std::vector<RingInstance::Step> succ;
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_FALSE(r.in_invariant((*cycle)[i]));
    r.successors((*cycle)[i], succ);
    const GlobalStateId next = (*cycle)[(i + 1) % cycle->size()];
    EXPECT_TRUE(std::any_of(succ.begin(), succ.end(),
                            [&](const auto& s) { return s.target == next; }));
  }
}

TEST(Checker, AgreementBothIsWeaklyButNotStronglyConverging) {
  const RingInstance r(protocols::agreement_both(), 4);
  const auto res = GlobalChecker(r).check_all();
  EXPECT_TRUE(res.weakly_converges);
  EXPECT_TRUE(res.has_livelock);
  EXPECT_FALSE(res.strongly_converges());
}

TEST(Checker, LivelockStatesAreSupersetOfWitness) {
  const RingInstance r(protocols::agreement_both(), 4);
  const GlobalChecker c(r);
  const auto states = c.livelock_states();
  const auto cycle = c.find_livelock();
  ASSERT_TRUE(cycle.has_value());
  for (GlobalStateId s : *cycle)
    EXPECT_TRUE(std::binary_search(states.begin(), states.end(), s));
}

TEST(Checker, ClosureHoldsForZoo) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance r(p, 5);
    EXPECT_TRUE(GlobalChecker(r).check_closure()) << p.name();
  }
}

TEST(Checker, MaxRecoveryStepsThrowsOnNonConverging) {
  const RingInstance r(protocols::agreement_both(), 4);
  EXPECT_THROW(GlobalChecker(r).max_recovery_steps(), ModelError);
  const RingInstance dead(protocols::agreement_empty(), 3);
  EXPECT_THROW(GlobalChecker(dead).max_recovery_steps(), ModelError);
}

TEST(Checker, StronglyStabilizingHelperAgreesWithCheckAll) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance r(p, 4);
    EXPECT_EQ(strongly_stabilizing(r),
              GlobalChecker(r).check_all().strongly_converges())
        << p.name();
  }
}

TEST(Checker, SumNotTwoSolutionConverges) {
  for (std::size_t k = 2; k <= 8; ++k) {
    const RingInstance r(protocols::sum_not_two_solution(), k);
    EXPECT_TRUE(strongly_stabilizing(r)) << k;
  }
}

TEST(Checker, NonGeneralizableMatchingPassesOnlyCleanSizes) {
  const Protocol p = protocols::matching_nongeneralizable();
  EXPECT_TRUE(strongly_stabilizing(RingInstance(p, 5)));
  EXPECT_FALSE(strongly_stabilizing(RingInstance(p, 4)));
  EXPECT_FALSE(strongly_stabilizing(RingInstance(p, 6)));
}

TEST(Checker, DeadlockSamplesAreRealDeadlocks) {
  const Protocol p = protocols::coloring_empty(3);
  const RingInstance r(p, 5);
  std::vector<GlobalStateId> samples;
  GlobalChecker(r).count_deadlocks_outside_invariant(&samples, 5);
  ASSERT_FALSE(samples.empty());
  for (GlobalStateId s : samples) {
    EXPECT_TRUE(r.is_deadlock(s));
    EXPECT_FALSE(r.in_invariant(s));
  }
}

}  // namespace
}  // namespace ringstab
