// The parallel global-state engine: thread pool / parallel_for semantics,
// the packed bitset, the rolling division-free decoder, and — the contract
// that matters — bit-identical verdicts between the serial seed engine and
// the parallel sweeps on every bundled protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "helpers.hpp"
#include "parallel/bitset.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/simulator.hpp"

namespace ringstab {
namespace {

TEST(PackedBitset, SetTestCountResize) {
  PackedBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
  b.assign(130, true);
  EXPECT_EQ(b.count(), 130u);  // bits past size() must stay clear
  EXPECT_TRUE(b.all());
}

TEST(PackedBitset, EqualityIgnoresSlackBits) {
  PackedBitset a(70), b(70);
  a.set(69);
  b.set(69);
  EXPECT_EQ(a, b);
  b.reset(69);
  EXPECT_NE(a, b);
}

TEST(PackedBitset, AtomicSetFromManyThreads) {
  const std::uint64_t n = 10'000;
  PackedBitset b(n);
  // All lanes hammer overlapping words; every bit must land exactly once.
  parallel_for(n, 4, 64, [&](const ChunkRange& chunk, std::size_t) {
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) b.set_atomic(i);
  });
  EXPECT_EQ(b.count(), n);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  const std::uint64_t n = 100'000;
  std::vector<std::uint8_t> hits(n, 0);
  parallel_for(n, 4, 0, [&](const ChunkRange& chunk, std::size_t) {
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), std::uint64_t{0}), n);
}

TEST(ParallelFor, ChunkPartitionIndependentOfThreadCount) {
  const std::uint64_t n = 1'000'000;
  std::vector<std::vector<std::uint64_t>> begins(3);
  std::size_t idx = 0;
  for (std::size_t threads : {1u, 2u, 5u}) {
    std::vector<std::uint64_t>& mine = begins[idx++];
    mine.resize(num_chunks(n, 0));
    parallel_for(n, threads, 0, [&](const ChunkRange& chunk, std::size_t) {
      mine[chunk.index] = chunk.begin;
    });
  }
  EXPECT_EQ(begins[0], begins[1]);
  EXPECT_EQ(begins[0], begins[2]);
  // 64-alignment of chunk starts keeps bitset words chunk-private.
  for (std::uint64_t b : begins[0]) EXPECT_EQ(b % 64, 0u);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for(10'000, 4, 64,
                   [&](const ChunkRange& chunk, std::size_t) {
                     if (chunk.begin == 0)
                       throw ModelError("boom from a worker");
                   }),
      ModelError);
  // The pool must survive a throwing region and accept new work.
  std::atomic<std::uint64_t> sum{0};
  parallel_for(1'000, 4, 64, [&](const ChunkRange& chunk, std::size_t) {
    sum.fetch_add(chunk.end - chunk.begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1'000u);
}

// A parallel region opened from inside another region's lane must execute
// inline on that lane (the pool's workers are busy running the outer
// region) — never deadlock, and still cover its range exactly once.
TEST(ParallelFor, NestedRegionRunsInlineWithoutDeadlock) {
  const std::uint64_t outer_n = 1'000, inner_n = 640;
  std::atomic<std::uint64_t> inner_total{0};
  parallel_for(outer_n, 4, 64, [&](const ChunkRange& outer, std::size_t) {
    std::uint64_t local = 0;
    parallel_for(inner_n, 4, 64, [&](const ChunkRange& inner, std::size_t) {
      local += inner.end - inner.begin;
    });
    EXPECT_EQ(local, inner_n);
    inner_total.fetch_add(local * (outer.end - outer.begin),
                          std::memory_order_relaxed);
  });
  EXPECT_EQ(inner_total.load(), outer_n * inner_n);
  // The pool must accept ordinary work afterwards.
  std::atomic<std::uint64_t> sum{0};
  parallel_for(outer_n, 4, 64, [&](const ChunkRange& chunk, std::size_t) {
    sum.fetch_add(chunk.end - chunk.begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), outer_n);
}

TEST(RingCursor, MatchesDivmodDecodeEverywhere) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance ring(p, 5);
    auto cur = ring.cursor(0);
    for (GlobalStateId s = 0; s < ring.num_states(); ++s, cur.advance()) {
      ASSERT_EQ(cur.state(), s);
      for (std::size_t i = 0; i < ring.ring_size(); ++i)
        ASSERT_EQ(cur.local_state(i), ring.local_state(s, i))
            << p.name() << " s=" << s << " i=" << i;
      ASSERT_EQ(cur.in_invariant(), ring.in_invariant(s)) << p.name();
      ASSERT_EQ(cur.is_deadlock(), ring.is_deadlock(s)) << p.name();
    }
  }
}

TEST(RingCursor, CursorFromMidStateMatches) {
  const RingInstance ring(testing::protocol_zoo().front(), 6);
  const GlobalStateId start = ring.num_states() / 3 + 17;
  auto cur = ring.cursor(start);
  std::vector<RingInstance::Step> a, b;
  for (GlobalStateId s = start; s < start + 100 && s < ring.num_states();
       ++s, cur.advance()) {
    cur.successors(a);
    ring.successors(s, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j)
      ASSERT_EQ(a[j].target, b[j].target);
  }
}

// The headline contract: N-thread sweeps return verdicts, counts, samples,
// witness cycles, and recovery bounds identical to the serial engine for
// every bundled protocol at K = 2..8.
TEST(ParallelChecker, MatchesSerialOnAllBundledProtocols) {
  for (const auto& p : testing::protocol_zoo()) {
    for (std::size_t k = 2; k <= 8; ++k) {
      const RingInstance ring(p, k);
      const auto serial = GlobalChecker(ring, 1).check_all();
      for (std::size_t threads : {2u, 4u}) {
        const auto par = GlobalChecker(ring, threads).check_all();
        ASSERT_EQ(par.num_states, serial.num_states) << p.name() << " K=" << k;
        ASSERT_EQ(par.num_deadlocks_outside_i, serial.num_deadlocks_outside_i)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.deadlock_samples, serial.deadlock_samples)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.has_livelock, serial.has_livelock)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.livelock_cycle, serial.livelock_cycle)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.closure_ok, serial.closure_ok)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.closure_violation, serial.closure_violation)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.weakly_converges, serial.weakly_converges)
            << p.name() << " K=" << k << " threads=" << threads;
        ASSERT_EQ(par.max_recovery_steps, serial.max_recovery_steps)
            << p.name() << " K=" << k << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelChecker, InvariantMaskMatchesPredicate) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance ring(p, 6);
    const GlobalChecker checker(ring, 4);
    const PackedBitset& mask = checker.invariant_mask();
    ASSERT_EQ(mask.size(), ring.num_states());
    for (GlobalStateId s = 0; s < ring.num_states(); ++s)
      ASSERT_EQ(mask.test(s), ring.in_invariant(s)) << p.name() << " " << s;
  }
}

TEST(ParallelChecker, StronglyStabilizingAgreesAcrossThreadCounts) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance ring(p, 5);
    EXPECT_EQ(strongly_stabilizing(ring, 1), strongly_stabilizing(ring, 4))
        << p.name();
  }
}

TEST(ParallelSymmetry, CensusMatchesSerialScan) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance ring(p, 6);
    const auto serial = check_symmetric(ring, 8, 1);
    for (std::size_t threads : {2u, 4u}) {
      const auto par = check_symmetric(ring, 8, threads);
      EXPECT_EQ(par.num_necklaces, serial.num_necklaces) << p.name();
      EXPECT_EQ(par.num_deadlocks_outside_i, serial.num_deadlocks_outside_i)
          << p.name();
      EXPECT_EQ(par.deadlock_orbit_reps, serial.deadlock_orbit_reps)
          << p.name();
      EXPECT_EQ(par.canonical_states_visited, serial.canonical_states_visited)
          << p.name();
      EXPECT_EQ(par.has_livelock, serial.has_livelock) << p.name();
      EXPECT_EQ(par.livelock_cycle, serial.livelock_cycle) << p.name();
      EXPECT_EQ(par.closure_ok, serial.closure_ok) << p.name();
      EXPECT_EQ(par.closure_violation, serial.closure_violation) << p.name();
      EXPECT_EQ(par.weakly_converges, serial.weakly_converges) << p.name();
      EXPECT_EQ(par.max_recovery_steps, serial.max_recovery_steps)
          << p.name();
    }
  }
}

TEST(ParallelSymmetry, CensusOnlySweepMatchesFullResult) {
  for (const auto& p : testing::protocol_zoo()) {
    const RingInstance ring(p, 7);
    const auto full = check_symmetric(ring, 8, 1);
    for (std::size_t threads : {1u, 4u}) {
      const auto census = necklace_census(ring, 8, threads);
      EXPECT_EQ(census.num_necklaces, full.num_necklaces) << p.name();
      EXPECT_EQ(census.orbit_states, ring.num_states()) << p.name();
      EXPECT_EQ(census.num_deadlocks_outside_i, full.num_deadlocks_outside_i)
          << p.name();
      EXPECT_EQ(census.deadlock_orbit_reps, full.deadlock_orbit_reps)
          << p.name();
    }
  }
}

TEST(ParallelSimulator, BatchStatsDeterministicAcrossThreadCounts) {
  const Protocol p = testing::protocol_zoo().front();
  const auto two = measure_convergence(p, 8, 64, 7, 10'000,
                                       Scheduler::kUniformRandom, 2);
  const auto four = measure_convergence(p, 8, 64, 7, 10'000,
                                        Scheduler::kUniformRandom, 4);
  EXPECT_EQ(two.converged, four.converged);
  EXPECT_EQ(two.failed, four.failed);
  EXPECT_EQ(two.max_steps, four.max_steps);
  EXPECT_EQ(two.p50_steps, four.p50_steps);
  EXPECT_EQ(two.p95_steps, four.p95_steps);
  EXPECT_DOUBLE_EQ(two.mean_steps, four.mean_steps);
}

}  // namespace
}  // namespace ringstab
