#include "synthesis/global_synthesizer.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

TEST(GlobalSynthesis, AgreementFindsBothSolutions) {
  GlobalSynthesisOptions opts;
  opts.min_ring = 2;
  opts.max_ring = 6;
  const auto res =
      synthesize_convergence_global(protocols::agreement_empty(), opts);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.solutions.size(), 2u);
  EXPECT_GT(res.states_explored, 0u);
}

TEST(GlobalSynthesis, SumNotTwoAcceptsMoreThanLocal) {
  // The fixed-K baseline accepts every candidate that happens to stabilize
  // up to the cutoff — including candidates whose trails were spurious. The
  // local method is strictly more conservative.
  GlobalSynthesisOptions gopts;
  gopts.min_ring = 2;
  gopts.max_ring = 6;
  const auto global =
      synthesize_convergence_global(protocols::sum_not_two_empty(), gopts);
  const auto local = synthesize_convergence(protocols::sum_not_two_empty());
  ASSERT_TRUE(global.success);
  ASSERT_TRUE(local.success);
  EXPECT_EQ(global.solutions.size(), 6u)
      << "8 candidates − 2 real livelocks (the rotations pass: spurious)";
  EXPECT_EQ(local.solutions.size(), 4u);
  // Every locally accepted solution is also globally accepted.
  for (const auto& ls : local.solutions) {
    EXPECT_TRUE(std::any_of(global.solutions.begin(), global.solutions.end(),
                            [&](const auto& gs) {
                              return gs.protocol.delta() ==
                                     ls.protocol.delta();
                            }));
  }
}

// The non-generalizability trap (the paper's core motivation): a candidate
// accepted by checking K=5 alone deadlocks at K=4 and K=6.
TEST(GlobalSynthesis, SmallCutoffAcceptsNonGeneralizableSolutions) {
  // 3-coloring at cutoff K ≤ 3 accepts rotation-style candidates that
  // livelock at K=4 — fixed-K synthesis does not generalize.
  GlobalSynthesisOptions small;
  small.min_ring = 2;
  small.max_ring = 3;
  const auto res =
      synthesize_convergence_global(protocols::coloring_empty(3), small);
  ASSERT_TRUE(res.success) << "small cutoff lets bad candidates through";
  bool some_bad = false;
  for (const auto& sol : res.solutions)
    if (testing::global_has_livelock(sol.protocol, 4)) some_bad = true;
  EXPECT_TRUE(some_bad);

  // Raising the cutoff to 4 eliminates them all (3-coloring has no
  // symmetric deterministic solution of this shape).
  GlobalSynthesisOptions bigger;
  bigger.min_ring = 2;
  bigger.max_ring = 4;
  EXPECT_FALSE(
      synthesize_convergence_global(protocols::coloring_empty(3), bigger)
          .success);
}

TEST(GlobalSynthesis, LocalAcceptanceImpliesGlobalAcceptance) {
  // Soundness: anything the local synthesizer accepts must pass the global
  // baseline at every K in range.
  for (const Protocol& input :
       {protocols::agreement_empty(), protocols::sum_not_two_empty()}) {
    const auto local = synthesize_convergence(input);
    GlobalSynthesisOptions opts;
    opts.min_ring = 2;
    opts.max_ring = 7;
    for (const auto& sol : local.solutions) {
      bool ok = true;
      for (std::size_t k = opts.min_ring; k <= opts.max_ring; ++k)
        ok = ok && strongly_stabilizing(RingInstance(sol.protocol, k));
      EXPECT_TRUE(ok) << input.name();
    }
  }
}

// Hybrid mode: the Theorem 4.2 prefilter skips the model checking for
// candidates that deadlock at some size, without losing any solution that
// would have passed.
TEST(GlobalSynthesis, Theorem42PrefilterIsLossless) {
  for (const Protocol& input :
       {protocols::agreement_empty(), protocols::sum_not_two_empty()}) {
    GlobalSynthesisOptions plain;
    plain.max_ring = 6;
    GlobalSynthesisOptions hybrid = plain;
    hybrid.prefilter_with_theorem42 = true;

    const auto a = synthesize_convergence_global(input, plain);
    const auto b = synthesize_convergence_global(input, hybrid);
    ASSERT_EQ(a.solutions.size(), b.solutions.size()) << input.name();
    for (std::size_t i = 0; i < a.solutions.size(); ++i)
      EXPECT_EQ(a.solutions[i].protocol.delta(),
                b.solutions[i].protocol.delta());
    EXPECT_LE(b.states_explored, a.states_explored);
  }
}

TEST(GlobalSynthesis, PrefilterCountsDiscards) {
  // 3-coloring at a tiny cutoff: without prefilter some candidates pass
  // (they only livelock later); all candidates are deadlock-free ∀K though,
  // so the prefilter discards none — use an input with deadlocking
  // candidates instead: none of our empties produce them (targets resolve
  // all bad cycles by construction). The count is therefore 0 here, which
  // itself is worth pinning: the Resolve construction already guarantees
  // Theorem 4.2 for every candidate.
  GlobalSynthesisOptions hybrid;
  hybrid.max_ring = 4;
  hybrid.prefilter_with_theorem42 = true;
  const auto res =
      synthesize_convergence_global(protocols::sum_not_two_empty(), hybrid);
  EXPECT_EQ(res.prefiltered_out, 0u);
}

TEST(GlobalSynthesis, SummaryReportsCost) {
  GlobalSynthesisOptions opts;
  opts.max_ring = 4;
  const Protocol input = protocols::agreement_empty();
  const auto res = synthesize_convergence_global(input, opts);
  const std::string s = res.summary(input);
  EXPECT_NE(s.find("states explored"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
