// Transformations as metamorphic oracles: analyses must be invariant under
// mirroring and value renaming, and layering preserves convergence of
// silent protocols.
#include "transform/transform.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "local/convergence.hpp"
#include "local/deadlock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/misc.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

TEST(Reverse, SwapsLocality) {
  const Protocol p = testing::protocol_zoo()[1];  // bidirectional matching
  const Protocol r = reverse_orientation(p);
  EXPECT_EQ(r.locality().left, p.locality().right);
  EXPECT_EQ(r.locality().right, p.locality().left);
  EXPECT_EQ(r.delta().size(), p.delta().size());
  EXPECT_EQ(r.num_legit(), p.num_legit());
}

TEST(Reverse, IsAnInvolution) {
  for (const auto& p : testing::protocol_zoo()) {
    const Protocol rr = reverse_orientation(reverse_orientation(p));
    EXPECT_EQ(rr.delta(), p.delta()) << p.name();
    EXPECT_EQ(rr.legit_mask(), p.legit_mask()) << p.name();
  }
}

// Mirroring the ring preserves the deadlock size spectrum exactly.
class ReverseZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReverseZooTest, DeadlockSpectrumIsInvariant) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const Protocol r = reverse_orientation(p);
  const auto a = analyze_deadlocks(p, 12);
  const auto b = analyze_deadlocks(r, 12);
  EXPECT_EQ(a.deadlock_free_all_k, b.deadlock_free_all_k) << p.name();
  EXPECT_EQ(a.size_spectrum.feasible, b.size_spectrum.feasible) << p.name();
  EXPECT_EQ(a.local_deadlocks.size(), b.local_deadlocks.size());
}

INSTANTIATE_TEST_SUITE_P(Zoo, ReverseZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

TEST(Reverse, GlobalBehaviorMatches) {
  // p on a clockwise ring ≡ reverse(p) counter-clockwise: global verdicts
  // coincide at every size.
  for (const Protocol& p :
       {protocols::agreement_both(), protocols::sum_not_two_solution()}) {
    const Protocol r = reverse_orientation(p);
    for (std::size_t k = 3; k <= 6; ++k) {
      EXPECT_EQ(testing::global_has_deadlock(p, k),
                testing::global_has_deadlock(r, k))
          << p.name() << " K=" << k;
      EXPECT_EQ(testing::global_has_livelock(p, k),
                testing::global_has_livelock(r, k))
          << p.name() << " K=" << k;
    }
  }
}

TEST(Rename, RejectsNonBijections) {
  const Protocol p = protocols::agreement_both();
  EXPECT_THROW(rename_values(p, {0, 0}), ModelError);
  EXPECT_THROW(rename_values(p, {0}), ModelError);
  EXPECT_THROW(rename_values(p, {0, 7}), ModelError);
}

TEST(Rename, IdentityIsNoop) {
  const Protocol p = protocols::sum_not_two_solution();
  const Protocol q = rename_values(p, {0, 1, 2});
  EXPECT_EQ(q.delta(), p.delta());
  EXPECT_EQ(q.legit_mask(), p.legit_mask());
}

// Every analysis verdict is invariant under value permutation.
TEST(Rename, VerdictsAreInvariantUnderPermutations) {
  std::mt19937_64 rng(5);
  for (const auto& p : testing::protocol_zoo()) {
    std::vector<Value> perm(p.domain().size());
    for (std::size_t i = 0; i < perm.size(); ++i)
      perm[i] = static_cast<Value>(i);
    std::shuffle(perm.begin(), perm.end(), rng);
    const Protocol q = rename_values(p, perm);

    const auto da = analyze_deadlocks(p, 10);
    const auto db = analyze_deadlocks(q, 10);
    EXPECT_EQ(da.size_spectrum.feasible, db.size_spectrum.feasible)
        << p.name();

    if (p.locality().is_unidirectional()) {
      const auto la = check_livelock_freedom(p);
      const auto lb = check_livelock_freedom(q);
      EXPECT_EQ(la.verdict, lb.verdict) << p.name();
    }
  }
}

TEST(Product, RequiresMatchingLocalities) {
  EXPECT_THROW(layer_product(protocols::agreement_both(),
                             testing::protocol_zoo()[0]),
               ModelError);
}

TEST(Product, InvariantAndDeadlocksAreConjunctions) {
  const Protocol p1 = protocols::agreement_one_sided(true);
  const Protocol p2 = protocols::no_adjacent_ones_solution();
  const Protocol prod = layer_product(p1, p2);
  EXPECT_EQ(prod.domain().size(), 4u);
  for (LocalStateId s = 0; s < prod.num_states(); ++s) {
    const LocalStateId a = product_layer1(prod, p1, p2, s);
    const LocalStateId b = product_layer2(prod, p1, p2, s);
    EXPECT_EQ(prod.is_legit(s), p1.is_legit(a) && p2.is_legit(b));
    EXPECT_EQ(prod.is_deadlock(s), p1.is_deadlock(a) && p2.is_deadlock(b));
  }
}

// Layering two silent converging protocols converges — locally certified
// and globally confirmed.
TEST(Product, SilentConvergingLayersCompose) {
  const Protocol p1 = protocols::agreement_one_sided(true);
  const Protocol p2 = protocols::no_adjacent_ones_solution();
  const Protocol prod = layer_product(p1, p2);
  EXPECT_TRUE(analyze_deadlocks(prod).deadlock_free_all_k);
  EXPECT_EQ(check_convergence(prod).verdict,
            ConvergenceAnalysis::Verdict::kConverges);
  for (std::size_t k = 3; k <= 6; ++k)
    EXPECT_TRUE(strongly_stabilizing(RingInstance(prod, k))) << k;
}

TEST(Product, BrokenLayerBreaksTheProduct) {
  const Protocol good = protocols::no_adjacent_ones_solution();
  const Protocol bad = protocols::agreement_both();  // livelocks
  const Protocol prod = layer_product(bad, good);
  EXPECT_NE(check_convergence(prod).verdict,
            ConvergenceAnalysis::Verdict::kConverges);
  EXPECT_TRUE(testing::global_has_livelock(prod, 4));
}

// The bidirectional check catches the orientation blind spot: the mirrored
// Gouda–Acharya fragment has REAL (leftward-circulating) livelocks that the
// rightward-only trail search misses; the combined check flags them.
TEST(Bidirectional, MirroredGoudaAcharyaIsCaught) {
  const Protocol ga = protocols::matching_gouda_acharya_fragment();
  const Protocol rev = reverse_orientation(ga);

  // The mirrored protocol really livelocks (mirror images of GA's K=5
  // livelock).
  EXPECT_TRUE(testing::global_has_livelock(rev, 5));

  // One-orientation search: blind to it.
  EXPECT_EQ(check_livelock_freedom(rev).verdict,
            LivelockAnalysis::Verdict::kLivelockFree)
      << "(this is the documented blind spot, not a certification)";

  // Combined search: caught via the mirror.
  const auto combo = check_livelock_freedom_bidirectional(rev);
  EXPECT_EQ(combo.verdict,
            BidirectionalLivelockAnalysis::Verdict::kTrailFound);
  EXPECT_TRUE(combo.forward_free);
  EXPECT_FALSE(combo.backward_free);
}

// Soundness of the combined verdict over bidirectional zoo protocols.
TEST(Bidirectional, CombinedFreeVerdictIsGloballySound) {
  for (const auto& p : testing::protocol_zoo()) {
    if (p.locality().is_unidirectional()) continue;
    const auto combo = check_livelock_freedom_bidirectional(p);
    if (combo.verdict !=
        BidirectionalLivelockAnalysis::Verdict::kLivelockFree)
      continue;
    for (std::size_t k = 3; k <= 6; ++k)
      EXPECT_FALSE(testing::global_has_livelock(p, k))
          << p.name() << " K=" << k;
  }
}

// On unidirectional protocols both orientations agree (the mirror of a
// unidirectional protocol reads successors, but the search is exact there
// too), so the combined verdict matches the single check.
TEST(Bidirectional, AgreesWithSingleCheckOnUnidirectional) {
  for (const Protocol& p :
       {protocols::agreement_one_sided(true), protocols::agreement_both(),
        protocols::sum_not_two_solution()}) {
    const auto single = check_livelock_freedom(p);
    const auto combo = check_livelock_freedom_bidirectional(p);
    const bool single_free =
        single.verdict == LivelockAnalysis::Verdict::kLivelockFree;
    const bool combo_free =
        combo.verdict == BidirectionalLivelockAnalysis::Verdict::kLivelockFree;
    EXPECT_EQ(single_free, combo_free) << p.name();
  }
}

// Canonicalization: equal keys iff value-renamings of each other.
TEST(Canonical, RenamedProtocolsShareAKey) {
  const Protocol p = protocols::sum_not_two_solution();
  const Protocol q = rename_values(p, {2, 1, 0});
  EXPECT_EQ(value_canonical_key(p), value_canonical_key(q));
  // A genuinely different protocol gets a different key.
  EXPECT_FALSE(value_canonical_key(p) ==
               value_canonical_key(protocols::sum_not_two_rotation(true)));
}

// Agreement's two synthesis solutions are one orbit: swapping 0↔1 maps
// copy-up onto copy-down.
TEST(Canonical, AgreementSolutionsAreOneOrbit) {
  const auto res = synthesize_convergence(protocols::agreement_empty());
  std::vector<Protocol> sols;
  for (const auto& s : res.solutions) sols.push_back(s.protocol);
  EXPECT_EQ(value_symmetry_orbits(sols).size(), 1u);
}

// Sum-not-two's four solutions fall into two orbits under the 0↔2 symmetry
// of the invariant.
TEST(Canonical, SumNotTwoSolutionsFormTwoOrbits) {
  const auto res = synthesize_convergence(protocols::sum_not_two_empty());
  std::vector<Protocol> sols;
  for (const auto& s : res.solutions) sols.push_back(s.protocol);
  const auto orbits = value_symmetry_orbits(sols);
  EXPECT_EQ(orbits.size(), 2u);
  std::size_t total = 0;
  for (const auto& o : orbits) total += o.size();
  EXPECT_EQ(total, sols.size());
}

TEST(Product, SumNotTwoWithAgreement) {
  const Protocol prod = layer_product(protocols::sum_not_two_solution(),
                                      protocols::agreement_one_sided(false));
  EXPECT_EQ(prod.domain().size(), 6u);
  EXPECT_EQ(check_convergence(prod).verdict,
            ConvergenceAnalysis::Verdict::kConverges);
  for (std::size_t k = 3; k <= 5; ++k)
    EXPECT_TRUE(strongly_stabilizing(RingInstance(prod, k))) << k;
}

}  // namespace
}  // namespace ringstab
