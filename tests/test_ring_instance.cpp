#include "global/ring_instance.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

TEST(RingInstance, StateCountAndCapacity) {
  const RingInstance r(protocols::agreement_both(), 10);
  EXPECT_EQ(r.num_states(), 1024u);
  EXPECT_THROW(RingInstance(protocols::agreement_both(), 60), CapacityError);
  EXPECT_THROW(RingInstance(protocols::agreement_both(), 1), ModelError);
}

TEST(RingInstance, EncodeDecodeRoundTrip) {
  const RingInstance r(protocols::matching_skeleton(), 4);
  for (GlobalStateId s = 0; s < r.num_states(); ++s)
    EXPECT_EQ(r.encode(r.decode(s)), s);
}

TEST(RingInstance, LocalStateMatchesHelper) {
  const RingInstance r(protocols::matching_generalizable(), 5);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const GlobalStateId s = rng() % r.num_states();
    const auto ring = r.decode(s);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(r.local_state(s, i),
                local_state_of(r.protocol(), ring, i));
  }
}

TEST(RingInstance, InvariantIsConjunctionOfLocals) {
  const RingInstance r(protocols::agreement_both(), 4);
  for (GlobalStateId s = 0; s < r.num_states(); ++s) {
    bool all = true;
    for (std::size_t i = 0; i < 4; ++i)
      all = all && r.protocol().is_legit(r.local_state(s, i));
    EXPECT_EQ(r.in_invariant(s), all);
  }
  // Agreement: exactly the two constant states are legitimate.
  std::size_t legit = 0;
  for (GlobalStateId s = 0; s < r.num_states(); ++s)
    if (r.in_invariant(s)) ++legit;
  EXPECT_EQ(legit, 2u);
}

TEST(RingInstance, SuccessorsMatchScheduleApplication) {
  const RingInstance r(protocols::agreement_both(), 5);
  std::vector<RingInstance::Step> succ;
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const GlobalStateId s = rng() % r.num_states();
    r.successors(s, succ);
    for (const auto& step : succ) {
      auto ring = r.decode(s);
      EXPECT_TRUE(apply_step(r.protocol(), ring,
                             {step.process, step.transition}));
      EXPECT_EQ(r.encode(ring), step.target);
    }
    // Count must equal the number of enabled (process, transition) pairs.
    std::size_t expect = 0;
    for (std::size_t i = 0; i < 5; ++i)
      expect += r.protocol().transitions_from(r.local_state(s, i)).size();
    EXPECT_EQ(succ.size(), expect);
  }
}

TEST(RingInstance, DeadlockAndEnabledCount) {
  const RingInstance r(protocols::agreement_both(), 3);
  const GlobalStateId all_zero = r.encode(std::vector<Value>{0, 0, 0});
  EXPECT_TRUE(r.is_deadlock(all_zero));
  EXPECT_EQ(r.num_enabled(all_zero), 0u);
  const GlobalStateId mixed = r.encode(std::vector<Value>{0, 1, 0});
  EXPECT_FALSE(r.is_deadlock(mixed));
  EXPECT_EQ(r.num_enabled(mixed), 2u);  // P1 (01) and P2 (10)
}

TEST(RingInstance, BriefUsesAbbrevs) {
  const RingInstance r(protocols::matching_skeleton(), 3);
  const GlobalStateId s = r.encode(std::vector<Value>{0, 1, 2});
  EXPECT_EQ(r.brief(s), "lrs");
}

TEST(RingInstance, ScheduleFromPathRejectsNonComputations) {
  const RingInstance r(protocols::agreement_both(), 3);
  const GlobalStateId a = r.encode(std::vector<Value>{0, 0, 0});
  const GlobalStateId b = r.encode(std::vector<Value>{1, 1, 1});
  const std::vector<GlobalStateId> path{a, b};
  EXPECT_THROW(schedule_from_path(r, path), ModelError);
}

}  // namespace
}  // namespace ringstab
