#include "core/ast.hpp"

#include <gtest/gtest.h>

namespace ringstab {
namespace {

// A concrete view to evaluate expressions against: domain {0,1,2},
// window (x[-1], x[0]).
struct Fixture {
  LocalStateSpace space{Domain::range(3), Locality{1, 0}};
  LocalStateId state;
  Fixture(Value prev, Value self)
      : state(space.encode(std::vector<Value>{prev, self})) {}
  LocalView view() const { return LocalView(space, state); }
};

TEST(Ast, LiteralsAndVariables) {
  const Fixture f(2, 1);
  EXPECT_EQ(Expr::literal(42)->eval(f.view()), 42);
  EXPECT_EQ(Expr::var(-1)->eval(f.view()), 2);
  EXPECT_EQ(Expr::var(0)->eval(f.view()), 1);
}

TEST(Ast, DomainNamesResolveThroughView) {
  const LocalStateSpace space(Domain::named({"left", "right", "self"}),
                              {1, 0});
  const LocalView view(space, 0);
  EXPECT_EQ(Expr::domain_name("right")->eval(view), 1);
  EXPECT_THROW(Expr::domain_name("wat")->eval(view), ParseError);
}

TEST(Ast, Arithmetic) {
  const Fixture f(2, 1);
  auto bin = [](const char* op, long long a, long long b) {
    return Expr::binary(op, Expr::literal(a), Expr::literal(b));
  };
  EXPECT_EQ(bin("+", 3, 4)->eval(Fixture(0, 0).view()), 7);
  EXPECT_EQ(bin("-", 3, 4)->eval(f.view()), -1);
  EXPECT_EQ(bin("*", 3, 4)->eval(f.view()), 12);
  EXPECT_EQ(bin("/", 9, 4)->eval(f.view()), 2);
  EXPECT_EQ(bin("%", 7, 3)->eval(f.view()), 1);
}

TEST(Ast, ModuloIsMathematical) {
  // (x - 1) % 3 must wrap negatives into the domain: (0-1) % 3 == 2.
  const Fixture f(0, 0);
  auto e = Expr::binary("%", Expr::binary("-", Expr::var(0),
                                          Expr::literal(1)),
                        Expr::literal(3));
  EXPECT_EQ(e->eval(f.view()), 2);
}

TEST(Ast, DivisionByZeroThrows) {
  const Fixture f(0, 0);
  EXPECT_THROW(
      Expr::binary("/", Expr::literal(1), Expr::literal(0))->eval(f.view()),
      ParseError);
  EXPECT_THROW(
      Expr::binary("%", Expr::literal(1), Expr::literal(0))->eval(f.view()),
      ParseError);
}

TEST(Ast, Comparisons) {
  const Fixture f(2, 1);
  auto cmp = [&](const char* op) {
    return Expr::binary(op, Expr::var(-1), Expr::var(0))->eval(f.view());
  };
  EXPECT_EQ(cmp("=="), 0);
  EXPECT_EQ(cmp("!="), 1);
  EXPECT_EQ(cmp("<"), 0);
  EXPECT_EQ(cmp(">"), 1);
  EXPECT_EQ(cmp("<="), 0);
  EXPECT_EQ(cmp(">="), 1);
}

TEST(Ast, LogicalShortCircuit) {
  const Fixture f(0, 0);
  // (1 || crash) must not evaluate the crash; same for (0 && crash).
  auto crash = Expr::binary("/", Expr::literal(1), Expr::literal(0));
  EXPECT_EQ(Expr::binary("||", Expr::literal(1), std::move(crash))
                ->eval(f.view()),
            1);
  auto crash2 = Expr::binary("/", Expr::literal(1), Expr::literal(0));
  EXPECT_EQ(Expr::binary("&&", Expr::literal(0), std::move(crash2))
                ->eval(f.view()),
            0);
}

TEST(Ast, UnaryOperators) {
  const Fixture f(0, 0);
  EXPECT_EQ(Expr::unary("-", Expr::literal(5))->eval(f.view()), -5);
  EXPECT_EQ(Expr::unary("!", Expr::literal(5))->eval(f.view()), 0);
  EXPECT_EQ(Expr::unary("!", Expr::literal(0))->eval(f.view()), 1);
}

TEST(Ast, ToStringRoundTripsStructure) {
  auto e = Expr::binary(
      "&&", Expr::binary("==", Expr::var(-1), Expr::literal(1)),
      Expr::unary("!", Expr::var(0)));
  EXPECT_EQ(e->to_string(), "((x[-1] == 1) && !x[0])");
}

}  // namespace
}  // namespace ringstab
