#include "core/parser.hpp"

#include <gtest/gtest.h>

#include "core/lexer.hpp"
#include "protocols/agreement.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

TEST(Lexer, TokenizesOperators) {
  const auto toks = lex("x[0] := (a != 1) && b || !c;");
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected{
      TokenKind::kIdent, TokenKind::kLBracket, TokenKind::kInt,
      TokenKind::kRBracket, TokenKind::kAssign, TokenKind::kLParen,
      TokenKind::kIdent, TokenKind::kNe, TokenKind::kInt, TokenKind::kRParen,
      TokenKind::kAndAnd, TokenKind::kIdent, TokenKind::kOrOr,
      TokenKind::kNot, TokenKind::kIdent, TokenKind::kSemi, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  bb");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, SkipsComments) {
  const auto toks = lex("a # comment with -> symbols\nb");
  EXPECT_EQ(toks.size(), 3u);  // a, b, EOF
}

TEST(Lexer, RejectsGarbage) { EXPECT_THROW(lex("a @ b"), ParseError); }

TEST(Lexer, RejectsHugeIntegers) {
  EXPECT_THROW(lex("99999999999999999999"), ParseError);
}

constexpr const char* kAgreement = R"(
# binary agreement on a unidirectional ring
protocol agreement_both;
domain 2;
reads -1 .. 0;
legit: x[-1] == x[0];
action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1;
action t10: x[-1] == 0 && x[0] == 1 -> x[0] := 0;
)";

TEST(Parser, AgreementMatchesBuiltin) {
  const Protocol parsed = parse_protocol(kAgreement);
  const Protocol built = protocols::agreement_both();
  EXPECT_EQ(parsed.delta(), built.delta());
  EXPECT_EQ(parsed.legit_mask(), built.legit_mask());
  EXPECT_EQ(parsed.name(), "agreement_both");
}

TEST(Parser, NamedDomainAndValueNames) {
  const Protocol p = parse_protocol(R"(
protocol m;
domain left, right, self;
reads -1 .. 1;
legit: (x[0] == right && x[1] == left)
    || (x[-1] == right && x[0] == left)
    || (x[-1] == left && x[0] == self && x[1] == right);
)");
  EXPECT_EQ(p.domain().size(), 3u);
  EXPECT_EQ(p.num_states(), 27u);
  EXPECT_EQ(p.num_legit(), 7u);  // matches the matching skeleton LC count
}

TEST(Parser, ArithmeticAndModulo) {
  const Protocol p = parse_protocol(R"(
protocol snt;
domain 3;
reads -1 .. 0;
legit: x[-1] + x[0] != 2;
action: x[-1] + x[0] == 2 && x[0] != 2 -> x[0] := (x[0] + 1) % 3;
action: x[-1] + x[0] == 2 && x[0] == 2 -> x[0] := (x[0] - 1) % 3;
)");
  const Protocol built = protocols::sum_not_two_solution();
  EXPECT_EQ(p.delta(), built.delta());
  EXPECT_EQ(p.legit_mask(), built.legit_mask());
}

TEST(Parser, NondeterministicAssignment) {
  const Protocol p = parse_protocol(R"(
protocol nd;
domain 3;
reads -1 .. 0;
legit: x[0] != 0;
action: x[0] == 0 && x[-1] == 0 -> x[0] := 1 | x[0] := 2;
)");
  EXPECT_EQ(p.delta().size(), 2u);
}

TEST(Parser, AnonymousActionsGetLabels) {
  EXPECT_NO_THROW(parse_protocol(R"(
protocol a; domain 2; reads -1 .. 0; legit: 1;
action: x[0] == 0 && x[-1] == 1 -> x[0] := 1;
)"));
}

TEST(Parser, MissingDeclarationsThrow) {
  EXPECT_THROW(parse_protocol("protocol p; domain 2; reads -1 .. 0;"),
               ParseError);
  EXPECT_THROW(parse_protocol("domain 2; reads -1 .. 0; legit: 1;"),
               ParseError);
  EXPECT_THROW(parse_protocol("protocol p; reads -1 .. 0; legit: 1;"),
               ParseError);
}

TEST(Parser, ReadRangeMustIncludeZero) {
  EXPECT_THROW(parse_protocol("protocol p; domain 2; reads 1 .. 2; legit: 1;"),
               ParseError);
}

TEST(Parser, OnlySelfIsWritable) {
  EXPECT_THROW(parse_protocol(R"(
protocol p; domain 2; reads -1 .. 0; legit: 1;
action: x[0] == 0 -> x[-1] := 1;
)"),
               ParseError);
}

TEST(Parser, UnknownDomainValueThrowsAtBuild) {
  EXPECT_THROW(parse_protocol(R"(
protocol p; domain left, right; reads -1 .. 0;
legit: x[0] == wat;
)"),
               ParseError);
}

TEST(Parser, AssignmentOutsideDomainThrows) {
  EXPECT_THROW(parse_protocol(R"(
protocol p; domain 2; reads -1 .. 0; legit: 1;
action: x[0] == 0 && x[-1] == 0 -> x[0] := 5;
)"),
               ParseError);
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 2 == 5 must parse as 1 + (2*2); guard true everywhere → all
  // states with x0=0 fire.
  const Protocol p = parse_protocol(R"(
protocol p; domain 2; reads -1 .. 0; legit: 0;
action: 1 + 2 * 2 == 5 && x[0] == 0 -> x[0] := 1;
)");
  EXPECT_EQ(p.delta().size(), 2u);
}

TEST(Parser, ComparisonOfExpressions) {
  const Protocol p = parse_protocol(R"(
protocol p; domain 3; reads -1 .. 0; legit: x[-1] <= x[0];
)");
  // pairs with x[-1] <= x[0]: 6 of 9.
  EXPECT_EQ(p.num_legit(), 6u);
}

}  // namespace
}  // namespace ringstab
