#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

TEST(Simulator, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(protocols::agreement_one_sided(true), 8, seed);
    sim.randomize();
    std::vector<Value> initial = sim.state();
    auto result = sim.run_to_convergence();
    return std::make_tuple(initial, sim.state(), result.steps);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<0>(run(5)), std::get<0>(run(6)));
}

TEST(Simulator, SetStateValidates) {
  Simulator sim(protocols::agreement_both(), 4);
  EXPECT_THROW(sim.set_state({0, 1}), ModelError);
  EXPECT_THROW(sim.set_state({0, 1, 2, 3}), ModelError);
  EXPECT_NO_THROW(sim.set_state({0, 1, 0, 1}));
  EXPECT_EQ(sim.state(), (std::vector<Value>{0, 1, 0, 1}));
}

TEST(Simulator, InvariantAndDeadlockQueries) {
  Simulator sim(protocols::agreement_one_sided(true), 3);
  sim.set_state({1, 1, 1});
  EXPECT_TRUE(sim.in_invariant());
  EXPECT_TRUE(sim.deadlocked());
  sim.set_state({1, 0, 0});
  EXPECT_FALSE(sim.in_invariant());
  EXPECT_FALSE(sim.deadlocked());
}

TEST(Simulator, StepFollowsProtocol) {
  Simulator sim(protocols::agreement_one_sided(true), 3);
  sim.set_state({1, 0, 0});
  const auto step = sim.step();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->process, 1u);  // the only enabled process
  EXPECT_EQ(sim.state(), (std::vector<Value>{1, 1, 0}));
  EXPECT_FALSE(Simulator(protocols::agreement_empty(), 3).step().has_value());
}

TEST(Simulator, ConvergesOnStabilizingProtocols) {
  for (std::size_t k : {3u, 6u, 12u, 25u}) {
    Simulator sim(protocols::sum_not_two_solution(), k, 11);
    for (int trial = 0; trial < 20; ++trial) {
      sim.randomize();
      const auto run = sim.run_to_convergence(100000);
      EXPECT_TRUE(run.converged) << "K=" << k;
      EXPECT_TRUE(sim.in_invariant());
    }
  }
}

TEST(Simulator, ReportsDeadlockOutsideI) {
  Simulator sim(protocols::agreement_empty(), 4);
  sim.set_state({0, 1, 0, 1});
  const auto run = sim.run_to_convergence(100);
  EXPECT_FALSE(run.converged);
  EXPECT_TRUE(run.deadlocked_outside_i);
}

TEST(Simulator, FaultInjectionPerturbsAtMostCount) {
  Simulator sim(protocols::agreement_one_sided(true), 10, 3);
  sim.set_state(std::vector<Value>(10, 1));
  sim.inject_faults(3);
  std::size_t changed = 0;
  for (Value v : sim.state())
    if (v != 1) ++changed;
  EXPECT_LE(changed, 3u);
}

TEST(Simulator, RecoversFromInjectedFaults) {
  Simulator sim(protocols::sum_not_two_solution(), 15, 9);
  sim.set_state(std::vector<Value>(15, 0));
  ASSERT_TRUE(sim.in_invariant());
  for (int round = 0; round < 10; ++round) {
    sim.inject_faults(4);
    const auto run = sim.run_to_convergence(100000);
    EXPECT_TRUE(run.converged);
  }
}

TEST(Simulator, MeasureConvergenceAggregates) {
  const auto stats =
      measure_convergence(protocols::agreement_one_sided(true), 8, 50, 21);
  EXPECT_EQ(stats.trials, 50u);
  EXPECT_EQ(stats.converged + stats.failed, 50u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LE(stats.mean_steps, static_cast<double>(stats.max_steps));
  EXPECT_LE(stats.max_steps, 7u);  // worst case K-1
}

TEST(Simulator, NonConvergingProtocolCanFail) {
  // Empty coloring deadlocks outside I immediately from a bad state.
  const auto stats = measure_convergence(protocols::agreement_empty(), 6, 50, 2,
                                         1000);
  EXPECT_GT(stats.failed, 0u);
}

}  // namespace
}  // namespace ringstab
