// Property-based cross-validation: the local theorems vs. exhaustive global
// model checking on randomly generated protocols.
#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "local/closure.hpp"
#include "local/deadlock.hpp"
#include "local/livelock.hpp"
#include "local/rcg.hpp"

namespace ringstab {
namespace {

class RandomProtocolTest : public ::testing::TestWithParam<std::uint64_t> {};

// Theorem 4.2 is an iff: the walk spectrum must agree exactly with global
// deadlock checking at every sampled K.
TEST_P(RandomProtocolTest, DeadlockSpectrumMatchesGlobal) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 8; ++i) {
    const Protocol p = testing::random_protocol(rng);
    const auto res = analyze_deadlocks(p, 7);
    for (std::size_t k = 2; k <= 7; ++k)
      EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
          << p.name() << " K=" << k << " (domain " << p.domain().size()
          << ", " << p.delta().size() << " transitions)";
  }
}

// Theorem 5.14 soundness: if the trail search certifies livelock-freedom,
// the global checker must find no livelock at any sampled K.
TEST_P(RandomProtocolTest, LivelockFreeVerdictIsSound) {
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 8; ++i) {
    const Protocol p = testing::random_protocol(rng);
    const auto res = check_livelock_freedom(p);
    if (res.verdict != LivelockAnalysis::Verdict::kLivelockFree) continue;
    for (std::size_t k = 2; k <= 7; ++k)
      EXPECT_FALSE(testing::global_has_livelock(p, k))
          << p.name() << " K=" << k;
  }
}

// Completeness direction (empirical, unidirectional): when a global livelock
// exists at some K ≤ 6, the trail search must find a qualifying trail.
// This validates the formalization of Lemma 5.12's trail shape.
TEST_P(RandomProtocolTest, GlobalLivelockImpliesTrailFound) {
  std::mt19937_64 rng(GetParam() ^ 0xdeadbeefcafef00dull);
  for (int i = 0; i < 8; ++i) {
    const Protocol p = testing::random_protocol(rng);
    bool livelocks = false;
    for (std::size_t k = 2; k <= 6 && !livelocks; ++k)
      livelocks = testing::global_has_livelock(p, k);
    if (!livelocks) continue;
    const auto res = check_livelock_freedom(p);
    EXPECT_NE(res.verdict, LivelockAnalysis::Verdict::kLivelockFree)
        << p.name() << " has a real livelock but was certified free";
  }
}

// Closure-check soundness: local kClosed ⇒ global closure at sampled K.
TEST_P(RandomProtocolTest, ClosureCheckIsSound) {
  std::mt19937_64 rng(GetParam() ^ 0x12345678ull);
  for (int i = 0; i < 8; ++i) {
    const Protocol p = testing::random_protocol(rng);
    if (check_invariant_closure(p).verdict != ClosureCheck::Verdict::kClosed)
      continue;
    for (std::size_t k = 3; k <= 6; ++k) {
      const RingInstance ring(p, k);
      EXPECT_TRUE(GlobalChecker(ring).check_closure())
          << p.name() << " K=" << k;
    }
  }
}

// Witness construction: whenever the spectrum says K is deadlocked, the
// constructed witness ring must check out globally.
TEST_P(RandomProtocolTest, DeadlockWitnessesVerify) {
  std::mt19937_64 rng(GetParam() ^ 0x5555aaaaull);
  for (int i = 0; i < 8; ++i) {
    const Protocol p = testing::random_protocol(rng);
    const auto res = analyze_deadlocks(p, 6);
    for (std::size_t k = 2; k <= 6; ++k) {
      if (!res.size_spectrum.at(k)) continue;
      if (k < static_cast<std::size_t>(p.locality().window())) continue;
      const auto ring = deadlock_witness_ring(p, k);
      ASSERT_TRUE(ring.has_value()) << p.name() << " K=" << k;
      const RingInstance inst(p, k);
      const GlobalStateId s = inst.encode(*ring);
      EXPECT_TRUE(inst.is_deadlock(s));
      EXPECT_FALSE(inst.in_invariant(s));
    }
  }
}

// Random bidirectional protocols: Theorem 4.2 (deadlock) still exact.
TEST_P(RandomProtocolTest, BidirectionalDeadlockSpectrumMatchesGlobal) {
  std::mt19937_64 rng(GetParam() ^ 0xabcdefull);
  testing::RandomProtocolOptions opts;
  opts.allow_bidirectional = true;
  opts.max_domain = 2;  // keep the global spaces small
  for (int i = 0; i < 6; ++i) {
    const Protocol p = testing::random_protocol(rng, opts);
    const auto res = analyze_deadlocks(p, 7);
    const std::size_t kmin =
        static_cast<std::size_t>(p.locality().window());
    for (std::size_t k = std::max<std::size_t>(3, kmin); k <= 7; ++k)
      EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
          << p.name() << " K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocolTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace ringstab
