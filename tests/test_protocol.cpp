#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace ringstab {
namespace {

LocalStateSpace small_space() {
  return LocalStateSpace(Domain::range(2), {1, 0});
}

std::vector<bool> half_legit() { return {true, false, true, false}; }

TEST(Protocol, SortsAndDeduplicatesDelta) {
  const auto space = small_space();
  // States (x[-1], x[0]): id = x[-1] + 2*x[0].
  const LocalStateId s01 = space.encode(std::vector<Value>{0, 1});
  const LocalStateId s00 = space.encode(std::vector<Value>{0, 0});
  const Protocol p("t", space, {{s01, s00}, {s01, s00}}, half_legit());
  EXPECT_EQ(p.delta().size(), 1u);
}

TEST(Protocol, RejectsWrongMaskSize) {
  EXPECT_THROW(Protocol("t", small_space(), {}, {true}), ModelError);
}

TEST(Protocol, RejectsStutter) {
  EXPECT_THROW(Protocol("t", small_space(), {{0, 0}}, half_legit()),
               ModelError);
}

TEST(Protocol, RejectsNonSelfWrite) {
  const auto space = small_space();
  const LocalStateId a = space.encode(std::vector<Value>{0, 0});
  const LocalStateId b = space.encode(std::vector<Value>{1, 0});  // x[-1] flip
  EXPECT_THROW(Protocol("t", space, {{a, b}}, half_legit()), ModelError);
}

TEST(Protocol, RejectsOutOfRangeState) {
  EXPECT_THROW(Protocol("t", small_space(), {{0, 99}}, half_legit()),
               ModelError);
}

TEST(Protocol, EnabledAndDeadlock) {
  const auto space = small_space();
  const LocalStateId s01 = space.encode(std::vector<Value>{0, 1});
  const LocalStateId s00 = space.encode(std::vector<Value>{0, 0});
  const Protocol p("t", space, {{s01, s00}}, half_legit());
  EXPECT_TRUE(p.is_enabled(s01));
  EXPECT_TRUE(p.is_deadlock(s00));
  EXPECT_EQ(p.local_deadlocks().size(), 3u);
}

TEST(Protocol, TransitionsFromIsContiguous) {
  const auto space = LocalStateSpace(Domain::range(3), {1, 0});
  const LocalStateId s = space.encode(std::vector<Value>{0, 0});
  std::vector<LocalTransition> delta{{s, space.with_self(s, 1)},
                                     {s, space.with_self(s, 2)}};
  const Protocol p("t", space, delta, std::vector<bool>(space.size(), false));
  const auto from = p.transitions_from(s);
  EXPECT_EQ(from.size(), 2u);
  EXPECT_EQ(p.index_of(from[0]), 0u);
  EXPECT_EQ(p.index_of(from[1]), 1u);
}

TEST(Protocol, IllegitimateDeadlocks) {
  const auto space = small_space();
  const Protocol p("t", space, {}, half_legit());
  EXPECT_EQ(p.illegitimate_deadlocks().size(), 2u);
  EXPECT_EQ(p.local_deadlocks().size(), 4u);
  EXPECT_EQ(p.num_legit(), 2u);
}

TEST(Protocol, WithAddedExtendsDelta) {
  const auto space = small_space();
  const LocalStateId s01 = space.encode(std::vector<Value>{0, 1});
  const LocalStateId s00 = space.encode(std::vector<Value>{0, 0});
  const Protocol p("t", space, {}, half_legit());
  const Protocol q = p.with_added("t2", {{s01, s00}});
  EXPECT_EQ(q.delta().size(), 1u);
  EXPECT_EQ(q.name(), "t2");
  EXPECT_EQ(p.delta().size(), 0u) << "original must be untouched";
  EXPECT_EQ(q.legit_mask(), p.legit_mask());
}

// Zoo-wide invariants.
class ProtocolZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProtocolZooTest, DeltaIsSortedUniqueAndSelfWriting) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const auto& d = p.delta();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(d[i - 1], d[i]);
    }
    EXPECT_NE(d[i].from, d[i].to);
    EXPECT_EQ(p.space().with_self(d[i].from, p.space().self(d[i].to)),
              d[i].to);
    EXPECT_EQ(p.index_of(d[i]), i);
  }
}

TEST_P(ProtocolZooTest, DeadlockPartition) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  std::size_t enabled = 0;
  for (LocalStateId s = 0; s < p.num_states(); ++s) {
    EXPECT_NE(p.is_enabled(s), p.is_deadlock(s));
    if (p.is_enabled(s)) ++enabled;
  }
  EXPECT_EQ(enabled + p.local_deadlocks().size(), p.num_states());
}

INSTANTIATE_TEST_SUITE_P(Zoo, ProtocolZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

}  // namespace
}  // namespace ringstab
