#include "helpers.hpp"

#include "core/fmt.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab::testing {

std::vector<Protocol> protocol_zoo() {
  std::vector<Protocol> zoo;
  zoo.push_back(protocols::matching_skeleton());
  zoo.push_back(protocols::matching_generalizable());
  zoo.push_back(protocols::matching_nongeneralizable());
  zoo.push_back(protocols::matching_nongeneralizable_fixed());
  zoo.push_back(protocols::matching_gouda_acharya_fragment());
  zoo.push_back(protocols::agreement_empty());
  zoo.push_back(protocols::agreement_both());
  zoo.push_back(protocols::agreement_one_sided(true));
  zoo.push_back(protocols::agreement_one_sided(false));
  zoo.push_back(protocols::agreement_max(3));
  zoo.push_back(protocols::coloring_empty(2));
  zoo.push_back(protocols::coloring_empty(3));
  zoo.push_back(protocols::three_coloring_rotation());
  zoo.push_back(protocols::sum_not_two_empty());
  zoo.push_back(protocols::sum_not_two_solution());
  zoo.push_back(protocols::sum_not_two_rotation(true));
  zoo.push_back(protocols::sum_not_two_rotation(false));
  zoo.push_back(protocols::no_adjacent_ones_empty());
  zoo.push_back(protocols::no_adjacent_ones_solution());
  zoo.push_back(protocols::alternator_empty());
  return zoo;
}

Protocol random_protocol(std::mt19937_64& rng,
                         const RandomProtocolOptions& opts) {
  std::uniform_int_distribution<std::size_t> dsize(2, opts.max_domain);
  const std::size_t d = dsize(rng);
  Locality loc{1, 0};
  if (opts.allow_bidirectional && (rng() & 1)) loc = Locality{1, 1};
  const LocalStateSpace space(Domain::range(d), loc);

  std::bernoulli_distribution legit_coin(opts.legit_density);
  std::vector<bool> legit(space.size(), false);
  // Ensure at least one legit and one illegitimate state.
  while (true) {
    std::size_t count = 0;
    for (std::size_t s = 0; s < space.size(); ++s) {
      legit[s] = legit_coin(rng);
      if (legit[s]) ++count;
    }
    if (count > 0 && count < space.size()) break;
  }

  std::bernoulli_distribution fire(opts.transition_density);
  std::uniform_int_distribution<std::size_t> pick_value(0, d - 1);
  std::vector<LocalTransition> delta;
  // Keep the protocol self-disabling by construction: only illegitimate
  // states fire, and targets are chosen arbitrarily but the final pass
  // reroutes enabled targets (mirrors the paper's Assumption 2 setting).
  for (LocalStateId s = 0; s < space.size(); ++s) {
    if (legit[s]) continue;
    if (!fire(rng)) continue;
    Value v = static_cast<Value>(pick_value(rng));
    if (v == space.self(s)) v = static_cast<Value>((v + 1) % d);
    delta.push_back({s, space.with_self(s, v)});
  }
  // Reroute transitions whose target is itself a source (enabled).
  std::vector<bool> is_source(space.size(), false);
  for (const auto& t : delta) is_source[t.from] = true;
  for (auto& t : delta) {
    int guard = 0;
    while (is_source[t.to] && guard++ < 8) {
      const Value v =
          static_cast<Value>((space.self(t.to) + 1) % d);
      const LocalStateId cand = space.with_self(t.from, v);
      if (cand == t.from) break;
      t.to = cand;
    }
  }
  delta.erase(std::remove_if(delta.begin(), delta.end(),
                             [&](const LocalTransition& t) {
                               return is_source[t.to] || t.from == t.to;
                             }),
              delta.end());
  static int counter = 0;
  return Protocol(cat("random", counter++), space, std::move(delta),
                  std::move(legit));
}

bool global_has_deadlock(const Protocol& p, std::size_t k) {
  const RingInstance ring(p, k);
  return GlobalChecker(ring).count_deadlocks_outside_invariant() > 0;
}

bool global_has_livelock(const Protocol& p, std::size_t k) {
  const RingInstance ring(p, k);
  return GlobalChecker(ring).find_livelock().has_value();
}

}  // namespace ringstab::testing
