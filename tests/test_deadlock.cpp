#include "local/deadlock.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

// Example 4.2: the generalizable matching protocol is deadlock-free for
// every K (paper model-checked K = 5..8).
TEST(Deadlock, MatchingGeneralizableIsFreeForAllK) {
  const Protocol p = protocols::matching_generalizable();
  const auto res = analyze_deadlocks(p);
  EXPECT_TRUE(res.deadlock_free_all_k);
  EXPECT_TRUE(res.bad_cycles.empty());
  EXPECT_TRUE(res.deadlocked_sizes().empty());
  for (std::size_t k = 2; k <= 8; ++k)
    EXPECT_FALSE(testing::global_has_deadlock(p, k)) << "K=" << k;
}

// Example 4.3 / Figure 3: cycles of length 4 and 6 through ⟨l,l,s⟩.
TEST(Deadlock, MatchingNonGeneralizableBadCycles) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 12);
  EXPECT_FALSE(res.deadlock_free_all_k);

  const auto& space = p.space();
  const LocalStateId lls =
      space.encode(std::vector<Value>{0, 0, 2});  // ⟨left,left,self⟩
  std::vector<std::size_t> lengths;
  bool lls_on_all = true;
  for (const auto& c : res.bad_cycles) {
    lengths.push_back(c.size());
    if (std::find(c.begin(), c.end(), lls) == c.end()) lls_on_all = false;
  }
  std::sort(lengths.begin(), lengths.end());
  EXPECT_EQ(lengths, (std::vector<std::size_t>{4, 6}));
  EXPECT_TRUE(lls_on_all) << "both cycles include ⟨left,left,self⟩";
}

// The walk spectrum must agree with exhaustive global checking — including
// K=5 (clean, paper's synthesis size) and K=7 (deadlocked, a size the
// paper's "multiples of 4 or 6" claim misses).
TEST(Deadlock, MatchingNonGeneralizableSpectrumMatchesGlobal) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 9);
  for (std::size_t k = 3; k <= 9; ++k)
    EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
        << "K=" << k;
  EXPECT_FALSE(res.size_spectrum.at(5));
  EXPECT_TRUE(res.size_spectrum.at(4));
  EXPECT_TRUE(res.size_spectrum.at(6));
  EXPECT_TRUE(res.size_spectrum.at(7));
}

TEST(Deadlock, WitnessRingsAreRealDeadlocks) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 12);
  for (std::size_t k : res.deadlocked_sizes()) {
    if (k > 10) break;
    const auto ring = deadlock_witness_ring(p, k);
    ASSERT_TRUE(ring.has_value()) << "K=" << k;
    // Verify against the global instance: encode and check.
    const RingInstance inst(p, k);
    const GlobalStateId s = inst.encode(*ring);
    EXPECT_TRUE(inst.is_deadlock(s));
    EXPECT_FALSE(inst.in_invariant(s));
  }
}

TEST(Deadlock, WitnessForCleanSizeIsEmpty) {
  const Protocol p = protocols::matching_nongeneralizable();
  EXPECT_FALSE(deadlock_witness_ring(p, 5).has_value());
}

// The empty agreement protocol deadlocks everywhere outside I; the one-sided
// solution is deadlock-free for all K.
TEST(Deadlock, AgreementVariants) {
  EXPECT_FALSE(analyze_deadlocks(protocols::agreement_empty())
                   .deadlock_free_all_k);
  EXPECT_TRUE(analyze_deadlocks(protocols::agreement_one_sided(true))
                  .deadlock_free_all_k);
  EXPECT_TRUE(analyze_deadlocks(protocols::agreement_one_sided(false))
                  .deadlock_free_all_k);
  EXPECT_TRUE(analyze_deadlocks(protocols::agreement_both())
                  .deadlock_free_all_k);
}

// Empty coloring protocols deadlock at every size ≥ window (monochromatic
// rings), and the spectrum says so.
TEST(Deadlock, EmptyColoringSpectrumIsAllSizes) {
  const Protocol p = protocols::coloring_empty(3);
  const auto res = analyze_deadlocks(p, 10);
  EXPECT_FALSE(res.deadlock_free_all_k);
  for (std::size_t k = 2; k <= 10; ++k) {
    EXPECT_TRUE(res.size_spectrum.at(k)) << k;
    EXPECT_EQ(testing::global_has_deadlock(p, k), true) << k;
  }
}

// Theorem 4.2 cross-validation over the whole zoo: the local verdict's size
// spectrum must match global checking for K = 2..7.
class DeadlockZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeadlockZooTest, SpectrumMatchesGlobalChecking) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const auto res = analyze_deadlocks(p, 7);
  for (std::size_t k = 3; k <= 7; ++k) {
    EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
        << p.name() << " K=" << k;
  }
  if (res.deadlock_free_all_k) {
    EXPECT_TRUE(res.deadlocked_sizes().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, DeadlockZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

}  // namespace
}  // namespace ringstab
