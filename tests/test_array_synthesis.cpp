#include "synthesis/array_synthesizer.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "global/array_instance.hpp"
#include "helpers.hpp"
#include "protocols/arrays.hpp"

namespace ringstab {
namespace {

// Strip a protocol's transitions, keeping domain/locality/legitimacy.
Protocol empty_input(const Protocol& p, const std::string& name) {
  return p.with_delta(name, {});
}

// Synthesizing from the empty 2-coloring array input recovers exactly the
// flip protocol — the problem that is IMPOSSIBLE on unidirectional rings.
TEST(ArraySynthesis, TwoColoringSynthesizesTheFlipProtocol) {
  const Protocol input =
      empty_input(protocols::array_two_coloring(), "a2c_in");
  const auto res = synthesize_array_convergence(input);
  ASSERT_TRUE(res.success);
  ASSERT_EQ(res.resolve_sets.size(), 1u);
  EXPECT_EQ(res.resolve_sets[0].size(), 2u);  // {00, 11}
  ASSERT_EQ(res.solutions.size(), 1u);
  EXPECT_EQ(res.solutions[0].protocol.delta(),
            protocols::array_two_coloring().delta());
}

TEST(ArraySynthesis, AgreementSynthesizesCopy) {
  const Protocol input =
      empty_input(protocols::array_agreement(2), "a_agree_in");
  const auto res = synthesize_array_convergence(input);
  ASSERT_TRUE(res.success);
  ASSERT_EQ(res.solutions.size(), 1u);
  EXPECT_EQ(res.solutions[0].protocol.delta(),
            protocols::array_agreement(2).delta());
}

// Every synthesized solution is exhaustively verified: deadlock-free,
// livelock-free and terminating at all sampled lengths.
TEST(ArraySynthesis, SolutionsVerifyExhaustively) {
  for (const Protocol& base :
       {protocols::array_agreement(3), protocols::array_sort(3),
        protocols::array_two_coloring()}) {
    const Protocol input = empty_input(base, base.name() + "_in");
    const auto res = synthesize_array_convergence(input);
    ASSERT_TRUE(res.success) << base.name();
    for (const auto& sol : res.solutions) {
      for (std::size_t n = 2; n <= 7; ++n) {
        const auto check = check_array(ArrayInstance(sol.protocol, n));
        EXPECT_EQ(check.num_deadlocks_outside_i, 0u)
            << base.name() << " n=" << n;
        EXPECT_FALSE(check.has_livelock) << base.name() << " n=" << n;
        EXPECT_TRUE(check.terminates) << base.name() << " n=" << n;
      }
    }
  }
}

TEST(ArraySynthesis, AddedTransitionsOnlyAtIllegitimateDeadlocks) {
  const Protocol input =
      empty_input(protocols::array_sort(3), "a_sort_in");
  const auto res = synthesize_array_convergence(input);
  ASSERT_TRUE(res.success);
  for (const auto& sol : res.solutions)
    for (const auto& t : sol.added) {
      EXPECT_FALSE(input.is_legit(t.from));
      EXPECT_TRUE(input.is_deadlock(t.from));
    }
}

TEST(ArraySynthesis, RejectsBidirectionalInputs) {
  ProtocolBuilder b("bidi", Domain::named({"0", "B"}), Locality{1, 1});
  b.legitimate([](const LocalView&) { return true; });
  EXPECT_THROW(synthesize_array_convergence(b.build()), ModelError);
}

TEST(ArraySynthesis, RejectsNonClosedInvariant) {
  // Legit everywhere except (0,1); transition 00→01 jumps from I into ¬I.
  ProtocolBuilder b("leaky", Domain::named({"0", "1", "B"}), Locality{1, 0});
  b.legitimate([](const LocalView& v) {
    return !(v[-1] == 0 && v[0] == 1);
  });
  b.action("leak", [](const LocalView& v) { return v[-1] == 0 && v[0] == 0; },
           [](const LocalView&) { return Value{1}; });
  EXPECT_THROW(synthesize_array_convergence(b.build()), ModelError);
}

// Already-converging input: the empty addition is the unique solution.
TEST(ArraySynthesis, ConvergingInputYieldsItself) {
  const auto res =
      synthesize_array_convergence(protocols::array_two_coloring());
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(res.solutions[0].added.empty());
}

}  // namespace
}  // namespace ringstab
