#include "local/trail.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

// Structural sanity of any returned trail: pattern, arc validity, arc
// distinctness, closure.
void expect_well_formed(const Ltg& ltg, const ContiguousTrail& trail) {
  const Protocol& p = ltg.protocol();
  const int e = trail.num_enabled;
  const int pp = trail.propagation;
  const int round_len = (e - 1) + 2 * pp;
  ASSERT_GE(e, 1);
  ASSERT_GE(pp, 1);
  ASSERT_FALSE(trail.steps.empty());
  EXPECT_EQ(trail.steps.size() % static_cast<std::size_t>(round_len), 0u);
  EXPECT_EQ(trail.rounds,
            static_cast<int>(trail.steps.size()) / round_len);
  EXPECT_EQ(trail.steps.back().to, trail.steps.front().from) << "closed";

  std::vector<bool> used_t(p.delta().size(), false);
  std::vector<bool> used_s(ltg.num_s_arc_ids(), false);
  for (std::size_t i = 0; i < trail.steps.size(); ++i) {
    const auto& st = trail.steps[i];
    if (i > 0) {
      EXPECT_EQ(st.from, trail.steps[i - 1].to) << "connected";
    }
    const int phase = static_cast<int>(i % static_cast<std::size_t>(round_len));
    const bool should_be_t = phase >= e - 1 && ((phase - (e - 1)) % 2 == 0);
    EXPECT_EQ(st.is_t, should_be_t) << "pattern at step " << i;
    if (st.is_t) {
      ASSERT_LT(st.t_arc_index, p.delta().size());
      EXPECT_EQ(p.delta()[st.t_arc_index],
                (LocalTransition{st.from, st.to}));
      EXPECT_FALSE(used_t[st.t_arc_index]) << "t-arc repeated";
      used_t[st.t_arc_index] = true;
    } else {
      EXPECT_TRUE(p.space().right_continues(st.from, st.to));
      const std::size_t sid = ltg.s_arc_id(st.from, st.to);
      EXPECT_FALSE(used_s[sid]) << "s-arc repeated";
      used_s[sid] = true;
    }
  }
}

// Agreement with both transitions: the paper's (s,t,s)² trail with |E|=2,
// P=1 exists (Section 6.2, Figure 10 discussion).
TEST(Trail, AgreementBothHasPaperTrail) {
  const Ltg ltg(protocols::agreement_both());
  const auto res = find_contiguous_trail(ltg);
  ASSERT_EQ(res.status, TrailSearchStatus::kTrailFound);
  EXPECT_EQ(res.trail->num_enabled, 2);
  EXPECT_EQ(res.trail->propagation, 1);
  EXPECT_EQ(res.trail->implied_ring_size(), 3);
  expect_well_formed(ltg, *res.trail);
}

// One-sided agreement: no qualifying trail (the accepted solution).
TEST(Trail, OneSidedAgreementHasNoTrail) {
  for (bool up : {true, false}) {
    const Ltg ltg(protocols::agreement_one_sided(up));
    const auto res = find_contiguous_trail(ltg);
    EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
  }
}

// 2-coloring: the paper's alternating (t,s)² trail ≪00,t01,01,s,11,t10,10,s≫.
TEST(Trail, TwoColoringTrailMatchesPaper) {
  const Protocol p = protocols::coloring_with_choices(2, {1, 0});
  const Ltg ltg(p);
  const auto res = find_contiguous_trail(ltg);
  ASSERT_EQ(res.status, TrailSearchStatus::kTrailFound);
  // The paper prints this trail as |E|=1, P=2 (one round); the identical
  // cyclic arc sequence also factors as P=1 over two rounds, which the
  // smallest-parameters-first search reports.
  EXPECT_EQ(res.trail->num_enabled, 1);
  EXPECT_EQ(res.trail->steps.size(), 4u);
  expect_well_formed(ltg, *res.trail);
  // All four states 00, 01, 11, 10 appear.
  std::set<LocalStateId> visited;
  for (const auto& s : res.trail->steps) visited.insert(s.from);
  EXPECT_EQ(visited.size(), 4u);
}

// 3-coloring rotation: a trail through the monochromatic states.
TEST(Trail, ThreeColoringRotationHasTrail) {
  const Ltg ltg(protocols::three_coloring_rotation());
  const auto res = find_contiguous_trail(ltg);
  ASSERT_EQ(res.status, TrailSearchStatus::kTrailFound);
  expect_well_formed(ltg, *res.trail);
}

// Sum-not-two solution: NO qualifying trail once Lemma 5.12's "every w1
// vertex fires in the trail" condition is enforced (paper Section 6.2).
TEST(Trail, SumNotTwoSolutionHasNoTrail) {
  const Ltg ltg(protocols::sum_not_two_solution());
  const auto res = find_contiguous_trail(ltg);
  EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
}

// Sum-not-two rotations: trails exist (the paper rejects both candidates,
// and notes the trails are spurious at their implied K=3).
TEST(Trail, SumNotTwoRotationsHaveTrails) {
  for (bool up : {true, false}) {
    const Ltg ltg(protocols::sum_not_two_rotation(up));
    const auto res = find_contiguous_trail(ltg);
    ASSERT_EQ(res.status, TrailSearchStatus::kTrailFound) << up;
    expect_well_formed(ltg, *res.trail);
    EXPECT_TRUE(testing::global_has_livelock(
                    protocols::sum_not_two_rotation(up), 3) == false)
        << "the paper's point: this trail is spurious at K=3";
  }
}

// Gouda–Acharya fragment: trail found (it livelocks globally at K=4..6).
TEST(Trail, GoudaAcharyaFragmentHasTrail) {
  const Ltg ltg(protocols::matching_gouda_acharya_fragment());
  const auto res = find_contiguous_trail(ltg);
  ASSERT_EQ(res.status, TrailSearchStatus::kTrailFound);
  expect_well_formed(ltg, *res.trail);
}

// The t-arc whitelist restricts which transitions may appear.
TEST(Trail, WhitelistRestrictsSearch) {
  const Protocol p = protocols::agreement_both();
  const Ltg ltg(p);
  TrailQuery q;
  q.t_arc_whitelist = {0};  // only one transition: no pseudo-livelock cycle
  const auto res = find_contiguous_trail(ltg, q);
  EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
}

// Turning both Theorem 5.14 conditions off finds trails in protocols that
// are perfectly fine — the conditions do the filtering.
TEST(Trail, ConditionsMatter) {
  const Ltg ltg(protocols::agreement_one_sided(true));
  TrailQuery q;
  q.require_pseudo_livelock = false;
  q.require_illegitimate = false;
  const auto res = find_contiguous_trail(ltg, q);
  EXPECT_EQ(res.status, TrailSearchStatus::kTrailFound)
      << "structural trails exist; the theorem's conditions reject them";
}

// Tiny node budgets yield kInconclusive, never a false kNoTrail.
TEST(Trail, BudgetExhaustionIsReported) {
  const Ltg ltg(protocols::matching_generalizable());
  TrailQuery q;
  q.node_budget = 10;
  const auto res = find_contiguous_trail(ltg, q);
  EXPECT_NE(res.status, TrailSearchStatus::kNoTrail);
}

// A protocol with no transitions can have no trail.
TEST(Trail, EmptyProtocolHasNoTrail) {
  const Ltg ltg(protocols::agreement_empty());
  const auto res = find_contiguous_trail(ltg);
  EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
  EXPECT_EQ(res.nodes_explored, 0u);
}

// The union-of-cycles fixpoint prune: t-arcs that can never participate in
// a pseudo-livelock are excluded before the DFS starts, making layered
// products tractable (search nodes drop by orders of magnitude) without
// changing any verdict.
TEST(Trail, CycleClosurePruneKeepsVerdictsAndShrinksSearch) {
  // One-sided agreement: the single t-arc never cycles → zero search nodes.
  {
    const Ltg ltg(protocols::agreement_one_sided(true));
    const auto res = find_contiguous_trail(ltg);
    EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
    EXPECT_EQ(res.nodes_explored, 0u);
  }
  // Sum-not-two solution: {t12, t21} survive the fixpoint (they form a
  // 2-cycle) but t01 is pruned; still no qualifying trail.
  {
    const Ltg ltg(protocols::sum_not_two_solution());
    const auto res = find_contiguous_trail(ltg);
    EXPECT_EQ(res.status, TrailSearchStatus::kNoTrail);
    EXPECT_GT(res.nodes_explored, 0u);
  }
  // Disabling condition 2 disables the prune: structural trails reappear.
  {
    const Ltg ltg(protocols::agreement_one_sided(true));
    TrailQuery q;
    q.require_pseudo_livelock = false;
    q.require_illegitimate = false;
    EXPECT_EQ(find_contiguous_trail(ltg, q).status,
              TrailSearchStatus::kTrailFound);
  }
}

TEST(Trail, ToStringMentionsParameters) {
  const Ltg ltg(protocols::agreement_both());
  const auto res = find_contiguous_trail(ltg);
  ASSERT_TRUE(res.trail.has_value());
  const std::string s = res.trail->to_string(ltg.protocol());
  EXPECT_NE(s.find("|E|=2"), std::string::npos);
  EXPECT_NE(s.find("K=3"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
