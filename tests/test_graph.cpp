#include <gtest/gtest.h>

#include <random>

#include "graph/cycles.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/feedback.hpp"
#include "graph/scc.hpp"
#include "graph/walks.hpp"

namespace ringstab {
namespace {

Digraph ring_graph(std::size_t n) {
  Digraph g(n);
  for (VertexId v = 0; v < n; ++v)
    g.add_arc(v, static_cast<VertexId>((v + 1) % n));
  return g;
}

TEST(Digraph, AddArcIsIdempotent) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(Digraph, OutIsSorted) {
  Digraph g(4);
  g.add_arc(0, 3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  EXPECT_EQ(g.out(0), (std::vector<VertexId>{1, 2, 3}));
}

TEST(Digraph, InducedKeepsOnlyMaskedArcs) {
  Digraph g = ring_graph(4);
  const Digraph sub = g.induced({true, true, false, true});
  EXPECT_TRUE(sub.has_arc(0, 1));
  EXPECT_FALSE(sub.has_arc(1, 2));
  EXPECT_FALSE(sub.has_arc(2, 3));
  EXPECT_TRUE(sub.has_arc(3, 0));
}

TEST(Digraph, ReversedFlipsArcs) {
  Digraph g(3);
  g.add_arc(0, 1);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_arc(1, 0));
  EXPECT_FALSE(r.has_arc(0, 1));
}

TEST(Digraph, InDegrees) {
  Digraph g = ring_graph(3);
  g.add_arc(0, 2);
  EXPECT_EQ(g.in_degrees(), (std::vector<std::size_t>{1, 1, 2}));
}

TEST(Scc, RingIsOneComponent) {
  const auto scc = strongly_connected_components(ring_graph(5));
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.component_size[0], 5u);
}

TEST(Scc, ChainIsAllSingletons) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_FALSE(on_cycle(g, scc, v));
}

TEST(Scc, SelfLoopIsOnCycle) {
  Digraph g(2);
  g.add_arc(0, 0);
  const auto scc = strongly_connected_components(g);
  EXPECT_TRUE(on_cycle(g, scc, 0));
  EXPECT_FALSE(on_cycle(g, scc, 1));
}

TEST(Scc, TwoComponents) {
  Digraph g(5);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 4);
  g.add_arc(4, 2);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

// Property: on_cycle agrees with brute-force "v reaches v in ≥1 step".
TEST(Scc, MatchesBruteForceOnRandomGraphs) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng() % 10;
    Digraph g(n);
    const std::size_t arcs = rng() % (n * n);
    for (std::size_t a = 0; a < arcs; ++a)
      g.add_arc(static_cast<VertexId>(rng() % n),
                static_cast<VertexId>(rng() % n));
    const auto scc = strongly_connected_components(g);
    for (VertexId v = 0; v < n; ++v) {
      // BFS from successors of v.
      std::vector<bool> seen(n, false);
      std::vector<VertexId> stack(g.out(v).begin(), g.out(v).end());
      bool reaches_self = false;
      while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        if (u == v) {
          reaches_self = true;
          break;
        }
        if (seen[u]) continue;
        seen[u] = true;
        for (VertexId w : g.out(u)) stack.push_back(w);
      }
      EXPECT_EQ(on_cycle(g, scc, v), reaches_self) << "trial " << trial;
    }
  }
}

TEST(Cycles, FindCycleThrough) {
  Digraph g = ring_graph(4);
  const auto c = find_cycle_through(g, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 4u);
  EXPECT_EQ(c->front(), 2u);
}

TEST(Cycles, FindCycleRespectsAllowedMask) {
  Digraph g = ring_graph(4);
  g.add_arc(1, 0);  // short 2-cycle 0↔1
  std::vector<bool> allowed{true, true, false, false};
  const auto c = find_cycle_through(g, 0, &allowed);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (Cycle{0, 1}));
}

TEST(Cycles, SelfLoopIsLengthOne) {
  Digraph g(2);
  g.add_arc(1, 1);
  const auto c = find_cycle_through(g, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (Cycle{1}));
  EXPECT_FALSE(find_cycle_through(g, 0).has_value());
}

TEST(Cycles, JohnsonEnumeratesAll) {
  // K3 complete digraph: 2 three-cycles + 3 two-cycles + 0 self loops = 5.
  Digraph g(3);
  for (VertexId u = 0; u < 3; ++u)
    for (VertexId v = 0; v < 3; ++v)
      if (u != v) g.add_arc(u, v);
  const auto cycles = simple_cycles(g);
  EXPECT_EQ(cycles.size(), 5u);
  for (const auto& c : cycles) {
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_TRUE(g.has_arc(c[i], c[(i + 1) % c.size()]));
    EXPECT_EQ(*std::min_element(c.begin(), c.end()), c.front())
        << "canonical rotation";
  }
}

TEST(Cycles, ThroughMarkedFilters) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(2, 3);
  g.add_arc(3, 2);
  std::vector<bool> marked{false, false, true, false};
  const auto cycles = simple_cycles_through(g, marked);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (Cycle{2, 3}));
}

TEST(Feedback, SingleCycleAllVerticesAreMinimalSets) {
  Digraph g = ring_graph(3);
  std::vector<bool> all(3, true);
  const auto sets = minimal_feedback_sets(g, all, all);
  EXPECT_EQ(sets.size(), 3u);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

TEST(Feedback, RestrictedCandidates) {
  Digraph g = ring_graph(3);
  std::vector<bool> marked(3, true);
  std::vector<bool> cand{true, false, false};
  const auto sets = minimal_feedback_sets(g, marked, cand);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (std::vector<VertexId>{0}));
}

TEST(Feedback, OnlyMarkedCyclesNeedBreaking) {
  // Two disjoint 2-cycles; only the first is marked.
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(2, 3);
  g.add_arc(3, 2);
  std::vector<bool> marked{true, false, false, false};
  std::vector<bool> cand{true, true, true, true};
  const auto sets = minimal_feedback_sets(g, marked, cand);
  ASSERT_FALSE(sets.empty());
  for (const auto& s : sets) {
    EXPECT_LE(s.size(), 1u);
    EXPECT_TRUE(breaks_all_marked_cycles(g, marked, s));
  }
}

TEST(Feedback, InfeasibleThrows) {
  Digraph g = ring_graph(3);
  std::vector<bool> marked(3, true);
  std::vector<bool> cand(3, false);
  EXPECT_THROW(minimal_feedback_sets(g, marked, cand), ModelError);
}

TEST(Feedback, ResultsAreMinimalAndSufficient) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng() % 5;
    Digraph g(n);
    for (std::size_t a = 0; a < n * 2; ++a)
      g.add_arc(static_cast<VertexId>(rng() % n),
                static_cast<VertexId>(rng() % n));
    std::vector<bool> marked(n, true);
    std::vector<bool> cand(n, true);
    for (const auto& s : minimal_feedback_sets(g, marked, cand)) {
      EXPECT_TRUE(breaks_all_marked_cycles(g, marked, s));
      for (std::size_t drop = 0; drop < s.size(); ++drop) {
        auto smaller = s;
        smaller.erase(smaller.begin() + static_cast<long>(drop));
        EXPECT_FALSE(breaks_all_marked_cycles(g, marked, smaller))
            << "set is not minimal";
      }
    }
  }
}

TEST(Walks, RingSpectrumIsMultiples) {
  const Digraph g = ring_graph(4);
  std::vector<bool> marked{true, false, false, false};
  const auto spec = closed_walk_lengths(g, marked, 20);
  for (std::size_t k = 1; k <= 20; ++k)
    EXPECT_EQ(spec.at(k), k % 4 == 0) << k;
  EXPECT_EQ(spec.smallest(), 4u);
}

TEST(Walks, TwoCyclesComposeLengths) {
  // Cycles of length 2 and 3 sharing vertex 0: lengths {2,3,4,5,...}.
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(0, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 0);
  std::vector<bool> marked{true, false, false, false};
  const auto spec = closed_walk_lengths(g, marked, 12);
  EXPECT_FALSE(spec.at(1));
  for (std::size_t k = 2; k <= 12; ++k) EXPECT_TRUE(spec.at(k)) << k;
}

TEST(Walks, WitnessIsAValidClosedWalk) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(0, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 0);
  std::vector<bool> marked{true, false, false, false};
  for (std::size_t len = 2; len <= 10; ++len) {
    const auto walk = closed_walk_of_length(g, marked, len);
    ASSERT_TRUE(walk.has_value()) << len;
    EXPECT_EQ(walk->size(), len);
    EXPECT_TRUE(marked[(*walk)[0]]);
    for (std::size_t i = 0; i < len; ++i)
      EXPECT_TRUE(g.has_arc((*walk)[i], (*walk)[(i + 1) % len]));
  }
  EXPECT_FALSE(closed_walk_of_length(g, marked, 1).has_value());
}

TEST(Dot, RendersVerticesAndArcs) {
  Digraph g(2);
  g.add_arc(0, 1);
  DotOptions opts;
  opts.label = [](VertexId v) { return v == 0 ? "zero" : "one"; };
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("zero"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, IncludeFilterDropsVertices) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  DotOptions opts;
  opts.include = [](VertexId v) { return v != 2; };
  const std::string dot = to_dot(g, opts);
  EXPECT_EQ(dot.find("n2"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
