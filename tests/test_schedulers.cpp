// Scheduler policies: certified protocols must converge under every daemon,
// and the policies differ in the runs they produce.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/sum_not_two.hpp"
#include "sim/simulator.hpp"

namespace ringstab {
namespace {

const Scheduler kAll[] = {Scheduler::kUniformRandom, Scheduler::kRoundRobin,
                          Scheduler::kLeftmostFirst};

TEST(Schedulers, CertifiedProtocolsConvergeUnderEveryDaemon) {
  for (const Protocol& p :
       {protocols::agreement_one_sided(true),
        protocols::sum_not_two_solution()}) {
    for (Scheduler sched : kAll) {
      const auto stats = measure_convergence(p, 16, 100, 5, 100000, sched);
      EXPECT_EQ(stats.failed, 0u)
          << p.name() << " scheduler " << static_cast<int>(sched);
    }
  }
}

TEST(Schedulers, RoundRobinVisitsEveryEnabledProcess) {
  // Agreement-up from 1,0,0,0: the only enabled process each step is the
  // successor of the last 1; round-robin must fire them in ring order.
  const Protocol p = protocols::agreement_one_sided(true);
  Simulator sim(p, 4, 1, Scheduler::kRoundRobin);
  sim.set_state({1, 0, 0, 0});
  std::vector<std::size_t> order;
  while (auto step = sim.step()) order.push_back(step->process);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_TRUE(sim.in_invariant());
}

TEST(Schedulers, LeftmostFirstIsDeterministicForDeterministicProtocols) {
  const Protocol p = protocols::sum_not_two_solution();
  auto run = [&](std::uint64_t seed) {
    Simulator sim(p, 10, seed, Scheduler::kLeftmostFirst);
    sim.set_state({2, 0, 2, 0, 2, 0, 2, 0, 2, 0});
    std::vector<std::size_t> order;
    while (auto step = sim.step()) order.push_back(step->process);
    return order;
  };
  // Seeds only affect transition choice; this protocol is deterministic per
  // state, so the whole run is seed-independent.
  EXPECT_EQ(run(1), run(99));
}

TEST(Schedulers, RoundRobinBoundsUnfairness) {
  // Under round-robin on agreement-up, each recovery takes exactly the same
  // number of steps as the number of initially-wrong positions requires:
  // steps equal the count of copy operations, which is scheduler-invariant
  // for this protocol (each process flips at most once).
  const Protocol p = protocols::agreement_one_sided(true);
  for (Scheduler sched : kAll) {
    Simulator sim(p, 8, 3, sched);
    sim.set_state({1, 0, 0, 0, 0, 0, 0, 0});
    const auto run = sim.run_to_convergence();
    EXPECT_TRUE(run.converged);
    EXPECT_EQ(run.steps, 7u) << static_cast<int>(sched);
  }
}

TEST(Schedulers, StatsIncludePercentiles) {
  const auto stats =
      measure_convergence(protocols::sum_not_two_solution(), 24, 200, 9);
  EXPECT_LE(stats.p50_steps, stats.p95_steps);
  EXPECT_LE(stats.p95_steps, stats.max_steps);
  EXPECT_GT(stats.p50_steps, 0u);
}

}  // namespace
}  // namespace ringstab
