// Synthesis across protocol families (beyond the paper's worked examples):
// pins the sweep outcomes and cross-validates every accepted solution.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/coloring.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

// Coloring: failure for every palette size, matching the impossibility of
// deterministic symmetric unidirectional ring coloring (paper ref [25]).
class ColoringFamilyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColoringFamilyTest, SynthesisFails) {
  const std::size_t c = GetParam();
  const auto res = synthesize_convergence(protocols::coloring_empty(c));
  EXPECT_FALSE(res.success) << c;
  // Candidate count: each of the c monochromatic deadlocks picks one of
  // (c-1) targets.
  std::size_t expect = 1;
  for (std::size_t i = 0; i < c; ++i) expect *= (c - 1);
  EXPECT_EQ(res.candidates_examined, expect);
}

INSTANTIATE_TEST_SUITE_P(Palettes, ColoringFamilyTest,
                         ::testing::Values(2, 3, 4, 5));

// Sum-not-q: success across the (|D|, q) grid; every accepted solution
// stabilizes globally.
struct SumNotQCase {
  std::size_t d;
  int q;
};

class SumNotQTest : public ::testing::TestWithParam<SumNotQCase> {};

TEST_P(SumNotQTest, SynthesisSucceedsAndVerifies) {
  const auto [d, q] = GetParam();
  const auto res = synthesize_convergence(protocols::sum_not_q_empty(d, q));
  ASSERT_TRUE(res.success) << "d=" << d << " q=" << q;
  // Check up to 3 solutions globally to bound test time.
  for (std::size_t i = 0; i < std::min<std::size_t>(3, res.solutions.size());
       ++i)
    for (std::size_t k = 2; k <= 6; ++k)
      EXPECT_TRUE(
          strongly_stabilizing(RingInstance(res.solutions[i].protocol, k)))
          << "d=" << d << " q=" << q << " sol=" << i << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Grid, SumNotQTest,
                         ::testing::Values(SumNotQCase{3, 1}, SumNotQCase{3, 2},
                                           SumNotQCase{3, 3}, SumNotQCase{4, 2},
                                           SumNotQCase{4, 3},
                                           SumNotQCase{4, 5}));

// The symmetric acceptance structure: sum-not-q and sum-not-(2(d-1)-q) are
// value-mirror images, so their solution counts coincide.
TEST(SumNotQ, MirrorSymmetryOfSolutionCounts) {
  for (std::size_t d : {3u, 4u}) {
    const int top = static_cast<int>(2 * (d - 1));
    for (int q = 1; q < top; ++q) {
      const auto a = synthesize_convergence(protocols::sum_not_q_empty(d, q));
      const auto b =
          synthesize_convergence(protocols::sum_not_q_empty(d, top - q));
      EXPECT_EQ(a.solutions.size(), b.solutions.size())
          << "d=" << d << " q=" << q;
    }
  }
}

// Monotone rings: success; the invariant is the same all-equal set as
// agreement, reached through a different local conjunct.
class MonotoneTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MonotoneTest, SynthesisSucceedsAndVerifies) {
  const std::size_t d = GetParam();
  const auto res = synthesize_convergence(protocols::monotone_empty(d));
  ASSERT_TRUE(res.success) << d;
  for (std::size_t k = 2; k <= 6; ++k)
    EXPECT_TRUE(
        strongly_stabilizing(RingInstance(res.solutions[0].protocol, k)))
        << d << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Domains, MonotoneTest, ::testing::Values(2, 3, 4));

TEST(Monotone, InvariantIsAllEqualRings) {
  const Protocol p = protocols::monotone_empty(3);
  for (std::size_t k = 3; k <= 5; ++k) {
    const RingInstance ring(p, k);
    std::size_t legit = 0;
    for (GlobalStateId s = 0; s < ring.num_states(); ++s)
      if (ring.in_invariant(s)) ++legit;
    EXPECT_EQ(legit, 3u) << "x_r ≥ x_{r-1} around a ring forces all equal";
  }
}

// Trail realization annotations: sum-not-two's rejections split 2 real /
// 2 spurious (see EXP-F12).
TEST(SynthesisFamilies, SumNotTwoRealizationAnnotations) {
  const auto res = synthesize_convergence(protocols::sum_not_two_empty());
  std::size_t realized = 0, spurious = 0;
  for (const auto& r : res.reports) {
    if (!r.realization) continue;
    if (*r.realization == TrailRealization::kRealized ||
        *r.realization == TrailRealization::kOtherLivelock)
      ++realized;
    if (*r.realization == TrailRealization::kSpurious ||
        *r.realization == TrailRealization::kNotInstantiable)
      ++spurious;
  }
  EXPECT_EQ(realized, 2u);
  EXPECT_EQ(spurious, 2u);
}

}  // namespace
}  // namespace ringstab
