// Heavier randomized cross-validation: larger domains, denser transition
// sets, and metric-level agreement between the checker and the simulator.
#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "local/deadlock.hpp"
#include "local/livelock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/sum_not_two.hpp"
#include "sim/simulator.hpp"

namespace ringstab {
namespace {

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

// Domain-4 protocols: Theorem 4.2's spectrum still matches global checking.
TEST_P(StressTest, LargeDomainDeadlockSpectrum) {
  std::mt19937_64 rng(GetParam() * 7919);
  testing::RandomProtocolOptions opts;
  opts.max_domain = 4;
  opts.transition_density = 0.45;
  for (int i = 0; i < 6; ++i) {
    const Protocol p = testing::random_protocol(rng, opts);
    const auto res = analyze_deadlocks(p, 6);
    for (std::size_t k = 2; k <= 6; ++k)
      EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
          << p.name() << " K=" << k;
  }
}

// Dense transition sets: the livelock verdicts stay sound.
TEST_P(StressTest, DenseProtocolLivelockSoundness) {
  std::mt19937_64 rng(GetParam() * 104729);
  testing::RandomProtocolOptions opts;
  opts.transition_density = 0.8;
  for (int i = 0; i < 6; ++i) {
    const Protocol p = testing::random_protocol(rng, opts);
    const auto res = check_livelock_freedom(p);
    if (res.verdict != LivelockAnalysis::Verdict::kLivelockFree) continue;
    for (std::size_t k = 2; k <= 6; ++k)
      EXPECT_FALSE(testing::global_has_livelock(p, k))
          << p.name() << " K=" << k;
  }
}

// And completeness on the same dense family.
TEST_P(StressTest, DenseProtocolLivelockCompleteness) {
  std::mt19937_64 rng(GetParam() * 1299709);
  testing::RandomProtocolOptions opts;
  opts.transition_density = 0.8;
  for (int i = 0; i < 6; ++i) {
    const Protocol p = testing::random_protocol(rng, opts);
    bool livelocks = false;
    for (std::size_t k = 2; k <= 6 && !livelocks; ++k)
      livelocks = testing::global_has_livelock(p, k);
    if (!livelocks) continue;
    EXPECT_NE(check_livelock_freedom(p).verdict,
              LivelockAnalysis::Verdict::kLivelockFree)
        << p.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// The checker's worst-case recovery bound dominates every simulated run.
TEST(Metrics, SimulatedStepsNeverExceedCheckerBound) {
  for (const Protocol& p :
       {protocols::agreement_one_sided(true),
        protocols::sum_not_two_solution()}) {
    for (std::size_t k = 4; k <= 8; ++k) {
      const RingInstance ring(p, k);
      const std::size_t bound = GlobalChecker(ring).max_recovery_steps();
      Simulator sim(p, k, /*seed=*/k * 131);
      for (int trial = 0; trial < 100; ++trial) {
        sim.randomize();
        const auto run = sim.run_to_convergence();
        ASSERT_TRUE(run.converged);
        EXPECT_LE(run.steps, bound) << p.name() << " K=" << k;
      }
    }
  }
}

// The bound is tight: some simulated or constructed run attains it for
// one-sided agreement (worst case = K-1 from one dissenting value).
TEST(Metrics, RecoveryBoundIsTightForAgreement) {
  const Protocol p = protocols::agreement_one_sided(true);
  for (std::size_t k = 3; k <= 8; ++k) {
    const RingInstance ring(p, k);
    EXPECT_EQ(GlobalChecker(ring).max_recovery_steps(), k - 1);
    // The state 1,0,0,...,0 needs exactly K-1 copy steps.
    Simulator sim(p, k, 1);
    std::vector<Value> worst(k, 0);
    worst[0] = 1;
    sim.set_state(worst);
    const auto run = sim.run_to_convergence();
    EXPECT_TRUE(run.converged);
    EXPECT_EQ(run.steps, k - 1);
  }
}

}  // namespace
}  // namespace ringstab
