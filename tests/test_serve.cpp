// ringstab-serve: wire framing, the exact-key verdict cache, daemon/client
// round trips, and the byte-identity contract — a request answered by the
// daemon (cold or cached) produces exactly the bytes the local CLI path
// produces, across the shipped .ring zoo (docs/serve.md).
//
// Also covers the silent-failure fixes that ride with the daemon PR:
// bench artifact writes that report failure, FileSink mid-run write
// failures surfacing through Session::finish(), and the
// `"interrupted": true` manifest stamp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "core/parser.hpp"
#include "core/types.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_json.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "obs/sinks.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace ringstab::serve {
namespace {

std::string socket_path(const char* tag) {
  // cwd-relative: ctest's working directory is short, sockaddr_un is not.
  return std::string("test_serve_") + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

std::vector<std::filesystem::path> zoo_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RINGSTAB_RINGS))
    if (entry.path().extension() == ".ring") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty());
  return files;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ── wire framing ──

TEST(ServeWire, RequestRoundTripsIncludingControlCharacters) {
  Request req;
  req.cmd = "check";
  req.source = "line1\nline2\t\"quoted\\\"\n";  // newlines must be escaped
  req.name = "zoo/x.ring";
  req.k = 7;
  req.options.jobs = 4;
  req.options.symmetry = true;
  req.options.check_k = 5;
  const std::string line = encode_request(req);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "a frame must never contain a raw newline";
  const Request back = decode_request(line);
  EXPECT_EQ(back.cmd, req.cmd);
  EXPECT_EQ(back.source, req.source);
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.k, req.k);
  EXPECT_EQ(back.options.jobs, req.options.jobs);
  EXPECT_EQ(back.options.symmetry, req.options.symmetry);
  EXPECT_EQ(back.options.check_k, req.options.check_k);
  EXPECT_FALSE(back.options.all);
}

TEST(ServeWire, ResponseRoundTrips) {
  Response resp;
  resp.ok = true;
  resp.cached = true;
  resp.exit_code = 1;
  resp.output = "verdict\nwith lines\n";
  const Response back = decode_response(encode_response(resp));
  EXPECT_TRUE(back.ok);
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.exit_code, 1);
  EXPECT_EQ(back.output, resp.output);
  EXPECT_FALSE(back.has_stats);
}

TEST(ServeWire, StatsRoundTrip) {
  Response resp;
  resp.ok = true;
  resp.has_stats = true;
  resp.stats.requests = 10;
  resp.stats.cache_hits = 7;
  resp.stats.cache_capacity = 1024;
  const Response back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.has_stats);
  EXPECT_EQ(back.stats.requests, 10u);
  EXPECT_EQ(back.stats.cache_hits, 7u);
  EXPECT_EQ(back.stats.cache_capacity, 1024u);
}

TEST(ServeWire, MalformedInputThrows) {
  EXPECT_THROW(decode_request("not json"), ModelError);
  EXPECT_THROW(decode_request("[1,2]"), ModelError);
  EXPECT_THROW(decode_request(R"({"source":"x"})"), ModelError);  // no cmd
  EXPECT_THROW(decode_request(R"({"cmd":"check","bogus":1})"), ModelError);
  EXPECT_THROW(decode_request(R"({"cmd":"check","options":{"nope":true}})"),
               ModelError);
  EXPECT_THROW(decode_response(R"({"exit":0})"), ModelError);  // no ok
}

// ── cache keys: distinct identities never collide ──

TEST(ServeCacheKey, DistinctRequestsProduceDistinctKeys) {
  // Every result-affecting coordinate perturbed one at a time, plus
  // prefix-confusable sources; all must key differently.
  std::vector<Request> reqs;
  const auto base = [] {
    Request r;
    r.cmd = "check";
    r.source = "protocol x\n";
    r.k = 4;
    return r;
  };
  reqs.push_back(base());
  {
    Request r = base();
    r.cmd = "lint";
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.cmd = "synthesize";
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.cmd = "analyze";
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.k = 5;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.source = "protocol y\n";
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.source = "protocol x\n ";  // one trailing byte
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.symmetry = true;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.all = true;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.json = true;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.lint = true;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.synth = true;
    reqs.push_back(r);
  }
  {
    Request r = base();
    r.options.check_k = 6;
    reqs.push_back(r);
  }
  {
    // `name` is rendered into lint summaries, parse-error prefixes, and
    // batch rows, so the same source under a different name is a
    // different verdict.
    Request r = base();
    r.name = "other.ring";
    reqs.push_back(r);
  }
  {
    // name/source boundary confusion: bytes moved across the boundary
    // must not produce the same concatenated identity.
    Request r = base();
    r.name = "<request>p";
    r.source = "rotocol x\n";
    reqs.push_back(r);
  }
  std::set<std::string> keys;
  for (const Request& r : reqs) keys.insert(cache_key(r));
  EXPECT_EQ(keys.size(), reqs.size())
      << "two distinct request identities collided";
}

TEST(ServeCacheKey, JobsIsExcludedFromTheIdentity) {
  Request a;
  a.cmd = "check";
  a.source = "protocol x\n";
  a.k = 4;
  Request b = a;
  b.options.jobs = 16;
  EXPECT_EQ(cache_key(a), cache_key(b))
      << "thread count never changes a verdict, so it must not shard the "
         "cache";
}

TEST(ServeCacheKey, UnknownCommandThrows) {
  Request r;
  r.cmd = "exec";
  EXPECT_THROW(cache_key(r), ModelError);
}

// ── simulate requests: wire, cache identity, and byte-identity ──

constexpr const char* kHermanSource =
    "protocol herman;\n"
    "domain 2;\n"
    "reads -1 .. 0;\n"
    "legit: x[-1] != x[0];\n"
    "action toss: x[-1] == x[0] -> x[0] := 1 - x[0];\n"
    "action pass: x[-1] != x[0] -> x[0] := x[-1];\n";

Request simulate_request() {
  Request r;
  r.cmd = "simulate";
  r.source = kHermanSource;
  r.name = "herman.ring";
  r.k = 7;
  r.options.trajectories = 300;
  r.options.target = "one-token";
  r.options.start = "zero";
  return r;
}

TEST(ServeWire, SimulateOptionsRoundTripIncludingCoinBits) {
  Request req = simulate_request();
  req.options.sim_seed = 99;
  req.options.round_cap = 12345;
  req.options.coin = 0.3;  // not exactly representable — %.17g must survive
  req.options.scheduler = "weighted";
  req.options.sim_k = 6;
  const Request back = decode_request(encode_request(req));
  EXPECT_EQ(back.cmd, "simulate");
  EXPECT_EQ(back.options.trajectories, 300u);
  EXPECT_EQ(back.options.sim_seed, 99u);
  EXPECT_EQ(back.options.round_cap, 12345u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.options.coin),
            std::bit_cast<std::uint64_t>(req.options.coin))
      << "coin must round-trip bit-exactly, not just approximately";
  EXPECT_EQ(back.options.scheduler, "weighted");
  EXPECT_EQ(back.options.target, "one-token");
  EXPECT_EQ(back.options.start, "zero");
  EXPECT_EQ(back.options.sim_k, 6u);
  // Defaults are elided from the frame and restored on decode.
  Request bare;
  bare.cmd = "simulate";
  bare.source = kHermanSource;
  const Request defaults = decode_request(encode_request(bare));
  EXPECT_EQ(defaults.options.trajectories, 1000u);
  EXPECT_EQ(defaults.options.coin, 0.5);
  EXPECT_EQ(defaults.options.scheduler, "coin");
}

TEST(ServeCacheKey, SimulateCoordinatesAreIdentity) {
  std::vector<Request> reqs;
  reqs.push_back(simulate_request());
  {
    Request r = simulate_request();
    r.options.sim_seed = 2;
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.trajectories = 301;
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.round_cap = 999;
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.coin = 0.25;
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.scheduler = "weighted";
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.target = "invariant";
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.options.start = "three";
    reqs.push_back(r);
  }
  {
    Request r = simulate_request();
    r.k = 9;
    reqs.push_back(r);
  }
  std::set<std::string> keys;
  for (const Request& r : reqs) keys.insert(cache_key(r));
  EXPECT_EQ(keys.size(), reqs.size())
      << "two distinct simulate identities collided";

  // And jobs stays out: legitimate only because the estimator is
  // bit-identical at every thread count.
  Request a = simulate_request();
  Request b = a;
  b.options.jobs = 8;
  EXPECT_EQ(cache_key(a), cache_key(b));
}

TEST(ServeExec, SimulateMatchesRenderSimulateBytes) {
  const Request req = simulate_request();
  const ExecResult res = execute(req);
  EXPECT_EQ(res.exit_code, 0);
  const Protocol p = parse_protocol(req.source);
  std::ostringstream direct;
  render_simulate(p, req.k, req.options, direct);
  EXPECT_EQ(res.output, direct.str());
  // Different jobs, same bytes — the cache contract, end to end.
  Request jobs4 = req;
  jobs4.options.jobs = 4;
  EXPECT_EQ(execute(jobs4).output, res.output);
}

TEST(ServeExec, SimulateBadKReportsLikeTheCli) {
  Request req = simulate_request();
  req.k = 1;
  const ExecResult res = execute(req);
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("invalid k value"), std::string::npos);
}

// ── the verdict cache ──

TEST(ServeCache, HitRepeatsTheStoredResultExactly) {
  VerdictCache cache(64);
  ExecResult res;
  res.exit_code = 1;
  res.output = "verdict bytes\n";
  cache.put("key", res);
  const auto hit = cache.get("key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->exit_code, 1);
  EXPECT_EQ(hit->output, "verdict bytes\n");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.get("other").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeCache, CapacityBoundsResidencyAndCountsEvictions) {
  VerdictCache cache(32);
  for (int i = 0; i < 1000; ++i) {
    ExecResult res;
    res.output = std::to_string(i);
    cache.put("key" + std::to_string(i), res);
  }
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GE(cache.evictions(), 1000u - 32u - 16u)  // per-shard rounding slack
      << "inserting far past capacity must evict";
}

TEST(ServeCache, ZeroCapacityDisablesCaching) {
  VerdictCache cache(0);
  cache.put("key", ExecResult{0, "x"});
  EXPECT_FALSE(cache.get("key").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ── execute(): the CLI error contract is part of the cacheable result ──

TEST(ServeExec, ParseErrorsComeBackAsOutputNotExceptions) {
  Request req;
  req.cmd = "check";
  req.source = "this is not a protocol";
  req.k = 4;
  const ExecResult res = execute(req);
  EXPECT_EQ(res.exit_code, 1);
  EXPECT_EQ(res.output.rfind("error: ", 0), 0u) << res.output;
}

TEST(ServeExec, BadKIsReportedLikeTheCli) {
  Request req;
  req.cmd = "check";
  req.source = "protocol x\n";
  req.k = 1;  // below the CLI's [2, 63] contract
  const ExecResult res = execute(req);
  EXPECT_EQ(res.exit_code, 1);
  EXPECT_NE(res.output.find("invalid k value"), std::string::npos);
}

// ── daemon round trips ──

TEST(ServeServer, AnswersAndCachesAndReportsStats) {
  ServerOptions opts;
  opts.socket_path = socket_path("basic");
  Server server(opts);
  server.start();
  {
    Client client(opts.socket_path);
    Request req;
    req.cmd = "lint";
    req.source = slurp(zoo_files().front());
    req.name = "zoo.ring";
    const Response cold = client.request(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.cached);
    const Response warm = client.request(req);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(warm.output, cold.output);
    EXPECT_EQ(warm.exit_code, cold.exit_code);
    const ServerStats stats = client.stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_EQ(stats.requests, 2u);  // the in-flight stats req not yet counted
    EXPECT_EQ(stats.cache_entries, 1u);
  }
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(opts.socket_path))
      << "stop() must unlink the socket";
}

TEST(ServeServer, MalformedRequestGetsAnErrorResponseNotADisconnect) {
  ServerOptions opts;
  opts.socket_path = socket_path("malformed");
  Server server(opts);
  server.start();
  {
    Client client(opts.socket_path);
    Request bad;
    bad.cmd = "exec";  // unknown command
    const Response resp = client.request(bad);
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("unknown serve command"), std::string::npos);
    // The connection survives a bad request.
    Request good;
    good.cmd = "lint";
    good.source = "protocol p { }";
    const Response next = client.request(good);
    EXPECT_TRUE(next.ok) << next.error;
  }
  server.stop();
}

TEST(ServeServer, BindRefusesAnOccupiedPath) {
  const std::string path = socket_path("occupied");
  std::ofstream(path) << "not a socket";
  ServerOptions opts;
  opts.socket_path = path;
  Server server(opts);
  EXPECT_THROW(server.start(), ModelError)
      << "an existing file at the socket path must not be clobbered";
  std::filesystem::remove(path);
}

TEST(ServeServer, GracefulStopCompletesInFlightConnections) {
  ServerOptions opts;
  opts.socket_path = socket_path("drain");
  Server server(opts);
  server.start();
  Client client(opts.socket_path);
  // Issue a request, then stop from another thread while the connection is
  // idle-open: stop() must complete without hanging and the response to
  // the earlier request must already have been delivered intact.
  Request req;
  req.cmd = "lint";
  req.source = "protocol p { }";
  const Response resp = client.request(req);
  EXPECT_TRUE(resp.ok) << resp.error;
  std::thread stopper([&] { server.stop(); });
  stopper.join();
  EXPECT_FALSE(std::filesystem::exists(opts.socket_path));
}

// ── byte identity across the zoo ──
//
// The acceptance bar: for every shipped .ring file and every serve command,
// the daemon's bytes — cold AND cached — equal the shared local execution
// path's bytes (which ARE the CLI's bytes; the CLI calls the same
// serve::render_* functions).

TEST(ServeZooHeavy, CheckLintSynthesizeBitIdenticalColdAndWarm) {
  ServerOptions opts;
  opts.socket_path = socket_path("zoo");
  opts.cache_capacity = 4096;
  Server server(opts);
  server.start();
  Client client(opts.socket_path);

  std::size_t compared = 0;
  for (const auto& path : zoo_files()) {
    const std::string source = slurp(path);
    const std::string name = path.filename().string();
    std::vector<Request> reqs;
    for (std::size_t k = 2; k <= 8; ++k) {
      Request req;
      req.cmd = "check";
      req.source = source;
      req.name = name;
      req.k = k;
      reqs.push_back(req);
      req.options.symmetry = true;
      reqs.push_back(req);
    }
    for (const bool json : {false, true}) {
      Request req;
      req.cmd = "lint";
      req.source = source;
      req.name = name;
      req.options.json = json;
      reqs.push_back(req);
    }
    {
      Request req;
      req.cmd = "synthesize";
      req.source = source;
      req.name = name;
      reqs.push_back(req);
    }
    for (const Request& req : reqs) {
      const ExecResult local = execute(req);
      const Response cold = client.request(req);
      ASSERT_TRUE(cold.ok) << name << ": " << cold.error;
      EXPECT_FALSE(cold.cached);
      EXPECT_EQ(cold.output, local.output) << name << " cmd=" << req.cmd;
      EXPECT_EQ(cold.exit_code, local.exit_code) << name;
      const Response warm = client.request(req);
      ASSERT_TRUE(warm.ok) << name << ": " << warm.error;
      EXPECT_TRUE(warm.cached) << name;
      EXPECT_EQ(warm.output, local.output) << name << " cmd=" << req.cmd;
      EXPECT_EQ(warm.exit_code, local.exit_code) << name;
      ++compared;
    }
  }
  const ServerStats stats = client.stats();
  EXPECT_EQ(stats.cache_hits, compared);
  EXPECT_EQ(stats.cache_misses, compared);
  server.stop();
}

TEST(ServeZooHeavy, BatchAnalyzeRowsBitIdenticalToLocal) {
  ServerOptions opts;
  opts.socket_path = socket_path("batch");
  Server server(opts);
  server.start();
  Client client(opts.socket_path);

  RequestOptions options;
  options.lint = true;
  options.check_k = 4;
  for (const auto& path : zoo_files()) {
    const std::string source = slurp(path);
    const std::string name = path.filename().string();
    const BatchOutcome local = batch_outcome(source, name, options, nullptr);
    Request req;
    req.cmd = "analyze";
    req.source = source;
    req.name = name;
    req.options = options;
    for (const bool expect_cached : {false, true}) {
      const Response resp = client.request(req);
      ASSERT_TRUE(resp.ok) << name << ": " << resp.error;
      EXPECT_EQ(resp.cached, expect_cached) << name;
      const BatchOutcome remote = parse_batch_outcome(resp.output);
      EXPECT_EQ(remote.name, local.name) << name;
      EXPECT_EQ(remote.verdict, local.verdict) << name;
      EXPECT_EQ(remote.expectation, local.expectation) << name;
      EXPECT_EQ(remote.ok, local.ok) << name;
    }
  }
  server.stop();
}

// ── silent-failure fixes riding along ──

TEST(BenchArtifacts, TryWriteReportsUnopenableAndUnwritableTargets) {
  EXPECT_FALSE(bench::try_write_bench_json(
      "/nonexistent_dir_for_sure/x.json", bench::Json().put("a", 1)));
  if (std::filesystem::exists("/dev/full")) {
    EXPECT_FALSE(
        bench::try_write_bench_json("/dev/full", bench::Json().put("a", 1)))
        << "a full disk must be reported, not swallowed";
  }
  const std::string good = "test_serve_artifact.json";
  EXPECT_TRUE(bench::try_write_bench_json(good, bench::Json().put("a", 1)));
  std::filesystem::remove(good);
}

TEST(ObsFailures, FileSinkGoesUnhealthyWhenTheDiskFills) {
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  obs::FileSink<obs::JsonlSink> sink("/dev/full");
  ASSERT_TRUE(sink.ok()) << "/dev/full opens fine; failure is at write time";
  obs::SpanRecord rec;
  rec.name = "phase";
  rec.start = 0;
  rec.end = 1000;
  // JSONL writes eagerly; spans + flush must push past the buffer.
  for (int i = 0; i < 100000 && sink.healthy(); ++i) {
    sink.on_span(rec);
    sink.flush();
  }
  EXPECT_FALSE(sink.healthy());
  EXPECT_NE(sink.describe().find("/dev/full"), std::string::npos);
}

TEST(ObsFailures, SessionFinishSurfacesSinkFailure) {
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  obs::SessionOptions opts;
  opts.jsonl_path = "/dev/full";
  opts.command = "test";
  obs::Session session(opts);
  ASSERT_TRUE(session.active());
  for (int i = 0; i < 100000; ++i) {
    obs::Span span("phase");
  }
  EXPECT_FALSE(session.finish())
      << "a session whose artifact failed must report it";
  EXPECT_FALSE(session.finish()) << "finish() is idempotent";
}

TEST(ObsFailures, SessionFinishTrueOnHealthySinks) {
  const std::string path = "test_serve_session.jsonl";
  obs::SessionOptions opts;
  opts.jsonl_path = path;
  opts.command = "test";
  obs::Session session(opts);
  {
    obs::Span span("phase");
  }
  EXPECT_TRUE(session.finish());
  std::filesystem::remove(path);
}

TEST(ObsFailures, InterruptedRunsStampTheManifest) {
  ASSERT_FALSE(obs::interrupted());
  std::ostringstream out;
  {
    obs::MetricsSink sink(out, "test");
    obs::g_interrupted.store(true, std::memory_order_relaxed);
    sink.flush();
    obs::g_interrupted.store(false, std::memory_order_relaxed);
  }
  const obs::json::Value doc = obs::json::parse(out.str());
  const obs::json::Value* flag = doc.find("interrupted");
  ASSERT_NE(flag, nullptr) << out.str();
  EXPECT_TRUE(flag->boolean);
  EXPECT_EQ(obs::validate_manifest(doc), "")
      << "the stamp must not break schema validation";
}

TEST(ObsFailures, NormalRunsDoNotCarryTheStamp) {
  ASSERT_FALSE(obs::interrupted());
  std::ostringstream out;
  {
    obs::MetricsSink sink(out, "test");
    sink.flush();
  }
  const obs::json::Value doc = obs::json::parse(out.str());
  EXPECT_EQ(doc.find("interrupted"), nullptr);
}

}  // namespace
}  // namespace ringstab::serve
