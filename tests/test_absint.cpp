// The abstract-interpretation engine (analysis/absint, analysis/domains):
// domain algebra, guard evaluation/refinement, transfer, the implication
// lattice, source-level facts, symbolic closure, trail replay
// cross-validated against the concrete reconstruction, and the
// synthesizers' static rejection lane (bit-identity with the lane off).
#include <gtest/gtest.h>

#include "analysis/absint.hpp"
#include "analysis/domains.hpp"
#include "core/parser.hpp"
#include "global/trail_check.hpp"
#include "local/livelock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

using absint::Box;
using absint::GuardRelation;
using absint::IntSet;
using absint::Truth;
using absint::ValueSet;

ProtocolSource source(const std::string& text) {
  return parse_protocol_source(text, "test.ring");
}

// A domain-3 source whose guards exercise every relation the tests need.
const char* kRelations =
    "protocol rel;\n"
    "domain 3;\n"
    "reads -1 .. 0;\n"
    "legit: x[0] == 1 || x[0] == 2;\n"
    "action narrow: x[-1] == 0 && x[0] == 0 -> x[0] := 1;\n"
    "action wide: x[0] == 0 -> x[0] := 2;\n"
    "action high: x[0] == 2 -> x[0] := 1;\n"
    "action contradiction: x[0] == 0 && x[0] == 1 -> x[0] := 1;\n";

// ---------------------------------------------------------------------------
// Domain algebra.

TEST(Domains, ValueSetAlgebra) {
  const ValueSet all = ValueSet::all(3);
  EXPECT_EQ(all.count(), 3u);
  EXPECT_TRUE(all.contains(0) && all.contains(1) && all.contains(2));

  ValueSet s = ValueSet::of(1);
  s.add(2);
  EXPECT_EQ((s & all), s);
  EXPECT_EQ((s | ValueSet::of(0)), all);
  s.remove(2);
  EXPECT_EQ(s, ValueSet::of(1));
  EXPECT_TRUE(ValueSet::none().empty());
  EXPECT_EQ((ValueSet::of(1) & ValueSet::of(2)), ValueSet::none());
  EXPECT_EQ(all.values(3), (std::vector<Value>{0, 1, 2}));
}

TEST(Domains, IntSetTruthUsesCSemantics) {
  EXPECT_EQ(IntSet::top().truth(), Truth::kMaybe);
  EXPECT_EQ(IntSet::of(0).truth(), Truth::kFalse);
  EXPECT_EQ(IntSet::of(7).truth(), Truth::kTrue);
  EXPECT_EQ(IntSet::from_values({-1, 3}).truth(), Truth::kTrue);
  EXPECT_EQ(IntSet::from_values({0, 1}).truth(), Truth::kMaybe);

  const IntSet dedup = IntSet::from_values({3, 1, 3, 1});
  EXPECT_EQ(dedup.values(), (std::vector<long long>{1, 3}));

  std::vector<long long> big(IntSet::kMaxValues + 1);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<long long>(i);
  EXPECT_TRUE(IntSet::from_values(big).is_top());
}

TEST(Domains, BoxTopJoinAndBottom) {
  const ProtocolSource src = source(kRelations);
  const LocalStateSpace space(src.domain, src.locality);
  Box top = Box::top(space);
  EXPECT_EQ(top.min_offset(), -1);
  EXPECT_EQ(top.max_offset(), 0);
  EXPECT_TRUE(top.covers(-1) && top.covers(0));
  EXPECT_FALSE(top.covers(1));
  EXPECT_FALSE(top.is_bottom());

  Box narrow = top;
  narrow.at(0) = ValueSet::of(1);
  EXPECT_EQ(narrow.join(top), top);
  narrow.at(0) = ValueSet::none();
  EXPECT_TRUE(narrow.is_bottom());
}

// ---------------------------------------------------------------------------
// Guard evaluation, refinement, transfer, implication.

TEST(Absint, EvalGuardProvesContradictionsOnly) {
  const ProtocolSource src = source(kRelations);
  const LocalStateSpace space(src.domain, src.locality);
  const Box top = Box::top(space);
  // x[0] == 0 over top: maybe.
  EXPECT_EQ(absint::eval_guard(*src.actions[1].guard, top, src.domain),
            Truth::kMaybe);
  // x[0] == 0 && x[0] == 1: pointwise evaluation over top cannot see the
  // conjunction's contradiction (kMaybe), but evaluating over the
  // guard-refined box — exactly what analyze_source does — proves it.
  EXPECT_EQ(absint::eval_guard(*src.actions[3].guard, top, src.domain),
            Truth::kMaybe);
  const Box refined =
      absint::assume(top, *src.actions[3].guard, src.domain);
  EXPECT_TRUE(refined.is_bottom() ||
              absint::eval_guard(*src.actions[3].guard, refined, src.domain) ==
                  Truth::kFalse);
  // On a box pinning x[0] = 2 the 'high' guard is proved true.
  Box pinned = top;
  pinned.at(0) = ValueSet::of(2);
  EXPECT_EQ(absint::eval_guard(*src.actions[2].guard, pinned, src.domain),
            Truth::kTrue);
}

TEST(Absint, AssumeNarrowsOffsets) {
  const ProtocolSource src = source(kRelations);
  const LocalStateSpace space(src.domain, src.locality);
  const Box refined =
      absint::assume(Box::top(space), *src.actions[0].guard, src.domain);
  EXPECT_EQ(refined.at(-1), ValueSet::of(0));
  EXPECT_EQ(refined.at(0), ValueSet::of(0));

  const Box impossible =
      absint::assume(Box::top(space), *src.actions[3].guard, src.domain);
  EXPECT_TRUE(impossible.is_bottom() ||
              absint::eval_guard(*src.actions[3].guard, impossible,
                                 src.domain) == Truth::kFalse);
}

TEST(Absint, TransferWritesOffsetZeroOnly) {
  const ProtocolSource src = source(kRelations);
  const LocalStateSpace space(src.domain, src.locality);
  Box in = Box::top(space);
  in.at(-1) = ValueSet::of(0);
  // 'wide' writes the constant 2.
  const Box out = absint::transfer(in, *src.actions[1].effects[0], src.domain);
  EXPECT_EQ(out.at(0), ValueSet::of(2));
  EXPECT_EQ(out.at(-1), ValueSet::of(0));  // unwritten offsets unchanged
}

TEST(Absint, RelateGuardsFindsTheContainmentStructure) {
  const ProtocolSource src = source(kRelations);
  const LocalStateSpace space(src.domain, src.locality);
  const Expr& narrow = *src.actions[0].guard;
  const Expr& wide = *src.actions[1].guard;
  const Expr& high = *src.actions[2].guard;
  EXPECT_EQ(absint::relate_guards(narrow, wide, space),
            GuardRelation::kLeftImpliesRight);
  EXPECT_EQ(absint::relate_guards(wide, narrow, space),
            GuardRelation::kRightImpliesLeft);
  EXPECT_EQ(absint::relate_guards(wide, high, space),
            GuardRelation::kDisjoint);
  EXPECT_EQ(absint::relate_guards(wide, wide, space),
            GuardRelation::kEquivalent);
}

// ---------------------------------------------------------------------------
// Source-level facts.

TEST(Absint, AnalyzeSourceProvesProcessLevelSelfDisablement) {
  // Both writes pin x[0] = 2, falsifying every guard: Assumption 2 holds.
  const AbsintResult proved = analyze_source(source(
      "protocol selfdis;\n"
      "domain 3;\n"
      "reads -1 .. 0;\n"
      "legit: x[0] == 2;\n"
      "action a0: x[0] == 0 -> x[0] := 2;\n"
      "action a1: x[0] == 1 -> x[0] := 2;\n"));
  EXPECT_TRUE(proved.all_proved_self_disabling);
  EXPECT_TRUE(proved.actions[0].proved_self_disabling);
  EXPECT_EQ(proved.actions[0].writes, ValueSet::of(2));

  // a0's write re-enables a1: individually self-disabling, but not at the
  // process level, so the proof must NOT go through.
  const AbsintResult chain = analyze_source(source(
      "protocol chain;\n"
      "domain 3;\n"
      "reads -1 .. 0;\n"
      "legit: x[0] == 2;\n"
      "action a0: x[0] == 0 -> x[0] := 1;\n"
      "action a1: x[0] == 1 -> x[0] := 2;\n"));
  EXPECT_FALSE(chain.all_proved_self_disabling);

  // The copy action is concretely self-disabling, but the non-relational
  // box domain cannot see x[0] == x[-1] after the write: kMaybe, no proof.
  const AbsintResult agree = analyze_source(source(
      "protocol agree;\n"
      "domain 2;\n"
      "reads -1 .. 0;\n"
      "legit: x[-1] == x[0];\n"
      "action copy: x[-1] != x[0] -> x[0] := x[-1];\n"));
  EXPECT_FALSE(agree.all_proved_self_disabling);
}

TEST(Absint, VacuousGuardAndPersistentEnvelope) {
  const AbsintResult res = analyze_source(source(kRelations));
  EXPECT_EQ(res.actions[3].guard_truth, Truth::kFalse);  // contradiction
  EXPECT_NE(res.actions[1].guard_truth, Truth::kFalse);  // wide is live

  // kRelations' envelope descends to empty: 'high' consumes 2 without any
  // action replenishing it, so every action eventually dies (the RS100
  // all-dead suppression case).
  EXPECT_TRUE(res.persistent_values.empty());

  // A write cycle 1 -> 2 -> 1 sustains itself: W* = {1, 2}, excluding the
  // never-written 0.
  const AbsintResult cyc = analyze_source(source(
      "protocol cyc;\n"
      "domain 3;\n"
      "reads -1 .. 0;\n"
      "legit: x[0] != 0;\n"
      "action seed: x[0] == 0 -> x[0] := 1;\n"
      "action up: x[0] == 1 -> x[0] := 2;\n"
      "action down: x[0] == 2 -> x[0] := 1;\n"));
  EXPECT_EQ(cyc.persistent_values, ValueSet::of(1) | ValueSet::of(2));
}

TEST(Absint, ClosureProof) {
  // rise's guard contradicts its own legitimacy constraint: closed.
  EXPECT_EQ(prove_invariant_closure(source(
                "protocol closed;\n"
                "domain 2;\n"
                "reads -1 .. 0;\n"
                "legit: x[0] == 1;\n"
                "action rise: x[0] == 0 -> x[0] := 1;\n")),
            Truth::kTrue);
  // escape fires inside I and leaves it (the RS030 fixture shape): no
  // closure certificate may be issued.
  EXPECT_NE(prove_invariant_closure(source(
                "protocol leaky;\n"
                "domain 2;\n"
                "reads -1 .. 0;\n"
                "legit: x[0] == 0;\n"
                "action escape: x[-1] == 0 && x[0] == 0 -> x[0] := 1;\n")),
            Truth::kTrue);
}

// ---------------------------------------------------------------------------
// Trail replay, cross-validated against the concrete reconstruction.

TEST(Absint, ReplayAgreesWithRealizeTrail) {
  const struct {
    const char* name;
    Protocol p;
  } cases[] = {
      {"agreement_both", protocols::agreement_both()},
      {"sum_not_two_rot_up", protocols::sum_not_two_rotation(true)},
      {"sum_not_two_rot_down", protocols::sum_not_two_rotation(false)},
      {"three_coloring_rotation", protocols::three_coloring_rotation()},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto live = check_livelock_freedom(c.p);
    ASSERT_TRUE(live.trail().has_value());
    const auto concrete = realize_trail(c.p, *live.trail());
    const auto replay = replay_trail(c.p, *live.trail());
    // Soundness: a statically-unrealizable verdict must never contradict a
    // concrete realization, and a realized trail must replay.
    if (concrete.verdict == TrailRealization::kRealized)
      EXPECT_EQ(replay.verdict, TrailReplay::Verdict::kRealizable);
    if (replay.verdict == TrailReplay::Verdict::kUnrealizable) {
      EXPECT_NE(concrete.verdict, TrailRealization::kRealized);
      EXPECT_FALSE(replay.reason.empty());
    }
  }
}

TEST(Absint, ReplayCatchesTheSpuriousSumNotTwoTrail) {
  // The paper's known spurious rejection: the rotation revision's trail
  // does not survive replay at its implied ring size.
  const Protocol p = protocols::sum_not_two_rotation(true);
  const auto live = check_livelock_freedom(p);
  ASSERT_TRUE(live.trail().has_value());
  const auto replay = replay_trail(p, *live.trail());
  EXPECT_EQ(replay.verdict, TrailReplay::Verdict::kUnrealizable);
  EXPECT_EQ(realize_trail(p, *live.trail()).verdict,
            TrailRealization::kSpurious);
}

// ---------------------------------------------------------------------------
// The static rejection lane.

SynthesisOptions lane_options(bool lane, std::size_t threads) {
  SynthesisOptions o;
  o.static_reject_lane = lane;
  o.num_threads = threads;
  return o;
}

void expect_identical(const SynthesisResult& a, const SynthesisResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.candidates_examined, b.candidates_examined);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].protocol.name(), b.solutions[i].protocol.name());
    EXPECT_EQ(a.solutions[i].added, b.solutions[i].added);
  }
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].status, b.reports[i].status);
    EXPECT_EQ(a.reports[i].added, b.reports[i].added);
  }
}

TEST(StaticLane, VerdictsBitIdenticalLaneOnAndOff) {
  const struct {
    const char* name;
    Protocol p;
  } cases[] = {
      {"agreement_empty", protocols::agreement_empty()},
      {"coloring_empty(3)", protocols::coloring_empty(3)},
      {"sum_not_two_empty", protocols::sum_not_two_empty()},
      {"matching_skeleton", protocols::matching_skeleton()},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const SynthesisResult on1 =
        synthesize_convergence(c.p, lane_options(true, 1));
    const SynthesisResult off1 =
        synthesize_convergence(c.p, lane_options(false, 1));
    const SynthesisResult on4 =
        synthesize_convergence(c.p, lane_options(true, 4));
    expect_identical(on1, off1);
    expect_identical(on1, on4);
    // The lane must never mark a candidate the lane-off run accepted.
    for (std::size_t i = 0; i < on1.reports.size(); ++i)
      if (on1.reports[i].static_reject)
        EXPECT_FALSE(off1.reports[i].accepted());
  }
}

TEST(StaticLane, RefutesAddedArcCyclesAsRs002) {
  // Matching's candidate space is dominated by ill-formed revisions; every
  // one of them must be caught statically (the skeleton has no t-arcs, so
  // added-arc cycle detection is exact).
  const Protocol p = protocols::matching_skeleton();
  const SynthesisResult res = synthesize_convergence(p, lane_options(true, 1));
  std::size_t ill = 0, ill_static = 0;
  for (const auto& rep : res.reports) {
    if (rep.status != CandidateReport::Status::kRejectedIllFormed) continue;
    ++ill;
    if (rep.static_reject) {
      ++ill_static;
      ASSERT_FALSE(rep.ill_formed.empty());
      EXPECT_EQ(rep.ill_formed[0].code, "RS002");
    }
  }
  EXPECT_GT(ill, 0u);
  EXPECT_EQ(ill, ill_static);
}

TEST(StaticLane, TrailCertificatesFireOnColoring) {
  // coloring(3)'s rejected candidates all carry |E| = 1 livelock trails the
  // lane constructs outright.
  const Protocol p = protocols::coloring_empty(3);
  const SynthesisResult res = synthesize_convergence(p, lane_options(true, 1));
  std::size_t trail_static = 0;
  for (const auto& rep : res.reports)
    if (rep.status == CandidateReport::Status::kRejectedTrail &&
        rep.static_reject) {
      ++trail_static;
      ASSERT_TRUE(rep.trail.has_value());
      EXPECT_EQ(rep.trail->num_enabled, 1);
      // Static rejects skip the classification sweep by design.
      EXPECT_FALSE(rep.realization.has_value());
    }
  EXPECT_GT(trail_static, 0u);
}

TEST(StaticLane, LaneUnitRefutations) {
  const Protocol skel = protocols::sum_not_two_empty();
  const StaticRejectionLane lane(skel);
  // An added 2-cycle between two local states is an RS002 ill-formedness
  // certificate; delta is empty, so states 0 and 1 are t-arc sources of the
  // revision exactly when added below.
  const std::vector<LocalTransition> cycle = {{0, 1}, {1, 0}};
  const auto rej = lane.refute(cycle);
  ASSERT_TRUE(rej.has_value());
  EXPECT_EQ(rej->kind, StaticRejectionLane::Rejection::Kind::kIllFormed);
  ASSERT_FALSE(rej->diagnostics.empty());
  EXPECT_EQ(rej->diagnostics[0].code, "RS002");
  // The ill-formed-only screen agrees on cycles and stays silent otherwise.
  EXPECT_TRUE(lane.refute_ill_formed_only(cycle).has_value());
  EXPECT_FALSE(lane.refute_ill_formed_only({}).has_value());
}

}  // namespace
}  // namespace ringstab
