#include "core/ring_writer.hpp"

#include <gtest/gtest.h>

#include "core/parser.hpp"
#include "helpers.hpp"

namespace ringstab {
namespace {

// The central property: writing and re-parsing reproduces the protocol
// exactly (same domain, locality, δ_r, LC_r) for every zoo member.
class RingWriterZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingWriterZooTest, RoundTripIsExact) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const std::string src = to_ring_source(p);
  const Protocol q = parse_protocol(src);
  EXPECT_EQ(q.domain().size(), p.domain().size()) << src;
  EXPECT_EQ(q.locality(), p.locality()) << src;
  EXPECT_EQ(q.delta(), p.delta()) << src;
  EXPECT_EQ(q.legit_mask(), p.legit_mask()) << src;
}

INSTANTIATE_TEST_SUITE_P(Zoo, RingWriterZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

Protocol zoo_by_name(const std::string& name) {
  for (const auto& p : testing::protocol_zoo())
    if (p.name() == name) return p;
  throw std::runtime_error("no such zoo protocol: " + name);
}

TEST(RingWriter, SanitizesNonIdentifierNames) {
  // "3coloring" starts with a digit; the writer must emit a valid name.
  const Protocol p = zoo_by_name("3coloring");
  EXPECT_NO_THROW(parse_protocol(to_ring_source(p)));
}

TEST(RingWriter, SymbolicDomainsUseNames) {
  const Protocol p = zoo_by_name("matching_gen");
  const std::string src = to_ring_source(p);
  EXPECT_NE(src.find("domain left, right, self;"), std::string::npos);
  EXPECT_NE(src.find("reads -1 .. 1;"), std::string::npos);
}

TEST(RingWriter, NumericDomainsStayNumeric) {
  const Protocol p = zoo_by_name("agreement_both");
  const std::string src = to_ring_source(p);
  EXPECT_NE(src.find("domain 2;"), std::string::npos);
}

TEST(RingWriter, AllLegitAndNoLegitEdgeCases) {
  const auto sp = LocalStateSpace(Domain::range(2), {1, 0});
  const Protocol all("all", sp, {}, std::vector<bool>(4, true));
  EXPECT_EQ(parse_protocol(to_ring_source(all)).num_legit(), 4u);
  const Protocol none("none", sp, {}, std::vector<bool>(4, false));
  EXPECT_EQ(parse_protocol(to_ring_source(none)).num_legit(), 0u);
}

// Round-trip also holds for random protocols (legitimacy masks with no
// structure stress the cube cover).
TEST(RingWriter, RoundTripRandomProtocols) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 40; ++i) {
    const Protocol p = testing::random_protocol(rng);
    const Protocol q = parse_protocol(to_ring_source(p));
    EXPECT_EQ(q.delta(), p.delta());
    EXPECT_EQ(q.legit_mask(), p.legit_mask());
  }
}

}  // namespace
}  // namespace ringstab
