#include "local/ltg.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

TEST(Ltg, SArcsAreTheRcg) {
  const Ltg ltg(protocols::matching_generalizable());
  EXPECT_EQ(ltg.s_arcs().num_vertices(), 27u);
  EXPECT_EQ(ltg.s_arcs().num_arcs(), 81u);
}

TEST(Ltg, TArcsAreDelta) {
  const Protocol p = protocols::matching_generalizable();
  const Ltg ltg(p);
  EXPECT_EQ(ltg.t_arcs(), p.delta());
}

// s_arc_id is a bijection onto [0, |V|·|D|).
TEST(Ltg, SArcIdsAreDenseAndUnique) {
  for (const auto& p : testing::protocol_zoo()) {
    const Ltg ltg(p);
    std::vector<bool> seen(ltg.num_s_arc_ids(), false);
    for (LocalStateId u = 0; u < ltg.num_states(); ++u)
      for (VertexId v : ltg.s_arcs().out(u)) {
        const std::size_t id = ltg.s_arc_id(u, v);
        ASSERT_LT(id, ltg.num_s_arc_ids());
        EXPECT_FALSE(seen[id]) << p.name();
        seen[id] = true;
      }
    const std::size_t used =
        static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
    EXPECT_EQ(used, ltg.s_arcs().num_arcs()) << p.name();
  }
}

TEST(Ltg, DotMentionsStatesAndBothArcKinds) {
  const Ltg ltg(protocols::matching_gouda_acharya_fragment());
  const std::string dot = ltg.to_dot();
  EXPECT_NE(dot.find("lls"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // s-arcs
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);    // t-arcs
  const std::string no_s = ltg.to_dot(/*include_s_arcs=*/false);
  EXPECT_EQ(no_s.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
