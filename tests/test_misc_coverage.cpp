// Corner-case coverage across modules: spectra periodicity, graph caps,
// parser grammar edges, instance boundaries.
#include <gtest/gtest.h>

#include "core/parser.hpp"
#include "graph/cycles.hpp"
#include "graph/walks.hpp"
#include "helpers.hpp"
#include "local/deadlock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

// Closed-walk spectra are eventually periodic with period dividing the lcm
// of cycle lengths; pin it for Example 4.3 (cycles 4 and 6 ⇒ dense tail).
TEST(Coverage, SpectrumTailIsEventuallyAllTrue) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 64);
  for (std::size_t k = 6; k <= 64; ++k)
    EXPECT_TRUE(res.size_spectrum.at(k)) << k;
  EXPECT_FALSE(res.size_spectrum.at(5));
}

TEST(Coverage, JohnsonRespectsCap) {
  // Complete digraph on 5 vertices has many cycles; the cap truncates.
  Digraph g(5);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = 0; v < 5; ++v)
      if (u != v) g.add_arc(u, v);
  EXPECT_EQ(simple_cycles(g, 7).size(), 7u);
  EXPECT_GT(simple_cycles(g).size(), 80u);
}

TEST(Coverage, WalkOfLengthZeroAndOversize) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  std::vector<bool> marked{true, false};
  EXPECT_FALSE(closed_walk_of_length(g, marked, 0).has_value());
  EXPECT_FALSE(closed_walk_of_length(g, marked, 3).has_value());
  EXPECT_TRUE(closed_walk_of_length(g, marked, 4).has_value());
}

TEST(Coverage, ParserAcceptsDeclarationsInAnyOrder) {
  const Protocol p = parse_protocol(R"(
legit: x[-1] == x[0];
reads -1 .. 0;
domain 2;
protocol reordered;
)");
  EXPECT_EQ(p.name(), "reordered");
  EXPECT_EQ(p.num_legit(), 2u);
}

TEST(Coverage, ParserLastDeclarationWins) {
  const Protocol p = parse_protocol(R"(
protocol a; protocol b;
domain 3; domain 2;
reads -1 .. 0;
legit: 0; legit: 1;
)");
  EXPECT_EQ(p.name(), "b");
  EXPECT_EQ(p.domain().size(), 2u);
  EXPECT_EQ(p.num_legit(), p.num_states());
}

TEST(Coverage, ParserUnaryMinusAndNestedParens) {
  const Protocol p = parse_protocol(R"(
protocol u; domain 3; reads -1 .. 0;
legit: ((x[0]) - (-1)) != ((x[-1] + 1));
)");
  // x0 + 1 != x-1 + 1  ⟺  x0 != x-1: 6 of 9 states.
  EXPECT_EQ(p.num_legit(), 6u);
}

TEST(Coverage, ActionGuardFalseEverywhereIsFine) {
  const Protocol p = parse_protocol(R"(
protocol f; domain 2; reads -1 .. 0; legit: 1;
action never: 0 -> x[0] := 1;
)");
  EXPECT_TRUE(p.delta().empty());
}

TEST(Coverage, WiderUnidirectionalLocalityWorks) {
  // reads -2 .. 0: the representative sees two predecessors.
  const Protocol p = parse_protocol(R"(
protocol two_back; domain 2; reads -2 .. 0;
legit: x[-2] == x[0];
)");
  EXPECT_EQ(p.num_states(), 8u);
  const auto res = analyze_deadlocks(p, 8);
  // Empty protocol: every ¬LC ring state deadlocks; K=2 aliases x[-2]=x[0]
  // so every state is legit there — the spectrum must match the checker.
  for (std::size_t k = 3; k <= 7; ++k)
    EXPECT_EQ(res.size_spectrum.at(k), testing::global_has_deadlock(p, k))
        << k;
}

TEST(Coverage, DeadlockWitnessRespectsWindowLowerBound) {
  const Protocol p = protocols::matching_nongeneralizable();
  // K=2 < window(3): the walk construction does not apply.
  EXPECT_FALSE(deadlock_witness_ring(p, 2).has_value());
}

TEST(Coverage, RingInstanceMinimumSize) {
  EXPECT_THROW(RingInstance(protocols::agreement_both(), 0), ModelError);
  EXPECT_NO_THROW(RingInstance(protocols::agreement_both(), 2));
}

TEST(Coverage, GlobalCheckerOnTrivialInvariant) {
  // LC ≡ true: no state is outside I; trivially stabilizing.
  const Protocol p = parse_protocol(
      "protocol t; domain 2; reads -1 .. 0; legit: 1;");
  const RingInstance ring(p, 4);
  const auto res = GlobalChecker(ring).check_all();
  EXPECT_TRUE(res.strongly_converges());
  EXPECT_EQ(res.max_recovery_steps, 0u);
}

TEST(Coverage, GlobalCheckerOnEmptyInvariant) {
  // LC ≡ false: everything is outside I; all states are deadlocks outside I.
  const Protocol p = parse_protocol(
      "protocol f; domain 2; reads -1 .. 0; legit: 0;");
  const RingInstance ring(p, 3);
  const GlobalChecker checker(ring);
  EXPECT_EQ(checker.count_deadlocks_outside_invariant(), 8u);
  EXPECT_FALSE(checker.check_weak_convergence());
}

}  // namespace
}  // namespace ringstab
