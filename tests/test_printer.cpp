#include "core/printer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"

namespace ringstab {
namespace {

// Expanding the printed guarded commands must reproduce δ_r exactly — the
// printer is a lossless re-encoding, not a lossy summary.
class PrinterZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrinterZooTest, GuardedCommandsAreExact) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const auto& space = p.space();

  std::set<LocalTransition> expanded;
  for (const auto& act : to_guarded_commands(p)) {
    // Enumerate the cube.
    std::vector<std::size_t> idx(act.allowed.size(), 0);
    while (true) {
      std::vector<Value> vals(act.allowed.size());
      for (std::size_t i = 0; i < act.allowed.size(); ++i)
        vals[i] = act.allowed[i][idx[i]];
      const LocalStateId from = space.encode(vals);
      EXPECT_EQ(space.self(from), act.write_from);
      expanded.insert({from, space.with_self(from, act.write_to)});
      std::size_t i = 0;
      for (; i < act.allowed.size(); ++i) {
        if (++idx[i] < act.allowed[i].size()) break;
        idx[i] = 0;
      }
      if (i == act.allowed.size()) break;
    }
  }
  const std::set<LocalTransition> want(p.delta().begin(), p.delta().end());
  EXPECT_EQ(expanded, want) << p.name();
}

TEST_P(PrinterZooTest, DescribeMentionsNameAndCounts) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  const std::string text = describe(p);
  EXPECT_NE(text.find(p.name()), std::string::npos);
  EXPECT_NE(text.find(std::to_string(p.delta().size())), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Zoo, PrinterZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

TEST(Printer, DescribeTransitionShowsWritePair) {
  const auto space = LocalStateSpace(Domain::range(2), {1, 0});
  const Protocol p("t", space,
                   {{space.encode(std::vector<Value>{1, 0}),
                     space.encode(std::vector<Value>{1, 1})}},
                   std::vector<bool>(4, true));
  const std::string s = describe_transition(p, p.delta()[0]);
  EXPECT_NE(s.find("0→1"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
