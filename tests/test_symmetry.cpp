// Rotation-symmetry reduction: must agree exactly with the plain checker.
#include "global/symmetry.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

TEST(Symmetry, CanonicalIsMinimalRotationInvariant) {
  const RingInstance ring(protocols::agreement_both(), 6);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const GlobalStateId s = rng() % ring.num_states();
    const GlobalStateId c = canonical_rotation(ring, s);
    EXPECT_LE(c, s);
    // Canonical of any rotation equals canonical of s.
    auto vals = ring.decode(s);
    std::rotate(vals.begin(), vals.begin() + 1, vals.end());
    EXPECT_EQ(canonical_rotation(ring, ring.encode(vals)), c);
    // Idempotent.
    EXPECT_EQ(canonical_rotation(ring, c), c);
  }
}

TEST(Symmetry, OrbitSizesDivideK) {
  const RingInstance ring(protocols::matching_skeleton(), 6);
  GlobalStateId canonical = 0, total = 0;
  for (GlobalStateId s = 0; s < ring.num_states(); ++s) {
    if (canonical_rotation(ring, s) != s) continue;
    const std::size_t orbit = rotation_orbit_size(ring, s);
    EXPECT_EQ(6 % orbit, 0u);
    ++canonical;
    total += orbit;
  }
  // Orbits partition the state space.
  EXPECT_EQ(total, ring.num_states());
  // Burnside sanity: far fewer representatives than states.
  EXPECT_LT(canonical, ring.num_states() / 4);
}

// The symmetric checker's verdicts equal the plain checker's, at a fraction
// of the visited states — across the zoo.
class SymmetryZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetryZooTest, AgreesWithPlainChecker) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  for (std::size_t k : {4u, 5u, 6u}) {
    const RingInstance ring(p, k);
    const GlobalChecker plain(ring);
    const auto sym = check_symmetric(ring);
    EXPECT_EQ(sym.num_deadlocks_outside_i,
              plain.count_deadlocks_outside_invariant())
        << p.name() << " K=" << k;
    EXPECT_EQ(sym.has_livelock, plain.find_livelock().has_value())
        << p.name() << " K=" << k;
    EXPECT_LT(sym.canonical_states_visited, ring.num_states())
        << p.name() << " K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SymmetryZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

// And on random protocols.
TEST(Symmetry, AgreesOnRandomProtocols) {
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 12; ++i) {
    const Protocol p = testing::random_protocol(rng);
    for (std::size_t k : {4u, 6u}) {
      const RingInstance ring(p, k);
      const GlobalChecker plain(ring);
      const auto sym = check_symmetric(ring);
      EXPECT_EQ(sym.num_deadlocks_outside_i,
                plain.count_deadlocks_outside_invariant())
          << p.name() << " K=" << k;
      EXPECT_EQ(sym.has_livelock, plain.find_livelock().has_value())
          << p.name() << " K=" << k;
    }
  }
}

TEST(Symmetry, DeadlockRepsAreCanonicalDeadlocks) {
  const RingInstance ring(protocols::matching_nongeneralizable(), 6);
  const auto sym = check_symmetric(ring);
  ASSERT_FALSE(sym.deadlock_orbit_reps.empty());
  for (GlobalStateId s : sym.deadlock_orbit_reps) {
    EXPECT_EQ(canonical_rotation(ring, s), s);
    EXPECT_TRUE(ring.is_deadlock(s));
    EXPECT_FALSE(ring.in_invariant(s));
  }
}

}  // namespace
}  // namespace ringstab
