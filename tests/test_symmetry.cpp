// Rotation-symmetry reduction: must agree exactly with the plain checker.
#include "global/symmetry.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "global/necklace.hpp"
#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

// Burnside: #necklaces = (1/k) Σ_{r | k} φ(r) d^{k/r}.
std::uint64_t necklaces_by_burnside(std::size_t k, std::size_t d) {
  auto phi = [](std::size_t n) {
    std::size_t result = n;
    for (std::size_t p = 2; p * p <= n; ++p) {
      if (n % p != 0) continue;
      while (n % p == 0) n /= p;
      result -= result / p;
    }
    if (n > 1) result -= result / n;
    return result;
  };
  std::uint64_t sum = 0;
  for (std::size_t r = 1; r <= k; ++r) {
    if (k % r != 0) continue;
    std::uint64_t pw = 1;
    for (std::size_t i = 0; i < k / r; ++i) pw *= d;
    sum += phi(r) * pw;
  }
  return sum / k;
}

// The FKM enumerator's necklaces are exactly the rotation orbits: they are
// canonical, strictly ascending, their orbit sizes sum to |D|^K (the
// necklace identity), and their count matches Burnside's formula.
TEST(Necklace, EnumerationIdentity) {
  for (std::size_t d : {2u, 3u, 4u}) {
    for (std::size_t k = 1; k <= 12; ++k) {
      const NecklaceEnumerator enumerator(k, d);
      std::uint64_t count = 0, orbit_sum = 0, expect_states = 1;
      for (std::size_t i = 0; i < k; ++i) expect_states *= d;
      GlobalStateId prev = 0;
      bool first = true;
      enumerator.visit_all([&](const Value* digits, GlobalStateId id,
                               std::uint32_t orbit) {
        ASSERT_TRUE(first || id > prev) << "not ascending at id " << id;
        first = false;
        prev = id;
        ++count;
        orbit_sum += orbit;
        ASSERT_EQ(orbit, cyclic_period(digits, k));
        ASSERT_EQ(canonical_necklace_id(digits, k, enumerator.powers()), id);
        ASSERT_EQ(k % orbit, 0u);
      });
      EXPECT_EQ(orbit_sum, expect_states) << "k=" << k << " d=" << d;
      EXPECT_EQ(count, necklaces_by_burnside(k, d)) << "k=" << k << " d=" << d;
      EXPECT_EQ(count_necklaces(k, d), count);
    }
  }
}

// Slot-partitioned enumeration must reproduce the serial stream for any
// split of the slot range (this is what makes the parallel census exact).
TEST(Necklace, SlotPartitionReproducesSerialOrder) {
  const NecklaceEnumerator enumerator(9, 3);
  std::vector<GlobalStateId> serial;
  enumerator.visit_all([&](const Value*, GlobalStateId id, std::uint32_t) {
    serial.push_back(id);
  });
  for (std::uint64_t parts : {2u, 7u, 64u}) {
    std::vector<GlobalStateId> split;
    const std::uint64_t n = enumerator.num_slots();
    for (std::uint64_t j = 0; j < parts; ++j) {
      const std::uint64_t b = n * j / parts, e = n * (j + 1) / parts;
      enumerator.visit_slots(b, e,
                             [&](const Value*, GlobalStateId id,
                                 std::uint32_t) { split.push_back(id); });
    }
    EXPECT_EQ(split, serial) << parts << " parts";
  }
}

TEST(Symmetry, CanonicalIsMinimalRotationInvariant) {
  const RingInstance ring(protocols::agreement_both(), 6);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const GlobalStateId s = rng() % ring.num_states();
    const GlobalStateId c = canonical_rotation(ring, s);
    EXPECT_LE(c, s);
    // Canonical of any rotation equals canonical of s.
    auto vals = ring.decode(s);
    std::rotate(vals.begin(), vals.begin() + 1, vals.end());
    EXPECT_EQ(canonical_rotation(ring, ring.encode(vals)), c);
    // Idempotent.
    EXPECT_EQ(canonical_rotation(ring, c), c);
  }
}

TEST(Symmetry, OrbitSizesDivideK) {
  const RingInstance ring(protocols::matching_skeleton(), 6);
  GlobalStateId canonical = 0, total = 0;
  for (GlobalStateId s = 0; s < ring.num_states(); ++s) {
    if (canonical_rotation(ring, s) != s) continue;
    const std::size_t orbit = rotation_orbit_size(ring, s);
    EXPECT_EQ(6 % orbit, 0u);
    ++canonical;
    total += orbit;
  }
  // Orbits partition the state space.
  EXPECT_EQ(total, ring.num_states());
  // Burnside sanity: far fewer representatives than states.
  EXPECT_LT(canonical, ring.num_states() / 4);
}

// A livelock witness must be a genuine cycle: every state outside I, every
// consecutive pair (cyclically) an actual transition of the instance.
void expect_valid_livelock_cycle(const RingInstance& ring,
                                 const std::vector<GlobalStateId>& cycle) {
  ASSERT_FALSE(cycle.empty());
  std::vector<RingInstance::Step> succ;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_FALSE(ring.in_invariant(cycle[i]));
    const GlobalStateId next = cycle[(i + 1) % cycle.size()];
    ring.successors(cycle[i], succ);
    const bool is_edge =
        std::any_of(succ.begin(), succ.end(),
                    [&](const auto& s) { return s.target == next; });
    EXPECT_TRUE(is_edge) << "not a transition: " << cycle[i] << " -> " << next;
  }
}

// The symmetric checker's verdicts and counts are bit-identical to the
// plain checker's across the zoo at K=2..10, for 1 and 4 threads, at a
// fraction of the visited states.
class SymmetryZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetryZooTest, AgreesWithPlainChecker) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  for (std::size_t k = 2; k <= 10; ++k) {
    const RingInstance ring(p, k);
    // Keep the expensive side (the plain checker's |D|^K sweep) bounded;
    // every d<=3 zoo protocol still reaches K=10.
    if (ring.num_states() > (GlobalStateId{1} << 18)) break;
    const auto plain = GlobalChecker(ring).check_all();
    for (std::size_t threads : {1u, 4u}) {
      const auto sym = check_symmetric(ring, 8, threads);
      EXPECT_EQ(sym.num_deadlocks_outside_i, plain.num_deadlocks_outside_i)
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.has_livelock, plain.has_livelock)
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.closure_ok, plain.closure_ok)
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.weakly_converges, plain.weakly_converges)
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.strongly_converges(), plain.strongly_converges())
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.max_recovery_steps, plain.max_recovery_steps)
          << p.name() << " K=" << k << " threads=" << threads;
      EXPECT_EQ(sym.num_states, ring.num_states());
      EXPECT_EQ(sym.num_necklaces, count_necklaces(k, p.domain().size()))
          << p.name() << " K=" << k;
      EXPECT_LT(sym.canonical_states_visited, ring.num_states())
          << p.name() << " K=" << k;
      if (sym.has_livelock)
        expect_valid_livelock_cycle(ring, sym.livelock_cycle);
      if (!sym.closure_ok) {
        ASSERT_TRUE(sym.closure_violation.has_value());
        EXPECT_TRUE(ring.in_invariant(sym.closure_violation->first));
        EXPECT_FALSE(ring.in_invariant(sym.closure_violation->second));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SymmetryZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

// And on random protocols.
TEST(Symmetry, AgreesOnRandomProtocols) {
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 12; ++i) {
    const Protocol p = testing::random_protocol(rng);
    for (std::size_t k : {4u, 6u}) {
      const RingInstance ring(p, k);
      const GlobalChecker plain(ring);
      const auto sym = check_symmetric(ring);
      EXPECT_EQ(sym.num_deadlocks_outside_i,
                plain.count_deadlocks_outside_invariant())
          << p.name() << " K=" << k;
      EXPECT_EQ(sym.has_livelock, plain.find_livelock().has_value())
          << p.name() << " K=" << k;
    }
  }
}

TEST(Symmetry, DeadlockRepsAreCanonicalDeadlocks) {
  const RingInstance ring(protocols::matching_nongeneralizable(), 6);
  const auto sym = check_symmetric(ring);
  ASSERT_FALSE(sym.deadlock_orbit_reps.empty());
  for (GlobalStateId s : sym.deadlock_orbit_reps) {
    EXPECT_EQ(canonical_rotation(ring, s), s);
    EXPECT_TRUE(ring.is_deadlock(s));
    EXPECT_FALSE(ring.in_invariant(s));
  }
}

}  // namespace
}  // namespace ringstab
