#include "global/trail_check.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "local/livelock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

// Agreement with both actions: the trail realizes a genuine K=3 livelock.
TEST(TrailCheck, AgreementTrailIsRealized) {
  const Protocol p = protocols::agreement_both();
  const auto live = check_livelock_freedom(p);
  ASSERT_TRUE(live.trail().has_value());
  const auto real = realize_trail(p, *live.trail());
  EXPECT_EQ(real.ring_size, 3u);
  EXPECT_EQ(real.verdict, TrailRealization::kRealized);
  ASSERT_TRUE(real.start_state.has_value());
  // The reconstructed state has the segment of 2 adjacent enablements.
  const RingInstance ring(p, 3);
  const GlobalStateId s = ring.encode(*real.start_state);
  EXPECT_EQ(ring.num_enabled(s), 2u);
  EXPECT_FALSE(ring.in_invariant(s));
}

// Sum-not-two rotation: the paper's reconstruction FAILS at K=3 — either
// the trail's windows are inconsistent around the ring (kNotInstantiable,
// the paper's literal "we fail to reconstruct") or the state exists but no
// livelock does (kSpurious). Both demonstrate non-necessity.
TEST(TrailCheck, SumNotTwoRotationTrailFailsToRealize) {
  for (bool up : {true, false}) {
    const Protocol p = protocols::sum_not_two_rotation(up);
    const auto live = check_livelock_freedom(p);
    ASSERT_TRUE(live.trail().has_value()) << up;
    const auto real = realize_trail(p, *live.trail());
    EXPECT_TRUE(real.verdict == TrailRealization::kSpurious ||
                real.verdict == TrailRealization::kNotInstantiable)
        << up << " got " << to_string(real.verdict);
    // Ground truth: no livelock at the implied K=3 either way.
    EXPECT_FALSE(testing::global_has_livelock(p, 3)) << up;
  }
}

// 3-coloring rotation: the trail's implied K has no livelock (K=3 is clean)
// but larger rings do — so this one classifies as spurious at its K even
// though the candidate is genuinely bad. Realization is per-K evidence, not
// a certification.
TEST(TrailCheck, ThreeColoringRealizationIsPerK) {
  const Protocol p = protocols::three_coloring_rotation();
  const auto live = check_livelock_freedom(p);
  ASSERT_TRUE(live.trail().has_value());
  const auto real = realize_trail(p, *live.trail());
  if (real.verdict == TrailRealization::kSpurious) {
    EXPECT_TRUE(testing::global_has_livelock(p, 4))
        << "spurious at the implied K, yet real livelocks exist at K=4";
  }
}

// Realization classifications agree with direct global checking at K.
TEST(TrailCheck, VerdictConsistentWithGlobalChecker) {
  const std::vector<Protocol> cases = {
      protocols::agreement_both(),
      protocols::sum_not_two_rotation(true),
      protocols::three_coloring_rotation(),
      protocols::coloring_with_choices(2, {1, 0}),
  };
  for (const auto& p : cases) {
    const auto live = check_livelock_freedom(p);
    if (!live.trail()) continue;
    const auto real = realize_trail(p, *live.trail());
    if (real.verdict == TrailRealization::kNotInstantiable) continue;
    const bool global = testing::global_has_livelock(p, real.ring_size);
    if (real.verdict == TrailRealization::kSpurious)
      EXPECT_FALSE(global) << p.name();
    else
      EXPECT_TRUE(global) << p.name();
  }
}

TEST(TrailCheck, ToStringCoversAllVerdicts) {
  EXPECT_STREQ(to_string(TrailRealization::kRealized), "realized");
  EXPECT_STREQ(to_string(TrailRealization::kSpurious), "spurious");
  EXPECT_STREQ(to_string(TrailRealization::kOtherLivelock),
               "other-livelock-at-K");
  EXPECT_STREQ(to_string(TrailRealization::kNotInstantiable),
               "not-instantiable");
}

}  // namespace
}  // namespace ringstab
