#include "global/cutoff.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

TEST(Cutoff, StabilizingProtocolPassesAllSizes) {
  const auto rep =
      verify_up_to_cutoff(protocols::agreement_one_sided(true), 2, 8);
  EXPECT_TRUE(rep.all_stabilize);
  EXPECT_EQ(rep.entries.size(), 7u);
  // 2^2 + ... + 2^8 states explored.
  GlobalStateId expect = 0;
  for (std::size_t k = 2; k <= 8; ++k) expect += GlobalStateId{1} << k;
  EXPECT_EQ(rep.states_explored, expect);
}

TEST(Cutoff, NonGeneralizableCaughtOnlyWithLargeEnoughCutoff) {
  const Protocol p = protocols::matching_nongeneralizable();
  // Checking only K=5 passes — the trap.
  EXPECT_TRUE(verify_up_to_cutoff(p, 5, 5).all_stabilize);
  // Including K=4 catches it.
  const auto rep = verify_up_to_cutoff(p, 4, 6);
  EXPECT_FALSE(rep.all_stabilize);
  EXPECT_FALSE(rep.entries[0].stabilizes);  // K=4
  EXPECT_TRUE(rep.entries[1].stabilizes);   // K=5
  EXPECT_FALSE(rep.entries[2].stabilizes);  // K=6
  EXPECT_GT(rep.entries[0].deadlocks_outside_i, 0u);
}

TEST(Cutoff, LivelocksAreReported) {
  const auto rep = verify_up_to_cutoff(protocols::agreement_both(), 4, 5);
  EXPECT_FALSE(rep.all_stabilize);
  for (const auto& e : rep.entries) {
    EXPECT_TRUE(e.has_livelock);
    EXPECT_EQ(e.deadlocks_outside_i, 0u);
  }
}

TEST(Cutoff, OversizeInstancesAreSkippedNotFatal) {
  const auto rep = verify_up_to_cutoff(protocols::agreement_one_sided(true),
                                       2, 40, /*max_states=*/1024);
  // K ≤ 10 checked (2^10 = 1024), the rest skipped.
  std::size_t checked = 0;
  for (const auto& e : rep.entries)
    if (e.num_states > 0) ++checked;
  EXPECT_EQ(checked, 9u);
}

TEST(Cutoff, ReportMentionsVerdicts) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto rep = verify_up_to_cutoff(p, 4, 5);
  const std::string text = rep.to_string(p);
  EXPECT_NE(text.find("FAILS"), std::string::npos);
  EXPECT_NE(text.find("stabilizes"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
