// Integration tests pinning the paper's headline claims end-to-end.
// Each test names the paper artifact it reproduces.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "local/convergence.hpp"
#include "local/deadlock.hpp"
#include "local/rcg.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

// Figure 1: the RCG of maximal matching over all 27 local states.
TEST(PaperClaims, Fig1MatchingRcg) {
  const Protocol p = protocols::matching_skeleton();
  const Digraph rcg = build_rcg(p.space());
  EXPECT_EQ(rcg.num_vertices(), 27u);
  EXPECT_EQ(rcg.num_arcs(), 81u);
  EXPECT_EQ(p.num_legit(), 7u);
}

// Example 4.2 + Figure 2: generalizable matching is deadlock-free for all K;
// the paper model-checked K = 5..8.
TEST(PaperClaims, Ex42DeadlockFreedomGeneralizes) {
  const Protocol p = protocols::matching_generalizable();
  EXPECT_TRUE(analyze_deadlocks(p).deadlock_free_all_k);
  for (std::size_t k = 5; k <= 8; ++k) {
    const RingInstance ring(p, k);
    const GlobalChecker checker(ring);
    EXPECT_EQ(checker.count_deadlocks_outside_invariant(), 0u) << k;
  }
}

// Example 4.3 + Figure 3: two bad cycles (lengths 4, 6) through
// ⟨left,left,self⟩; stabilizes at K=5; deadlocks at K ∈ {4, 6}.
TEST(PaperClaims, Ex43NonGeneralizable) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 12);
  ASSERT_EQ(res.bad_cycles.size(), 2u);
  EXPECT_EQ(res.bad_cycles[0].size(), 4u);
  EXPECT_EQ(res.bad_cycles[1].size(), 6u);
  EXPECT_TRUE(strongly_stabilizing(RingInstance(p, 5)));
  EXPECT_TRUE(testing::global_has_deadlock(p, 4));
  EXPECT_TRUE(testing::global_has_deadlock(p, 6));
  EXPECT_FALSE(testing::global_has_deadlock(p, 5));
}

// REFINEMENT of the paper's Example 4.3 claim ("deadlock free for ring sizes
// that are not multiples of 4 or 6"): composite closed walks through the two
// cycles also deadlock K=7 — confirmed by exhaustive global checking.
TEST(PaperClaims, Ex43PaperSizeClaimIsIncomplete) {
  const Protocol p = protocols::matching_nongeneralizable();
  EXPECT_TRUE(analyze_deadlocks(p, 8).size_spectrum.at(7));
  EXPECT_TRUE(testing::global_has_deadlock(p, 7))
      << "K=7 is neither a multiple of 4 nor 6, yet deadlocks";
}

// Example 4.3's closing remark: "resolving the local deadlock
// ⟨left,left,self⟩ renders RCG_p without cycles including local states in
// ¬LC_r; i.e., p(K) becomes deadlock free for any ring size K."
TEST(PaperClaims, Ex43SuggestedFixWorks) {
  const Protocol fixed = protocols::matching_nongeneralizable_fixed();
  const auto res = analyze_deadlocks(fixed, 12);
  EXPECT_TRUE(res.deadlock_free_all_k);
  EXPECT_TRUE(res.bad_cycles.empty());
  for (std::size_t k = 3; k <= 8; ++k)
    EXPECT_FALSE(testing::global_has_deadlock(fixed, k)) << k;
}

// Example 5.2: binary agreement with both corrective actions livelocks; the
// paper's K=4 livelock state sequence is a real computation.
TEST(PaperClaims, Ex52AgreementLivelock) {
  const Protocol p = protocols::agreement_both();
  EXPECT_TRUE(testing::global_has_livelock(p, 4));
  EXPECT_EQ(check_convergence(p).verdict,
            ConvergenceAnalysis::Verdict::kTrailFound);
}

// Figure 10 + Section 6.2: agreement synthesis gives exactly the two
// one-sided solutions; including both actions is rejected.
TEST(PaperClaims, Fig10AgreementSynthesis) {
  const auto res = synthesize_convergence(protocols::agreement_empty());
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.solutions.size(), 2u);
  EXPECT_EQ(check_convergence(protocols::agreement_both()).verdict,
            ConvergenceAnalysis::Verdict::kTrailFound)
      << "including both t01 and t10 must not be certified";
}

// Section 6.1 + Figure 9: 3-coloring synthesis fails on all 2^3 candidates.
TEST(PaperClaims, Fig9ThreeColoringFailure) {
  const auto res = synthesize_convergence(protocols::coloring_empty(3));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.candidates_examined, 8u);
}

// Figure 11: 2-coloring fails (consistent with the impossibility result the
// paper cites [25]); globally, the candidate really livelocks on odd rings.
TEST(PaperClaims, Fig11TwoColoringFailure) {
  const auto res = synthesize_convergence(protocols::coloring_empty(2));
  EXPECT_FALSE(res.success);
  const Protocol cand = protocols::coloring_with_choices(2, {1, 0});
  EXPECT_TRUE(testing::global_has_livelock(cand, 3));
  EXPECT_TRUE(testing::global_has_livelock(cand, 5));
}

// Figure 12 + Section 6.2: sum-not-two synthesis succeeds; the paper's
// published action pair is an accepted solution; rotations are rejected and
// their trails are spurious at the implied K=3 (the non-necessity point).
TEST(PaperClaims, Fig12SumNotTwo) {
  const auto res = synthesize_convergence(protocols::sum_not_two_empty());
  ASSERT_TRUE(res.success);
  const auto paper = protocols::sum_not_two_solution().delta();
  EXPECT_TRUE(std::any_of(
      res.solutions.begin(), res.solutions.end(),
      [&](const auto& s) { return s.protocol.delta() == paper; }));
  for (bool up : {true, false})
    EXPECT_FALSE(
        testing::global_has_livelock(protocols::sum_not_two_rotation(up), 3))
        << "rotation trail is spurious at its implied K";
}

// Gouda–Acharya (Figure 8): the two-action fragment livelocks at K=5 with a
// period-10 cycle alternating ⟨lslsl, sslsl, …⟩-style states.
TEST(PaperClaims, Fig8GoudaAcharyaLivelock) {
  const Protocol p = protocols::matching_gouda_acharya_fragment();
  const RingInstance ring(p, 5);
  const auto cycle = GlobalChecker(ring).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size() % 2, 0u);
}

// Corollary 5.7 context (enablement conservation, Lemma 5.5): along any
// livelock cycle of a unidirectional ring, |E| is constant.
TEST(PaperClaims, Lemma55EnablementConservation) {
  const Protocol p = protocols::agreement_both();
  for (std::size_t k : {4u, 5u, 6u}) {
    const RingInstance ring(p, k);
    const auto cycle = GlobalChecker(ring).find_livelock();
    ASSERT_TRUE(cycle.has_value()) << k;
    const std::size_t e0 = ring.num_enabled((*cycle)[0]);
    for (GlobalStateId s : *cycle) EXPECT_EQ(ring.num_enabled(s), e0) << k;
  }
}

// Corollary 5.7: no process is continuously enabled along a livelock — for
// every process there is a cycle state where it is disabled (so weak
// fairness cannot break unidirectional livelocks).
TEST(PaperClaims, Corollary57NoContinuouslyEnabledProcess) {
  const Protocol p = protocols::agreement_both();
  for (std::size_t k : {4u, 5u, 6u}) {
    const RingInstance ring(p, k);
    const auto cycle = GlobalChecker(ring).find_livelock();
    ASSERT_TRUE(cycle.has_value()) << k;
    for (std::size_t i = 0; i < k; ++i) {
      bool sometimes_disabled = false;
      for (GlobalStateId s : *cycle)
        if (!ring.process_enabled(s, i)) sometimes_disabled = true;
      EXPECT_TRUE(sometimes_disabled) << "K=" << k << " process " << i;
    }
  }
}

// Corollary 5.6: livelock transitions never collide — each step's firing
// process has a DISABLED successor (otherwise |E| would drop, contradicting
// Lemma 5.5).
TEST(PaperClaims, Corollary56NoCollisions) {
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, 5);
  const auto cycle = GlobalChecker(ring).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  const Schedule sched = schedule_from_path(ring, *cycle, /*cyclic=*/true);
  for (std::size_t n = 0; n < sched.size(); ++n) {
    const GlobalStateId s = (*cycle)[n];
    const std::size_t successor = (sched[n].process + 1) % 5;
    EXPECT_FALSE(ring.process_enabled(s, successor))
        << "firing P" << sched[n].process
        << " would collide with its enabled successor";
  }
}

// Lemma 5.2 (enablement propagation): along a livelock, a newly enabled
// process is always the successor of the one that just fired.
TEST(PaperClaims, Lemma52EnablementPropagation) {
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, 6);
  const auto cycle = GlobalChecker(ring).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  const Schedule sched = schedule_from_path(ring, *cycle, /*cyclic=*/true);
  for (std::size_t n = 0; n < sched.size(); ++n) {
    const GlobalStateId before = (*cycle)[n];
    const GlobalStateId after = (*cycle)[(n + 1) % cycle->size()];
    for (std::size_t j = 0; j < 6; ++j) {
      if (ring.process_enabled(before, j) || !ring.process_enabled(after, j))
        continue;
      EXPECT_EQ(j, (sched[n].process + 1) % 6)
          << "a non-successor process became enabled";
    }
  }
}

// Lemma 5.8/5.9 context: every livelock state has an illegitimate process.
TEST(PaperClaims, Lemma58LocalIllegitimacy) {
  const Protocol p = protocols::matching_gouda_acharya_fragment();
  const RingInstance ring(p, 5);
  const auto cycle = GlobalChecker(ring).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  for (GlobalStateId s : *cycle) EXPECT_FALSE(ring.in_invariant(s));
}

}  // namespace
}  // namespace ringstab
