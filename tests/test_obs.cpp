// The observability subsystem: sharded counter/histogram exactness under
// threads, per-thread span nesting, Chrome trace-event export, the
// manifest round-trip, and — the contract that matters — checker results
// bit-identical with instrumentation on.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "global/checker.hpp"
#include "helpers.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_json.hpp"
#include "obs/obs.hpp"
#include "obs/sinks.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

/// Flips the global instrumentation switch for one test body and restores
/// a clean registry (no sinks, zeroed counters/histograms/gauges) on the
/// way out.
class ObsGuard {
 public:
  ObsGuard() {
    reset();
    obs::g_enabled.store(true);
  }
  ~ObsGuard() {
    obs::g_enabled.store(false);
    reset();
  }

 private:
  static void reset() {
    obs::Registry::global().clear_sinks();
    obs::Registry::global().reset_counters();
    obs::Registry::global().reset_histograms();
    obs::Registry::global().reset_gauges();
  }
};

/// Collects every span record and heartbeat delivered to it.
class CaptureSink : public obs::Sink {
 public:
  void on_span(const obs::SpanRecord& rec) override {
    spans_.push_back(rec);
  }
  void on_heartbeat(const obs::Heartbeat& hb) override {
    heartbeats_.push_back(hb);
  }
  const std::vector<obs::SpanRecord>& spans() const { return spans_; }
  const std::vector<obs::Heartbeat>& heartbeats() const { return heartbeats_; }

 private:
  std::vector<obs::SpanRecord> spans_;
  std::vector<obs::Heartbeat> heartbeats_;
};

TEST(ObsCounter, ShardedTotalsAreExactUnderThreads) {
  const ObsGuard guard;
  obs::Counter& ctr = obs::counter("test.sharded");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10'000;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t)
      workers.emplace_back([&ctr] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) ctr.add(1);
        ctr.add(5);  // non-unit amounts must also land whole
      });
  }
  EXPECT_EQ(ctr.total(), kThreads * (kAddsPerThread + 5));
}

TEST(ObsCounter, DisabledAddIsANoop) {
  obs::Registry::global().reset_counters();
  ASSERT_FALSE(obs::enabled());
  obs::counter("test.disabled").add(42);
  EXPECT_EQ(obs::counter("test.disabled").total(), 0u);
}

TEST(ObsCounter, SnapshotOmitsZeroAndSortsByName) {
  const ObsGuard guard;
  obs::counter("test.b").add(2);
  obs::counter("test.a").add(1);
  obs::counter("test.zero");  // registered but never fired
  const auto totals = obs::Registry::global().snapshot_counters();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "test.a");
  EXPECT_EQ(totals[0].value, 1u);
  EXPECT_EQ(totals[1].name, "test.b");
  EXPECT_EQ(totals[1].value, 2u);
}

/// The checker counters chosen to be thread-count-invariant must agree
/// exactly between the serial engine and the parallel sweeps, on every
/// bundled protocol. (checker.closure_states_scanned is deliberately
/// excluded: the closure sweep early-exits on the first violation, so its
/// scan count depends on chunk scheduling.)
TEST(ObsCounter, CheckerCountersMatchSerialUnderFourThreads) {
  const ObsGuard guard;
  const char* kInvariant[] = {
      "checker.states_swept",     "checker.invariant_states",
      "checker.deadlocks_found",  "checker.fixpoint_rounds",
      "checker.frontier_states",  "checker.recovery_resolved",
  };
  for (const Protocol& p : testing::protocol_zoo()) {
    RingInstance ring(p, 5);
    obs::Registry::global().reset_counters();
    GlobalChecker(ring, 1).check_all();
    std::vector<std::uint64_t> serial;
    for (const char* name : kInvariant)
      serial.push_back(obs::counter(name).total());

    obs::Registry::global().reset_counters();
    GlobalChecker(ring, 4).check_all();
    for (std::size_t i = 0; i < std::size(kInvariant); ++i)
      EXPECT_EQ(obs::counter(kInvariant[i]).total(), serial[i])
          << p.name() << ": " << kInvariant[i];
  }
}

TEST(ObsSpan, NestingIsWellFormedPerThread) {
  const ObsGuard guard;
  auto capture = std::make_shared<CaptureSink>();
  obs::Registry::global().add_sink(capture);

  EXPECT_EQ(obs::current_span_name(), nullptr);
  {
    const obs::Span outer("test.outer");
    EXPECT_STREQ(obs::current_span_name(), "test.outer");
    {
      const obs::Span inner("test.inner");
      EXPECT_STREQ(obs::current_span_name(), "test.inner");
    }
    EXPECT_STREQ(obs::current_span_name(), "test.outer");
  }
  EXPECT_EQ(obs::current_span_name(), nullptr);

  // Spans are emitted on close, so inner closes first.
  const auto& spans = capture->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  // Temporal containment: inner ⊆ outer.
  EXPECT_GE(spans[0].start, spans[1].start);
  EXPECT_LE(spans[0].end, spans[1].end);
  EXPECT_LE(spans[0].start, spans[0].end);
}

TEST(ObsSpan, ParallelForChunksCarryTheEnclosingPhaseName) {
  const ObsGuard guard;
  auto capture = std::make_shared<CaptureSink>();
  obs::Registry::global().add_sink(capture);
  {
    const obs::Span phase("test.phase");
    parallel_for(1000, 2, 64, [](const ChunkRange&, std::size_t) {});
  }
  std::size_t chunks = 0;
  for (const auto& rec : capture->spans())
    if (rec.chunk) {
      ++chunks;
      EXPECT_STREQ(rec.name, "test.phase");
    }
  EXPECT_GT(chunks, 0u);
}

/// Minimal JSON syntax scanner: strings (with escapes), balanced
/// delimiters. Enough to catch a malformed trace without a JSON library.
bool json_is_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[': case '{': stack.push_back(c); break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ObsTrace, ChromeTraceExportParsesAndRoundTrips) {
  const ObsGuard guard;
  std::ostringstream out;
  obs::Registry::global().add_sink(
      std::make_shared<obs::ChromeTraceSink>(out));
  {
    const obs::Span outer("trace.outer");
    const obs::Span inner("trace.inner");
  }
  obs::counter("trace.counter").add(7);
  obs::Registry::global().finish();

  const std::string trace = out.str();
  EXPECT_TRUE(json_is_well_formed(trace)) << trace;
  // A JSON array of events with the spans, thread metadata, and counters.
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("trace.outer"), std::string::npos);
  EXPECT_NE(trace.find("trace.inner"), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("trace.counter"), std::string::npos);

  // Round-trip: the event names survive json_escape unchanged, and a second
  // flush must not duplicate the buffer.
  const std::string again = out.str();
  obs::Registry::global().finish();
  EXPECT_EQ(out.str(), again);
}

TEST(ObsTrace, JsonlSinkEmitsOneObjectPerLine) {
  const ObsGuard guard;
  std::ostringstream out;
  obs::Registry::global().add_sink(std::make_shared<obs::JsonlSink>(out));
  {
    const obs::Span s("jsonl.span");
  }
  obs::counter("jsonl.counter").add(3);
  obs::Registry::global().finish();

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(json_is_well_formed(line)) << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_GE(n, 2u);  // the span event + the final counter totals
}

// ── Histograms ──────────────────────────────────────────────────────

/// Every recorded value must land in a bucket whose [lower, upper] range
/// contains it, and bucket bounds must tile the u64 axis monotonically.
TEST(ObsHistogram, BucketBoundsContainEveryValue) {
  std::uint64_t probes[] = {0,  1,  7,   8,   9,    15,   16,        17,
                            63, 64, 100, 255, 1000, 4095, 1u << 20,  ~0ull};
  for (std::uint64_t v : probes) {
    const std::uint32_t idx = obs::Histogram::bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets) << v;
    EXPECT_LE(obs::Histogram::bucket_lower_bound(idx), v) << v;
    EXPECT_GE(obs::Histogram::bucket_upper_bound(idx), v) << v;
  }
  for (std::uint32_t i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_lower_bound(i),
              obs::Histogram::bucket_upper_bound(i - 1) + 1)
        << "gap or overlap at bucket " << i;
  }
}

/// Sharded recording loses nothing: after all writers quiesce, the merged
/// snapshot's count and sum are exact, and min/max are the true extremes.
TEST(ObsHistogram, MergedTotalsAreExactUnderThreads) {
  const ObsGuard guard;
  obs::Histogram& h = obs::histogram("test.hist");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t)
      workers.emplace_back([&h, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i)
          h.record(t * kPerThread + i);
      });
  }
  const obs::HistogramSnapshot snap = h.snapshot();
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);  // 0 + 1 + ... + kTotal-1
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kTotal - 1);
  std::uint64_t bucket_total = 0;
  for (const auto& [index, count] : snap.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(ObsHistogram, DisabledRecordIsANoop) {
  obs::Registry::global().reset_histograms();
  ASSERT_FALSE(obs::enabled());
  obs::histogram("test.hist_off").record(42);
  EXPECT_EQ(obs::histogram("test.hist_off").snapshot().count, 0u);
}

/// Quantiles are monotone in q, clamped into [min, max], and hit the exact
/// extremes at q=0 / q=1 (the bucket upper bound never overshoots max).
TEST(ObsHistogram, QuantilesAreMonotoneAndClamped) {
  const ObsGuard guard;
  obs::Histogram& h = obs::histogram("test.quant");
  for (std::uint64_t v = 3; v <= 100'000; v = v * 3 + 1) h.record(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_GT(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.0), snap.min);
  EXPECT_EQ(snap.quantile(1.0), snap.max);
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t at = snap.quantile(q);
    EXPECT_GE(at, prev) << "quantile not monotone at q=" << q;
    EXPECT_GE(at, snap.min);
    EXPECT_LE(at, snap.max);
    prev = at;
  }
}

/// The SCC region-size histogram is problem-shaped, not schedule-shaped:
/// its merged buckets must be identical at 1 and 4 threads on every
/// bundled protocol (SCC labels are canonical min-member ids, so the
/// multiset of component sizes is deterministic).
TEST(ObsHistogram, SccRegionSizesMatchSerialUnderFourThreads) {
  const ObsGuard guard;
  const auto grab = [] {
    for (const auto& snap : obs::Registry::global().snapshot_histograms())
      if (snap.name == "scc.region_size") return snap;
    return obs::HistogramSnapshot{};
  };
  for (const Protocol& p : testing::protocol_zoo()) {
    RingInstance ring(p, 5);
    obs::Registry::global().reset_histograms();
    GlobalChecker(ring, 1).check_all();
    const obs::HistogramSnapshot serial = grab();

    obs::Registry::global().reset_histograms();
    GlobalChecker(ring, 4).check_all();
    const obs::HistogramSnapshot parallel = grab();

    EXPECT_GT(serial.count, 0u) << p.name();
    EXPECT_EQ(parallel.count, serial.count) << p.name();
    EXPECT_EQ(parallel.sum, serial.sum) << p.name();
    EXPECT_EQ(parallel.min, serial.min) << p.name();
    EXPECT_EQ(parallel.max, serial.max) << p.name();
    EXPECT_EQ(parallel.buckets, serial.buckets) << p.name();
  }
}

// ── Gauges ──────────────────────────────────────────────────────────

TEST(ObsGauge, PeakTracksHighWaterAndSubSaturates) {
  const ObsGuard guard;
  obs::Gauge& g = obs::gauge("test.gauge");
  g.add(100);
  g.add(50);
  g.sub(120);
  EXPECT_EQ(g.value(), 30u);
  EXPECT_EQ(g.peak(), 150u);
  g.sub(1'000'000);  // under-reporting must clamp at zero, not wrap
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 150u);
  const auto gauges = obs::Registry::global().snapshot_gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "test.gauge");
  EXPECT_EQ(gauges[0].peak, 150u);
}

// ── Heartbeats ──────────────────────────────────────────────────────

/// Stopping the heartbeat emits one closing beat flagged `final`, so runs
/// shorter than a beat interval still report totals (and memory gauges).
TEST(ObsHeartbeat, StopEmitsAFinalBeat) {
  const ObsGuard guard;
  auto capture = std::make_shared<CaptureSink>();
  obs::Registry::global().add_sink(capture);
  obs::counter("test.beat").add(9);
  obs::Registry::global().start_heartbeat(std::chrono::milliseconds(60'000));
  obs::Registry::global().stop_heartbeat();

  const auto& beats = capture->heartbeats();
  ASSERT_GE(beats.size(), 1u);
  EXPECT_TRUE(beats.back().final);
  bool saw_counter = false;
  for (const auto& line : beats.back().lines)
    if (line.name == "test.beat" && line.total == 9) saw_counter = true;
  EXPECT_TRUE(saw_counter);
  bool saw_rss = false;
  for (const auto& g : beats.back().gauges)
    if (g.name == "mem.rss_bytes" && g.value > 0) saw_rss = true;
  EXPECT_TRUE(saw_rss);  // memory telemetry rides along on every beat
}

// ── Approx counters ─────────────────────────────────────────────────

TEST(ObsCounter, ApproxCountersAreFlaggedAndTildePrefixed) {
  const ObsGuard guard;
  obs::counter("test.approx", /*approx=*/true).add(3);
  obs::counter("test.exact").add(4);
  const auto totals = obs::Registry::global().snapshot_counters();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_TRUE(totals[0].approx);
  EXPECT_FALSE(totals[1].approx);

  std::ostringstream out;
  obs::Registry::global().add_sink(std::make_shared<obs::StatsSink>(out));
  obs::Registry::global().finish();
  EXPECT_NE(out.str().find("~test.approx"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("~test.exact"), std::string::npos) << out.str();
}

// ── The run manifest ────────────────────────────────────────────────

/// Emit → parse → re-emit must be byte-identical (the property every
/// downstream diff tool leans on), and the emitted document must pass the
/// same structural validation `ringstab-perf validate` applies.
TEST(ObsManifest, RoundTripIsBitIdenticalAndValid) {
  const ObsGuard guard;
  std::ostringstream out;
  auto sink = std::make_shared<obs::MetricsSink>(out, "test --metrics");
  obs::Registry::global().add_sink(sink);
  {
    const obs::Span outer("manifest.outer");
    {
      const obs::Span inner("manifest.inner");
    }
  }
  obs::counter("manifest.counter").add(11);
  obs::counter("manifest.approx", /*approx=*/true).add(2);
  obs::histogram("manifest.hist").record(123);
  obs::histogram("manifest.hist").record(456);
  obs::gauge("manifest.gauge").set(789);
  obs::Registry::global().finish();

  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  const obs::json::Value doc = obs::json::parse(text);
  EXPECT_EQ(obs::validate_manifest(doc), "");
  EXPECT_EQ(obs::json::dump(doc) + "\n", text);

  // Spot-check content: schema id, command, both phases with self <= total,
  // the approx flag, and the histogram/gauge rows.
  EXPECT_EQ(doc.find("schema")->str, obs::kManifestSchema);
  EXPECT_EQ(doc.find("command")->str, "test --metrics");
  const obs::json::Value* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 2u);
  bool saw_outer = false;
  for (const auto& phase : phases->items) {
    EXPECT_LE(phase.find("self_ns")->as_u64(), phase.find("total_ns")->as_u64());
    if (phase.find("name")->str == "manifest.outer") saw_outer = true;
  }
  EXPECT_TRUE(saw_outer);
  bool saw_approx = false;
  for (const auto& ctr : doc.find("counters")->items)
    if (ctr.find("name")->str == "manifest.approx") {
      const obs::json::Value* flag = ctr.find("approx");
      saw_approx = flag != nullptr && flag->boolean;
    }
  EXPECT_TRUE(saw_approx);
  const obs::json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->items.size(), 1u);
  EXPECT_EQ(hists->items[0].find("count")->as_u64(), 2u);
  EXPECT_EQ(hists->items[0].find("sum")->as_u64(), 579u);
  EXPECT_EQ(hists->items[0].find("max")->as_u64(), 456u);
}

TEST(ObsManifest, ValidatorRejectsWrongSchemaAndBadNumbers) {
  using obs::json::Value;
  Value wrong = obs::json::parse(R"({"schema":"something.else"})");
  EXPECT_NE(obs::validate_manifest(wrong), "");
  // A phase whose self exceeds total is structurally invalid.
  Value doc = obs::json::parse(
      R"({"schema":"ringstab.metrics.v2","command":"x","git_describe":"g",)"
      R"("hardware":{"threads_available":1},"wall_time_ns":5,)"
      R"("phases":[{"name":"p","calls":1,"total_ns":10,"self_ns":11}],)"
      R"("counters":[],"histograms":[],"gauges":[]})");
  EXPECT_NE(obs::validate_manifest(doc), "");
}

TEST(ObsOverhead, NullSinkLeavesCheckerResultsBitIdentical) {
  const Protocol p = testing::protocol_zoo().front();
  RingInstance ring(p, 6);
  const GlobalCheckResult plain = GlobalChecker(ring, 2).check_all();

  const ObsGuard guard;
  obs::Registry::global().add_sink(std::make_shared<obs::NullSink>());
  const GlobalCheckResult instrumented = GlobalChecker(ring, 2).check_all();

  EXPECT_EQ(instrumented.num_states, plain.num_states);
  EXPECT_EQ(instrumented.closure_ok, plain.closure_ok);
  EXPECT_EQ(instrumented.num_deadlocks_outside_i,
            plain.num_deadlocks_outside_i);
  EXPECT_EQ(instrumented.deadlock_samples, plain.deadlock_samples);
  EXPECT_EQ(instrumented.has_livelock, plain.has_livelock);
  EXPECT_EQ(instrumented.livelock_cycle, plain.livelock_cycle);
  EXPECT_EQ(instrumented.weakly_converges, plain.weakly_converges);
  EXPECT_EQ(instrumented.max_recovery_steps, plain.max_recovery_steps);
  EXPECT_EQ(instrumented.strongly_converges(), plain.strongly_converges());
}

}  // namespace
}  // namespace ringstab
