// The observability subsystem: sharded counter exactness under threads,
// per-thread span nesting, Chrome trace-event export, and — the contract
// that matters — checker results bit-identical with instrumentation on.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "global/checker.hpp"
#include "helpers.hpp"
#include "obs/obs.hpp"
#include "obs/sinks.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

/// Flips the global instrumentation switch for one test body and restores
/// a clean registry (no sinks, zeroed counters) on the way out.
class ObsGuard {
 public:
  ObsGuard() {
    obs::Registry::global().clear_sinks();
    obs::Registry::global().reset_counters();
    obs::g_enabled.store(true);
  }
  ~ObsGuard() {
    obs::g_enabled.store(false);
    obs::Registry::global().clear_sinks();
    obs::Registry::global().reset_counters();
  }
};

/// Collects every span record delivered to it, for nesting assertions.
class CaptureSink : public obs::Sink {
 public:
  void on_span(const obs::SpanRecord& rec) override {
    spans_.push_back(rec);
  }
  const std::vector<obs::SpanRecord>& spans() const { return spans_; }

 private:
  std::vector<obs::SpanRecord> spans_;
};

TEST(ObsCounter, ShardedTotalsAreExactUnderThreads) {
  const ObsGuard guard;
  obs::Counter& ctr = obs::counter("test.sharded");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10'000;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t)
      workers.emplace_back([&ctr] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) ctr.add(1);
        ctr.add(5);  // non-unit amounts must also land whole
      });
  }
  EXPECT_EQ(ctr.total(), kThreads * (kAddsPerThread + 5));
}

TEST(ObsCounter, DisabledAddIsANoop) {
  obs::Registry::global().reset_counters();
  ASSERT_FALSE(obs::enabled());
  obs::counter("test.disabled").add(42);
  EXPECT_EQ(obs::counter("test.disabled").total(), 0u);
}

TEST(ObsCounter, SnapshotOmitsZeroAndSortsByName) {
  const ObsGuard guard;
  obs::counter("test.b").add(2);
  obs::counter("test.a").add(1);
  obs::counter("test.zero");  // registered but never fired
  const auto totals = obs::Registry::global().snapshot_counters();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "test.a");
  EXPECT_EQ(totals[0].value, 1u);
  EXPECT_EQ(totals[1].name, "test.b");
  EXPECT_EQ(totals[1].value, 2u);
}

/// The checker counters chosen to be thread-count-invariant must agree
/// exactly between the serial engine and the parallel sweeps, on every
/// bundled protocol. (checker.closure_states_scanned is deliberately
/// excluded: the closure sweep early-exits on the first violation, so its
/// scan count depends on chunk scheduling.)
TEST(ObsCounter, CheckerCountersMatchSerialUnderFourThreads) {
  const ObsGuard guard;
  const char* kInvariant[] = {
      "checker.states_swept",     "checker.invariant_states",
      "checker.deadlocks_found",  "checker.fixpoint_rounds",
      "checker.frontier_states",  "checker.recovery_resolved",
  };
  for (const Protocol& p : testing::protocol_zoo()) {
    RingInstance ring(p, 5);
    obs::Registry::global().reset_counters();
    GlobalChecker(ring, 1).check_all();
    std::vector<std::uint64_t> serial;
    for (const char* name : kInvariant)
      serial.push_back(obs::counter(name).total());

    obs::Registry::global().reset_counters();
    GlobalChecker(ring, 4).check_all();
    for (std::size_t i = 0; i < std::size(kInvariant); ++i)
      EXPECT_EQ(obs::counter(kInvariant[i]).total(), serial[i])
          << p.name() << ": " << kInvariant[i];
  }
}

TEST(ObsSpan, NestingIsWellFormedPerThread) {
  const ObsGuard guard;
  auto capture = std::make_shared<CaptureSink>();
  obs::Registry::global().add_sink(capture);

  EXPECT_EQ(obs::current_span_name(), nullptr);
  {
    const obs::Span outer("test.outer");
    EXPECT_STREQ(obs::current_span_name(), "test.outer");
    {
      const obs::Span inner("test.inner");
      EXPECT_STREQ(obs::current_span_name(), "test.inner");
    }
    EXPECT_STREQ(obs::current_span_name(), "test.outer");
  }
  EXPECT_EQ(obs::current_span_name(), nullptr);

  // Spans are emitted on close, so inner closes first.
  const auto& spans = capture->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  // Temporal containment: inner ⊆ outer.
  EXPECT_GE(spans[0].start, spans[1].start);
  EXPECT_LE(spans[0].end, spans[1].end);
  EXPECT_LE(spans[0].start, spans[0].end);
}

TEST(ObsSpan, ParallelForChunksCarryTheEnclosingPhaseName) {
  const ObsGuard guard;
  auto capture = std::make_shared<CaptureSink>();
  obs::Registry::global().add_sink(capture);
  {
    const obs::Span phase("test.phase");
    parallel_for(1000, 2, 64, [](const ChunkRange&, std::size_t) {});
  }
  std::size_t chunks = 0;
  for (const auto& rec : capture->spans())
    if (rec.chunk) {
      ++chunks;
      EXPECT_STREQ(rec.name, "test.phase");
    }
  EXPECT_GT(chunks, 0u);
}

/// Minimal JSON syntax scanner: strings (with escapes), balanced
/// delimiters. Enough to catch a malformed trace without a JSON library.
bool json_is_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[': case '{': stack.push_back(c); break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ObsTrace, ChromeTraceExportParsesAndRoundTrips) {
  const ObsGuard guard;
  std::ostringstream out;
  obs::Registry::global().add_sink(
      std::make_shared<obs::ChromeTraceSink>(out));
  {
    const obs::Span outer("trace.outer");
    const obs::Span inner("trace.inner");
  }
  obs::counter("trace.counter").add(7);
  obs::Registry::global().finish();

  const std::string trace = out.str();
  EXPECT_TRUE(json_is_well_formed(trace)) << trace;
  // A JSON array of events with the spans, thread metadata, and counters.
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("trace.outer"), std::string::npos);
  EXPECT_NE(trace.find("trace.inner"), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("trace.counter"), std::string::npos);

  // Round-trip: the event names survive json_escape unchanged, and a second
  // flush must not duplicate the buffer.
  const std::string again = out.str();
  obs::Registry::global().finish();
  EXPECT_EQ(out.str(), again);
}

TEST(ObsTrace, JsonlSinkEmitsOneObjectPerLine) {
  const ObsGuard guard;
  std::ostringstream out;
  obs::Registry::global().add_sink(std::make_shared<obs::JsonlSink>(out));
  {
    const obs::Span s("jsonl.span");
  }
  obs::counter("jsonl.counter").add(3);
  obs::Registry::global().finish();

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(json_is_well_formed(line)) << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_GE(n, 2u);  // the span event + the final counter totals
}

TEST(ObsOverhead, NullSinkLeavesCheckerResultsBitIdentical) {
  const Protocol p = testing::protocol_zoo().front();
  RingInstance ring(p, 6);
  const GlobalCheckResult plain = GlobalChecker(ring, 2).check_all();

  const ObsGuard guard;
  obs::Registry::global().add_sink(std::make_shared<obs::NullSink>());
  const GlobalCheckResult instrumented = GlobalChecker(ring, 2).check_all();

  EXPECT_EQ(instrumented.num_states, plain.num_states);
  EXPECT_EQ(instrumented.closure_ok, plain.closure_ok);
  EXPECT_EQ(instrumented.num_deadlocks_outside_i,
            plain.num_deadlocks_outside_i);
  EXPECT_EQ(instrumented.deadlock_samples, plain.deadlock_samples);
  EXPECT_EQ(instrumented.has_livelock, plain.has_livelock);
  EXPECT_EQ(instrumented.livelock_cycle, plain.livelock_cycle);
  EXPECT_EQ(instrumented.weakly_converges, plain.weakly_converges);
  EXPECT_EQ(instrumented.max_recovery_steps, plain.max_recovery_steps);
  EXPECT_EQ(instrumented.strongly_converges(), plain.strongly_converges());
}

}  // namespace
}  // namespace ringstab
