#include "local/precedence.hpp"

#include <gtest/gtest.h>

#include "global/checker.hpp"
#include "protocols/agreement.hpp"

namespace ringstab {
namespace {

// The paper's Example 5.2 livelock on K=4:
//   L = ≪1000, 1100, 0100, 0110, 0111, 0011, 1011, 1001≫
// with schedule Sch = ≪t01@P1, t10@P0, t01@P2, t01@P3, t10@P1, t10@P2,
//                      t01@P0, t10@P3≫ (in our process indexing).
struct Example52 {
  Protocol p = protocols::agreement_both();
  std::vector<Value> start{1, 0, 0, 0};
  Schedule schedule;

  Example52() {
    const auto& space = p.space();
    auto step = [&](std::size_t proc, Value from_prev, Value from_self,
                    Value to_self) {
      const LocalStateId a =
          space.encode(std::vector<Value>{from_prev, from_self});
      return ScheduledStep{proc, {a, space.with_self(a, to_self)}};
    };
    // 1000 →P1 1100 →P0 0100 →P2 0110 →P3 0111 →P0? ... derived from the
    // paper's state sequence:
    schedule = {
        step(1, 1, 0, 1),  // 1000 → 1100
        step(0, 0, 1, 0),  // 1100 → 0100 (P0 reads x3=0)
        step(2, 1, 0, 1),  // 0100 → 0110
        step(3, 1, 0, 1),  // 0110 → 0111
        step(1, 0, 1, 0),  // 0111 → 0011
        step(0, 1, 0, 1),  // 0011 → 1011 (P0 reads x3=1)
        step(2, 0, 1, 0),  // 1011 → 1001
        step(3, 0, 1, 0),  // 1001 → 1000
    };
  }
};

TEST(Precedence, Example52ScheduleIsALivelock) {
  const Example52 ex;
  EXPECT_TRUE(is_livelock_schedule(ex.p, ex.start, ex.schedule));
}

TEST(Precedence, ExecuteScheduleVisitsPaperStates) {
  const Example52 ex;
  const auto states = execute_schedule(ex.p, ex.start, ex.schedule);
  ASSERT_TRUE(states.has_value());
  ASSERT_EQ(states->size(), 9u);
  EXPECT_EQ((*states)[1], (std::vector<Value>{1, 1, 0, 0}));
  EXPECT_EQ((*states)[4], (std::vector<Value>{0, 1, 1, 1}));
  EXPECT_EQ((*states)[8], ex.start);
}

TEST(Precedence, MisfiringScheduleIsRejected) {
  const Example52 ex;
  Schedule wrong = ex.schedule;
  std::swap(wrong[0], wrong[3]);  // breaks enabledness
  EXPECT_FALSE(execute_schedule(ex.p, ex.start, wrong).has_value());
}

// Figure 5: exactly three independent pairs → 2³ = 8 precedence-preserving
// permutations (first transition fixed).
TEST(Precedence, Example52HasThreeIndependentPairsAndEightExtensions) {
  const Example52 ex;
  const auto rel = livelock_precedence(ex.p, 4, ex.schedule);
  EXPECT_EQ(rel.independent_pairs().size(), 3u);
  EXPECT_EQ(count_linear_extensions(rel), 8u);
}

// Figure 6 / Lemma 5.11: every precedence-preserving permutation is again a
// livelock.
TEST(Precedence, AllPermutationsAreLivelocks) {
  const Example52 ex;
  const auto perms =
      precedence_preserving_schedules(ex.p, ex.start, ex.schedule);
  EXPECT_EQ(perms.size(), 8u);
  for (const auto& sched : perms)
    EXPECT_TRUE(is_livelock_schedule(ex.p, ex.start, sched));
  // The original schedule is among them.
  EXPECT_NE(std::find(perms.begin(), perms.end(), ex.schedule), perms.end());
}

TEST(Precedence, DependentStepsStayOrdered) {
  const Example52 ex;
  const auto rel = livelock_precedence(ex.p, 4, ex.schedule);
  // Steps 0 (P1) and 1 (P0) touch adjacent processes: dependent.
  EXPECT_TRUE(rel.precedes[0][1]);
  EXPECT_FALSE(rel.precedes[1][0]);
  // Steps 1 (P0) and 2 (P2) are two apart on a 4-ring with window 2:
  // P2 reads x1, P0 writes x0 — independent.
  EXPECT_TRUE(rel.independent(1, 2));
}

TEST(Precedence, CountExtensionsHandlesChainsAndAntichains) {
  PrecedenceRelation chain;
  chain.size = 3;
  chain.precedes = {{false, true, true}, {false, false, true},
                    {false, false, false}};
  EXPECT_EQ(count_linear_extensions(chain), 1u);

  PrecedenceRelation anti;
  anti.size = 3;
  anti.precedes.assign(3, std::vector<bool>(3, false));
  EXPECT_EQ(count_linear_extensions(anti, /*fix_first=*/true), 2u);
  EXPECT_EQ(count_linear_extensions(anti, /*fix_first=*/false), 6u);
}

TEST(Precedence, SchedulesDerivedFromGlobalWitness) {
  // Extract a livelock cycle from the model checker and round-trip it
  // through schedule_from_path + is_livelock_schedule.
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, 4);
  const auto cycle = GlobalChecker(ring).find_livelock();
  ASSERT_TRUE(cycle.has_value());
  const Schedule sched = schedule_from_path(ring, *cycle, /*cyclic=*/true);
  EXPECT_EQ(sched.size(), cycle->size());
  EXPECT_TRUE(is_livelock_schedule(p, ring.decode((*cycle)[0]), sched));
}

TEST(Precedence, ApplyStepValidatesEnabledness) {
  const Protocol p = protocols::agreement_both();
  std::vector<Value> ring{0, 0, 0};
  const auto& space = p.space();
  const LocalStateId a = space.encode(std::vector<Value>{1, 0});
  ScheduledStep bogus{0, {a, space.with_self(a, 1)}};
  EXPECT_FALSE(apply_step(p, ring, bogus));
  EXPECT_EQ(ring, (std::vector<Value>{0, 0, 0})) << "state untouched";
}

}  // namespace
}  // namespace ringstab
