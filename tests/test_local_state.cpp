#include "core/local_state.hpp"

#include <gtest/gtest.h>

namespace ringstab {
namespace {

TEST(Locality, ValidatesSpans) {
  EXPECT_THROW((Locality{-1, 0}.validate()), ModelError);
  EXPECT_THROW((Locality{0, 0}.validate()), ModelError);
  EXPECT_THROW((Locality{5, 5}.validate()), ModelError);
  EXPECT_NO_THROW((Locality{1, 0}.validate()));
  EXPECT_NO_THROW((Locality{1, 1}.validate()));
}

TEST(Locality, Unidirectional) {
  EXPECT_TRUE((Locality{1, 0}.is_unidirectional()));
  EXPECT_FALSE((Locality{1, 1}.is_unidirectional()));
  EXPECT_TRUE((Locality{2, 0}.is_unidirectional()));
}

TEST(LocalStateSpace, SizeIsDomainPowWindow) {
  EXPECT_EQ(LocalStateSpace(Domain::range(2), {1, 0}).size(), 4u);
  EXPECT_EQ(LocalStateSpace(Domain::range(3), {1, 1}).size(), 27u);
  EXPECT_EQ(LocalStateSpace(Domain::range(3), {1, 0}).size(), 9u);
}

TEST(LocalStateSpace, EncodeDecodeRoundTrip) {
  const LocalStateSpace space(Domain::range(3), {1, 1});
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const auto window = space.decode(s);
    EXPECT_EQ(space.encode(window), s);
  }
}

TEST(LocalStateSpace, ValueMatchesDecode) {
  const LocalStateSpace space(Domain::range(3), {1, 1});
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const auto window = space.decode(s);
    EXPECT_EQ(space.value(s, -1), window[0]);
    EXPECT_EQ(space.value(s, 0), window[1]);
    EXPECT_EQ(space.value(s, 1), window[2]);
    EXPECT_EQ(space.self(s), window[1]);
  }
}

TEST(LocalStateSpace, WithValueChangesExactlyOneOffset) {
  const LocalStateSpace space(Domain::range(3), {1, 1});
  for (LocalStateId s = 0; s < space.size(); ++s) {
    for (int off = -1; off <= 1; ++off) {
      for (Value v = 0; v < 3; ++v) {
        const LocalStateId t = space.with_value(s, off, v);
        EXPECT_EQ(space.value(t, off), v);
        for (int other = -1; other <= 1; ++other) {
          if (other != off) {
            EXPECT_EQ(space.value(t, other), space.value(s, other));
          }
        }
      }
    }
  }
}

TEST(LocalStateSpace, BriefUsesAbbrevs) {
  const LocalStateSpace space(Domain::named({"left", "right", "self"}),
                              {1, 1});
  const LocalStateId s =
      space.encode(std::vector<Value>{0, 0, 2});
  EXPECT_EQ(space.brief(s), "lls");
}

TEST(LocalStateSpace, DescribeNamesOffsets) {
  const LocalStateSpace space(Domain::range(2), {1, 0});
  const LocalStateId s = space.encode(std::vector<Value>{1, 0});
  EXPECT_EQ(space.describe(s), "⟨x[-1]=1, x[0]=0⟩");
}

// De Bruijn structure: every state has exactly |D| right continuations and
// appears as a continuation of exactly |D| states.
TEST(LocalStateSpace, ContinuationDegreeIsDomainSize) {
  for (const auto loc : {Locality{1, 0}, Locality{1, 1}, Locality{2, 0}}) {
    const LocalStateSpace space(Domain::range(3), loc);
    std::vector<int> in_deg(space.size(), 0);
    for (LocalStateId u = 0; u < space.size(); ++u) {
      const auto cont = space.right_continuations(u);
      EXPECT_EQ(cont.size(), 3u);
      for (LocalStateId v : cont) {
        EXPECT_TRUE(space.right_continues(u, v));
        ++in_deg[v];
      }
    }
    for (int deg : in_deg) EXPECT_EQ(deg, 3);
  }
}

// right_continues must agree with the definitional check on shared offsets.
TEST(LocalStateSpace, ContinuationMatchesSharedOffsetDefinition) {
  const LocalStateSpace space(Domain::range(2), {1, 1});
  for (LocalStateId u = 0; u < space.size(); ++u)
    for (LocalStateId v = 0; v < space.size(); ++v) {
      const bool expected =
          space.value(u, 0) == space.value(v, -1) &&
          space.value(u, 1) == space.value(v, 0);
      EXPECT_EQ(space.right_continues(u, v), expected)
          << space.brief(u) << " → " << space.brief(v);
    }
}

TEST(LocalStateSpace, UnidirectionalContinuationSharesOneVariable) {
  const LocalStateSpace space(Domain::range(2), {1, 0});
  for (LocalStateId u = 0; u < space.size(); ++u)
    for (LocalStateId v = 0; v < space.size(); ++v)
      EXPECT_EQ(space.right_continues(u, v),
                space.value(u, 0) == space.value(v, -1));
}

TEST(LocalStateSpace, RejectsHugeWindow) {
  EXPECT_THROW(LocalStateSpace(Domain::range(64), {3, 3}), CapacityError);
}

}  // namespace
}  // namespace ringstab
