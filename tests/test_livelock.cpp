#include "local/livelock.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "local/convergence.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

TEST(Livelock, OneSidedAgreementIsFree) {
  const auto res = check_livelock_freedom(protocols::agreement_one_sided(true));
  EXPECT_EQ(res.verdict, LivelockAnalysis::Verdict::kLivelockFree);
  EXPECT_TRUE(res.covers_all_livelocks);
  EXPECT_TRUE(res.was_self_disabling);
}

TEST(Livelock, AgreementBothHasTrailAndRealLivelocks) {
  const Protocol p = protocols::agreement_both();
  const auto res = check_livelock_freedom(p);
  ASSERT_EQ(res.verdict, LivelockAnalysis::Verdict::kTrailFound);
  // The trail is genuine here: global livelocks at several K.
  for (std::size_t k = 3; k <= 6; ++k)
    EXPECT_TRUE(testing::global_has_livelock(p, k)) << k;
}

TEST(Livelock, BidirectionalVerdictIsQualified) {
  const auto res =
      check_livelock_freedom(protocols::matching_gouda_acharya_fragment());
  EXPECT_FALSE(res.covers_all_livelocks);
  EXPECT_EQ(res.verdict, LivelockAnalysis::Verdict::kTrailFound);
}

TEST(Livelock, NonSelfDisablingInputGetsTransformed) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = check_livelock_freedom(p);
  EXPECT_FALSE(res.was_self_disabling);
}

// Soundness of kLivelockFree over the zoo: no global livelock for K=2..7.
class LivelockZooTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LivelockZooTest, FreeVerdictIsGloballySound) {
  const Protocol p = testing::protocol_zoo()[GetParam()];
  if (!p.locality().is_unidirectional()) return;  // Thm 5.14 full coverage
  const auto res = check_livelock_freedom(p);
  if (res.verdict != LivelockAnalysis::Verdict::kLivelockFree) return;
  for (std::size_t k = 2; k <= 7; ++k)
    EXPECT_FALSE(testing::global_has_livelock(p, k))
        << p.name() << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Zoo, LivelockZooTest,
                         ::testing::Range<std::size_t>(
                             0, testing::protocol_zoo().size()));

// Combined convergence verdicts on the paper's flagship protocols.
TEST(Convergence, Verdicts) {
  using V = ConvergenceAnalysis::Verdict;
  EXPECT_EQ(check_convergence(protocols::agreement_one_sided(true)).verdict,
            V::kConverges);
  EXPECT_EQ(check_convergence(protocols::sum_not_two_solution()).verdict,
            V::kConverges);
  EXPECT_EQ(check_convergence(protocols::agreement_both()).verdict,
            V::kTrailFound);
  EXPECT_EQ(check_convergence(protocols::agreement_empty()).verdict,
            V::kDeadlock);
  EXPECT_EQ(check_convergence(protocols::matching_nongeneralizable()).verdict,
            V::kDeadlock);
}

TEST(Convergence, ConvergingVerdictMatchesGlobalChecking) {
  for (const auto& p : testing::protocol_zoo()) {
    if (!p.locality().is_unidirectional()) continue;
    const auto res = check_convergence(p);
    if (res.verdict != ConvergenceAnalysis::Verdict::kConverges) continue;
    for (std::size_t k = 2; k <= 6; ++k) {
      const RingInstance ring(p, k);
      EXPECT_TRUE(GlobalChecker(ring).check_all().strongly_converges())
          << p.name() << " K=" << k;
    }
  }
}

TEST(Convergence, SummaryIsInformative) {
  const Protocol conv = protocols::sum_not_two_solution();
  EXPECT_NE(check_convergence(conv).summary(conv).find("every ring size"),
            std::string::npos);
  const Protocol dead = protocols::matching_nongeneralizable();
  EXPECT_NE(check_convergence(dead).summary(dead).find("smallest deadlocked"),
            std::string::npos);
}

}  // namespace
}  // namespace ringstab
