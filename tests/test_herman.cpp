// Herman's randomized ring and the Monte Carlo convergence estimator:
// counter-based PRNG contracts, exact small-K expectations, bound tracking,
// and bit-reproducibility of the estimate across thread counts.
#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"
#include "protocols/herman.hpp"
#include "sim/prng.hpp"
#include "sim/simulator.hpp"

namespace ringstab {
namespace {

// ── counter-based PRNG ──

TEST(CounterRng, SameKeySameStream) {
  CounterRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(CounterRng, DistinctKeysDistinctStreams) {
  CounterRng a(trajectory_stream_key(1, 0));
  CounterRng b(trajectory_stream_key(1, 1));
  CounterRng c(trajectory_stream_key(2, 0));
  std::set<std::uint64_t> draws;
  for (int i = 0; i < 32; ++i) {
    draws.insert(a.next());
    draws.insert(b.next());
    draws.insert(c.next());
  }
  EXPECT_EQ(draws.size(), 96u);  // no collisions across streams
}

TEST(CounterRng, BernoulliDegenerateProbabilities) {
  CounterRng rng(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(CounterRng, BernoulliHalfIsFair) {
  CounterRng rng(11);
  int heads = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) heads += rng.bernoulli(0.5) ? 1 : 0;
  // ±5σ band around 50000 (σ ≈ 158).
  EXPECT_NEAR(heads, kDraws / 2, 800);
}

TEST(CounterRng, BelowStaysInRange) {
  CounterRng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

// ── the Herman protocol itself ──

TEST(Herman, ProtocolShape) {
  const Protocol p = protocols::herman_ring();
  EXPECT_EQ(p.name(), "herman");
  EXPECT_EQ(p.domain().size(), 2u);
  EXPECT_EQ(p.locality().left, 1u);
  EXPECT_EQ(p.locality().right, 0u);
}

TEST(Herman, TokenCountAndParity) {
  // Token at r iff x[r-1] == x[r] (indices mod K).
  EXPECT_EQ(protocols::herman_token_count({0, 0, 0}), 3u);      // all equal
  EXPECT_EQ(protocols::herman_token_count({0, 1, 1}), 1u);      // one token
  EXPECT_EQ(protocols::herman_token_count({0, 1, 0, 1}), 0u);   // alternating
  EXPECT_EQ(protocols::herman_token_count({0, 0, 1, 1, 0}), 3u);
  // Odd ring → odd token count, always.
  CounterRng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> s(9);
    for (auto& v : s) v = static_cast<Value>(rng.below(2));
    EXPECT_EQ(protocols::herman_token_count(s) % 2, 1u);
  }
}

TEST(Herman, ConjectureBoundValues) {
  EXPECT_DOUBLE_EQ(protocols::herman_conjecture_bound(3), 4.0 / 3.0);
  EXPECT_NEAR(protocols::herman_conjecture_bound(31), 142.37, 0.01);
}

// ── the estimator: exact expectations and bound tracking ──

// K=3, all-zero start: three tokens; each round all three holders toss.
// The ring reaches one token iff not all three coins agree (prob 3/4), so
// rounds-to-convergence is geometric(3/4) with mean 4/3 — and (4/27)·9 is
// exactly 4/3, the equality case of the conjecture.
TEST(Herman, ExactExpectationAtK3) {
  EstimateOptions eo;
  eo.target = ConvergenceTarget::kOneIllegit;
  eo.start = StartKind::kAllZero;
  eo.trajectories = 40'000;
  eo.seed = 5;
  const auto est =
      estimate_convergence_rounds(protocols::herman_ring(), 3, eo);
  EXPECT_EQ(est.converged, est.trajectories);
  EXPECT_EQ(est.censored, 0u);
  EXPECT_NEAR(est.mean_rounds, 4.0 / 3.0, 0.05);
  EXPECT_EQ(est.min_rounds, 1u);
  // CI math: half-width is 1.96·stddev/√n.
  EXPECT_NEAR(est.ci95_half_width,
              1.96 * est.stddev_rounds /
                  std::sqrt(static_cast<double>(est.converged)),
              1e-12);
}

TEST(Herman, MeanWithinBoundAtK7) {
  EstimateOptions eo;
  eo.target = ConvergenceTarget::kOneIllegit;
  eo.start = StartKind::kThreeTokens;
  eo.trajectories = 4000;
  eo.seed = 9;
  eo.num_threads = 0;  // all cores — result provably independent of this
  const auto est =
      estimate_convergence_rounds(protocols::herman_ring(), 7, eo);
  EXPECT_EQ(est.censored, 0u);
  const double bound = protocols::herman_conjecture_bound(7);
  EXPECT_LE(est.mean_rounds, bound + 3.0 * est.ci95_half_width);
}

// ── bit-reproducibility across thread counts ──

TEST(Herman, EstimateBitIdenticalAcrossThreadCounts) {
  EstimateOptions base;
  base.target = ConvergenceTarget::kOneIllegit;
  base.start = StartKind::kRandom;
  base.trajectories = 300;
  base.seed = 17;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{7}}) {
    EstimateOptions eo = base;
    eo.num_threads = jobs;
    const auto est =
        estimate_convergence_rounds(protocols::herman_ring(), 11, eo);
    EstimateOptions ref = base;
    ref.num_threads = 1;
    const auto serial =
        estimate_convergence_rounds(protocols::herman_ring(), 11, ref);
    EXPECT_EQ(est, serial) << "thread count " << jobs
                           << " perturbed the estimate";
  }
}

TEST(Herman, ZooWideReproducibility) {
  // Every zoo protocol, both probabilistic schedulers: 1-thread and
  // 4-thread estimates must be bit-identical, converged or not.
  for (const Protocol& p : testing::protocol_zoo()) {
    for (const Scheduler sched :
         {Scheduler::kSynchronousCoin, Scheduler::kWeightedRandom}) {
      EstimateOptions eo;
      eo.scheduler = sched;
      eo.target = ConvergenceTarget::kInvariant;
      eo.trajectories = 50;
      eo.round_cap = 500;
      eo.seed = 23;
      eo.num_threads = 1;
      const auto serial = estimate_convergence_rounds(p, 5, eo);
      eo.num_threads = 4;
      const auto parallel = estimate_convergence_rounds(p, 5, eo);
      EXPECT_EQ(serial, parallel) << p.name();
    }
  }
}

TEST(Herman, SeedChangesTheSample) {
  EstimateOptions eo;
  eo.target = ConvergenceTarget::kOneIllegit;
  eo.start = StartKind::kRandom;
  eo.trajectories = 200;
  const auto a = estimate_convergence_rounds(protocols::herman_ring(), 9, eo);
  eo.seed = 2;
  const auto b = estimate_convergence_rounds(protocols::herman_ring(), 9, eo);
  EXPECT_NE(a.total_rounds, b.total_rounds);
}

// ── validation and edge cases ──

TEST(Herman, ThreeTokenStartRequiresOddRing) {
  EstimateOptions eo;
  eo.start = StartKind::kThreeTokens;
  eo.trajectories = 10;
  EXPECT_THROW(estimate_convergence_rounds(protocols::herman_ring(), 8, eo),
               ModelError);
  EXPECT_NO_THROW(
      estimate_convergence_rounds(protocols::herman_ring(), 9, eo));
}

TEST(Herman, EstimatorRejectsInterleavingDaemons) {
  EstimateOptions eo;
  eo.scheduler = Scheduler::kUniformRandom;
  EXPECT_THROW(estimate_convergence_rounds(protocols::herman_ring(), 5, eo),
               ModelError);
  eo.scheduler = Scheduler::kRoundRobin;
  EXPECT_THROW(estimate_convergence_rounds(protocols::herman_ring(), 5, eo),
               ModelError);
}

TEST(Herman, SimulatorRejectsProbabilisticSchedulers) {
  EXPECT_THROW(
      Simulator(protocols::herman_ring(), 5, 1, Scheduler::kSynchronousCoin),
      ModelError);
  EXPECT_THROW(
      Simulator(protocols::herman_ring(), 5, 1, Scheduler::kWeightedRandom),
      ModelError);
}

TEST(Herman, InvalidOptionsThrow) {
  const Protocol p = protocols::herman_ring();
  EstimateOptions eo;
  eo.coin = 1.5;
  EXPECT_THROW(estimate_convergence_rounds(p, 5, eo), ModelError);
  eo = {};
  eo.trajectories = 0;
  EXPECT_THROW(estimate_convergence_rounds(p, 5, eo), ModelError);
  eo = {};
  EXPECT_THROW(estimate_convergence_rounds(p, 1, eo), ModelError);
  eo = {};
  eo.scheduler = Scheduler::kWeightedRandom;
  eo.weights = {1.0};  // wrong arity: herman has 2+ transitions
  EXPECT_THROW(estimate_convergence_rounds(p, 5, eo), ModelError);
}

TEST(Herman, FrozenTrajectoriesAreCensoredImmediately) {
  // Invariant target on an odd Herman ring from the all-zero start: the
  // invariant (zero tokens) is unreachable by parity, but the ring isn't
  // frozen, so every trajectory burns the full cap.
  EstimateOptions eo;
  eo.target = ConvergenceTarget::kInvariant;
  eo.start = StartKind::kAllZero;
  eo.trajectories = 20;
  eo.round_cap = 50;
  const auto est =
      estimate_convergence_rounds(protocols::herman_ring(), 3, eo);
  EXPECT_EQ(est.converged, 0u);
  EXPECT_EQ(est.censored, 20u);
  EXPECT_EQ(est.total_rounds, 20u * 50u);
}

TEST(Herman, WorkAccountingCountsProcessSlots) {
  EstimateOptions eo;
  eo.target = ConvergenceTarget::kOneIllegit;
  eo.start = StartKind::kAllZero;
  eo.trajectories = 100;
  const auto est =
      estimate_convergence_rounds(protocols::herman_ring(), 5, eo);
  EXPECT_EQ(est.total_process_steps, est.total_rounds * 5);
}

}  // namespace
}  // namespace ringstab
