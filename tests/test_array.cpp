// The array (open chain) topology extension: local walk-based deadlock
// analysis cross-validated against exhaustive array checking.
#include "local/array.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/builder.hpp"
#include "global/array_instance.hpp"
#include "helpers.hpp"
#include "protocols/arrays.hpp"

namespace ringstab {
namespace {

// Random array protocols: transitions fire only from states whose self is a
// real value, keeping the modeling convention.
Protocol random_array_protocol(std::mt19937_64& rng) {
  const std::size_t real = 2 + rng() % 2;  // 2..3 real values
  std::vector<std::string> names;
  for (std::size_t i = 0; i < real; ++i) names.push_back(std::to_string(i));
  names.push_back("B");
  const LocalStateSpace space(Domain::named(names), {1, 0});
  const Value bot = static_cast<Value>(real);

  std::vector<bool> legit(space.size());
  for (LocalStateId s = 0; s < space.size(); ++s) legit[s] = rng() & 1;

  std::vector<LocalTransition> delta;
  std::bernoulli_distribution fire(0.35);
  for (LocalStateId s = 0; s < space.size(); ++s) {
    if (space.self(s) == bot) continue;
    if (legit[s] || !fire(rng)) continue;
    Value v = static_cast<Value>(rng() % real);
    if (v == space.self(s)) v = static_cast<Value>((v + 1) % real);
    delta.push_back({s, space.with_self(s, v)});
  }
  // Self-disabling: drop transitions whose target fires.
  std::vector<bool> is_source(space.size(), false);
  for (const auto& t : delta) is_source[t.from] = true;
  delta.erase(std::remove_if(delta.begin(), delta.end(),
                             [&](const LocalTransition& t) {
                               return is_source[t.to];
                             }),
              delta.end());
  static int counter = 0;
  return Protocol("rand_array" + std::to_string(counter++), space,
                  std::move(delta), std::move(legit));
}

TEST(Array, ValidationRejectsBoundaryWrites) {
  const LocalStateSpace space(Domain::named({"0", "1", "B"}), {1, 0});
  // Transition writing ⊥.
  const LocalStateId s = space.encode(std::vector<Value>{0, 0});
  const Protocol bad("bad", space, {{s, space.with_self(s, 2)}},
                     std::vector<bool>(space.size(), false));
  EXPECT_THROW(validate_array_protocol(bad), ModelError);
}

TEST(Array, FeasibilityPatterns) {
  const Protocol p = protocols::array_agreement(2);
  const auto& sp = p.space();
  const LocalStateId left = sp.encode(std::vector<Value>{2, 1});  // (⊥,1)
  const LocalStateId mid = sp.encode(std::vector<Value>{0, 1});
  EXPECT_TRUE(feasible_array_state(p, left, 0, 4));
  EXPECT_FALSE(feasible_array_state(p, left, 1, 4));
  EXPECT_TRUE(feasible_array_state(p, mid, 2, 4));
  EXPECT_FALSE(feasible_array_state(p, mid, 0, 4));
}

TEST(Array, AgreementIsDeadlockFreeForAllLengths) {
  const Protocol p = protocols::array_agreement(2);
  const auto res = analyze_array_deadlocks(p, 16);
  EXPECT_TRUE(res.deadlock_free_all_n);
  EXPECT_TRUE(array_terminates_always(p));
  for (std::size_t n = 2; n <= 8; ++n) {
    const ArrayInstance inst(p, n);
    const auto check = check_array(inst);
    EXPECT_EQ(check.num_deadlocks_outside_i, 0u) << n;
    EXPECT_TRUE(check.terminates) << n;
  }
}

// 2-coloring: impossible on unidirectional rings (paper Fig. 11), trivial
// on arrays — the parity obstruction needs the cycle.
TEST(Array, TwoColoringConvergesOnArrays) {
  const Protocol p = protocols::array_two_coloring();
  const auto res = analyze_array_deadlocks(p, 16);
  EXPECT_TRUE(res.deadlock_free_all_n);
  EXPECT_TRUE(array_terminates_always(p));
  for (std::size_t n = 2; n <= 9; ++n) {
    const auto check = check_array(ArrayInstance(p, n));
    EXPECT_EQ(check.num_deadlocks_outside_i, 0u) << n;
    EXPECT_FALSE(check.has_livelock) << n;
    EXPECT_TRUE(check.terminates) << n;
  }
}

TEST(Array, BrokenTwoColoringDeadlocksEverywhere) {
  const Protocol p = protocols::array_two_coloring_broken();
  const auto res = analyze_array_deadlocks(p, 12);
  EXPECT_FALSE(res.deadlock_free_all_n);
  for (std::size_t n = 2; n <= 8; ++n) {
    EXPECT_TRUE(res.size_spectrum[n]) << n;
    const auto witness = array_deadlock_witness(p, n);
    ASSERT_TRUE(witness.has_value()) << n;
    const ArrayInstance inst(p, n);
    const GlobalStateId s = inst.encode(*witness);
    EXPECT_TRUE(inst.is_deadlock(s)) << n;
    EXPECT_FALSE(inst.in_invariant(s)) << n;
  }
}

TEST(Array, SortConvergesAndSorts) {
  const Protocol p = protocols::array_sort(3);
  EXPECT_TRUE(analyze_array_deadlocks(p, 12).deadlock_free_all_n);
  const ArrayInstance inst(p, 5);
  // Exhaustive: every deadlock state is sorted (non-decreasing).
  std::vector<ArrayInstance::Step> succ;
  for (GlobalStateId s = 0; s < inst.num_states(); ++s) {
    inst.successors(s, succ);
    if (!succ.empty()) continue;
    const auto vals = inst.decode(s);
    for (std::size_t i = 1; i < vals.size(); ++i)
      EXPECT_LE(vals[i - 1], vals[i]) << inst.brief(s);
  }
}

// The walk-based spectrum is exact: cross-validate against exhaustive
// checking on random array protocols.
class RandomArrayTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomArrayTest, SpectrumMatchesExhaustiveChecking) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    const Protocol p = random_array_protocol(rng);
    const auto res = analyze_array_deadlocks(p, 8);
    for (std::size_t n = 2; n <= 8; ++n) {
      const auto check = check_array(ArrayInstance(p, n));
      EXPECT_EQ(res.size_spectrum[n], check.num_deadlocks_outside_i > 0)
          << p.name() << " n=" << n;
    }
  }
}

TEST_P(RandomArrayTest, UnidirectionalSelfDisablingArraysTerminate) {
  std::mt19937_64 rng(GetParam() ^ 0xabcdull);
  for (int i = 0; i < 10; ++i) {
    const Protocol p = random_array_protocol(rng);
    ASSERT_TRUE(array_terminates_always(p));
    for (std::size_t n = 2; n <= 7; ++n) {
      const auto check = check_array(ArrayInstance(p, n));
      EXPECT_TRUE(check.terminates) << p.name() << " n=" << n;
      EXPECT_FALSE(check.has_livelock) << p.name() << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArrayTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(Array, WitnessForCleanProtocolIsEmpty) {
  EXPECT_FALSE(
      array_deadlock_witness(protocols::array_agreement(2), 5).has_value());
}

TEST(Array, InstanceRejectsTinyLengths) {
  EXPECT_THROW(ArrayInstance(protocols::array_agreement(2), 1), ModelError);
}

}  // namespace
}  // namespace ringstab
