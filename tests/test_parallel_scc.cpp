// The FB/FWBW parallel SCC engine: canonical labels cross-validated against
// the serial Tarjan on randomized digraphs, plus end-to-end livelock
// agreement between the fused (parallel-SCC) and unfused (Tarjan) global
// engines over the protocol zoo, at 1 and 4 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "graph/digraph.hpp"
#include "graph/parallel_scc.hpp"
#include "graph/scc.hpp"
#include "helpers.hpp"

namespace ringstab {
namespace {

CsrGraph to_csr(const Digraph& g) {
  CsrGraph out;
  out.row.assign(g.num_vertices() + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.row[v + 1] = out.row[v] + g.out_degree(v);
    for (const VertexId w : g.out(v)) out.col.push_back(w);
  }
  return out;
}

/// Run parallel_scc at several thread counts and require all runs to agree
/// with the canonicalized serial Tarjan on labels and cycle membership.
void cross_validate(const Digraph& g) {
  const CsrGraph csr = to_csr(g);
  const SccResult serial = strongly_connected_components(g);
  const auto canonical = canonical_scc_labels(serial.component);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const ParallelSccResult par = parallel_scc(csr, threads);
    ASSERT_EQ(par.component, canonical) << threads << " threads";
    ASSERT_EQ(par.num_components, serial.num_components) << threads;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(par.on_cycle(v), on_cycle(g, serial, v))
          << "vertex " << v << " at " << threads << " threads";
  }
}

TEST(ParallelScc, EmptyGraph) {
  const CsrGraph g;  // zero vertices
  const ParallelSccResult r = parallel_scc(g, 4);
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_TRUE(r.component.empty());
}

TEST(ParallelScc, SingletonAndSelfLoop) {
  Digraph g(2);
  g.add_arc(1, 1);
  cross_validate(g);
  const ParallelSccResult r = parallel_scc(to_csr(g), 2);
  EXPECT_FALSE(r.on_cycle(0));
  EXPECT_TRUE(r.on_cycle(1));
  EXPECT_TRUE(r.self_loop.test(1));
  EXPECT_FALSE(r.nontrivial.test(1));  // its SCC is still {1}
}

TEST(ParallelScc, ChainIsFullyTrimmed) {
  Digraph g(64);
  for (VertexId v = 0; v + 1 < 64; ++v) g.add_arc(v, v + 1);
  cross_validate(g);
  const ParallelSccResult r = parallel_scc(to_csr(g), 4);
  EXPECT_EQ(r.num_components, 64u);
  for (VertexId v = 0; v < 64; ++v) EXPECT_FALSE(r.on_cycle(v));
}

TEST(ParallelScc, TwoCyclesAndABridge) {
  // 0→1→2→0 and 5→6→5, bridged 2→5, plus a dead tail 3→4.
  Digraph g(7);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  g.add_arc(2, 5);
  g.add_arc(5, 6);
  g.add_arc(6, 5);
  g.add_arc(3, 4);
  cross_validate(g);
  const ParallelSccResult r = parallel_scc(to_csr(g), 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[0], 0u);  // labeled by smallest member
  EXPECT_EQ(r.component[5], 5u);
  EXPECT_NE(r.component[0], r.component[5]);
  const auto cyc = extract_component_cycle(to_csr(g), r, 0);
  ASSERT_EQ(cyc.size(), 3u);
  EXPECT_EQ(cyc[0], 0u);
}

TEST(ParallelScc, RandomDigraphsMatchSerialTarjan) {
  std::mt19937 rng(20260809);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng() % 120;
    Digraph g(n);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const double density = 0.5 + 3.0 * coin(rng);  // avg out-degree
    const double p = std::min(1.0, density / static_cast<double>(n));
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = 0; v < n; ++v)
        if (coin(rng) < p) g.add_arc(u, v);  // self-loops included
    cross_validate(g);
  }
}

TEST(ParallelScc, LargeRandomDigraphExercisesFbRecursion) {
  // Avg out-degree 2 over 20k vertices leaves a giant SCC core after trim,
  // well above the serial-Tarjan fallback threshold, so the FB/FWBW
  // reachability path itself is what gets validated here.
  std::mt19937 rng(7);
  const std::size_t n = 20000;
  Digraph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (int e = 0; e < 2; ++e)
      g.add_arc(u, static_cast<VertexId>(rng() % n));
  cross_validate(g);
}

TEST(ParallelScc, WitnessCycleIsClosedAndInComponent) {
  std::mt19937 rng(99);
  const std::size_t n = 400;
  Digraph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (int e = 0; e < 3; ++e) g.add_arc(u, static_cast<VertexId>(rng() % n));
  const CsrGraph csr = to_csr(g);
  const ParallelSccResult r = parallel_scc(csr, 4);
  for (VertexId v = 0; v < n; ++v) {
    if (!r.on_cycle(v)) continue;
    const auto cyc = extract_component_cycle(csr, r, v);
    ASSERT_FALSE(cyc.empty());
    EXPECT_EQ(cyc.front(), v);
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      EXPECT_EQ(r.component[cyc[i]], r.component[v]);
      EXPECT_TRUE(g.has_arc(cyc[i], cyc[(i + 1) % cyc.size()]));
    }
  }
}

/// The fused engine's livelock verdicts and state sets must match the
/// unfused (serial Tarjan) engine exactly over the zoo, and the fused
/// witness must be bit-identical between 1 and 4 threads.
TEST(ParallelScc, GlobalEngineMatchesTarjanOverZoo) {
  for (const Protocol& p : testing::protocol_zoo()) {
    for (std::size_t k = 2; k <= 8; ++k) {
      RingInstance ring(p, k);
      const GlobalChecker fused1(ring, 1);
      const GlobalChecker fused4(ring, 4);
      const GlobalChecker tarjan(ring, 1, /*fused=*/false);

      const auto states = fused1.livelock_states();
      ASSERT_EQ(states, tarjan.livelock_states()) << p.name() << " K=" << k;
      ASSERT_EQ(states, fused4.livelock_states()) << p.name() << " K=" << k;

      const auto w1 = fused1.find_livelock();
      const auto w4 = fused4.find_livelock();
      ASSERT_EQ(w1.has_value(), tarjan.find_livelock().has_value())
          << p.name() << " K=" << k;
      ASSERT_EQ(w1, w4) << p.name() << " K=" << k;
      if (!w1) continue;

      // The witness is a genuine computation cycle entirely outside I and
      // inside the livelocked state set.
      const auto& cyc = *w1;
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        EXPECT_FALSE(ring.in_invariant(cyc[i])) << p.name() << " K=" << k;
        EXPECT_TRUE(std::binary_search(states.begin(), states.end(), cyc[i]));
        std::vector<RingInstance::Step> succ;
        ring.successors(cyc[i], succ);
        const GlobalStateId next = cyc[(i + 1) % cyc.size()];
        EXPECT_TRUE(std::any_of(
            succ.begin(), succ.end(),
            [&](const RingInstance::Step& s) { return s.target == next; }))
            << p.name() << " K=" << k << " edge " << i;
      }
    }
  }
}

/// The symmetry quotient's livelock pass rides the same parallel SCC
/// engine; its lifted witness must be thread-count-invariant across the
/// zoo and agree with the full-space engine on the verdict.
TEST(ParallelScc, SymmetryQuotientWitnessIsThreadInvariant) {
  for (const Protocol& p : testing::protocol_zoo()) {
    for (std::size_t k = 2; k <= 10; ++k) {
      RingInstance ring(p, k);
      const SymmetricCheckResult serial = check_symmetric(ring, 8, 1);
      const SymmetricCheckResult par = check_symmetric(ring, 8, 4);
      ASSERT_EQ(serial.has_livelock, par.has_livelock)
          << p.name() << " K=" << k;
      ASSERT_EQ(serial.livelock_cycle, par.livelock_cycle)
          << p.name() << " K=" << k;
      ASSERT_EQ(serial.has_livelock,
                GlobalChecker(ring, 2).find_livelock().has_value())
          << p.name() << " K=" << k;
    }
  }
}

}  // namespace
}  // namespace ringstab
