#include "local/rcg.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"

namespace ringstab {
namespace {

// Figure 1: the matching RCG has 27 vertices and 27·|D| = 81 s-arcs.
TEST(Rcg, MatchingFigureOneInventory) {
  const Protocol p = protocols::matching_skeleton();
  const Digraph rcg = build_rcg(p.space());
  EXPECT_EQ(rcg.num_vertices(), 27u);
  EXPECT_EQ(rcg.num_arcs(), 81u);
}

// Every vertex of a full RCG has exactly |D| successors and predecessors.
TEST(Rcg, DeBruijnDegrees) {
  for (const auto& p : testing::protocol_zoo()) {
    const Digraph rcg = build_rcg(p.space());
    const auto in = rcg.in_degrees();
    for (VertexId v = 0; v < rcg.num_vertices(); ++v) {
      EXPECT_EQ(rcg.out_degree(v), p.domain().size()) << p.name();
      EXPECT_EQ(in[v], p.domain().size()) << p.name();
    }
  }
}

// Arcs agree with the definitional shared-offset test.
TEST(Rcg, ArcsMatchContinuationRelation) {
  const Protocol p = protocols::agreement_empty();
  const Digraph rcg = build_rcg(p.space());
  for (LocalStateId u = 0; u < p.num_states(); ++u)
    for (LocalStateId v = 0; v < p.num_states(); ++v)
      EXPECT_EQ(rcg.has_arc(u, v), p.space().right_continues(u, v));
}

TEST(Rcg, DeadlockRcgDropsEnabledStates) {
  const Protocol p = protocols::agreement_both();
  const Digraph g = deadlock_rcg(p);
  // Enabled states 01 and 10 must be isolated.
  const auto& space = p.space();
  const LocalStateId s01 = space.encode(std::vector<Value>{0, 1});
  const LocalStateId s10 = space.encode(std::vector<Value>{1, 0});
  EXPECT_TRUE(g.out(s01).empty());
  EXPECT_TRUE(g.out(s10).empty());
  // Deadlocks 00 and 11 keep their self-loops.
  const LocalStateId s00 = space.encode(std::vector<Value>{0, 0});
  const LocalStateId s11 = space.encode(std::vector<Value>{1, 1});
  EXPECT_TRUE(g.has_arc(s00, s00));
  EXPECT_TRUE(g.has_arc(s11, s11));
  EXPECT_FALSE(g.has_arc(s00, s01));
}

TEST(Rcg, ExclusionMaskRemovesVertices) {
  const Protocol p = protocols::agreement_empty();  // all states deadlocked
  std::vector<bool> excl(p.num_states(), false);
  excl[0] = true;
  const Digraph g = deadlock_rcg_excluding(p, excl);
  EXPECT_TRUE(g.out(0).empty());
  const auto in = g.in_degrees();
  EXPECT_EQ(in[0], 0u);
}

}  // namespace
}  // namespace ringstab
