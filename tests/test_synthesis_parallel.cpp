// The parallel portfolio synthesizer: bit-identical SynthesisResult between
// 1 and N lanes across the zoo (solutions, reports, counters), verdict-memo
// reuse observable through synth.memo_hits, quota early-exit determinism,
// and nested-parallel-region safety.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "helpers.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/agreement.hpp"
#include "protocols/arrays.hpp"
#include "protocols/matching.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/array_synthesizer.hpp"
#include "synthesis/global_synthesizer.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

/// Flips the global instrumentation switch for one test body and restores
/// a clean registry (no sinks, zeroed counters) on the way out.
class ObsGuard {
 public:
  ObsGuard() {
    obs::Registry::global().clear_sinks();
    obs::Registry::global().reset_counters();
    obs::g_enabled.store(true);
  }
  ~ObsGuard() {
    obs::g_enabled.store(false);
    obs::Registry::global().clear_sinks();
    obs::Registry::global().reset_counters();
  }
};

void expect_same_trail(const std::optional<ContiguousTrail>& a,
                       const std::optional<ContiguousTrail>& b,
                       const std::string& ctx) {
  ASSERT_EQ(a.has_value(), b.has_value()) << ctx;
  if (!a) return;
  EXPECT_EQ(a->num_enabled, b->num_enabled) << ctx;
  EXPECT_EQ(a->propagation, b->propagation) << ctx;
  EXPECT_EQ(a->rounds, b->rounds) << ctx;
  ASSERT_EQ(a->steps.size(), b->steps.size()) << ctx;
  for (std::size_t i = 0; i < a->steps.size(); ++i) {
    EXPECT_EQ(a->steps[i].is_t, b->steps[i].is_t) << ctx << " step " << i;
    EXPECT_EQ(a->steps[i].from, b->steps[i].from) << ctx << " step " << i;
    EXPECT_EQ(a->steps[i].to, b->steps[i].to) << ctx << " step " << i;
    EXPECT_EQ(a->steps[i].t_arc_index, b->steps[i].t_arc_index)
        << ctx << " step " << i;
  }
}

void expect_same_result(const SynthesisResult& a, const SynthesisResult& b,
                        const std::string& ctx) {
  EXPECT_EQ(a.success, b.success) << ctx;
  EXPECT_EQ(a.candidates_examined, b.candidates_examined) << ctx;
  EXPECT_EQ(a.resolve_sets, b.resolve_sets) << ctx;
  ASSERT_EQ(a.solutions.size(), b.solutions.size()) << ctx;
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].protocol.name(), b.solutions[i].protocol.name())
        << ctx << " solution " << i;
    EXPECT_EQ(a.solutions[i].protocol.delta(), b.solutions[i].protocol.delta())
        << ctx << " solution " << i;
    EXPECT_EQ(a.solutions[i].added, b.solutions[i].added)
        << ctx << " solution " << i;
    EXPECT_EQ(a.solutions[i].resolve, b.solutions[i].resolve)
        << ctx << " solution " << i;
    EXPECT_EQ(a.solutions[i].via_npl, b.solutions[i].via_npl)
        << ctx << " solution " << i;
  }
  ASSERT_EQ(a.reports.size(), b.reports.size()) << ctx;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].status, b.reports[i].status)
        << ctx << " report " << i;
    EXPECT_EQ(a.reports[i].added, b.reports[i].added) << ctx << " report "
                                                      << i;
    EXPECT_EQ(a.reports[i].realization, b.reports[i].realization)
        << ctx << " report " << i;
    expect_same_trail(a.reports[i].trail, b.reports[i].trail,
                      ctx + " report " + std::to_string(i));
  }
}

/// Synthesis outcome including the thrown-ModelError path (a handful of zoo
/// protocols are invalid Problem 3.1 inputs).
std::optional<SynthesisResult> run_local(const Protocol& p,
                                         const SynthesisOptions& options,
                                         std::string& error) {
  try {
    return synthesize_convergence(p, options);
  } catch (const ModelError& e) {
    error = e.what();
    return std::nullopt;
  }
}

// The headline contract: the portfolio at N lanes reproduces the serial
// SynthesisResult bit for bit — solution names and order, reports, trails,
// and examined counts — for every bundled protocol.
TEST(PortfolioSynthesis, LocalBitIdenticalAcrossThreadCounts) {
  for (const auto& p : testing::protocol_zoo()) {
    SynthesisOptions serial_opts;
    serial_opts.num_threads = 1;
    std::string serial_error;
    const auto serial = run_local(p, serial_opts, serial_error);
    for (std::size_t threads : {2u, 4u}) {
      SynthesisOptions par_opts;
      par_opts.num_threads = threads;
      std::string par_error;
      const auto par = run_local(p, par_opts, par_error);
      const std::string ctx = p.name() + " threads=" +
                              std::to_string(threads);
      ASSERT_EQ(serial.has_value(), par.has_value()) << ctx;
      if (!serial) {
        EXPECT_EQ(serial_error, par_error) << ctx;
        continue;
      }
      expect_same_result(*serial, *par, ctx);
    }
  }
}

// Memoization is pure caching: verdicts with it off match verdicts with it
// on, at any thread count.
TEST(PortfolioSynthesis, MemoizationDoesNotChangeResults) {
  for (const auto& p : testing::protocol_zoo()) {
    SynthesisOptions plain;
    plain.memoize = false;
    std::string plain_error;
    const auto baseline = run_local(p, plain, plain_error);
    for (std::size_t threads : {1u, 4u}) {
      SynthesisOptions memoized;
      memoized.memoize = true;
      memoized.num_threads = threads;
      std::string memo_error;
      const auto res = run_local(p, memoized, memo_error);
      const std::string ctx = p.name() + " memoized threads=" +
                              std::to_string(threads);
      ASSERT_EQ(baseline.has_value(), res.has_value()) << ctx;
      if (!baseline) {
        EXPECT_EQ(plain_error, memo_error) << ctx;
        continue;
      }
      expect_same_result(*baseline, *res, ctx);
    }
  }
}

// Candidates sharing a signature reuse one verdict within a single call: the
// matching skeleton has several Resolve sets whose candidate odometers revisit
// the same projected write-pair sets (and, across resolve sets, identical
// revised protocols), so a fresh per-call memo must record hits.
TEST(PortfolioSynthesis, SharedSignaturesHitTheMemo) {
  const ObsGuard guard;
  const Protocol p = protocols::matching_skeleton();
  SynthesisOptions options;  // memoize defaults on
  const auto res = synthesize_convergence(p, options);
  EXPECT_GT(res.candidates_examined, 1u);
  EXPECT_GT(obs::counter("synth.memo_hits").total(), 0u)
      << "repeated write-projection signatures must skip re-verification";
  EXPECT_GT(obs::counter("synth.memo_misses").total(), 0u);
}

// A memo shared across calls turns the second identical call into pure
// lookups: same result, zero misses beyond the first call's.
TEST(PortfolioSynthesis, SharedMemoReusesVerdictsAcrossCalls) {
  const ObsGuard guard;
  const Protocol p = protocols::sum_not_two_empty();
  SynthesisOptions options;
  options.memo = std::make_shared<VerdictMemo>();
  const auto first = synthesize_convergence(p, options);
  const auto misses_after_first =
      obs::counter("synth.memo_misses").total();
  const auto second = synthesize_convergence(p, options);
  expect_same_result(first, second, "warm-memo rerun");
  EXPECT_EQ(obs::counter("synth.memo_misses").total(), misses_after_first)
      << "a warm memo must answer every repeated verdict";
  EXPECT_GT(obs::counter("synth.memo_hits").total(), 0u);
}

// Early exit via the atomic claim counter must not change what max_solutions
// returns: the first accepted candidate in serial order wins at any N.
TEST(PortfolioSynthesis, QuotaEarlyExitMatchesSerial) {
  for (const auto& p :
       {protocols::sum_not_two_empty(), protocols::agreement_empty(),
        protocols::monotone_empty(3)}) {
    SynthesisOptions serial_opts;
    serial_opts.max_solutions = 1;
    const auto serial = synthesize_convergence(p, serial_opts);
    SynthesisOptions par_opts;
    par_opts.max_solutions = 1;
    par_opts.num_threads = 4;
    const auto par = synthesize_convergence(p, par_opts);
    expect_same_result(serial, par, p.name() + " max_solutions=1");
  }
}

TEST(PortfolioSynthesis, GlobalBitIdenticalAcrossThreadCounts) {
  for (const auto& p :
       {protocols::agreement_empty(), protocols::sum_not_two_empty()}) {
    GlobalSynthesisOptions serial_opts;
    serial_opts.max_ring = 4;
    serial_opts.num_threads = 1;
    const auto serial = synthesize_convergence_global(p, serial_opts);
    for (std::size_t threads : {2u, 4u}) {
      GlobalSynthesisOptions par_opts;
      par_opts.max_ring = 4;
      par_opts.num_threads = threads;
      const auto par = synthesize_convergence_global(p, par_opts);
      const std::string ctx = p.name() + " threads=" +
                              std::to_string(threads);
      EXPECT_EQ(par.success, serial.success) << ctx;
      EXPECT_EQ(par.candidates_examined, serial.candidates_examined) << ctx;
      EXPECT_EQ(par.prefiltered_out, serial.prefiltered_out) << ctx;
      EXPECT_EQ(par.states_explored, serial.states_explored) << ctx;
      ASSERT_EQ(par.solutions.size(), serial.solutions.size()) << ctx;
      for (std::size_t i = 0; i < par.solutions.size(); ++i) {
        EXPECT_EQ(par.solutions[i].protocol.name(),
                  serial.solutions[i].protocol.name())
            << ctx << " solution " << i;
        EXPECT_EQ(par.solutions[i].added, serial.solutions[i].added)
            << ctx << " solution " << i;
        EXPECT_EQ(par.solutions[i].resolve, serial.solutions[i].resolve)
            << ctx << " solution " << i;
      }
    }
  }
}

TEST(PortfolioSynthesis, GlobalPrefilterAccountingMatchesSerial) {
  const Protocol p = protocols::sum_not_two_empty();
  GlobalSynthesisOptions serial_opts;
  serial_opts.max_ring = 4;
  serial_opts.prefilter_with_theorem42 = true;
  const auto serial = synthesize_convergence_global(p, serial_opts);
  GlobalSynthesisOptions par_opts = serial_opts;
  par_opts.num_threads = 4;
  const auto par = synthesize_convergence_global(p, par_opts);
  EXPECT_EQ(par.prefiltered_out, serial.prefiltered_out);
  EXPECT_EQ(par.candidates_examined, serial.candidates_examined);
  EXPECT_EQ(par.states_explored, serial.states_explored);
  EXPECT_EQ(par.solutions.size(), serial.solutions.size());
}

TEST(PortfolioSynthesis, ArrayBitIdenticalAcrossThreadCounts) {
  for (const auto& base :
       {protocols::array_agreement(3), protocols::array_sort(3),
        protocols::array_two_coloring()}) {
    const Protocol input = base.with_delta(base.name() + "_in", {});
    ArraySynthesisOptions serial_opts;
    serial_opts.num_threads = 1;
    const auto serial = synthesize_array_convergence(input, serial_opts);
    for (std::size_t threads : {2u, 4u}) {
      ArraySynthesisOptions par_opts;
      par_opts.num_threads = threads;
      const auto par = synthesize_array_convergence(input, par_opts);
      const std::string ctx = base.name() + " threads=" +
                              std::to_string(threads);
      EXPECT_EQ(par.success, serial.success) << ctx;
      EXPECT_EQ(par.candidates_examined, serial.candidates_examined) << ctx;
      EXPECT_EQ(par.resolve_sets, serial.resolve_sets) << ctx;
      ASSERT_EQ(par.solutions.size(), serial.solutions.size()) << ctx;
      for (std::size_t i = 0; i < par.solutions.size(); ++i) {
        EXPECT_EQ(par.solutions[i].protocol.name(),
                  serial.solutions[i].protocol.name())
            << ctx << " solution " << i;
        EXPECT_EQ(par.solutions[i].protocol.delta(),
                  serial.solutions[i].protocol.delta())
            << ctx << " solution " << i;
        EXPECT_EQ(par.solutions[i].added, serial.solutions[i].added)
            << ctx << " solution " << i;
      }
    }
  }
}

// The trail-classification path (realize_trail spawns a global checker)
// runs inside portfolio lanes; nested parallel regions must degrade to
// inline execution instead of deadlocking the pool (thread_pool.cpp's
// reentrancy guard). Exercised here with classification on and lanes > 1.
TEST(PortfolioSynthesis, ClassificationInsideLanesDoesNotDeadlock) {
  SynthesisOptions options;
  options.num_threads = 4;
  options.classify_rejected_trails = true;
  const auto res =
      synthesize_convergence(protocols::sum_not_two_empty(), options);
  EXPECT_TRUE(res.success);
  bool any_classified = false;
  for (const auto& r : res.reports)
    if (r.realization) any_classified = true;
  EXPECT_TRUE(any_classified);
}

}  // namespace
}  // namespace ringstab
