// Robustness fuzzing: the .ring front-end must either parse or throw
// ParseError/ModelError — never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <random>

#include "core/parser.hpp"
#include "core/ring_writer.hpp"

namespace ringstab {
namespace {

const char* kFragments[] = {
    "protocol", "domain", "reads", "legit", "action", "p", "x", "[", "]",
    "(", ")", ";", ":", ":=", "->", "|", "||", "&&", "!", "==", "!=", "<",
    "<=", "+", "-", "*", "/", "%", "..", "0", "1", "2", "3", "42", ",",
    "left", "right", "self", "x[-1]", "x[0]", "x[1]",
};

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kFragments) - 1);
  std::uniform_int_distribution<int> len(0, 60);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string src;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      src += kFragments[pick(rng)];
      src += ' ';
    }
    try {
      const Protocol p = parse_protocol(src);
      // If it parsed, it must round-trip.
      const Protocol q = parse_protocol(to_ring_source(p));
      EXPECT_EQ(q.delta(), p.delta());
    } catch (const ParseError&) {
    } catch (const ModelError&) {
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<int> byte(1, 126);
  std::uniform_int_distribution<int> len(0, 120);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string src;
    const int n = len(rng);
    for (int i = 0; i < n; ++i)
      src += static_cast<char>(byte(rng));
    try {
      parse_protocol(src);
    } catch (const ParseError&) {
    } catch (const ModelError&) {
    }
  }
}

TEST(ParserFuzz, MutatedValidSourcesNeverCrash) {
  const std::string base = R"(
protocol agreement;
domain 2;
reads -1 .. 0;
legit: x[-1] == x[0];
action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1;
)";
  std::mt19937_64 rng(31337);
  std::uniform_int_distribution<int> byte(32, 126);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string src = base;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits && !src.empty(); ++e) {
      const std::size_t at = rng() % src.size();
      switch (rng() % 3) {
        case 0: src[at] = static_cast<char>(byte(rng)); break;
        case 1: src.erase(at, 1); break;
        default: src.insert(at, 1, static_cast<char>(byte(rng))); break;
      }
    }
    try {
      parse_protocol(src);
    } catch (const ParseError&) {
    } catch (const ModelError&) {
    }
  }
}

}  // namespace
}  // namespace ringstab
