#include "report/report.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/arrays.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

TEST(Report, ConvergingProtocolReportsCertification) {
  ReportOptions opts;
  opts.sim_trials = 50;
  opts.max_ring = 5;
  const std::string md =
      markdown_report(protocols::sum_not_two_solution(), opts);
  EXPECT_NE(md.find("# ringstab report: sum_not_two_ss"), std::string::npos);
  EXPECT_NE(md.find("strongly converges to I for every ring size"),
            std::string::npos);
  EXPECT_NE(md.find("Locally certified closed"), std::string::npos);
  EXPECT_NE(md.find("converged 50/50"), std::string::npos);
  EXPECT_EQ(md.find("over budget"), std::string::npos);
}

TEST(Report, BrokenProtocolReportsWitnesses) {
  ReportOptions opts;
  opts.sim_trials = 0;
  opts.max_ring = 6;
  const std::string md =
      markdown_report(protocols::matching_nongeneralizable(), opts);
  EXPECT_NE(md.find("Bad cycles in the deadlock RCG"), std::string::npos);
  EXPECT_NE(md.find("lls"), std::string::npos);
  EXPECT_NE(md.find("Deadlocked ring sizes"), std::string::npos);
}

TEST(Report, TrailRealizationIsIncluded) {
  ReportOptions opts;
  opts.sim_trials = 0;
  opts.max_ring = 4;
  const std::string md =
      markdown_report(protocols::sum_not_two_rotation(true), opts);
  EXPECT_NE(md.find("Witness trail"), std::string::npos);
  EXPECT_NE(md.find("Trail realization"), std::string::npos);
}

TEST(Report, ArrayModeUsesArrayAnalysis) {
  ReportOptions opts;
  opts.array_topology = true;
  opts.max_ring = 6;
  const std::string md =
      markdown_report(protocols::array_two_coloring(), opts);
  EXPECT_NE(md.find("Array analysis"), std::string::npos);
  EXPECT_NE(md.find("Deadlock-free outside I for every array length"),
            std::string::npos);
  EXPECT_NE(md.find("guaranteed under every schedule"), std::string::npos);
}

TEST(Report, EveryZooProtocolProducesAReport) {
  ReportOptions opts;
  opts.sim_trials = 0;
  opts.max_ring = 4;
  for (const auto& p : testing::protocol_zoo()) {
    const std::string md = markdown_report(p, opts);
    EXPECT_NE(md.find(p.name()), std::string::npos);
    EXPECT_NE(md.find("## Local analysis"), std::string::npos) << p.name();
  }
}

}  // namespace
}  // namespace ringstab
