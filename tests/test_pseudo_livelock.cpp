#include "local/pseudo_livelock.hpp"

#include <gtest/gtest.h>

#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

// The 3-coloring rotation {t01, t12, t20} projects onto the value cycle
// 0→1→2→0: a pseudo-livelock (paper, Section 6.1).
TEST(PseudoLivelock, ThreeColoringRotationIsCycle) {
  const Protocol p = protocols::three_coloring_rotation();
  const WriteProjection proj(p, {});
  EXPECT_TRUE(proj.forms_pseudo_livelocks());
  EXPECT_TRUE(proj.has_pseudo_livelock());
}

// Agreement with both transitions: 0→1 and 1→0 form the 2-cycle.
TEST(PseudoLivelock, AgreementBothIsCycle) {
  const WriteProjection proj(protocols::agreement_both(), {});
  EXPECT_TRUE(proj.forms_pseudo_livelocks());
}

// One-sided agreement projects to a single arc: no cycle at all (NPL).
TEST(PseudoLivelock, OneSidedAgreementHasNone) {
  const WriteProjection proj(protocols::agreement_one_sided(true), {});
  EXPECT_FALSE(proj.has_pseudo_livelock());
  EXPECT_FALSE(proj.forms_pseudo_livelocks());
}

// The sum-not-two solution {t21, t12, t01}: writes {2→1, 1→2, 0→1}. The
// subset {t21, t12} is a pseudo-livelock but the full set is not a union of
// cycles (0→1 hangs off) — the paper's Section 6.2 analysis.
TEST(PseudoLivelock, SumNotTwoSolutionIsMixed) {
  const Protocol p = protocols::sum_not_two_solution();
  const WriteProjection proj(p, {});
  EXPECT_TRUE(proj.has_pseudo_livelock());
  EXPECT_FALSE(proj.forms_pseudo_livelocks());

  const auto minimal = minimal_pseudo_livelocks(p, {});
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].size(), 2u);  // {t12, t21} as delta indices
  // The two transitions in the minimal pseudo-livelock swap 1 and 2.
  const auto& t_a = p.delta()[minimal[0][0]];
  const auto& t_b = p.delta()[minimal[0][1]];
  const Value a0 = p.space().self(t_a.from), a1 = p.space().self(t_a.to);
  const Value b0 = p.space().self(t_b.from), b1 = p.space().self(t_b.to);
  EXPECT_EQ(a0, b1);
  EXPECT_EQ(a1, b0);
}

TEST(PseudoLivelock, SubsetRestrictionWorks) {
  const Protocol p = protocols::agreement_both();
  // Only the first transition: a single arc, no cycle.
  const std::vector<std::size_t> one{0};
  const WriteProjection proj(p, one);
  EXPECT_FALSE(proj.has_pseudo_livelock());
}

TEST(PseudoLivelock, ReachesRequiresRealPath) {
  const Protocol p = protocols::agreement_one_sided(true);
  const WriteProjection proj(p, {});
  // Single arc 0→1.
  EXPECT_TRUE(proj.reaches(0, 1));
  EXPECT_FALSE(proj.reaches(1, 0));
  EXPECT_FALSE(proj.reaches(0, 0)) << "no empty-path cycles";
}

// Minimal pseudo-livelocks of the rotation candidate: one 3-cycle.
TEST(PseudoLivelock, MinimalSetsOfRotation) {
  const Protocol p = protocols::three_coloring_rotation();
  const auto minimal = minimal_pseudo_livelocks(p, {});
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].size(), 3u);
}

// Cartesian expansion: two parallel transitions per value arc yield all
// combinations.
TEST(PseudoLivelock, MinimalSetsExpandParallelArcs) {
  const auto sp = LocalStateSpace(Domain::range(2), {1, 0});
  auto st = [&](Value a, Value b) {
    return sp.encode(std::vector<Value>{a, b});
  };
  // Two distinct t-arcs writing 0→1 (different contexts) and one 1→0.
  std::vector<LocalTransition> delta{{st(0, 0), st(0, 1)},
                                     {st(1, 0), st(1, 1)},
                                     {st(0, 1), st(0, 0)}};
  const Protocol p("par", sp, delta, std::vector<bool>(sp.size(), false));
  const auto minimal = minimal_pseudo_livelocks(p, {});
  EXPECT_EQ(minimal.size(), 2u);  // {0,2} and {1,2} as index sets
  for (const auto& s : minimal) EXPECT_EQ(s.size(), 2u);
}

TEST(PseudoLivelock, DescribeSummarizes) {
  const Protocol p = protocols::agreement_both();
  const WriteProjection proj(p, {});
  const std::string text = proj.describe(p);
  EXPECT_NE(text.find("0→1"), std::string::npos);
  EXPECT_NE(text.find("union of value cycles"), std::string::npos);
}

}  // namespace
}  // namespace ringstab
