// The protocol lint engine: one golden fixture per RS code, suppression
// directives, JSON round-tripping, located parser errors, and the
// synthesizer's reject_ill_formed pre-filter (bit-identity + counters).
#include <filesystem>
#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "core/parser.hpp"
#include "obs/obs.hpp"
#include "synthesis/global_synthesizer.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab {
namespace {

std::string fixture(const std::string& name) {
  return std::string(RINGSTAB_LINT_FIXTURES) + "/" + name;
}

bool has_code(const LintResult& res, const std::string& code,
              Severity severity) {
  for (const auto& d : res.diagnostics)
    if (d.code == code && d.severity == severity) return true;
  return false;
}

struct GoldenCase {
  const char* file;
  const char* code;
  Severity severity;
};

// One broken fixture per diagnostic code (and per severity tier where a
// code has several).
const GoldenCase kGolden[] = {
    {"rs000_syntax.ring", "RS000", Severity::kError},
    {"rs001_domain.ring", "RS001", Severity::kError},
    {"rs001_stutter.ring", "RS001", Severity::kWarning},
    {"rs002_cycle.ring", "RS002", Severity::kError},
    {"rs002_nsd.ring", "RS002", Severity::kWarning},
    {"rs003_conflict.ring", "RS003", Severity::kWarning},
    {"rs010_dead.ring", "RS010", Severity::kWarning},
    {"rs011_deadlock.ring", "RS011", Severity::kWarning},
    {"rs020_empty.ring", "RS020", Severity::kError},
    {"rs020_unused.ring", "RS020", Severity::kNote},
    {"rs030_closure.ring", "RS030", Severity::kError},
    {"rs100_vacuous.ring", "RS100", Severity::kWarning},
    {"rs102_implies.ring", "RS102", Severity::kNote},
    {"rs110_spurious.ring", "RS110", Severity::kNote},
};

TEST(Lint, GoldenFixtures) {
  for (const auto& g : kGolden) {
    const LintResult res = lint_ring_file(fixture(g.file));
    EXPECT_TRUE(has_code(res, g.code, g.severity))
        << g.file << " should emit " << g.code << " at severity "
        << severity_name(g.severity) << "; got:\n"
        << render_text(res.diagnostics);
    EXPECT_EQ(res.has_error(), res.count(Severity::kError) > 0);
  }
}

TEST(Lint, ErrorFixturesFailAndWarningFixturesDoNot) {
  EXPECT_TRUE(lint_ring_file(fixture("rs020_empty.ring")).has_error());
  EXPECT_TRUE(lint_ring_file(fixture("rs002_cycle.ring")).has_error());
  EXPECT_FALSE(lint_ring_file(fixture("rs003_conflict.ring")).has_error());
  EXPECT_FALSE(lint_ring_file(fixture("rs011_deadlock.ring")).has_error());
}

TEST(Lint, ShippedRingZooIsLintClean) {
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(RINGSTAB_RINGS)) {
    if (entry.path().extension() != ".ring") continue;
    ++files;
    const LintResult res = lint_ring_file(entry.path().string());
    EXPECT_TRUE(res.diagnostics.empty())
        << entry.path().filename() << " is not lint-clean:\n"
        << render_text(res.diagnostics);
  }
  EXPECT_GE(files, 8u);
}

TEST(Lint, AllowDirectiveSuppressesAndCounts) {
  // matching_gen acknowledges its intentional A3a/A3b nondeterminism.
  const LintResult res =
      lint_ring_file(std::string(RINGSTAB_RINGS) + "/matching_gen.ring");
  EXPECT_TRUE(res.diagnostics.empty());
  EXPECT_GE(res.suppressed, 1u);

  // The same file without the directive produces the RS003 warning.
  const std::string text =
      read_source_file(std::string(RINGSTAB_RINGS) + "/matching_gen.ring");
  ProtocolSource src = parse_protocol_source(text);
  src.lint_allows.clear();
  EXPECT_TRUE(has_code(lint_source(src), "RS003", Severity::kWarning));
}

TEST(Lint, SpanRecoveredFromParseError) {
  const LintResult res = lint_ring_file(fixture("rs000_syntax.ring"));
  ASSERT_EQ(res.diagnostics.size(), 1u);
  const Diagnostic& d = res.diagnostics[0];
  EXPECT_EQ(d.code, "RS000");
  EXPECT_TRUE(d.span.valid());
  EXPECT_EQ(d.span.line, 4);
  // The rendered location prefix survives end to end.
  EXPECT_NE(render_text(res.diagnostics).find(":4:"), std::string::npos);
}

TEST(Lint, ParserErrorsCarryFileLineColumn) {
  try {
    parse_protocol_file(fixture("rs000_syntax.ring"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(fixture("rs000_syntax.ring") + ":4:"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find(": error: "), std::string::npos) << msg;
  }
  // String entry points locate errors in "<input>".
  try {
    parse_protocol("protocol p;\ndomain 99999999999999999999;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("<input>:2:"), std::string::npos)
        << e.what();
  }
}

TEST(Lint, JsonRoundTrip) {
  const LintResult res = lint_ring_file(fixture("rs001_domain.ring"));
  ASSERT_FALSE(res.diagnostics.empty());
  EXPECT_EQ(parse_diagnostics_json(render_json(res.diagnostics)),
            res.diagnostics);
}

TEST(Lint, JsonRoundTripEscapes) {
  Diagnostic d;
  d.code = "RS099";
  d.severity = Severity::kWarning;
  d.message = "quote \" backslash \\ newline \n tab \t bell \x07 done";
  d.hint = "carriage\rreturn";
  d.file = "weird \"name\".ring";
  d.span = SourceSpan{3, 17};
  const std::vector<Diagnostic> diags{d};
  EXPECT_EQ(parse_diagnostics_json(render_json(diags)), diags);
}

TEST(Lint, EmptyDiagnosticsRenderAsEmptyArray) {
  EXPECT_EQ(parse_diagnostics_json(render_json({})),
            std::vector<Diagnostic>{});
  EXPECT_EQ(render_text({}), "");
}

TEST(Lint, CertificateNotesAreGatedByOption) {
  // RS101/RS120 fixtures are clean by default: positive certificates only
  // appear when asked for, even though the discharge wiring is always on.
  EXPECT_TRUE(
      lint_ring_file(fixture("rs101_selfdisable.ring")).diagnostics.empty());
  EXPECT_TRUE(
      lint_ring_file(fixture("rs120_closure.ring")).diagnostics.empty());

  LintOptions certs;
  certs.absint_certificates = true;
  EXPECT_TRUE(has_code(lint_ring_file(fixture("rs101_selfdisable.ring"), certs),
                       "RS101", Severity::kNote));
  EXPECT_TRUE(has_code(lint_ring_file(fixture("rs120_closure.ring"), certs),
                       "RS120", Severity::kNote));
}

TEST(Lint, TrailReplayBudgetZeroDisablesRs110) {
  LintOptions off;
  off.trail_replay_budget = 0;
  EXPECT_FALSE(has_code(lint_ring_file(fixture("rs110_spurious.ring"), off),
                        "RS110", Severity::kNote));
}

TEST(Lint, JsonRoundTripEveryCode) {
  // Every registered code survives render -> parse with every severity it
  // can be emitted at (docs/lint.md).
  const std::vector<Diagnostic> diags = [] {
    std::vector<Diagnostic> out;
    const struct {
      const char* code;
      Severity severity;
    } rows[] = {
        {"RS000", Severity::kError},   {"RS001", Severity::kError},
        {"RS001", Severity::kWarning}, {"RS002", Severity::kError},
        {"RS002", Severity::kWarning}, {"RS003", Severity::kWarning},
        {"RS010", Severity::kWarning}, {"RS011", Severity::kWarning},
        {"RS020", Severity::kError},   {"RS020", Severity::kWarning},
        {"RS020", Severity::kNote},    {"RS030", Severity::kError},
        {"RS030", Severity::kNote},    {"RS100", Severity::kWarning},
        {"RS100", Severity::kNote},    {"RS101", Severity::kNote},
        {"RS102", Severity::kNote},    {"RS110", Severity::kNote},
        {"RS120", Severity::kNote},
    };
    int line = 1;
    for (const auto& r : rows) {
      Diagnostic d;
      d.code = r.code;
      d.severity = r.severity;
      d.message = std::string("synthetic finding for ") + r.code;
      d.hint = "round-trip me";
      d.file = "every_code.ring";
      d.span = SourceSpan{line++, 1};
      out.push_back(std::move(d));
    }
    return out;
  }();
  EXPECT_EQ(parse_diagnostics_json(render_json(diags)), diags);

  // And the real fixture output for each golden case round-trips too.
  for (const auto& g : kGolden) {
    SCOPED_TRACE(g.file);
    const LintResult res = lint_ring_file(fixture(g.file));
    EXPECT_EQ(parse_diagnostics_json(render_json(res.diagnostics)),
              res.diagnostics);
  }
}

TEST(Lint, AllowDirectiveUnknownCodeIsInertDuplicatesCountOnce) {
  const std::string base =
      "protocol racer;\n"
      "domain 3;\n"
      "reads -1 .. 0;\n"
      "legit: x[0] == 1 || x[0] == 2;\n"
      "action go_one: x[0] == 0 -> x[0] := 1;\n"
      "action go_two: x[-1] == 0 && x[0] == 0 -> x[0] := 2;\n";

  // An unknown code suppresses nothing and is not an error.
  const LintResult unknown = lint_source(
      parse_protocol_source("# lint: allow(RS999)\n" + base, "unknown.ring"));
  EXPECT_TRUE(has_code(unknown, "RS003", Severity::kWarning));
  EXPECT_EQ(unknown.suppressed, 0u);

  // Listing a code twice suppresses each matching finding exactly once.
  const LintResult once = lint_source(
      parse_protocol_source("# lint: allow(RS003, RS102)\n" + base, "a.ring"));
  const LintResult twice = lint_source(parse_protocol_source(
      "# lint: allow(RS003, RS003, RS102, RS102)\n" + base, "b.ring"));
  EXPECT_FALSE(has_code(twice, "RS003", Severity::kWarning));
  EXPECT_EQ(once.suppressed, twice.suppressed);
  EXPECT_GE(once.suppressed, 1u);
}

TEST(Lint, AllowDirectiveSuppressesSymbolicCodes) {
  // RS1xx findings obey the same suppression machinery as RS0xx.
  const std::string rot =
      read_source_file(fixture("rs110_spurious.ring"));
  const LintResult loud =
      lint_source(parse_protocol_source(rot, "rot.ring"));
  EXPECT_TRUE(has_code(loud, "RS110", Severity::kNote));
  const LintResult quiet = lint_source(
      parse_protocol_source("# lint: allow(RS110)\n" + rot, "rot.ring"));
  EXPECT_FALSE(has_code(quiet, "RS110", Severity::kNote));
  EXPECT_GE(quiet.suppressed, 1u);

  const std::string implies =
      read_source_file(fixture("rs102_implies.ring"));
  const LintResult q2 = lint_source(parse_protocol_source(
      "# lint: allow(RS102)\n" + implies, "implies.ring"));
  EXPECT_FALSE(has_code(q2, "RS102", Severity::kNote));
}

TEST(Lint, CandidateErrorsDetectTArcCycleAndEmptyLc) {
  const Protocol cyclic = parse_protocol_file(fixture("rs002_cycle.ring"));
  const auto errs = lint_candidate_errors(cyclic);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].code, "RS002");
  EXPECT_EQ(errs[0].severity, Severity::kError);

  const Protocol empty_lc = parse_protocol_file(fixture("rs020_empty.ring"));
  const auto errs2 = lint_candidate_errors(empty_lc);
  ASSERT_EQ(errs2.size(), 1u);
  EXPECT_EQ(errs2[0].code, "RS020");

  const Protocol ok = parse_protocol_file(std::string(RINGSTAB_RINGS) +
                                          "/sum_not_two_ss.ring");
  EXPECT_TRUE(lint_candidate_errors(ok).empty());
}

// ---------------------------------------------------------------------------
// The reject_ill_formed pre-filter.

SynthesisOptions fast_options(bool reject, std::size_t threads) {
  SynthesisOptions o;
  o.reject_ill_formed = reject;
  o.num_threads = threads;
  o.require_closed_invariant = false;
  o.classify_rejected_trails = false;
  return o;
}

void expect_identical(const SynthesisResult& a, const SynthesisResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.candidates_examined, b.candidates_examined);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].protocol.name(), b.solutions[i].protocol.name());
    EXPECT_EQ(a.solutions[i].added, b.solutions[i].added);
    EXPECT_EQ(a.solutions[i].via_npl, b.solutions[i].via_npl);
  }
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].status, b.reports[i].status);
    EXPECT_EQ(a.reports[i].added, b.reports[i].added);
  }
}

std::size_t count_ill_formed(const SynthesisResult& r) {
  std::size_t n = 0;
  for (const auto& rep : r.reports)
    if (rep.status == CandidateReport::Status::kRejectedIllFormed) ++n;
  return n;
}

TEST(LintPrefilter, ZooResultsBitIdenticalWithFilterOnAndOff) {
  // Early (pre-filter) vs late (trail-pipeline ModelError) detection must
  // agree exactly — candidate for candidate — at every thread count.
  for (const char* name :
       {"agreement.ring", "sum_not_two.ring", "three_coloring.ring",
        "token_pair.ring", "forbidden_pairs.ring", "reset_to_zero.ring"}) {
    SCOPED_TRACE(name);
    const Protocol p =
        parse_protocol_file(std::string(RINGSTAB_RINGS) + "/" + name);
    const SynthesisResult on1 = synthesize_convergence(p, fast_options(true, 1));
    const SynthesisResult off1 =
        synthesize_convergence(p, fast_options(false, 1));
    const SynthesisResult on4 = synthesize_convergence(p, fast_options(true, 4));
    const SynthesisResult off4 =
        synthesize_convergence(p, fast_options(false, 4));
    expect_identical(on1, off1);
    expect_identical(on1, on4);
    expect_identical(on1, off4);
  }
}

TEST(LintPrefilter, ResetToZeroRejectsIllFormedCandidates) {
  const Protocol p = parse_protocol_file(std::string(RINGSTAB_RINGS) +
                                         "/reset_to_zero.ring");
  const SynthesisResult res = synthesize_convergence(p, fast_options(true, 1));
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.candidates_examined, 64u);
  EXPECT_EQ(count_ill_formed(res), 28u);
  for (const auto& rep : res.reports) {
    if (rep.status != CandidateReport::Status::kRejectedIllFormed) continue;
    ASSERT_FALSE(rep.ill_formed.empty());
    EXPECT_EQ(rep.ill_formed[0].code, "RS002");
  }
  // The summary surfaces the rejection tally.
  EXPECT_NE(res.summary(p).find("rejected (ill-formed by lint): 28"),
            std::string::npos);
}

TEST(LintPrefilter, RejectionCounterIsThreadInvariant) {
  const Protocol p = parse_protocol_file(std::string(RINGSTAB_RINGS) +
                                         "/reset_to_zero.ring");
  obs::g_enabled.store(true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::Registry::global().reset_counters();
    (void)synthesize_convergence(p, fast_options(true, threads));
    EXPECT_EQ(obs::counter("lint.candidates_rejected").total(), 28u)
        << "threads=" << threads;
  }
  obs::g_enabled.store(false);
  obs::Registry::global().reset_counters();
}

TEST(LintPrefilter, DiagEmissionCounterFires) {
  obs::g_enabled.store(true);
  obs::Registry::global().reset_counters();
  (void)lint_ring_file(fixture("rs011_deadlock.ring"));
  EXPECT_GT(obs::counter("lint.diags_emitted").total(), 0u);
  obs::g_enabled.store(false);
  obs::Registry::global().reset_counters();
}

TEST(LintPrefilter, GlobalSynthesizerRejectsIllFormedBeforeSweep) {
  const Protocol p = parse_protocol_file(std::string(RINGSTAB_RINGS) +
                                         "/reset_to_zero.ring");
  GlobalSynthesisOptions on;
  on.min_ring = 2;
  on.max_ring = 4;
  const GlobalSynthesisResult with = synthesize_convergence_global(p, on);
  EXPECT_EQ(with.ill_formed_out, 28u);

  GlobalSynthesisOptions off = on;
  off.reject_ill_formed = false;
  const GlobalSynthesisResult without = synthesize_convergence_global(p, off);
  EXPECT_EQ(without.ill_formed_out, 0u);
  // The exhaustive sweep rejects the same candidates the hard way: the
  // solution lists agree exactly.
  ASSERT_EQ(with.solutions.size(), without.solutions.size());
  for (std::size_t i = 0; i < with.solutions.size(); ++i)
    EXPECT_EQ(with.solutions[i].added, without.solutions[i].added);
}

}  // namespace
}  // namespace ringstab
