# RS000: the parser rejects this file (missing ';' after the name), and
# lint surfaces the failure as a located error diagnostic.
protocol broken
domain 2;
