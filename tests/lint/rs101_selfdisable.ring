# RS101 (note, with --certificates / LintOptions::absint_certificates):
# both writes pin x[0] to 2, which falsifies every guard, so Assumption 2
# is discharged symbolically without expanding the local state space.
protocol selfdis;
domain 3;
reads -1 .. 0;
legit: x[0] == 2;
action a0: x[0] == 0 -> x[0] := 2;
action a1: x[0] == 1 -> x[0] := 2;
