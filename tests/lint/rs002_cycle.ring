# RS002 (error): flip and flop chain into the local transition cycle
# x0=0 -> x0=1 -> x0=0, so one process can fire forever (Assumption 1).
protocol flip_flop;
domain 2;
reads -1 .. 0;
legit: x[-1] == x[0];
action flip: x[0] == 0 -> x[0] := 1;
action flop: x[0] == 1 -> x[0] := 0;
