# RS003 (warning): both actions are enabled at 00 and write different
# values, so the scheduler resolves the race nondeterministically.
protocol racer;
domain 3;
reads -1 .. 0;
legit: x[0] == 1 || x[0] == 2;
action go_one: x[0] == 0 -> x[0] := 1;
action go_two: x[-1] == 0 && x[0] == 0 -> x[0] := 2;
