# RS001 (error): x[0] + 1 evaluates to 2 when x[0] = 1, outside domain 2.
protocol overflow;
domain 2;
reads -1 .. 0;
legit: x[0] == 0;
action bump: x[-1] == 1 -> x[0] := x[0] + 1;
