# RS002 (warning): raise's target 11 still enables push, so raise is not
# self-disabling (Assumption 2); the chain terminates, so no error.
protocol chained;
domain 3;
reads -1 .. 0;
legit: x[0] == 2;
action raise: x[0] == 0 -> x[0] := 1;
action push: x[-1] == 1 && x[0] == 1 -> x[0] := 2;
