# RS110 (note): the Section 6.2 rotation revision of Sum-Not-Two. The
# Theorem 5.14 search finds a contiguous trail, but symbolic replay proves
# the trail unrealizable — the paper's known spurious counterexample.
protocol sum_not_two_rot;
domain 3;
reads -1 .. 0;
legit: x[-1] + x[0] != 2;
action rot_up: x[-1] + x[0] == 2 -> x[0] := (x[0] + 1) % 3;
