# RS100 (warning): impossible's guard demands x[0] be 0 and 1 at once, so
# the abstract evaluator proves it unsatisfiable — the action never fires.
protocol vacuum;
domain 2;
reads -1 .. 0;
legit: x[0] == 0;
action impossible: x[0] == 0 && x[0] == 1 -> x[0] := 1;
action settle: x[0] == 1 -> x[0] := 0;
