# RS102 (note): narrow's guard implies wide's, so wherever narrow is
# enabled both actions compete and write different values. RS003 reports
# the concrete overlap states; RS102 proves the containment symbolically.
# lint: allow(RS003)
protocol overlap;
domain 3;
reads -1 .. 0;
legit: x[0] == 1 || x[0] == 2;
action narrow: x[-1] == 0 && x[0] == 0 -> x[0] := 1;
action wide: x[0] == 0 -> x[0] := 2;
