# RS010 (warning): never's guard mentions a value outside the domain, so it
# holds nowhere; all_stutter only rewrites x[0] to itself.
protocol deadwood;
domain 2;
reads -1 .. 0;
legit: x[0] == 0;
action never: x[0] == 2 -> x[0] := 0;
action all_stutter: x[0] == 1 -> x[0] := 1;
