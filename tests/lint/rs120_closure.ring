# RS120 (note, with --certificates / LintOptions::absint_certificates):
# rise's guard contradicts the mover's own legitimacy constraint, so no
# action can fire inside I — closure of the invariant is proved
# symbolically and RS030's concrete sweep is skipped.
protocol closed;
domain 2;
reads -1 .. 0;
legit: x[0] == 1;
action rise: x[0] == 0 -> x[0] := 1;
