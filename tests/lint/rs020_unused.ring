# RS020 (note): value 2 is never written, never enables an action and is
# never legitimate as x[0].
# lint: allow(RS011)
protocol spare_value;
domain 3;
reads -1 .. 0;
legit: x[0] == 0;
action drop: x[0] == 1 -> x[0] := 0;
