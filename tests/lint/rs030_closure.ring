# RS030 (error): escape fires from the all-zero configuration, which lies
# inside I, and leaves it — Problem 3.1 forbids behavior change within I.
# lint: allow(RS011)
protocol leaky;
domain 2;
reads -1 .. 0;
legit: x[0] == 0;
action escape: x[-1] == 0 && x[0] == 0 -> x[0] := 1;
