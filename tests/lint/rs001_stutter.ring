# RS001 (warning): the assignment rewrites x[0] to its current value at
# some enabled states (here 00) while generating real transitions at others.
protocol stutterer;
domain 2;
reads -1 .. 0;
legit: x[0] == 0;
action lazy_zero: x[-1] == 0 -> x[0] := 0;
