# RS011 (warning): with no actions at all, every illegitimate window is a
# deadlock, and the deadlock RCG has cycles through them (Theorem 4.2).
protocol stuck;
domain 2;
reads -1 .. 0;
legit: x[-1] == x[0];
