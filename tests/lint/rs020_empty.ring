# RS020 (error): the legitimacy predicate is identically false, so I(K) is
# empty and there is nothing to converge to.
protocol nowhere;
domain 2;
reads -1 .. 0;
legit: 0;
