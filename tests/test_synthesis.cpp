#include "synthesis/local_synthesizer.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"

namespace ringstab {
namespace {

// Section 6.2 agreement: Resolve = {01} or {10}; two single-transition
// solutions, both on the NPL fast path.
TEST(Synthesis, AgreementYieldsTwoOneSidedSolutions) {
  const Protocol input = protocols::agreement_empty();
  const auto res = synthesize_convergence(input);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.resolve_sets.size(), 2u);
  for (const auto& rs : res.resolve_sets) EXPECT_EQ(rs.size(), 1u);
  ASSERT_EQ(res.solutions.size(), 2u);
  for (const auto& sol : res.solutions) {
    EXPECT_TRUE(sol.via_npl);
    EXPECT_EQ(sol.added.size(), 1u);
  }
  // The two solutions are exactly the one-sided protocols.
  EXPECT_EQ(res.solutions[0].protocol.delta(),
            protocols::agreement_one_sided(true).delta());
  EXPECT_EQ(res.solutions[1].protocol.delta(),
            protocols::agreement_one_sided(false).delta());
}

// Section 6.1: 3-coloring fails — all 8 candidate sets form pseudo-livelocks
// participating in contiguous trails.
TEST(Synthesis, ThreeColoringFails) {
  const auto res = synthesize_convergence(protocols::coloring_empty(3));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.resolve_sets.size(), 1u);
  EXPECT_EQ(res.resolve_sets[0].size(), 3u);  // {00, 11, 22}
  EXPECT_EQ(res.candidates_examined, 8u);
  for (const auto& r : res.reports) {
    EXPECT_EQ(r.status, CandidateReport::Status::kRejectedTrail);
    ASSERT_TRUE(r.trail.has_value());
  }
}

// Section 6.2: 2-coloring fails with the single candidate rejected.
TEST(Synthesis, TwoColoringFails) {
  const auto res = synthesize_convergence(protocols::coloring_empty(2));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.candidates_examined, 1u);
  ASSERT_EQ(res.reports.size(), 1u);
  EXPECT_EQ(res.reports[0].status, CandidateReport::Status::kRejectedTrail);
}

// Section 6.2: sum-not-two succeeds; the paper's published solution is among
// the accepted candidates and both rotations are rejected.
TEST(Synthesis, SumNotTwoSucceedsWithPaperSolution) {
  const Protocol input = protocols::sum_not_two_empty();
  const auto res = synthesize_convergence(input);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.candidates_examined, 8u);
  EXPECT_EQ(res.solutions.size(), 4u);

  const auto paper = protocols::sum_not_two_solution().delta();
  const bool has_paper_solution =
      std::any_of(res.solutions.begin(), res.solutions.end(),
                  [&](const auto& s) { return s.protocol.delta() == paper; });
  EXPECT_TRUE(has_paper_solution);

  for (bool up : {true, false}) {
    const auto rot = protocols::sum_not_two_rotation(up).delta();
    EXPECT_FALSE(std::any_of(
        res.solutions.begin(), res.solutions.end(),
        [&](const auto& s) { return s.protocol.delta() == rot; }))
        << "rotation must be rejected";
  }
}

// Every accepted solution must actually stabilize (global cross-check) —
// including the two candidates the paper's own hand analysis would have
// accepted but which really livelock (caught by the trail search).
TEST(Synthesis, SumNotTwoAcceptedSolutionsVerifyGlobally) {
  const auto res = synthesize_convergence(protocols::sum_not_two_empty());
  for (const auto& sol : res.solutions)
    for (std::size_t k = 2; k <= 7; ++k)
      EXPECT_TRUE(strongly_stabilizing(RingInstance(sol.protocol, k)))
          << "K=" << k;
}

TEST(Synthesis, SumNotTwoRejectionsSplitRealAndSpurious) {
  const auto res = synthesize_convergence(protocols::sum_not_two_empty());
  std::size_t real = 0, spurious = 0;
  for (const auto& r : res.reports) {
    if (r.status != CandidateReport::Status::kRejectedTrail) continue;
    const Protocol pss =
        protocols::sum_not_two_empty().with_added("chk", r.added);
    bool livelocks = false;
    for (std::size_t k = 3; k <= 6 && !livelocks; ++k)
      livelocks = testing::global_has_livelock(pss, k);
    livelocks ? ++real : ++spurious;
  }
  EXPECT_EQ(real, 2u) << "two rejected candidates truly livelock";
  EXPECT_EQ(spurious, 2u) << "the paper's two rotations are spurious trails";
}

// NPL fast path: the no-adjacent-ones protocol synthesizes via NPL.
TEST(Synthesis, NoAdjacentOnesUsesNplFastPath) {
  const auto res = synthesize_convergence(protocols::no_adjacent_ones_empty());
  ASSERT_TRUE(res.success);
  ASSERT_EQ(res.solutions.size(), 1u);
  EXPECT_TRUE(res.solutions[0].via_npl);
  EXPECT_EQ(res.solutions[0].protocol.delta(),
            protocols::no_adjacent_ones_solution().delta());
}

// Problem 3.1 constraint: synthesis only ADDS transitions sourced at
// illegitimate local deadlocks; behavior inside I is untouched.
TEST(Synthesis, SolutionsPreserveBehaviorInsideI) {
  const Protocol input = protocols::sum_not_two_empty();
  const auto res = synthesize_convergence(input);
  for (const auto& sol : res.solutions) {
    for (const auto& t : sol.added) {
      EXPECT_FALSE(input.is_legit(t.from));
      EXPECT_TRUE(input.is_deadlock(t.from));
    }
    // Original transitions all survive.
    for (const auto& t : input.delta())
      EXPECT_TRUE(std::binary_search(sol.protocol.delta().begin(),
                                     sol.protocol.delta().end(), t));
  }
}

TEST(Synthesis, ClosureValidationRejectsBadInput) {
  // A protocol whose transitions break closure of I.
  const auto sp = LocalStateSpace(Domain::range(2), {1, 0});
  const LocalStateId s00 = sp.encode(std::vector<Value>{0, 0});
  const Protocol bad("bad", sp, {{s00, sp.with_self(s00, 1)}},
                     {true, true, false, false});  // legit: x0 == 0
  EXPECT_THROW(synthesize_convergence(bad), ModelError);
  SynthesisOptions opts;
  opts.require_closed_invariant = false;
  EXPECT_NO_THROW(synthesize_convergence(bad, opts));
}

TEST(Synthesis, MaxSolutionsStopsEarly) {
  SynthesisOptions opts;
  opts.max_solutions = 1;
  const auto res =
      synthesize_convergence(protocols::sum_not_two_empty(), opts);
  EXPECT_EQ(res.solutions.size(), 1u);
}

TEST(Synthesis, SummaryMentionsOutcome) {
  const Protocol input = protocols::agreement_empty();
  const auto res = synthesize_convergence(input);
  EXPECT_NE(res.summary(input).find("SUCCESS"), std::string::npos);
  const Protocol c2 = protocols::coloring_empty(2);
  EXPECT_NE(synthesize_convergence(c2).summary(c2).find("FAILURE"),
            std::string::npos);
}

// summary() prints at most four solutions; beyond that it must say how many
// were elided instead of truncating silently.
TEST(Synthesis, SummaryReportsElidedSolutions) {
  const Protocol p = protocols::agreement_empty();
  SynthesisResult res;
  res.success = true;
  for (int i = 0; i < 7; ++i)
    res.solutions.push_back({p, {}, {}, true});
  const std::string text = res.summary(p);
  EXPECT_NE(text.find("solution 4"), std::string::npos);
  EXPECT_EQ(text.find("solution 5"), std::string::npos);
  EXPECT_NE(text.find("… and 3 more"), std::string::npos);

  // At exactly four solutions nothing is elided and no banner appears.
  SynthesisResult four;
  four.success = true;
  for (int i = 0; i < 4; ++i)
    four.solutions.push_back({p, {}, {}, true});
  EXPECT_EQ(four.summary(p).find("more"), std::string::npos);
}

// Already-converging input: empty Resolve, the empty addition is returned.
TEST(Synthesis, AlreadyConvergingInputYieldsItself) {
  const auto res =
      synthesize_convergence(protocols::no_adjacent_ones_solution());
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.solutions[0].added.size(), 0u);
}

}  // namespace
}  // namespace ringstab
