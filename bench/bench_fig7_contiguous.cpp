// EXP-F7 — Figure 7: the contiguity reduction. A protocol livelocks iff it
// has a *contiguous* livelock (Lemma 5.11); we demonstrate the equivalence
// empirically: whenever the model checker finds any livelock at size K, some
// livelock state has all its enablements adjacent.
#include <map>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "protocols/agreement.hpp"

namespace {

using namespace ringstab;

// Are the enabled processes of state s one contiguous segment of the ring?
bool enablements_contiguous(const RingInstance& ring, GlobalStateId s) {
  const std::size_t k = ring.ring_size();
  std::vector<bool> enabled(k);
  std::size_t count = 0;
  for (std::size_t i = 0; i < k; ++i) {
    enabled[i] = ring.process_enabled(s, i);
    if (enabled[i]) ++count;
  }
  if (count == 0 || count == k) return count != 0;
  // Count enabled→disabled boundaries; contiguous ⇔ exactly one.
  std::size_t boundaries = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (enabled[i] && !enabled[(i + 1) % k]) ++boundaries;
  return boundaries == 1;
}

void report() {
  const Protocol p = protocols::agreement_both();
  bench::header("EXP-F7", "Figure 7 (contiguous livelocks)",
                "p(K) has a livelock iff it has a contiguous livelock — a "
                "computation rotating a segment of |E| adjacent enablements "
                "(the figure draws K=6, |E|=3)");

  for (std::size_t k = 4; k <= 8; ++k) {
    const RingInstance ring(p, k);
    const GlobalChecker checker(ring);
    const auto ll_states = checker.livelock_states();
    if (ll_states.empty()) {
      bench::row(cat("K=", k), "livelock exists", "no livelock");
      continue;
    }
    std::size_t contiguous = 0;
    for (GlobalStateId s : ll_states)
      if (enablements_contiguous(ring, s)) ++contiguous;
    bench::row(cat("K=", k),
               "some livelock state has adjacent enablements",
               cat(ll_states.size(), " livelock states, ", contiguous,
                   " with a contiguous enablement segment"));
  }

  // Figure 7 is schematic (K=6, |E|=3); for the agreement protocol the
  // census below shows which (|E|, contiguity) combinations its livelocks
  // actually realize.
  const RingInstance ring6(p, 6);
  const auto states6 = GlobalChecker(ring6).livelock_states();
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> census;
  for (GlobalStateId s : states6) {
    auto& [total, contig] = census[ring6.num_enabled(s)];
    ++total;
    if (enablements_contiguous(ring6, s)) ++contig;
  }
  for (const auto& [e, counts] : census)
    bench::row(cat("K=6 livelock states with |E|=", e),
               "a segment of |E| adjacent enablements exists for some |E| "
               "(Figure 7 draws the schematic |E|=3 case)",
               cat(counts.first, " states, ", counts.second,
                   " with a contiguous segment"));
  bench::footer();
}

void BM_LivelockStates(benchmark::State& state) {
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto ll = GlobalChecker(ring).livelock_states();
    benchmark::DoNotOptimize(ll.size());
  }
}
BENCHMARK(BM_LivelockStates)->DenseRange(4, 10);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
