// EXP-F3 — Figure 3 / Example 4.3: the non-generalizable matching protocol.
// Bad RCG cycles of lengths 4 and 6 through ⟨left,left,self⟩; the deadlocked
// ring-size spectrum; witness rings verified globally.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/deadlock.hpp"
#include "protocols/matching.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto res = analyze_deadlocks(p, 24);

  bench::header("EXP-F3", "Figure 3 + Example 4.3 (non-generalizable matching)",
                "two directed cycles through the illegitimate deadlock "
                "⟨left,left,self⟩, lengths 4 (lls,lsr,srl,rll) and 6; the "
                "protocol stabilizes at K=5 but deadlocks at multiples of 4 "
                "or 6");

  std::string cycles;
  for (const auto& c : res.bad_cycles) {
    cycles += "[";
    cycles += join(c, " ", [&](VertexId v) { return p.space().brief(v); });
    cycles += cat("] (len ", c.size(), ")  ");
  }
  bench::row("bad cycles", "lengths 4 and 6 through lls", cycles);

  bench::row("deadlocked sizes up to 24",
             "multiples of 4 or 6: {4, 6, 8, 12, 16, 18, 20, 24}",
             join(res.deadlocked_sizes(), " ",
                  [](std::size_t k) { return std::to_string(k); }));
  bench::note(
      "the paper's size claim is incomplete: composite closed walks through "
      "the cycle structure (e.g. 4-cycle + legit-deadlock detours) also "
      "deadlock K = 7, 9, 10, 11, ... — verified exhaustively below");

  std::string global;
  for (std::size_t k = 4; k <= 10; ++k) {
    const RingInstance ring(p, k);
    global += cat("K=", k, ":",
                  GlobalChecker(ring).count_deadlocks_outside_invariant()
                      ? "dead"
                      : "ok",
                  " ");
  }
  bench::row("exhaustive global check", "K=5 clean; K=4,6 deadlocked", global);

  for (std::size_t k : {4u, 6u, 7u}) {
    const auto ring = deadlock_witness_ring(p, k);
    bench::row(cat("witness ring K=", k),
               "a ring of locally deadlocked processes outside I",
               ring ? cat("⟨",
                          join(*ring, ",",
                               [&](Value v) { return p.domain().name(v); }),
                          "⟩ (verified)")
                    : "none");
  }

  // The paper's closing remark of Example 4.3: resolving ⟨l,l,s⟩ fixes it.
  const Protocol fixed = protocols::matching_nongeneralizable_fixed();
  const auto fixed_res = analyze_deadlocks(fixed, 12);
  std::string confirm;
  for (std::size_t k = 4; k <= 8; ++k) {
    const RingInstance ring(fixed, k);
    confirm += cat("K=", k, ":",
                   GlobalChecker(ring).count_deadlocks_outside_invariant()
                       ? "dead"
                       : "ok",
                   " ");
  }
  bench::row("after resolving ⟨left,left,self⟩ (paper's suggested repair)",
             "deadlock free for any ring size K",
             cat(fixed_res.deadlock_free_all_k ? "deadlock-free for every K"
                                               : "STILL BROKEN",
                 "; globally: ", confirm));
  bench::footer();
}

void BM_Theorem42_NonGen(benchmark::State& state) {
  const Protocol p = protocols::matching_nongeneralizable();
  for (auto _ : state) {
    const auto res = analyze_deadlocks(p, 2);
    benchmark::DoNotOptimize(res.deadlock_free_all_k);
  }
}
BENCHMARK(BM_Theorem42_NonGen);

void BM_SizeSpectrum(benchmark::State& state) {
  const Protocol p = protocols::matching_nongeneralizable();
  const auto max_k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto res = analyze_deadlocks(p, max_k);
    benchmark::DoNotOptimize(res.size_spectrum.feasible.size());
  }
}
BENCHMARK(BM_SizeSpectrum)->Arg(16)->Arg(64)->Arg(256);

void BM_WitnessConstruction(benchmark::State& state) {
  const Protocol p = protocols::matching_nongeneralizable();
  for (auto _ : state) {
    auto w = deadlock_witness_ring(p, 12);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WitnessConstruction);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
