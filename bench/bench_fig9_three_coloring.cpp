// EXP-F9 — Figure 9 / Section 6.1: the 3-coloring synthesis walkthrough.
// Resolve = {00, 11, 22}; 2^3 candidate sets; every one rejected.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "protocols/coloring.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol input = protocols::coloring_empty(3);
  const auto res = synthesize_convergence(input);

  bench::header("EXP-F9", "Figure 9 + Section 6.1 (3-coloring)",
                "Resolve = {00,11,22} (monochromatic deadlocks with s-arc "
                "self-loops); 2^3 = 8 candidate transition sets; every set "
                "forms a pseudo-livelock with a contiguous trail ⇒ FAILURE");
  bench::row("resolve sets", "one: {00, 11, 22}",
             cat(res.resolve_sets.size(), " set(s), size ",
                 res.resolve_sets.empty() ? 0 : res.resolve_sets[0].size()));
  bench::row("candidate sets examined", "8",
             std::to_string(res.candidates_examined));
  std::size_t rejected = 0;
  for (const auto& r : res.reports)
    if (r.status == CandidateReport::Status::kRejectedTrail) ++rejected;
  bench::row("rejected with a trail witness", "8", std::to_string(rejected));
  bench::row("outcome", "FAILURE (methodology step 5)",
             res.success ? "SUCCESS (mismatch!)" : "FAILURE");

  // The rotation candidate really livelocks (global confirmation).
  const Protocol rot = protocols::three_coloring_rotation();
  std::string global;
  for (std::size_t k = 3; k <= 6; ++k)
    global += cat("K=", k, ":",
                  GlobalChecker(RingInstance(rot, k)).find_livelock()
                      ? "livelock"
                      : "clean",
                  " ");
  bench::row("rotation {t01,t12,t20} globally",
             "forms the value rotation ≪0,1,2≫ and livelocks", global);
  bench::footer();
}

void BM_SynthesizeThreeColoring(benchmark::State& state) {
  const Protocol input = protocols::coloring_empty(3);
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeThreeColoring);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
