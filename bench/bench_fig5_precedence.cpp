// EXP-F5 — Figure 5 / Example 5.2: the precedence relation over the K=4
// agreement livelock's local transitions.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/precedence.hpp"
#include "protocols/agreement.hpp"

namespace {

using namespace ringstab;

// The paper's livelock L = ≪1000,1100,0100,0110,0111,0011,1011,1001≫.
std::pair<std::vector<Value>, Schedule> paper_livelock() {
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, 4);
  const std::vector<std::vector<Value>> states = {
      {1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0},
      {0, 1, 1, 1}, {0, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 0, 1}};
  std::vector<GlobalStateId> path;
  for (const auto& s : states) path.push_back(ring.encode(s));
  return {states[0], schedule_from_path(ring, path, /*cyclic=*/true)};
}

void report() {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();

  bench::header("EXP-F5", "Figure 5 + Example 5.2 (precedence relation)",
                "the K=4 agreement livelock has 8 local transitions with "
                "exactly 3 independent pairs, so 2^3 = 8 precedence-"
                "preserving permutations exist");
  bench::row("schedule is one livelock period", "yes",
             is_livelock_schedule(p, start, sched) ? "yes" : "NO");

  const auto rel = livelock_precedence(p, 4, sched);
  const auto pairs = rel.independent_pairs();
  bench::row("independent pairs", "3", std::to_string(pairs.size()));
  std::string pair_text;
  for (auto [a, b] : pairs)
    pair_text += cat("(step", a, " P", sched[a].process, ", step", b, " P",
                     sched[b].process, ") ");
  bench::row("which pairs", "transitions of processes at ring distance 2",
             pair_text);
  bench::row("precedence-preserving permutations (Lemma 5.11)", "2^3 = 8",
             std::to_string(count_linear_extensions(rel)));
  bench::footer();
}

void BM_BuildPrecedence(benchmark::State& state) {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();
  for (auto _ : state) {
    const auto rel = livelock_precedence(p, 4, sched);
    benchmark::DoNotOptimize(rel.size);
  }
}
BENCHMARK(BM_BuildPrecedence);

void BM_CountLinearExtensions(benchmark::State& state) {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();
  const auto rel = livelock_precedence(p, 4, sched);
  for (auto _ : state)
    benchmark::DoNotOptimize(count_linear_extensions(rel));
}
BENCHMARK(BM_CountLinearExtensions);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
