// EXP-F10 — Figure 10 / Section 6.2: agreement synthesis. Resolve = {01} or
// {10}; the two one-sided solutions are accepted (NPL); including both
// transitions is rejected via the (s,t,s)² trail.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "local/livelock.hpp"
#include "protocols/agreement.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol input = protocols::agreement_empty();
  const auto res = synthesize_convergence(input);

  bench::header("EXP-F10", "Figure 10 + Section 6.2 (binary agreement)",
                "resolving either 01 or 10 (but not both!) yields a "
                "deadlock-free, livelock-free protocol for every K; "
                "including both t01 and t10 fails the Theorem 5.14 check");
  bench::row("resolve sets", "{01} or {10}",
             cat(res.resolve_sets.size(), " singleton sets"));
  bench::row("solutions", "2 (each a single copy action)",
             std::to_string(res.solutions.size()));
  for (const auto& sol : res.solutions)
    bench::row(cat("solution via ", sol.via_npl ? "NPL" : "PL"),
               "x[-1]≠x[0] → copy predecessor (one direction)",
               join(sol.added, "; ", [&](const LocalTransition& t) {
                 return describe_transition(sol.protocol, t);
               }));

  const auto both = check_livelock_freedom(protocols::agreement_both());
  bench::row("both transitions included",
             "trail ≪01,t10,00,s,01,s,10,t01,11,s,10,s,01≫ found",
             both.trail() ? both.trail()->to_string(protocols::agreement_both())
                          : "NO TRAIL (mismatch)");

  std::string global;
  for (std::size_t k = 2; k <= 9; ++k)
    global += cat("K=", k, ":",
                  strongly_stabilizing(
                      RingInstance(res.solutions[0].protocol, k))
                      ? "ok"
                      : "FAIL",
                  " ");
  bench::row("first solution verified globally", "stabilizes at every K",
             global);
  bench::footer();
}

void BM_SynthesizeAgreement(benchmark::State& state) {
  const Protocol input = protocols::agreement_empty();
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeAgreement);

void BM_VerifyAgreementGlobally(benchmark::State& state) {
  const Protocol p = protocols::agreement_one_sided(true);
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(strongly_stabilizing(ring));
  state.SetComplexityN(static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_VerifyAgreementGlobally)->DenseRange(4, 12)->Complexity();

}  // namespace

RINGSTAB_BENCH_MAIN(report)
