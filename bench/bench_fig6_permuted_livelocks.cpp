// EXP-F6 — Figure 6: the precedence-preserving permutations of the K=4
// agreement livelock, each executed and validated as a livelock.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/precedence.hpp"
#include "protocols/agreement.hpp"

namespace {

using namespace ringstab;

std::pair<std::vector<Value>, Schedule> paper_livelock() {
  const Protocol p = protocols::agreement_both();
  const RingInstance ring(p, 4);
  const std::vector<std::vector<Value>> states = {
      {1, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0},
      {0, 1, 1, 1}, {0, 0, 1, 1}, {1, 0, 1, 1}, {1, 0, 0, 1}};
  std::vector<GlobalStateId> path;
  for (const auto& s : states) path.push_back(ring.encode(s));
  return {states[0], schedule_from_path(ring, path, /*cyclic=*/true)};
}

void report() {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();
  const auto perms = precedence_preserving_schedules(p, start, sched);

  bench::header("EXP-F6", "Figure 6 (permuted livelocks)",
                "every precedence-preserving permutation of the schedule is "
                "again a livelock of p(4) (Lemma 5.11); the figure draws two "
                "of the eight");
  bench::row("permutations generated (first step fixed)", "8",
             std::to_string(perms.size()));
  std::size_t valid = 0;
  for (const auto& s : perms)
    if (is_livelock_schedule(p, start, s)) ++valid;
  bench::row("validated as livelock periods by execution", "8",
             std::to_string(valid));

  // Print the first two permutations' state sequences (the figure's two).
  for (std::size_t idx = 0; idx < std::min<std::size_t>(2, perms.size());
       ++idx) {
    const auto states = execute_schedule(p, start, perms[idx]);
    std::string seq;
    for (const auto& st : *states) {
      for (Value v : st) seq += static_cast<char>('0' + v);
      seq += " ";
    }
    bench::row(cat("livelock #", idx + 1, " state sequence"),
               "≪1000,1100,…≫-style period", seq);
  }
  bench::footer();
}

void BM_GeneratePermutations(benchmark::State& state) {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();
  for (auto _ : state) {
    const auto perms = precedence_preserving_schedules(p, start, sched);
    benchmark::DoNotOptimize(perms.size());
  }
}
BENCHMARK(BM_GeneratePermutations);

void BM_ExecuteSchedule(benchmark::State& state) {
  const Protocol p = protocols::agreement_both();
  const auto [start, sched] = paper_livelock();
  for (auto _ : state) {
    auto states = execute_schedule(p, start, sched);
    benchmark::DoNotOptimize(states->size());
  }
}
BENCHMARK(BM_ExecuteSchedule);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
