// EXP-F2 — Figure 2 / Example 4.2: the generalizable matching protocol is
// deadlock-free for EVERY ring size (Theorem 4.2), cross-checked globally.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/deadlock.hpp"
#include "protocols/matching.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol p = protocols::matching_generalizable();
  const auto res = analyze_deadlocks(p);

  bench::header("EXP-F2", "Figure 2 + Example 4.2 (generalizable matching)",
                "the RCG induced over local deadlocks has no directed cycle "
                "through an illegitimate state ⇒ deadlock-free for every K; "
                "the paper model-checked K = 5..8");
  bench::row("local deadlocks", "(Fig. 2 vertex set)",
             cat(res.local_deadlocks.size(), " states, ",
                 res.illegitimate_deadlocks.size(), " illegitimate"));
  bench::row("cycles through ¬LC_r deadlocks", "none",
             res.bad_cycles.empty() ? "none" : "FOUND (mismatch!)");
  bench::row("Theorem 4.2 verdict", "deadlock-free for every K",
             res.deadlock_free_all_k ? "deadlock-free for every K"
                                     : "NOT deadlock-free");

  std::string global;
  for (std::size_t k = 2; k <= 8; ++k) {
    const RingInstance ring(p, k);
    const std::size_t n =
        GlobalChecker(ring).count_deadlocks_outside_invariant();
    global += cat("K=", k, ":", n, " ");
  }
  bench::row("global deadlocks outside I (exhaustive)",
             "0 for K = 5..8 (paper's model checking)", global);
  bench::footer();
}

void BM_Theorem42_Matching(benchmark::State& state) {
  const Protocol p = protocols::matching_generalizable();
  for (auto _ : state) {
    const auto res = analyze_deadlocks(p, 2);
    benchmark::DoNotOptimize(res.deadlock_free_all_k);
  }
}
BENCHMARK(BM_Theorem42_Matching);

// The cost the local method avoids: exhaustive deadlock checking at size K.
void BM_GlobalDeadlockCheck(benchmark::State& state) {
  const Protocol p = protocols::matching_generalizable();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const GlobalChecker checker(ring);
    benchmark::DoNotOptimize(checker.count_deadlocks_outside_invariant());
  }
  state.SetComplexityN(static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_GlobalDeadlockCheck)->DenseRange(4, 10)->Complexity();

}  // namespace

RINGSTAB_BENCH_MAIN(report)
