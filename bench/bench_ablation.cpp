// EXP-A1 — ablations of the design choices DESIGN.md calls out:
//   (a) the union-of-cycles static prune in the trail search,
//   (b) the NPL fast path in synthesis (skip the trail search when no
//       pseudo-livelock can exist at all),
//   (c) trail-search node budget sensitivity.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "local/livelock.hpp"
#include "local/pseudo_livelock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"
#include "transform/transform.hpp"

namespace {

using namespace ringstab;

void report() {
  bench::header("EXP-A1", "ablations",
                "quantify each design choice by turning it off");

  // (a) cycle-closure prune, on single protocols and on a layered product.
  struct Case {
    const char* name;
    Protocol p;
  };
  const std::vector<Case> cases = {
      {"sum-not-two solution", protocols::sum_not_two_solution()},
      {"3-coloring rotation", protocols::three_coloring_rotation()},
      {"sum-not-two × agreement (product)",
       layer_product(protocols::sum_not_two_solution(),
                     protocols::agreement_one_sided(false))},
  };
  for (const auto& c : cases) {
    TrailQuery with, without;
    without.ablation_disable_cycle_prune = true;
    const auto a = check_livelock_freedom(c.p, with);
    const auto b = check_livelock_freedom(c.p, without);
    auto label = [](LivelockAnalysis::Verdict v) {
      switch (v) {
        case LivelockAnalysis::Verdict::kLivelockFree: return "free";
        case LivelockAnalysis::Verdict::kTrailFound: return "trail";
        case LivelockAnalysis::Verdict::kInconclusive: return "inconclusive";
      }
      return "?";
    };
    // Without the prune a definite verdict may degrade to kInconclusive
    // (budget exhausted) — that is the point of the ablation. A free/trail
    // contradiction would be an actual bug.
    const bool contradiction =
        (a.verdict == LivelockAnalysis::Verdict::kLivelockFree &&
         b.verdict == LivelockAnalysis::Verdict::kTrailFound) ||
        (a.verdict == LivelockAnalysis::Verdict::kTrailFound &&
         b.verdict == LivelockAnalysis::Verdict::kLivelockFree);
    bench::row(cat("prune ablation: ", c.name),
               "definite verdicts agree; ablated runs may exhaust the budget",
               cat("with: ", a.search.nodes_explored, " nodes (",
                   label(a.verdict), "), without: ", b.search.nodes_explored,
                   " nodes (", label(b.verdict), ")",
                   contradiction ? " — CONTRADICTION (bug!)" : ""));
  }

  // (b) NPL fast path: count how many synthesis candidates skip the trail
  // search entirely.
  for (const Protocol& input :
       {protocols::agreement_empty(), protocols::sum_not_two_empty(),
        protocols::coloring_empty(3)}) {
    const auto res = synthesize_convergence(input);
    std::size_t npl = 0;
    for (const auto& r : res.reports)
      if (r.status == CandidateReport::Status::kAcceptedNpl) ++npl;
    bench::row(cat("NPL fast path: ", input.name()),
               "candidates whose write projection has no value cycle skip "
               "the trail search",
               cat(npl, "/", res.candidates_examined,
                   " candidates accepted with zero trail-search work"));
  }

  // (c) budget sensitivity on the 3-layer product.
  const Protocol triple =
      layer_product(layer_product(protocols::agreement_one_sided(false),
                                  protocols::sum_not_two_solution()),
                    protocols::agreement_one_sided(true));
  for (std::size_t budget : {std::size_t{100'000}, std::size_t{4'000'000},
                             std::size_t{16'000'000}}) {
    TrailQuery q;
    q.node_budget = budget;
    const auto res = check_livelock_freedom(triple, q);
    bench::row(cat("budget ", budget, " on a 3-layer product"),
               "small budgets report kInconclusive, never a false verdict",
               cat("verdict ",
                   res.verdict == LivelockAnalysis::Verdict::kLivelockFree
                       ? "free"
                       : res.verdict == LivelockAnalysis::Verdict::kTrailFound
                             ? "trail"
                             : "inconclusive",
                   " after ", res.search.nodes_explored, " nodes"));
  }
  bench::footer();
}

void BM_TrailSearchWithPrune(benchmark::State& state) {
  const Protocol prod = layer_product(protocols::sum_not_two_solution(),
                                      protocols::agreement_one_sided(false));
  for (auto _ : state) {
    const auto res = check_livelock_freedom(prod);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_TrailSearchWithPrune);

void BM_TrailSearchWithoutPrune(benchmark::State& state) {
  const Protocol prod = layer_product(protocols::sum_not_two_solution(),
                                      protocols::agreement_one_sided(false));
  TrailQuery q;
  q.ablation_disable_cycle_prune = true;
  q.node_budget = 2'000'000;  // keep the ablation affordable per iteration
  for (auto _ : state) {
    const auto res = check_livelock_freedom(prod, q);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_TrailSearchWithoutPrune);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
