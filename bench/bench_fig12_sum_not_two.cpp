// EXP-F12 — Figure 12 / Section 6.2: sum-not-two. Resolve = {20, 11, 02};
// 2^3 candidates; rotations rejected; the paper's solution accepted; the
// rotation trail shown SPURIOUS at its implied K=3 (non-necessity of
// Theorem 5.14) — plus two rejections the paper's hand analysis missed that
// are REAL livelocks.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol input = protocols::sum_not_two_empty();
  const auto res = synthesize_convergence(input);

  bench::header("EXP-F12", "Figure 12 + Section 6.2 (sum-not-two)",
                "Resolve = {20,11,02}; 8 candidate sets; the rotations "
                "{t01,t12,t20} and {t21,t10,t02} are rejected (pseudo-"
                "livelock in a trail); {t21,t12,t01} is accepted and "
                "converges; the rotation's K=3 trail is spurious");
  bench::row("resolve set", "{20, 11, 02} (all of ¬LC_r)",
             res.resolve_sets.empty()
                 ? "none"
                 : cat("size ", res.resolve_sets[0].size()));
  bench::row("candidates examined", "8",
             std::to_string(res.candidates_examined));
  bench::row("accepted", "the paper names one; our search accepts 4",
             std::to_string(res.solutions.size()));

  const auto paper = protocols::sum_not_two_solution().delta();
  const bool has_paper =
      std::any_of(res.solutions.begin(), res.solutions.end(),
                  [&](const auto& s) { return s.protocol.delta() == paper; });
  bench::row("paper's solution {t21,t12,t01} accepted", "yes",
             has_paper ? "yes" : "NO (mismatch)");

  // Classify the rejections: spurious trail vs real livelock.
  std::size_t spurious = 0, real = 0;
  for (const auto& r : res.reports) {
    if (r.status != CandidateReport::Status::kRejectedTrail) continue;
    const Protocol pss = input.with_added("chk", r.added);
    bool live = false;
    for (std::size_t k = 3; k <= 6 && !live; ++k)
      live = GlobalChecker(RingInstance(pss, k)).find_livelock().has_value();
    live ? ++real : ++spurious;
  }
  bench::row("rejections with spurious trails", "2 (the rotations)",
             std::to_string(spurious));
  bench::row("rejections with REAL livelocks",
             "0 claimed by the paper ('none of the remaining candidates "
             "forms a trail')",
             cat(real, " — the paper's hand analysis missed these; e.g. "
                       "{0→2, 1→0, 2→0} livelocks at every K ≥ 3"));

  // Every accepted solution verified globally.
  std::string verify;
  for (std::size_t i = 0; i < res.solutions.size(); ++i) {
    bool ok = true;
    for (std::size_t k = 2; k <= 7; ++k)
      ok = ok &&
           strongly_stabilizing(RingInstance(res.solutions[i].protocol, k));
    verify += cat("sol", i + 1, ":", ok ? "ok" : "FAIL", " ");
  }
  bench::row("accepted solutions verified globally K=2..7", "all stabilize",
             verify);
  bench::footer();
}

void BM_SynthesizeSumNotTwo(benchmark::State& state) {
  const Protocol input = protocols::sum_not_two_empty();
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeSumNotTwo);

void BM_VerifySumNotTwoGlobally(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(strongly_stabilizing(ring));
}
BENCHMARK(BM_VerifySumNotTwoGlobally)->DenseRange(3, 10);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
