// EXP-S2b — the parallel portfolio synthesizer: candidate-verdict throughput
// of the serial loop vs the 4-lane portfolio vs a warm verdict memo, on the
// same inputs with bit-identical results (test_synthesis_parallel pins the
// equality; this bench measures what the equivalence costs or saves).
//
// Configurations:
//   serial_cold    num_threads=1, memoization off   (the pre-portfolio loop)
//   threads4_cold  num_threads=4, memoization off   (lanes only)
//   serial_warm    num_threads=1, warm shared memo  (verdict reuse only)
//   threads4_warm  num_threads=4, warm shared memo  (lanes + verdict reuse)
// The warm configs time a run whose VerdictMemo was filled by one prior run
// with identical options — the steady state of ringstab-batch --synth, where
// one memo is shared across a whole directory of inputs.
#include <chrono>
#include <functional>
#include <memory>

#include "bench_util.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

SynthesisOptions base_options() {
  SynthesisOptions opts;
  // Pure candidate-verdict throughput: skip the (serial, realization-heavy)
  // rejected-trail classification and don't retain per-candidate reports.
  opts.classify_rejected_trails = false;
  opts.keep_rejected_reports = false;
  opts.require_closed_invariant = false;
  return opts;
}

struct ConfigRun {
  std::string config;
  double ms = 0;
  std::size_t candidates = 0;
  std::size_t solutions = 0;
};

ConfigRun run_config(const Protocol& input, const std::string& config,
                     std::size_t num_threads, bool warm) {
  SynthesisOptions opts = base_options();
  opts.num_threads = num_threads;
  if (warm) {
    opts.memo = std::make_shared<VerdictMemo>();
    synthesize_convergence(input, opts);  // fill the memo, untimed
  } else {
    opts.memoize = false;
  }
  ConfigRun run;
  run.config = config;
  SynthesisResult res;
  run.ms = ms_of([&] { res = synthesize_convergence(input, opts); });
  run.candidates = res.candidates_examined;
  run.solutions = res.solutions.size();
  return run;
}

void report() {
  bench::header(
      "EXP-S2b", "portfolio synthesis throughput",
      "the portfolio fan-out and the verdict memo change only where "
      "candidate verdicts are computed, never what they are — so lanes and "
      "warm memos buy candidate throughput at zero semantic cost");

  std::vector<bench::Json> entries;
  double best_speedup = 0;
  std::string best_protocol;
  for (const Protocol& input :
       {protocols::matching_skeleton(), protocols::sum_not_two_empty(),
        protocols::coloring_empty(3)}) {
    const ConfigRun serial_cold =
        run_config(input, "serial_cold", 1, /*warm=*/false);
    const ConfigRun threads4_cold =
        run_config(input, "threads4_cold", 4, /*warm=*/false);
    const ConfigRun serial_warm =
        run_config(input, "serial_warm", 1, /*warm=*/true);
    const ConfigRun threads4_warm =
        run_config(input, "threads4_warm", 4, /*warm=*/true);

    std::cout << "  " << input.name() << " (" << serial_cold.candidates
              << " candidates, " << serial_cold.solutions << " solutions):\n";
    std::vector<bench::Json> configs;
    for (const ConfigRun& run :
         {serial_cold, threads4_cold, serial_warm, threads4_warm}) {
      const double throughput =
          run.ms > 0 ? static_cast<double>(run.candidates) / (run.ms / 1e3)
                     : 0;
      const double speedup =
          run.ms > 0 ? serial_cold.ms / run.ms : 0;
      std::cout << "    " << run.config << ": " << run.ms << " ms, "
                << throughput << " candidates/s, " << speedup
                << "x vs serial_cold\n";
      configs.push_back(bench::Json()
                            .put("config", run.config)
                            .put("ms", run.ms)
                            .put("candidates", run.candidates)
                            .put("solutions", run.solutions)
                            .put("candidates_per_sec", throughput)
                            .put("speedup_vs_serial_cold", speedup));
      if (run.config == "threads4_warm" && speedup > best_speedup) {
        best_speedup = speedup;
        best_protocol = input.name();
      }
    }
    entries.push_back(bench::Json()
                          .put("protocol", input.name())
                          .put("configs", configs));
  }

  bench::row("best threads4_warm speedup over serial_cold",
             "≥ 2x on at least one protocol",
             best_protocol + ": " + std::to_string(best_speedup) + "x");
  bench::note(
      "on a single-core runner the lanes-only config cannot beat serial; "
      "the memo carries the speedup, which is why both axes are reported "
      "separately");
  bench::write_bench_json(
      "BENCH_synth_parallel.json",
      bench::Json()
          .put("experiment", "synth_parallel")
          .put("best_threads4_warm_speedup", best_speedup)
          .put("best_protocol", best_protocol)
          .put("meets_2x_criterion", best_speedup >= 2.0)
          .put("runs", entries));
  bench::footer();
}

void BM_SynthSerialCold(benchmark::State& state) {
  const Protocol input = protocols::sum_not_two_empty();
  SynthesisOptions opts = base_options();
  opts.memoize = false;
  for (auto _ : state) {
    const auto res = synthesize_convergence(input, opts);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthSerialCold);

void BM_SynthWarmMemoByThreads(benchmark::State& state) {
  const Protocol input = protocols::sum_not_two_empty();
  SynthesisOptions opts = base_options();
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  opts.memo = std::make_shared<VerdictMemo>();
  synthesize_convergence(input, opts);  // warm
  for (auto _ : state) {
    const auto res = synthesize_convergence(input, opts);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthWarmMemoByThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
