// EXP-F11 — Figure 11 / Section 6.2: 2-coloring. Both monochromatic
// deadlocks must be resolved (s-arc self-loops), the single candidate forms
// the alternating trail, synthesis fails — consistent with the known
// impossibility of self-stabilizing 2-coloring on unidirectional rings [25].
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/rcg.hpp"
#include "protocols/coloring.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol input = protocols::coloring_empty(2);
  const auto res = synthesize_convergence(input);

  bench::header("EXP-F11", "Figure 11 + Section 6.2 (2-coloring)",
                "both 00 and 11 must be resolved (each has an s-arc "
                "self-loop); the resulting trail "
                "≪00,t01,01,s,11,t10,10,s,00≫ blocks certification ⇒ FAILURE");

  // The self-loop justification: in the full RCG, 00 and 11 self-loop.
  const Digraph rcg = build_rcg(input.space());
  const auto& sp = input.space();
  const LocalStateId s00 = sp.encode(std::vector<Value>{0, 0});
  const LocalStateId s11 = sp.encode(std::vector<Value>{1, 1});
  bench::row("s-arc self-loops at 00 and 11", "both present",
             cat(rcg.has_arc(s00, s00) ? "00 yes" : "00 NO", ", ",
                 rcg.has_arc(s11, s11) ? "11 yes" : "11 NO"));
  bench::row("resolve set", "{00, 11} (no proper subset works)",
             res.resolve_sets.empty()
                 ? "none"
                 : cat("size ", res.resolve_sets[0].size()));
  bench::row("candidates examined", "1 (one choice per deadlock)",
             std::to_string(res.candidates_examined));
  bench::row("outcome", "FAILURE", res.success ? "SUCCESS (mismatch!)"
                                               : "FAILURE");
  if (!res.reports.empty() && res.reports[0].trail)
    bench::row("rejecting trail", "≪00,t01,01,s,11,t10,10,s,00≫",
               res.reports[0].trail->to_string(input));

  // Globally: the candidate livelocks on odd rings and stabilizes on even
  // ones — exactly the classic parity obstruction.
  const Protocol cand = protocols::coloring_with_choices(2, {1, 0});
  std::string global;
  for (std::size_t k = 3; k <= 8; ++k)
    global += cat("K=", k, ":",
                  GlobalChecker(RingInstance(cand, k)).find_livelock()
                      ? "livelock"
                      : "clean",
                  " ");
  bench::row("candidate globally", "fails on odd rings (impossibility [25])",
             global);
  bench::footer();
}

void BM_SynthesizeTwoColoring(benchmark::State& state) {
  const Protocol input = protocols::coloring_empty(2);
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeTwoColoring);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
