// EXP-X1 — beyond the paper: parameter sweeps of the synthesis methodology.
//
// The paper works five fixed examples; here the same machinery sweeps whole
// families: c-coloring for c = 2..5 (all fail — consistent with the
// impossibility of deterministic symmetric unidirectional ring coloring
// [Shukla et al., the paper's ref 25]), sum-not-q over a (|D|, q) grid
// (all succeed, with a candidate-acceptance fraction that varies), and the
// monotone-ring family.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "protocols/coloring.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"
#include "transform/transform.hpp"

namespace {

using namespace ringstab;

void report() {
  bench::header("EXP-X1", "parameter sweeps (extension)",
                "the local methodology, applied beyond the paper's five "
                "worked examples");

  std::cout << "  c-coloring (expected: failure for every c — ref [25]):\n";
  for (std::size_t c = 2; c <= 5; ++c) {
    const auto res = synthesize_convergence(protocols::coloring_empty(c));
    std::cout << "    c=" << c << ": " << (res.success ? "SUCCESS (!)"
                                                       : "failure")
              << ", " << res.candidates_examined << " candidates examined\n";
  }

  std::cout << "  sum-not-q over (|D|, q) (expected: success everywhere; "
               "solutions counted up to value symmetry):\n";
  for (std::size_t d = 3; d <= 4; ++d) {
    for (int q = 1; q <= static_cast<int>(2 * d - 3); ++q) {
      const auto res =
          synthesize_convergence(protocols::sum_not_q_empty(d, q));
      std::vector<Protocol> sols;
      for (const auto& s : res.solutions) sols.push_back(s.protocol);
      std::cout << "    |D|=" << d << " q=" << q << ": "
                << (res.success ? "success" : "FAILURE (!)") << ", "
                << res.solutions.size() << "/" << res.candidates_examined
                << " candidates accepted ("
                << value_symmetry_orbits(sols).size()
                << " up to value symmetry)\n";
    }
  }

  std::cout << "  monotone rings (LC: x[-1] ≤ x[0]):\n";
  for (std::size_t d = 2; d <= 4; ++d) {
    const auto res = synthesize_convergence(protocols::monotone_empty(d));
    bool verified = res.success;
    if (res.success)
      for (std::size_t k = 2; k <= 7 && verified; ++k)
        verified = strongly_stabilizing(
            RingInstance(res.solutions[0].protocol, k));
    std::cout << "    |D|=" << d << ": "
              << (res.success ? "success" : "failure") << ", "
              << res.solutions.size() << "/" << res.candidates_examined
              << " accepted"
              << (res.success
                      ? cat(", first solution verified K=2..7: ",
                            verified ? "ok" : "FAIL")
                      : std::string())
              << "\n";
  }
  bench::footer();
}

void BM_SynthesizeColoring(benchmark::State& state) {
  const Protocol input =
      protocols::coloring_empty(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeColoring)->DenseRange(2, 5);

void BM_SynthesizeSumNotQ(benchmark::State& state) {
  const Protocol input = protocols::sum_not_q_empty(
      static_cast<std::size_t>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SynthesizeSumNotQ)->Args({3, 2})->Args({4, 3})->Args({5, 4});

}  // namespace

RINGSTAB_BENCH_MAIN(report)
