// EXP-S2 — generalizable synthesis (local, Section 6) vs fixed-K synthesis
// (the global baseline of refs [16,17]): cost and the non-generalizability
// trap.
#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/global_synthesizer.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void report() {
  bench::header("EXP-S2", "local vs fixed-K synthesis",
                "local synthesis certifies every K at once; fixed-K "
                "synthesis (STSyn-style, refs [16,17]) explores |D|^K global "
                "states per candidate and its solutions need not generalize "
                "— Example 4.3 stabilizes at K=5 yet deadlocks at K=4m/6m");

  std::vector<bench::Json> runs;
  for (const Protocol& input :
       {protocols::agreement_empty(), protocols::sum_not_two_empty()}) {
    SynthesisResult local;
    const double local_ms =
        ms_of([&] { local = synthesize_convergence(input); });

    GlobalSynthesisOptions gopts;
    gopts.min_ring = 2;
    gopts.max_ring = 8;
    GlobalSynthesisResult global;
    const double global_ms =
        ms_of([&] { global = synthesize_convergence_global(input, gopts); });

    std::cout << "  " << input.name() << ":\n"
              << "    local:  " << local.solutions.size() << " solutions in "
              << local_ms << " ms (0 global states; valid for EVERY K)\n"
              << "    global: " << global.solutions.size()
              << " solutions in " << global_ms << " ms ("
              << global.states_explored
              << " global states; valid only for K ≤ 8)\n";
    runs.push_back(bench::Json()
                       .put("protocol", input.name())
                       .put("local_ms", local_ms)
                       .put("local_solutions", local.solutions.size())
                       .put("global_ms", global_ms)
                       .put("global_solutions", global.solutions.size())
                       .put("global_states_explored", global.states_explored)
                       .put("global_max_ring", gopts.max_ring));
  }
  bench::write_bench_json("BENCH_synth_local_vs_global.json",
                          bench::Json()
                              .put("experiment", "synth_local_vs_global")
                              .put("runs", runs));

  // The trap, concretely: Example 4.3 passes a K=5-only certification.
  const Protocol trap = protocols::matching_nongeneralizable();
  const bool passes_k5 = strongly_stabilizing(RingInstance(trap, 5));
  const bool fails_k4 =
      GlobalChecker(RingInstance(trap, 4)).count_deadlocks_outside_invariant() >
      0;
  bench::row("Example 4.3 under fixed-K certification",
             "passes K=5, deadlocks at K=4 (non-generalizable)",
             cat("K=5: ", passes_k5 ? "passes" : "fails",
                 ", K=4: ", fails_k4 ? "deadlocks" : "clean"));
  bench::row("Example 4.3 under Theorem 4.2",
             "rejected (cycle through ⟨l,l,s⟩)",
             analyze_deadlocks(trap, 2).deadlock_free_all_k
                 ? "accepted (mismatch!)"
                 : "rejected");
  bench::footer();
}

void BM_LocalSynthesis(benchmark::State& state) {
  const Protocol input = protocols::sum_not_two_empty();
  for (auto _ : state) {
    const auto res = synthesize_convergence(input);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_LocalSynthesis);

void BM_GlobalSynthesisByCutoff(benchmark::State& state) {
  const Protocol input = protocols::sum_not_two_empty();
  GlobalSynthesisOptions opts;
  opts.min_ring = 2;
  opts.max_ring = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto res = synthesize_convergence_global(input, opts);
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_GlobalSynthesisByCutoff)->DenseRange(3, 9);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
