// EXP-S3 — empirical convergence of the synthesized protocols under a
// random scheduler: recovery steps from random corruption, swept over K.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "protocols/agreement.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ringstab;

void report() {
  bench::header("EXP-S3", "simulated recovery of synthesized protocols",
                "protocols certified by the local method must converge from "
                "every corruption; recovery time grows roughly linearly in K "
                "for these copy/correct protocols");

  struct Row {
    const char* name;
    Protocol p;
  };
  const std::vector<Row> rows = {
      {"agreement (one-sided)", protocols::agreement_one_sided(true)},
      {"agreement (max, |D|=3)", protocols::agreement_max(3)},
      {"sum-not-two solution", protocols::sum_not_two_solution()},
      {"no-adjacent-ones", protocols::no_adjacent_ones_solution()},
  };
  std::vector<bench::Json> runs;
  for (const auto& rowdef : rows) {
    std::cout << "  " << rowdef.name << " (500 random starts per K):\n";
    for (std::size_t k : {8u, 16u, 32u, 64u, 128u}) {
      const auto stats = measure_convergence(rowdef.p, k, 500, 42);
      std::cout << "    K=" << k << ": converged " << stats.converged << "/"
                << stats.trials << ", mean " << stats.mean_steps
                << " steps, max " << stats.max_steps << "\n";
      runs.push_back(bench::Json()
                         .put("protocol", rowdef.name)
                         .put("ring_size", k)
                         .put("trials", stats.trials)
                         .put("converged", stats.converged)
                         .put("mean_steps", stats.mean_steps)
                         .put("p95_steps", stats.p95_steps)
                         .put("max_steps", stats.max_steps));
    }
  }
  bench::write_bench_json("BENCH_sim_convergence.json",
                          bench::Json()
                              .put("experiment", "sim_convergence")
                              .put("seed", 42)
                              .put("runs", runs));
  bench::note("failures would indicate an unsound certification — none are "
              "expected (cross-checked by the test suite)");
  bench::footer();
}

void BM_SimulatedRecovery(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const auto k = static_cast<std::size_t>(state.range(0));
  Simulator sim(p, k, 7);
  for (auto _ : state) {
    sim.randomize();
    const auto run = sim.run_to_convergence();
    benchmark::DoNotOptimize(run.steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_SimulatedRecovery)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_SimulationStep(benchmark::State& state) {
  const Protocol p = protocols::agreement_max(3);
  Simulator sim(p, 64, 9);
  sim.randomize();
  for (auto _ : state) {
    if (!sim.step()) sim.randomize();
  }
}
BENCHMARK(BM_SimulationStep);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
