// EXP-F1 — Figure 1: the right-continuation relation over all local states
// of maximal matching.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "graph/dot.hpp"
#include "local/rcg.hpp"
#include "protocols/matching.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol p = protocols::matching_skeleton();
  const Digraph rcg = build_rcg(p.space());

  bench::header("EXP-F1", "Figure 1 (RCG of maximal matching)",
                "the continuation relation over the 27 local states of the "
                "matching representative process; each local state admits "
                "|D| = 3 right continuations");
  bench::row("local states", "27", std::to_string(rcg.num_vertices()));
  bench::row("s-arcs", "27 × 3 = 81", std::to_string(rcg.num_arcs()));

  std::size_t legit = p.num_legit();
  bench::row("legitimate local states (LC_r)", "7 (three-way disjunction)",
             std::to_string(legit));

  // Sample row: the continuations of ⟨left,left,self⟩, the state at the
  // heart of Example 4.3's bad cycles.
  const LocalStateId lls = p.space().encode(std::vector<Value>{0, 0, 2});
  std::string conts = join(rcg.out(lls), ", ", [&](VertexId v) {
    return p.space().brief(v);
  });
  bench::row("continuations of ⟨l,l,s⟩", "lsl, lsr, lss (shift left by one)",
             conts);

  DotOptions opts;
  opts.graph_name = "fig1";
  opts.label = [&](VertexId v) { return p.space().brief(v); };
  const std::string dot = to_dot(rcg, opts);
  bench::note(cat("full DOT rendering: ", dot.size(),
                  " bytes (pipe through graphviz to redraw Figure 1)"));
  bench::footer();
}

void BM_BuildMatchingRcg(benchmark::State& state) {
  const Protocol p = protocols::matching_skeleton();
  for (auto _ : state) {
    const Digraph rcg = build_rcg(p.space());
    benchmark::DoNotOptimize(rcg.num_arcs());
  }
}
BENCHMARK(BM_BuildMatchingRcg);

void BM_BuildRcgByDomain(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const LocalStateSpace space(Domain::range(d), {1, 1});
  for (auto _ : state) {
    const Digraph rcg = build_rcg(space);
    benchmark::DoNotOptimize(rcg.num_arcs());
  }
  state.SetComplexityN(static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_BuildRcgByDomain)->DenseRange(2, 6)->Complexity();

}  // namespace

RINGSTAB_BENCH_MAIN(report)
