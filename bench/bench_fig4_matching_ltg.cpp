// EXP-F4 — Figure 4: the Local Transition Graph of the generalizable
// matching protocol (RCG + t-arcs).
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "local/ltg.hpp"
#include "protocols/matching.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol p = protocols::matching_generalizable();
  const Ltg ltg(p);

  bench::header("EXP-F4", "Figure 4 (LTG of Example 4.2)",
                "the RCG augmented with the protocol's local transitions "
                "(t-arcs); the LTG does not depend on K");
  bench::row("vertices (local states)", "27",
             std::to_string(ltg.num_states()));
  bench::row("s-arcs", "81", std::to_string(ltg.s_arcs().num_arcs()));
  bench::row("t-arcs (local transitions of A1–A5)", "(Fig. 4 solid arcs)",
             std::to_string(ltg.t_arcs().size()));

  std::size_t enabled = 0;
  for (LocalStateId s = 0; s < p.num_states(); ++s)
    if (p.is_enabled(s)) ++enabled;
  bench::row("enabled local states", "27 − 11 deadlocks = 16",
             std::to_string(enabled));

  const std::string dot = ltg.to_dot();
  bench::note(cat("DOT rendering of the full LTG: ", dot.size(), " bytes"));
  bench::footer();
}

void BM_BuildLtg(benchmark::State& state) {
  const Protocol p = protocols::matching_generalizable();
  for (auto _ : state) {
    const Ltg ltg(p);
    benchmark::DoNotOptimize(ltg.t_arcs().size());
  }
}
BENCHMARK(BM_BuildLtg);

void BM_LtgToDot(benchmark::State& state) {
  const Ltg ltg(protocols::matching_generalizable());
  for (auto _ : state) {
    const std::string dot = ltg.to_dot();
    benchmark::DoNotOptimize(dot.size());
  }
}
BENCHMARK(BM_LtgToDot);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
