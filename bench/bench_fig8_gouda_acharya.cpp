// EXP-F8 — Figure 8: the Gouda–Acharya matching fragment {t_ls, t_sl}; its
// K=5 livelock and the contiguous trail that betrays it in the LTG.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/livelock.hpp"
#include "protocols/matching.hpp"

namespace {

using namespace ringstab;

void report() {
  const Protocol p = protocols::matching_gouda_acharya_fragment();

  bench::header("EXP-F8",
                "Figure 8 (Gouda–Acharya matching fragment LTG)",
                "the {t_ls, t_sl} fragment livelocks at K=5 "
                "(≪lslsl, sslsl, …≫ with one enablement circulating); its "
                "t-arcs form a pseudo-livelock participating in a trail");

  const auto live = check_livelock_freedom(p);
  bench::row("Theorem 5.14 trail search", "a qualifying trail exists",
             live.trail() ? live.trail()->to_string(p) : "NO TRAIL (mismatch)");
  bench::row("coverage", "bidirectional: contiguous livelocks only",
             live.covers_all_livelocks ? "full" : "contiguous only");

  const RingInstance ring(p, 5);
  const auto cycle = GlobalChecker(ring).find_livelock();
  if (cycle) {
    std::string seq;
    for (GlobalStateId s : *cycle) seq += ring.brief(s) + " ";
    bench::row("global K=5 livelock", "≪lslsl, sslsl, slsl_s, …≫ (period 10)",
               cat("period ", cycle->size(), ": ", seq));
  } else {
    bench::row("global K=5 livelock", "exists", "NOT FOUND (mismatch)");
  }
  bench::footer();
}

void BM_TrailSearchGa(benchmark::State& state) {
  const Protocol p = protocols::matching_gouda_acharya_fragment();
  for (auto _ : state) {
    const auto res = check_livelock_freedom(p);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_TrailSearchGa);

void BM_GlobalLivelockSearchGa(benchmark::State& state) {
  const Protocol p = protocols::matching_gouda_acharya_fragment();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cycle = GlobalChecker(ring).find_livelock();
    benchmark::DoNotOptimize(cycle.has_value());
  }
}
BENCHMARK(BM_GlobalLivelockSearchGa)->DenseRange(4, 8);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
