// EXP-X3 — beyond the paper: compositional transformations. The related
// work the paper positions against (layering, composition — Section 7)
// becomes executable: layered products of certified protocols stay
// certified, mirroring and value renaming leave every verdict invariant,
// and the union-of-cycles prune keeps the trail search tractable on
// products.
#include <chrono>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "local/convergence.hpp"
#include "protocols/agreement.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "transform/transform.hpp"

namespace {

using namespace ringstab;

void report() {
  bench::header("EXP-X3", "compositional transformations (extension)",
                "layering two certified silent protocols yields a certified "
                "protocol; analyses are invariant under mirroring and value "
                "renaming");

  const Protocol snt = protocols::sum_not_two_solution();
  const Protocol agree = protocols::agreement_one_sided(false);
  const Protocol tokens = protocols::no_adjacent_ones_solution();

  {
    const Protocol prod = layer_product(snt, agree);
    const auto res = check_convergence(prod);
    std::string global;
    for (std::size_t k = 3; k <= 6; ++k)
      global += cat("K=", k, ":",
                    strongly_stabilizing(RingInstance(prod, k)) ? "ok"
                                                                : "FAIL",
                    " ");
    bench::row(
        "sum-not-two × agreement (|D| = 6, 36 local states)",
        "certified for every K by the local method; confirmed exhaustively",
        cat(res.verdict == ConvergenceAnalysis::Verdict::kConverges
                ? "kConverges"
                : "NOT certified",
            " in ", res.livelocks.search.nodes_explored,
            " trail-search nodes; ", global));
    bench::note(
        "without the union-of-cycles prune this search exhausts 4*10^8 "
        "nodes inconclusively; the prune removes the non-cycling layer's "
        "t-arcs up front");
  }

  {
    const Protocol triple =
        layer_product(layer_product(agree, tokens), snt);
    const auto res = check_convergence(triple);
    bench::row("3-layer product (|D| = 12, 144 local states)",
               "still certified for every K",
               res.verdict == ConvergenceAnalysis::Verdict::kConverges
                   ? cat("kConverges in ",
                         res.livelocks.search.nodes_explored,
                         " trail-search nodes")
                   : "NOT certified");
  }

  {
    const Protocol rev = reverse_orientation(snt);
    const Protocol renamed = rename_values(snt, {2, 0, 1});
    bench::row(
        "verdict invariance",
        "reverse and rename preserve the convergence verdict",
        cat("reverse: ",
            check_convergence(rev).verdict ==
                    ConvergenceAnalysis::Verdict::kConverges
                ? "kConverges"
                : "CHANGED",
            ", rename: ",
            check_convergence(renamed).verdict ==
                    ConvergenceAnalysis::Verdict::kConverges
                ? "kConverges"
                : "CHANGED"));
  }
  bench::footer();
}

void BM_ProductAnalysis(benchmark::State& state) {
  const Protocol prod = layer_product(protocols::sum_not_two_solution(),
                                      protocols::agreement_one_sided(false));
  for (auto _ : state) {
    const auto res = check_convergence(prod, {}, 2);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_ProductAnalysis);

void BM_BuildProduct(benchmark::State& state) {
  const Protocol a = protocols::sum_not_two_solution();
  const Protocol b = protocols::agreement_one_sided(false);
  for (auto _ : state) {
    const Protocol prod = layer_product(a, b);
    benchmark::DoNotOptimize(prod.delta().size());
  }
}
BENCHMARK(BM_BuildProduct);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
