// Shared reporting helpers for the per-figure benchmark binaries.
//
// Each bench binary prints a "paper vs measured" report for the figure it
// regenerates, then runs google-benchmark timings of the underlying
// computations. EXPERIMENTS.md archives the reports.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace ringstab::bench {

inline void header(const std::string& experiment, const std::string& artifact,
                   const std::string& claim) {
  std::cout << "\n================================================================\n"
            << experiment << " — " << artifact << "\n"
            << "PAPER CLAIM: " << claim << "\n"
            << "----------------------------------------------------------------\n";
}

inline void row(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::cout << "  " << what << "\n    paper:    " << paper
            << "\n    measured: " << measured << "\n";
}

inline void note(const std::string& text) {
  std::cout << "  NOTE: " << text << "\n";
}

inline void footer() {
  std::cout << "================================================================\n\n";
}

/// Custom main: print the report once, then run the timings.
#define RINGSTAB_BENCH_MAIN(report_fn)               \
  int main(int argc, char** argv) {                  \
    report_fn();                                     \
    ::benchmark::Initialize(&argc, argv);            \
    ::benchmark::RunSpecifiedBenchmarks();           \
    ::benchmark::Shutdown();                         \
    return 0;                                        \
  }

}  // namespace ringstab::bench
