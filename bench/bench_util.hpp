// Shared reporting helpers for the per-figure benchmark binaries.
//
// Each bench binary prints a "paper vs measured" report for the figure it
// regenerates, then runs google-benchmark timings of the underlying
// computations. EXPERIMENTS.md archives the reports.
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/session.hpp"

namespace ringstab::bench {

/// Schema id stamped into every BENCH_*.json artifact; `ringstab-perf
/// validate` rejects documents without it.
inline constexpr const char* kBenchSchema = "ringstab.bench.v1";

inline void header(const std::string& experiment, const std::string& artifact,
                   const std::string& claim) {
  std::cout << "\n================================================================\n"
            << experiment << " — " << artifact << "\n"
            << "PAPER CLAIM: " << claim << "\n"
            << "----------------------------------------------------------------\n";
}

inline void row(const std::string& what, const std::string& paper,
                const std::string& measured) {
  std::cout << "  " << what << "\n    paper:    " << paper
            << "\n    measured: " << measured << "\n";
}

inline void note(const std::string& text) {
  std::cout << "  NOTE: " << text << "\n";
}

inline void footer() {
  std::cout << "================================================================\n\n";
}

/// Insertion-ordered JSON object builder for the machine-readable
/// BENCH_*.json artifacts (CI trend tracking). Values are rendered
/// immediately, so the builder is just a list of pre-formatted fields.
class Json {
 public:
  Json& put(const std::string& key, const std::string& v) {
    return raw(key, '"' + escaped(v) + '"');
  }
  Json& put(const std::string& key, const char* v) {
    return put(key, std::string(v));
  }
  Json& put(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    return raw(key, os.str());
  }
  Json& put(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  template <typename Int,
            typename = std::enable_if_t<std::is_integral_v<Int>>>
  Json& put(const std::string& key, Int v) {
    return raw(key, std::to_string(v));
  }
  Json& put(const std::string& key, const std::vector<Json>& objects) {
    std::string a = "[\n";
    for (std::size_t i = 0; i < objects.size(); ++i)
      a += "    " + objects[i].render(/*inline_object=*/true) +
           (i + 1 < objects.size() ? ",\n" : "\n");
    return raw(key, a + "  ]");
  }
  /// Appends every field of `other`, preserving order (used to stamp
  /// header fields ahead of a caller-built document).
  Json& put_all(const Json& other) {
    for (const auto& [k, v] : other.fields_) raw(k, v);
    return *this;
  }

  std::string render(bool inline_object = false) const {
    std::string out = inline_object ? "{" : "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (!inline_object) out += "  ";
      out += '"' + fields_[i].first + "\": " + fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      if (!inline_object) out += "\n";
      else if (i + 1 < fields_.size()) out += " ";
    }
    return out + (inline_object ? "}" : "}\n");
  }

 private:
  Json& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Set when any write_bench_json call failed; RINGSTAB_BENCH_MAIN folds it
/// into the process exit code so CI can't mistake a bench whose artifact
/// never landed for a successful run.
inline bool g_bench_artifact_failed = false;

/// Write a BENCH_*.json artifact, checking every step: returns false (with
/// the errno cause on stderr) when the file can't be opened or the bytes
/// don't all land. Callers who can choose their own exit code use this.
inline bool try_write_bench_json(const std::string& filename,
                                 const Json& json) {
  Json stamped;
  stamped.put("schema", kBenchSchema);
  stamped.put("git_describe", obs::git_describe());
  stamped.put_all(json);
  errno = 0;
  std::ofstream out(filename);
  if (!out.is_open()) {
    std::cerr << "  ERROR: cannot open " << filename << " ("
              << (errno != 0 ? std::strerror(errno) : "open failed") << ")\n";
    return false;
  }
  out << stamped.render();
  out.flush();
  if (!out.good()) {
    std::cerr << "  ERROR: write to " << filename << " failed ("
              << (errno != 0 ? std::strerror(errno) : "stream error") << ")\n";
    return false;
  }
  std::cout << "  wrote " << filename << "\n";
  return true;
}

/// Write a BENCH_*.json artifact next to the binary and announce it in the
/// report (EXPERIMENTS.md links these by name). Every artifact is stamped
/// with the bench schema id and the build's `git describe`, so
/// `ringstab-perf validate` / `diff` can check and provenance-label it.
/// A failed write is reported on stderr and turns the bench's exit code
/// nonzero (via RINGSTAB_BENCH_MAIN) instead of passing silently.
inline void write_bench_json(const std::string& filename, const Json& json) {
  if (!try_write_bench_json(filename, json)) g_bench_artifact_failed = true;
}

/// Custom main: print the report once, then run the timings. When
/// RINGSTAB_BENCH_METRICS=<path> is set, the whole bench runs under an
/// observability session that writes a ringstab.metrics.v2 manifest there
/// (the perf-smoke CI job validates it with `ringstab-perf validate`).
/// Exits nonzero when any artifact write failed or a metrics sink went
/// unhealthy — a bench whose outputs didn't land is a failed bench.
#define RINGSTAB_BENCH_MAIN(report_fn)                                 \
  int main(int argc, char** argv) {                                    \
    ::ringstab::obs::SessionOptions obs_opts;                          \
    if (const char* path = std::getenv("RINGSTAB_BENCH_METRICS")) {    \
      obs_opts.metrics_path = path;                                    \
      obs_opts.command = std::string("bench ") + argv[0];              \
    }                                                                  \
    ::ringstab::obs::Session obs_session(obs_opts);                    \
    report_fn();                                                       \
    ::benchmark::Initialize(&argc, argv);                              \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    ::benchmark::Shutdown();                                           \
    int bench_rc = 0;                                                  \
    if (::ringstab::bench::g_bench_artifact_failed) bench_rc = 1;      \
    if (!obs_session.finish()) bench_rc = 1;                           \
    return bench_rc;                                                   \
  }

}  // namespace ringstab::bench
