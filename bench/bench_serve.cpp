// EXP-SRV: ringstab-serve warm-cache throughput — requests/sec against the
// daemon with a cold cache (every request computes) vs a warm cache (every
// request is answered out of the exact-key verdict cache), over a request
// mix drawn from the built-in protocol suite (checks at several K, lint,
// synthesize, batch-style analyze).
//
// The headline number is the warm/cold speedup: a cache hit skips the
// whole engine run, so warm throughput is bounded by JSONL framing + one
// sharded-LRU lookup per request. The report also asserts the serve-side
// contract the tests lock in: cached bytes identical to cold bytes, and
// hits + misses == requests.
//
// Artifact: BENCH_serve.json. RINGSTAB_BENCH_SMOKE=1 shrinks the mix and
// the warm repeat count for the CI smoke job.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "core/ring_writer.hpp"
#include "core/types.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::vector<serve::Request> request_mix(bool smoke) {
  struct Named {
    const char* label;
    Protocol p;
  };
  std::vector<Named> suite;
  suite.push_back({"sum_not_two", protocols::sum_not_two_solution()});
  suite.push_back({"three_coloring", protocols::three_coloring_rotation()});
  if (!smoke) {
    suite.push_back({"matching_gen", protocols::matching_generalizable()});
    suite.push_back({"agreement_both", protocols::agreement_both()});
  }

  const std::vector<std::size_t> ks =
      smoke ? std::vector<std::size_t>{4, 5} : std::vector<std::size_t>{4, 6, 8};
  std::vector<serve::Request> mix;
  for (const Named& n : suite) {
    const std::string source = to_ring_source(n.p);
    for (const std::size_t k : ks) {
      serve::Request req;
      req.cmd = "check";
      req.source = source;
      req.name = n.label;
      req.k = k;
      mix.push_back(req);
    }
    serve::Request lint;
    lint.cmd = "lint";
    lint.source = source;
    lint.name = n.label;
    mix.push_back(lint);
    serve::Request analyze;
    analyze.cmd = "analyze";
    analyze.source = source;
    analyze.name = n.label;
    analyze.options.lint = true;
    mix.push_back(analyze);
  }
  return mix;
}

void report() {
  const bool smoke = std::getenv("RINGSTAB_BENCH_SMOKE") != nullptr;
  bench::header(
      "EXP-SRV", "ringstab-serve warm verdict cache",
      "a daemon answering out of an exact-key verdict cache serves repeated "
      "requests at framing speed: the warm pass never re-runs an engine");

  // cwd-relative socket path: sockaddr_un caps paths at ~107 bytes and CI
  // work dirs can exceed that; a relative bind is resolved by the kernel.
  const std::string socket_path =
      "bench_serve_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.cache_capacity = 4096;
  serve::Server server(opts);
  server.start();

  const std::vector<serve::Request> mix = request_mix(smoke);
  const std::size_t warm_rounds = smoke ? 5 : 50;

  serve::Client client(socket_path);
  std::vector<std::string> cold_outputs;
  const double cold_ms = ms_of([&] {
    for (const serve::Request& req : mix) {
      const serve::Response resp = client.request(req);
      if (!resp.ok)
        throw ModelError("bench_serve: cold request failed: " + resp.error);
      if (resp.cached)
        throw ModelError("bench_serve: cold request answered from cache");
      cold_outputs.push_back(resp.output);
    }
  });

  std::size_t warm_requests = 0;
  const double warm_ms = ms_of([&] {
    for (std::size_t round = 0; round < warm_rounds; ++round) {
      for (std::size_t i = 0; i < mix.size(); ++i) {
        const serve::Response resp = client.request(mix[i]);
        if (!resp.ok)
          throw ModelError("bench_serve: warm request failed: " + resp.error);
        if (!resp.cached)
          throw ModelError("bench_serve: warm request missed the cache");
        if (resp.output != cold_outputs[i])
          throw ModelError(
              "bench_serve: cached bytes differ from cold bytes");
        ++warm_requests;
      }
    }
  });

  const serve::ServerStats stats = client.stats();
  if (stats.cache_hits != warm_requests ||
      stats.cache_misses != mix.size())
    throw ModelError("bench_serve: hit/miss accounting is off");
  server.stop();

  const double cold_rps = static_cast<double>(mix.size()) / (cold_ms / 1000.0);
  const double warm_rps =
      static_cast<double>(warm_requests) / (warm_ms / 1000.0);
  const double speedup = warm_rps / cold_rps;

  bench::row("cold pass (every request computes)",
             "n/a (implementation throughput)",
             cat(mix.size(), " requests in ", cold_ms, " ms = ",
                            static_cast<std::uint64_t>(cold_rps), " req/s"));
  bench::row("warm pass (every request cached)",
             "hits skip the engines entirely",
             cat(warm_requests, " requests in ", warm_ms,
                            " ms = ", static_cast<std::uint64_t>(warm_rps),
                            " req/s"));
  bench::note(cat(
      "warm/cold speedup ", speedup, "x; cached bytes asserted identical to "
      "cold bytes for all ", mix.size(), " distinct requests",
      smoke ? " — SMOKE RUN, reduced mix" : ""));

  bench::write_bench_json(
      "BENCH_serve.json",
      bench::Json()
          .put("experiment", "serve_warm_cache")
          .put("distinct_requests", mix.size())
          .put("warm_rounds", warm_rounds)
          .put("cold_ms", cold_ms)
          .put("warm_ms", warm_ms)
          .put("cold_requests_per_sec", cold_rps)
          .put("warm_requests_per_sec", warm_rps)
          .put("warm_speedup", speedup)
          .put("cache_hits", stats.cache_hits)
          .put("cache_misses", stats.cache_misses)
          .put("cache_evictions", stats.cache_evictions)
          .put("smoke", smoke));
  bench::footer();
}

void BM_ServeCacheHit(benchmark::State& state) {
  const std::string socket_path =
      "bench_serve_bm_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.socket_path = socket_path;
  serve::Server server(opts);
  server.start();
  serve::Client client(socket_path);
  serve::Request req;
  req.cmd = "check";
  req.source = to_ring_source(protocols::sum_not_two_solution());
  req.k = 4;
  (void)client.request(req);  // prime the cache
  for (auto _ : state) {
    const serve::Response resp = client.request(req);
    benchmark::DoNotOptimize(resp.cached);
  }
  server.stop();
}
BENCHMARK(BM_ServeCacheHit);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
