// EXP-S1 — the paper's core efficiency claim: local reasoning is
// K-independent while global model checking explodes exponentially with K.
#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "local/convergence.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void report() {
  bench::header("EXP-S1", "local reasoning vs global model checking",
                "the local analysis touches only the |D|^w local states of "
                "one process — independent of K — while the global check "
                "visits |D|^K states (Sections 6, 7)");

  struct Row {
    const char* name;
    Protocol p;
  };
  const std::vector<Row> rows = {
      {"agreement (one-sided)", protocols::agreement_one_sided(true)},
      {"sum-not-two solution", protocols::sum_not_two_solution()},
      {"matching (generalizable)", protocols::matching_generalizable()},
  };

  for (const auto& rowdef : rows) {
    const Protocol& p = rowdef.p;
    const double local_ms = ms_of([&] {
      const auto res = check_convergence(p, {}, 2);
      benchmark::DoNotOptimize(&res);
    });
    std::cout << "  " << rowdef.name << ": local analysis (covers ALL K): "
              << local_ms << " ms over " << p.num_states()
              << " local states\n";
    for (std::size_t k = 6; k <= 14; k += 2) {
      GlobalStateId states = 0;
      bool feasible = true;
      double global_ms = 0;
      try {
        const RingInstance ring(p, k, GlobalStateId{1} << 25);
        states = ring.num_states();
        global_ms = ms_of([&] {
          benchmark::DoNotOptimize(strongly_stabilizing(ring));
        });
      } catch (const CapacityError&) {
        feasible = false;
      }
      std::cout << "    global K=" << k << ": "
                << (feasible ? cat(states, " states, ", global_ms, " ms")
                             : std::string("over state budget"))
                << "\n";
    }
  }
  bench::note(
      "the local column is a one-time cost certifying every K at once; the "
      "global column certifies exactly one K per run and grows as |D|^K");

  // Strengthened baseline: the FKM necklace enumerator produces each
  // rotation-orbit representative directly, so the quotient checker visits
  // ~|D|^K / K states and — unlike the seed's scan-and-filter
  // canonicalization, whose O(K²) per-state cost ate the savings — now wins
  // in wall time too (EXP-S1c measures the census head-to-head at scale).
  // The growth stays exponential in K; only the local method is constant.
  {
    const Protocol p = protocols::sum_not_two_solution();
    for (std::size_t k = 8; k <= 12; k += 2) {
      const RingInstance ring(p, k);
      const double plain_ms = ms_of([&] {
        benchmark::DoNotOptimize(strongly_stabilizing(ring));
      });
      SymmetricCheckResult sym;
      const double sym_ms =
          ms_of([&] { sym = check_symmetric(ring); });
      std::cout << "    symmetry-reduced baseline K=" << k << ": "
                << sym.canonical_states_visited << " orbits vs "
                << ring.num_states() << " states; " << sym_ms << " ms vs "
                << plain_ms << " ms plain\n";
    }
  }
  bench::footer();
}

// EXP-S1c — the necklace quotient vs the full-space sweep, head to head:
// the same deadlock census computed by (a) the parallel full-space engine
// over |D|^K states and (b) the FKM-enumerated rotation quotient over
// ~|D|^K / K necklaces. Emits BENCH_symmetry.json (wall time and peak
// state count per K and thread count) for CI tracking.
void symmetry_report() {
  bench::header(
      "EXP-S1c", "necklace quotient vs full-space sweep",
      "ring protocols are rotation-symmetric, so one canonical state per "
      "orbit decides every verdict; the FKM enumerator reaches those "
      "representatives in amortized O(1) without touching the full space");

  const Protocol p = protocols::sum_not_two_solution();
  std::vector<bench::Json> runs;
  for (std::size_t k = 10; k <= 18; k += 2) {
    const RingInstance ring(p, k, GlobalStateId{1} << 29);
    const std::vector<std::size_t> thread_counts =
        k >= 16 ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1};
    for (std::size_t t : thread_counts) {
      std::size_t full_deadlocks = 0;
      const double full_ms = ms_of([&] {
        // Fresh checker per run: the invariant mask is rebuilt, so this is
        // the full sweep cost, same as EXP-S1b measures.
        const GlobalChecker checker(ring, t);
        full_deadlocks = checker.count_deadlocks_outside_invariant();
        benchmark::DoNotOptimize(full_deadlocks);
      });
      NecklaceCensus census;
      const double quotient_ms =
          ms_of([&] { census = necklace_census(ring, 8, t); });
      if (census.num_deadlocks_outside_i != full_deadlocks)
        throw ModelError("quotient census disagrees with full sweep");
      const double speedup = full_ms / quotient_ms;
      std::cout << "  K=" << k << " " << t << " thread(s): full "
                << ring.num_states() << " states in " << full_ms
                << " ms; quotient " << census.num_necklaces
                << " necklaces in " << quotient_ms << " ms ("
                << speedup << "x)\n";
      runs.push_back(bench::Json()
                         .put("ring_size", k)
                         .put("threads", t)
                         .put("num_states", ring.num_states())
                         .put("num_necklaces", census.num_necklaces)
                         .put("full_ms", full_ms)
                         .put("quotient_ms", quotient_ms)
                         .put("speedup", speedup)
                         .put("deadlocks_outside_i",
                              census.num_deadlocks_outside_i));
    }
  }
  bench::note(
      "both columns compute the identical deadlock census (the quotient "
      "weights each necklace by its orbit size); the quotient's edge is "
      "structural — ~K× fewer states — not a constant-factor trick, and it "
      "widens as K grows");
  bench::write_bench_json("BENCH_symmetry.json",
                          bench::Json()
                              .put("experiment", "symmetry_quotient_vs_full")
                              .put("protocol", p.name())
                              .put("sweep", "deadlock_census_outside_i")
                              .put("hardware_threads", resolve_threads(0))
                              .put("runs", runs));
  bench::footer();
}

// EXP-S1b — the parallel global-state engine: invariant-mask + deadlock
// sweep throughput at 1..N threads, on an instance past the seed engine's
// comfortable budget. Emits BENCH_global_engine.json (machine-readable:
// states/sec per thread count, speedup vs 1 thread) for CI tracking.
void global_engine_report() {
  bench::header(
      "EXP-S1b", "parallel global-state engine",
      "the global baseline is the ground truth every local verdict is "
      "cross-validated against; parallel cache-friendly sweeps raise the "
      "state budget at equal wall-clock");

  const Protocol p = protocols::sum_not_two_solution();
  // 3^16 = ~43M states: beyond both the 2^24 RingInstance default and the
  // 2^25 budget the seed benchmarked at. The sweep phases are bitset-light;
  // only Tarjan (not run here) needs per-state bookkeeping.
  const std::size_t k = 16;
  const RingInstance ring(p, k, GlobalStateId{1} << 27);
  const double n = static_cast<double>(ring.num_states());

  struct Sample {
    std::size_t threads;
    double ms;
    double states_per_sec;
    double speedup;
  };
  std::vector<Sample> samples;
  const std::size_t hw = resolve_threads(0);
  for (std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::size_t deadlocks = 0;
    const double ms = ms_of([&] {
      // Invariant mask + deadlock census — the sweep every verdict starts
      // from. A fresh checker per run so the mask is rebuilt, not cached.
      const GlobalChecker checker(ring, t);
      deadlocks = checker.count_deadlocks_outside_invariant();
      benchmark::DoNotOptimize(deadlocks);
    });
    const double sps = n / (ms / 1000.0);
    samples.push_back({t, ms, sps, samples.empty() ? 1.0
                                                   : sps / samples[0].states_per_sec});
    std::cout << "  invariant+deadlock sweep K=" << k << " ("
              << ring.num_states() << " states), " << t
              << " thread(s): " << ms << " ms, "
              << static_cast<std::uint64_t>(sps) << " states/sec, "
              << samples.back().speedup << "x vs 1 thread\n";
  }
  bench::note(cat("hardware lanes available: ", hw,
                  " — speedups are bounded by physical cores; the "
                  "1-thread row already includes the LUT + rolling-decode "
                  "rewrite of the seed engine"));

  std::vector<bench::Json> runs;
  for (const Sample& s : samples)
    runs.push_back(bench::Json()
                       .put("threads", s.threads)
                       .put("ms", s.ms)
                       .put("states_per_sec", s.states_per_sec)
                       .put("speedup_vs_1", s.speedup));
  bench::write_bench_json("BENCH_global_engine.json",
                          bench::Json()
                              .put("experiment", "global_engine_sweep")
                              .put("protocol", p.name())
                              .put("ring_size", k)
                              .put("num_states", ring.num_states())
                              .put("hardware_threads", hw)
                              .put("sweep", "invariant_mask+deadlock_census")
                              .put("runs", runs));
  bench::footer();
}

void report_all() {
  report();
  global_engine_report();
  symmetry_report();
}

void BM_LocalAnalysis(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  for (auto _ : state) {
    const auto res = check_convergence(p, {}, 2);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_LocalAnalysis);

void BM_GlobalCheckByK(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)),
                          GlobalStateId{1} << 25);
  for (auto _ : state)
    benchmark::DoNotOptimize(strongly_stabilizing(ring));
  state.SetComplexityN(static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_GlobalCheckByK)->DenseRange(4, 13)->Complexity();

void BM_InvariantDeadlockSweep(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const RingInstance ring(p, 12);  // 3^12 = 531441 states
  for (auto _ : state) {
    const GlobalChecker checker(ring,
                                static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(checker.count_deadlocks_outside_invariant());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_InvariantDeadlockSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

RINGSTAB_BENCH_MAIN(report_all)
