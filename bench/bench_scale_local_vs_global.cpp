// EXP-S1 — the paper's core efficiency claim: local reasoning is
// K-independent while global model checking explodes exponentially with K.
#include <chrono>
#include <cstdlib>
#include <functional>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "local/convergence.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/agreement.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void report() {
  bench::header("EXP-S1", "local reasoning vs global model checking",
                "the local analysis touches only the |D|^w local states of "
                "one process — independent of K — while the global check "
                "visits |D|^K states (Sections 6, 7)");

  struct Row {
    const char* name;
    Protocol p;
  };
  const std::vector<Row> rows = {
      {"agreement (one-sided)", protocols::agreement_one_sided(true)},
      {"sum-not-two solution", protocols::sum_not_two_solution()},
      {"matching (generalizable)", protocols::matching_generalizable()},
  };

  for (const auto& rowdef : rows) {
    const Protocol& p = rowdef.p;
    const double local_ms = ms_of([&] {
      const auto res = check_convergence(p, {}, 2);
      benchmark::DoNotOptimize(&res);
    });
    std::cout << "  " << rowdef.name << ": local analysis (covers ALL K): "
              << local_ms << " ms over " << p.num_states()
              << " local states\n";
    for (std::size_t k = 6; k <= 14; k += 2) {
      GlobalStateId states = 0;
      bool feasible = true;
      double global_ms = 0;
      try {
        const RingInstance ring(p, k, GlobalStateId{1} << 25);
        states = ring.num_states();
        global_ms = ms_of([&] {
          benchmark::DoNotOptimize(strongly_stabilizing(ring));
        });
      } catch (const CapacityError&) {
        feasible = false;
      }
      std::cout << "    global K=" << k << ": "
                << (feasible ? cat(states, " states, ", global_ms, " ms")
                             : std::string("over state budget"))
                << "\n";
    }
  }
  bench::note(
      "the local column is a one-time cost certifying every K at once; the "
      "global column certifies exactly one K per run and grows as |D|^K");

  // Strengthened baseline: the FKM necklace enumerator produces each
  // rotation-orbit representative directly, so the quotient checker visits
  // ~|D|^K / K states and — unlike the seed's scan-and-filter
  // canonicalization, whose O(K²) per-state cost ate the savings — now wins
  // in wall time too (EXP-S1c measures the census head-to-head at scale).
  // The growth stays exponential in K; only the local method is constant.
  {
    const Protocol p = protocols::sum_not_two_solution();
    for (std::size_t k = 8; k <= 12; k += 2) {
      const RingInstance ring(p, k);
      const double plain_ms = ms_of([&] {
        benchmark::DoNotOptimize(strongly_stabilizing(ring));
      });
      SymmetricCheckResult sym;
      const double sym_ms =
          ms_of([&] { sym = check_symmetric(ring); });
      std::cout << "    symmetry-reduced baseline K=" << k << ": "
                << sym.canonical_states_visited << " orbits vs "
                << ring.num_states() << " states; " << sym_ms << " ms vs "
                << plain_ms << " ms plain\n";
    }
  }
  bench::footer();
}

// EXP-S1c — the necklace quotient vs the full-space sweep, head to head:
// the same deadlock census computed by (a) the parallel full-space engine
// over |D|^K states and (b) the FKM-enumerated rotation quotient over
// ~|D|^K / K necklaces. Emits BENCH_symmetry.json (wall time and peak
// state count per K and thread count) for CI tracking.
void symmetry_report() {
  bench::header(
      "EXP-S1c", "necklace quotient vs full-space sweep",
      "ring protocols are rotation-symmetric, so one canonical state per "
      "orbit decides every verdict; the FKM enumerator reaches those "
      "representatives in amortized O(1) without touching the full space");

  const Protocol p = protocols::sum_not_two_solution();
  std::vector<bench::Json> runs;
  for (std::size_t k = 10; k <= 18; k += 2) {
    const RingInstance ring(p, k, GlobalStateId{1} << 29);
    const std::vector<std::size_t> thread_counts =
        k >= 16 ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1};
    for (std::size_t t : thread_counts) {
      std::size_t full_deadlocks = 0;
      const double full_ms = ms_of([&] {
        // Fresh checker per run: the invariant mask is rebuilt, so this is
        // the full sweep cost, same as EXP-S1b measures.
        const GlobalChecker checker(ring, t);
        full_deadlocks = checker.count_deadlocks_outside_invariant();
        benchmark::DoNotOptimize(full_deadlocks);
      });
      NecklaceCensus census;
      const double quotient_ms =
          ms_of([&] { census = necklace_census(ring, 8, t); });
      if (census.num_deadlocks_outside_i != full_deadlocks)
        throw ModelError("quotient census disagrees with full sweep");
      const double speedup = full_ms / quotient_ms;
      std::cout << "  K=" << k << " " << t << " thread(s): full "
                << ring.num_states() << " states in " << full_ms
                << " ms; quotient " << census.num_necklaces
                << " necklaces in " << quotient_ms << " ms ("
                << speedup << "x)\n";
      runs.push_back(bench::Json()
                         .put("ring_size", k)
                         .put("threads", t)
                         .put("num_states", ring.num_states())
                         .put("num_necklaces", census.num_necklaces)
                         .put("full_ms", full_ms)
                         .put("quotient_ms", quotient_ms)
                         .put("speedup", speedup)
                         .put("deadlocks_outside_i",
                              census.num_deadlocks_outside_i));
    }
  }
  bench::note(
      "both columns compute the identical deadlock census (the quotient "
      "weights each necklace by its orbit size); the quotient's edge is "
      "structural — ~K× fewer states — not a constant-factor trick, and it "
      "widens as K grows");
  bench::write_bench_json("BENCH_symmetry.json",
                          bench::Json()
                              .put("experiment", "symmetry_quotient_vs_full")
                              .put("protocol", p.name())
                              .put("sweep", "deadlock_census_outside_i")
                              .put("hardware_threads", resolve_threads(0))
                              .put("runs", runs));
  bench::footer();
}

// EXP-S1b — the parallel global-state engine: invariant-mask + deadlock
// sweep throughput at 1..N threads, on an instance past the seed engine's
// comfortable budget. Returns the per-thread rows; report_all() folds them
// into BENCH_global_engine.json together with the EXP-S1d table.
std::vector<bench::Json> global_engine_report() {
  bench::header(
      "EXP-S1b", "parallel global-state engine",
      "the global baseline is the ground truth every local verdict is "
      "cross-validated against; parallel cache-friendly sweeps raise the "
      "state budget at equal wall-clock");

  const Protocol p = protocols::sum_not_two_solution();
  // 3^16 = ~43M states: beyond both the 2^24 RingInstance default and the
  // 2^25 budget the seed benchmarked at. The sweep phases are bitset-light;
  // only Tarjan (not run here) needs per-state bookkeeping.
  const std::size_t k = 16;
  const RingInstance ring(p, k, GlobalStateId{1} << 27);
  const double n = static_cast<double>(ring.num_states());

  struct Sample {
    std::size_t threads;
    double ms;
    double states_per_sec;
    double speedup;
  };
  std::vector<Sample> samples;
  const std::size_t hw = resolve_threads(0);
  for (std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::size_t deadlocks = 0;
    const double ms = ms_of([&] {
      // Invariant mask + deadlock census — the sweep every verdict starts
      // from. A fresh checker per run so the mask is rebuilt, not cached.
      const GlobalChecker checker(ring, t);
      deadlocks = checker.count_deadlocks_outside_invariant();
      benchmark::DoNotOptimize(deadlocks);
    });
    const double sps = n / (ms / 1000.0);
    samples.push_back({t, ms, sps, samples.empty() ? 1.0
                                                   : sps / samples[0].states_per_sec});
    std::cout << "  invariant+deadlock sweep K=" << k << " ("
              << ring.num_states() << " states), " << t
              << " thread(s): " << ms << " ms, "
              << static_cast<std::uint64_t>(sps) << " states/sec, "
              << samples.back().speedup << "x vs 1 thread\n";
  }
  bench::note(cat("hardware lanes available: ", hw,
                  " — speedups are bounded by physical cores; the "
                  "1-thread row already includes the LUT + rolling-decode "
                  "rewrite of the seed engine"));

  std::vector<bench::Json> runs;
  for (const Sample& s : samples)
    runs.push_back(bench::Json()
                       .put("threads", s.threads)
                       .put("ms", s.ms)
                       .put("states_per_sec", s.states_per_sec)
                       .put("speedup_vs_1", s.speedup));
  bench::footer();
  return runs;
}

// EXP-S1d — full-verdict throughput: the fused engine (one classify pass,
// one successor pass building the ¬I CSR, then FB/FWBW parallel SCC and
// CSR-resident tiled fixpoints) against the unfused pass-per-question
// baseline (independent sweeps plus a serial Tarjan over the implicit
// graph), across a thread sweep. Every run's verdict is checked against
// the serial unfused baseline; a mismatch aborts the bench.
// RINGSTAB_BENCH_SMOKE=1 shrinks K for the CI smoke job.
std::vector<bench::Json> full_verdict_report(const RingInstance& ring,
                                             bool smoke) {
  bench::header(
      "EXP-S1d", "fused full-verdict engine vs unfused baseline",
      "a full verdict (closure, deadlock census, livelock SCCs, weak "
      "convergence, recovery bound) decodes the state space exactly twice "
      "in the fused engine; the unfused baseline re-decodes it for every "
      "question and runs livelock detection as a serial Tarjan");

  const double n = static_cast<double>(ring.num_states());
  auto run_engine = [&](std::size_t threads, bool fused,
                        GlobalCheckResult& out) {
    return ms_of([&] {
      const GlobalChecker checker(ring, threads, fused);
      out = checker.check_all();
      benchmark::DoNotOptimize(&out);
    });
  };
  // Witness cycles are engine-specific (each engine is deterministic, but
  // they anchor cycles differently); every verdict field must agree.
  auto same_verdict = [](const GlobalCheckResult& a,
                         const GlobalCheckResult& b) {
    return a.num_deadlocks_outside_i == b.num_deadlocks_outside_i &&
           a.deadlock_samples == b.deadlock_samples &&
           a.has_livelock == b.has_livelock && a.closure_ok == b.closure_ok &&
           a.closure_violation == b.closure_violation &&
           a.weakly_converges == b.weakly_converges &&
           a.max_recovery_steps == b.max_recovery_steps;
  };

  GlobalCheckResult base;
  const double base_ms = run_engine(1, /*fused=*/false, base);
  const double base_sps = n / (base_ms / 1000.0);
  if (!(base_sps > 0.0))
    throw ModelError("EXP-S1d: zero full-verdict throughput");

  std::vector<bench::Json> runs;
  auto record = [&](const char* engine, std::size_t threads, double ms,
                    const GlobalCheckResult& res) {
    if (!same_verdict(res, base))
      throw ModelError(cat("EXP-S1d: ", engine, " engine at ", threads,
                           " thread(s) disagrees with the serial baseline"));
    const double sps = n / (ms / 1000.0);
    std::cout << "  full verdict K=" << ring.ring_size() << " " << engine
              << ", " << threads << " thread(s): " << ms << " ms, "
              << static_cast<std::uint64_t>(sps) << " states/sec, "
              << sps / base_sps << "x vs serial unfused\n";
    runs.push_back(bench::Json()
                       .put("engine", engine)
                       .put("threads", threads)
                       .put("ms", ms)
                       .put("states_per_sec", sps)
                       .put("speedup_vs_serial_unfused", sps / base_sps));
  };
  record("unfused", 1, base_ms, base);
  const std::vector<std::size_t> sweep = {1, 2, 4, 8};
  for (const std::size_t t : sweep) {
    GlobalCheckResult res;
    const double ms = run_engine(t, /*fused=*/true, res);
    record("fused", t, ms, res);
  }
  for (const std::size_t t : sweep) {
    if (t == 1) continue;  // the baseline row above
    GlobalCheckResult res;
    const double ms = run_engine(t, /*fused=*/false, res);
    record("unfused", t, ms, res);
  }
  bench::note(cat(
      "verdicts (deadlock census + samples, livelock, closure pair, weak "
      "convergence, recovery bound) are asserted bit-identical across all ",
      runs.size(), " runs; speedups are bounded by physical cores (",
      resolve_threads(0), " hardware lane(s) here)",
      smoke ? " — SMOKE RUN, tiny K" : ""));
  bench::footer();
  return runs;
}

void report_all() {
  report();
  const std::vector<bench::Json> sweep_runs = global_engine_report();

  const bool smoke = std::getenv("RINGSTAB_BENCH_SMOKE") != nullptr;
  const Protocol p = protocols::sum_not_two_solution();
  const std::size_t k = smoke ? 8 : 16;
  const RingInstance ring(p, k, GlobalStateId{1} << 27);
  const std::vector<bench::Json> verdict_runs =
      full_verdict_report(ring, smoke);

  bench::write_bench_json(
      "BENCH_global_engine.json",
      bench::Json()
          .put("experiment", "global_engine")
          .put("protocol", p.name())
          .put("hardware_threads", resolve_threads(0))
          .put("sweep_ring_size", std::size_t{16})
          .put("sweep", "invariant_mask+deadlock_census")
          .put("runs", sweep_runs)
          .put("full_verdict_ring_size", k)
          .put("full_verdict_num_states", ring.num_states())
          .put("full_verdict_smoke", smoke)
          .put("full_verdict_sweep",
               "check_all: fused two-pass + parallel SCC vs unfused baseline")
          .put("full_verdict_runs", verdict_runs));
  symmetry_report();
}

void BM_LocalAnalysis(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  for (auto _ : state) {
    const auto res = check_convergence(p, {}, 2);
    benchmark::DoNotOptimize(res.verdict);
  }
}
BENCHMARK(BM_LocalAnalysis);

void BM_GlobalCheckByK(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const RingInstance ring(p, static_cast<std::size_t>(state.range(0)),
                          GlobalStateId{1} << 25);
  for (auto _ : state)
    benchmark::DoNotOptimize(strongly_stabilizing(ring));
  state.SetComplexityN(static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_GlobalCheckByK)->DenseRange(4, 13)->Complexity();

void BM_InvariantDeadlockSweep(benchmark::State& state) {
  const Protocol p = protocols::sum_not_two_solution();
  const RingInstance ring(p, 12);  // 3^12 = 531441 states
  for (auto _ : state) {
    const GlobalChecker checker(ring,
                                static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(checker.count_deadlocks_outside_invariant());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ring.num_states()));
}
BENCHMARK(BM_InvariantDeadlockSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

RINGSTAB_BENCH_MAIN(report_all)
