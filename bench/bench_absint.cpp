// EXP-A1: the abstract-interpretation static rejection lane
// (analysis/absint.hpp) as a synthesis accelerator. For each skeleton the
// report runs the local portfolio synthesizer with the lane on and off,
// checks the verdicts are bit-identical (the lane's soundness contract),
// and reports the static rejection rate and the candidates/sec delta.
//
// Artifact: BENCH_absint.json (committed at the repo root, schema-checked
// by the perf_validate_bench ctest entry).
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

SynthesisOptions options(bool lane, std::size_t threads = 1) {
  SynthesisOptions o;
  o.static_reject_lane = lane;
  o.num_threads = threads;
  return o;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct LaneRun {
  std::size_t candidates = 0;
  std::size_t solutions = 0;
  std::size_t static_ill = 0;
  std::size_t static_trail = 0;
  double on_ms = 0;
  double off_ms = 0;
};

/// Run lane-on and lane-off, verify bit-identity, collect the tallies.
/// Throws on any verdict divergence — a bench that would publish numbers
/// for an unsound lane must die instead.
LaneRun run_case(const std::string& name, const Protocol& p,
                 std::size_t threads) {
  // Best-of-3 per side: one synthesis run is short enough that scheduler
  // noise can drown a 10% delta.
  constexpr int kReps = 3;
  LaneRun r;
  SynthesisResult on, off;
  r.on_ms = r.off_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    on = synthesize_convergence(p, options(true, threads));
    r.on_ms = std::min(r.on_ms, ms_since(t0));
    const auto t1 = std::chrono::steady_clock::now();
    off = synthesize_convergence(p, options(false, threads));
    r.off_ms = std::min(r.off_ms, ms_since(t1));
  }

  if (on.candidates_examined != off.candidates_examined ||
      on.solutions.size() != off.solutions.size() ||
      on.reports.size() != off.reports.size())
    throw std::runtime_error("lane changed result shape on " + name);
  for (std::size_t i = 0; i < on.reports.size(); ++i)
    if (on.reports[i].status != off.reports[i].status ||
        on.reports[i].added != off.reports[i].added)
      throw std::runtime_error("lane changed verdict " + std::to_string(i) +
                               " on " + name);
  for (std::size_t i = 0; i < on.solutions.size(); ++i)
    if (on.solutions[i].added != off.solutions[i].added ||
        on.solutions[i].protocol.name() != off.solutions[i].protocol.name())
      throw std::runtime_error("lane changed solution " + std::to_string(i) +
                               " on " + name);

  r.candidates = on.candidates_examined;
  r.solutions = on.solutions.size();
  for (const auto& rep : on.reports) {
    if (!rep.static_reject) continue;
    if (rep.status == CandidateReport::Status::kRejectedTrail)
      ++r.static_trail;
    else
      ++r.static_ill;
  }
  return r;
}

void report() {
  bench::header("EXP-A1 (static rejection lane)", "BENCH_absint.json",
                "candidates refuted from skeleton facts alone skip memo "
                "traffic, trail searches and classification sweeps; "
                "verdicts stay bit-identical");

  const struct {
    const char* name;
    Protocol p;
  } cases[] = {
      {"agreement", protocols::agreement_empty()},
      {"three_coloring", protocols::coloring_empty(3)},
      {"sum_not_two", protocols::sum_not_two_empty()},
      {"no_adjacent_ones", protocols::no_adjacent_ones_empty()},
      {"matching", protocols::matching_skeleton()},
  };

  std::vector<bench::Json> runs;
  for (const auto& c : cases) {
    const LaneRun r = run_case(c.name, c.p, 1);
    const std::size_t rejects = r.static_ill + r.static_trail;
    const double rate =
        r.candidates == 0 ? 0.0
                          : static_cast<double>(rejects) /
                                static_cast<double>(r.candidates);
    const double cps_on = r.on_ms <= 0.0
                              ? 0.0
                              : 1000.0 * static_cast<double>(r.candidates) /
                                    r.on_ms;
    const double cps_off = r.off_ms <= 0.0
                               ? 0.0
                               : 1000.0 * static_cast<double>(r.candidates) /
                                     r.off_ms;
    bench::row(c.name,
               "identical solution sets with the lane on or off",
               std::to_string(r.candidates) + " candidates, " +
                   std::to_string(rejects) + " static rejects (" +
                   std::to_string(r.static_ill) + " ill-formed, " +
                   std::to_string(r.static_trail) + " trail), " +
                   std::to_string(r.on_ms) + " ms on / " +
                   std::to_string(r.off_ms) + " ms off");
    bench::Json run;
    run.put("protocol", c.name);
    run.put("candidates", r.candidates);
    run.put("solutions", r.solutions);
    run.put("static_rejects", rejects);
    run.put("static_ill_formed", r.static_ill);
    run.put("static_trail_certificates", r.static_trail);
    run.put("static_reject_rate", rate);
    run.put("lane_on_ms", r.on_ms);
    run.put("lane_off_ms", r.off_ms);
    run.put("candidates_per_sec_on", cps_on);
    run.put("candidates_per_sec_off", cps_off);
    run.put("bit_identical", true);  // run_case threw otherwise
    runs.push_back(std::move(run));
  }

  // Thread invariance at 4 lanes on the heaviest skeleton.
  const LaneRun mt = run_case("matching@4", protocols::matching_skeleton(), 4);
  std::vector<bench::Json> invariance;
  {
    bench::Json j;
    j.put("protocol", "matching");
    j.put("threads", 4);
    j.put("candidates", mt.candidates);
    j.put("static_rejects", mt.static_ill + mt.static_trail);
    j.put("bit_identical", true);
    invariance.push_back(std::move(j));
  }

  bench::Json doc;
  doc.put("experiment", "absint_static_lane");
  doc.put("runs", runs);
  doc.put("jobs_invariance", invariance);
  bench::write_bench_json("BENCH_absint.json", doc);
  bench::footer();
}

void BM_MatchingLaneOn(benchmark::State& state) {
  const Protocol p = protocols::matching_skeleton();
  for (auto _ : state)
    benchmark::DoNotOptimize(synthesize_convergence(p, options(true, 1)));
}
BENCHMARK(BM_MatchingLaneOn)->Unit(benchmark::kMillisecond);

void BM_MatchingLaneOff(benchmark::State& state) {
  const Protocol p = protocols::matching_skeleton();
  for (auto _ : state)
    benchmark::DoNotOptimize(synthesize_convergence(p, options(false, 1)));
}
BENCHMARK(BM_MatchingLaneOff)->Unit(benchmark::kMillisecond);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
