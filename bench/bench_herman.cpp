// EXP-H1 — Herman's randomized token ring at Monte Carlo scale: expected
// convergence time vs the (4/27)·K² Herman-protocol-conjecture bound, the
// thread-count invariance of the estimator, and raw trajectory throughput.
//
// Artifact: BENCH_herman.json (committed at the repo root, schema-checked
// by the perf_validate_bench ctest entry). RINGSTAB_BENCH_SMOKE=1 shrinks
// the sweep for CI. The report *asserts* the two load-bearing contracts —
// estimates bit-identical at 1 vs 4 worker lanes, measured means
// statistically consistent with the bound — and throws on violation, so a
// plain exit-0 check is the whole gate.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iomanip>

#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "protocols/herman.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ringstab;

double ms_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

EstimateOptions herman_options(std::uint64_t seed, std::size_t trajectories) {
  EstimateOptions eo;
  eo.scheduler = Scheduler::kSynchronousCoin;
  eo.target = ConvergenceTarget::kOneIllegit;
  eo.start = StartKind::kThreeTokens;  // the conjectured extremal start
  eo.coin = 0.5;
  eo.seed = seed;
  eo.trajectories = trajectories;
  eo.round_cap = 1'000'000;
  return eo;
}

void report() {
  const bool smoke = std::getenv("RINGSTAB_BENCH_SMOKE") != nullptr;
  bench::header(
      "EXP-H1", "Herman rings at Monte Carlo scale",
      "expected one-token convergence time from the extremal three-token "
      "start tracks the Herman-protocol-conjecture bound (4/27)K^2, and the "
      "trajectory estimator is bit-identical at every thread count");

  const Protocol herman = protocols::herman_ring();

  // ── bound sweep ──
  const std::vector<std::size_t> ks =
      smoke ? std::vector<std::size_t>{7, 11}
            : std::vector<std::size_t>{7, 11, 21, 31, 51};
  const std::size_t sweep_traj = smoke ? 200 : 2000;
  std::vector<bench::Json> runs;
  std::cout << "  one-token convergence, three-token start, " << sweep_traj
            << " trajectories per K:\n";
  for (const std::size_t k : ks) {
    EstimateOptions eo = herman_options(42, sweep_traj);
    eo.num_threads = 0;  // all cores; never changes the estimate
    const ConvergenceEstimate est = estimate_convergence_rounds(herman, k, eo);
    const double bound = protocols::herman_conjecture_bound(k);
    // 4σ of statistical headroom: the three-token start attains the bound
    // asymptotically, so the sample mean may sit a hair above it.
    const double slack = 4.0 / 1.96 * est.ci95_half_width;
    if (est.censored != 0)
      throw ModelError(cat("bench_herman: ", est.censored,
                           " censored trajectories at K=", k));
    if (est.mean_rounds > bound + slack)
      throw ModelError(cat("bench_herman: mean ", est.mean_rounds,
                           " exceeds the (4/27)K^2 bound ", bound,
                           " beyond sampling noise at K=", k));
    std::cout << "    K=" << std::setw(3) << k << ": mean "
              << est.mean_rounds << " ±" << est.ci95_half_width
              << " rounds, bound " << bound << " (ratio "
              << est.mean_rounds / bound << ")\n";
    runs.push_back(bench::Json()
                       .put("ring_size", k)
                       .put("trajectories", est.trajectories)
                       .put("converged", est.converged)
                       .put("mean_rounds", est.mean_rounds)
                       .put("ci95_half_width", est.ci95_half_width)
                       .put("p95_rounds", est.p95_rounds)
                       .put("conjecture_bound", bound)
                       .put("mean_over_bound", est.mean_rounds / bound));
  }

  // ── thread-count invariance ──
  const std::size_t inv_traj = smoke ? 100 : 500;
  EstimateOptions eo1 = herman_options(7, inv_traj);
  EstimateOptions eo4 = eo1;
  eo1.num_threads = 1;
  eo4.num_threads = 4;
  const auto est1 = estimate_convergence_rounds(herman, 21, eo1);
  const auto est4 = estimate_convergence_rounds(herman, 21, eo4);
  if (!(est1 == est4))
    throw ModelError(
        "bench_herman: estimates differ between 1 and 4 worker lanes");
  std::cout << "  thread-count invariance: 1-lane and 4-lane estimates are "
               "bit-identical (mean "
            << est1.mean_rounds << ")\n";

  // ── single-core trajectory throughput ──
  const std::size_t tp_k = smoke ? 31 : 101;
  const std::size_t tp_traj = smoke ? 200 : 2000;
  EstimateOptions tp = herman_options(3, tp_traj);
  tp.start = StartKind::kRandom;
  tp.num_threads = 1;
  ConvergenceEstimate tp_est;
  const double tp_ms =
      ms_of([&] { tp_est = estimate_convergence_rounds(herman, tp_k, tp); });
  const double steps_per_sec =
      static_cast<double>(tp_est.total_process_steps) / (tp_ms / 1000.0);
  constexpr double kTargetStepsPerSec = 10e6;
  std::cout << "  throughput (K=" << tp_k << ", 1 core): "
            << tp_est.total_process_steps << " process steps in " << tp_ms
            << " ms = " << steps_per_sec / 1e6 << " M steps/sec/core ("
            << (steps_per_sec >= kTargetStepsPerSec ? "meets" : "BELOW")
            << " the 10M target)\n";

  bench::write_bench_json(
      "BENCH_herman.json",
      bench::Json()
          .put("experiment", "herman")
          .put("seed", 42)
          .put("runs", runs)
          .put("jobs_invariance", std::vector<bench::Json>{
              bench::Json()
                  .put("ring_size", 21)
                  .put("trajectories", inv_traj)
                  .put("bit_identical", true)
                  .put("mean_rounds", est1.mean_rounds)})
          .put("throughput", std::vector<bench::Json>{
              bench::Json()
                  .put("ring_size", tp_k)
                  .put("trajectories", tp_traj)
                  .put("process_steps", tp_est.total_process_steps)
                  .put("elapsed_ms", tp_ms)
                  .put("steps_per_sec_per_core", steps_per_sec)
                  .put("target_steps_per_sec", kTargetStepsPerSec)}));
  bench::note(
      "mean/bound ratios under 1 are expected: the three-token start "
      "attains (4/27)K^2 only asymptotically in K");
  bench::footer();
}

void BM_HermanRound(benchmark::State& state) {
  // Steady-state cost of one synchronous round, expressed per process slot.
  const Protocol herman = protocols::herman_ring();
  const auto k = static_cast<std::size_t>(state.range(0));
  EstimateOptions eo = herman_options(11, 1);
  eo.start = StartKind::kRandom;
  eo.num_threads = 1;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    eo.seed = ++seed;
    const auto est = estimate_convergence_rounds(herman, k, eo);
    benchmark::DoNotOptimize(est.total_process_steps);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                est.total_process_steps));
  }
}
BENCHMARK(BM_HermanRound)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

RINGSTAB_BENCH_MAIN(report)
