// EXP-X2 — beyond the paper: the array (open chain) topology extension the
// paper names as future work. Deadlocked arrays are WALKS in the RCG
// (no wrap-around), unidirectional self-disabling arrays always terminate,
// and the ring impossibilities (2-coloring!) dissolve.
#include "bench_util.hpp"
#include "core/fmt.hpp"
#include "global/array_instance.hpp"
#include "global/tree_instance.hpp"
#include "local/array.hpp"
#include "protocols/arrays.hpp"
#include "synthesis/array_synthesizer.hpp"

namespace {

using namespace ringstab;

void report() {
  bench::header("EXP-X2", "array topology extension",
                "continuation-relation reasoning on open chains: Theorem "
                "4.2's cycle condition becomes an exact walk condition; the "
                "paper's Def. 4.1 remark sketches this generalization");

  {
    const Protocol p = protocols::array_two_coloring();
    const auto res = analyze_array_deadlocks(p, 32);
    bench::row("2-coloring on arrays",
               "IMPOSSIBLE on unidirectional rings (paper Fig. 11 / ref "
               "[25]); possible on arrays",
               cat(res.deadlock_free_all_n
                       ? "deadlock-free for every length"
                       : "deadlocks found (mismatch)",
                   ", terminates always: ",
                   array_terminates_always(p) ? "yes" : "no"));
    std::string rows;
    for (std::size_t n = 2; n <= 9; ++n) {
      const auto check = check_array(ArrayInstance(p, n));
      rows += cat("n=", n, ":",
                  (check.num_deadlocks_outside_i == 0 && !check.has_livelock)
                      ? "ok"
                      : "FAIL",
                  " ");
    }
    bench::row("exhaustive confirmation", "stabilizes at every length", rows);
  }

  {
    const Protocol p = protocols::array_two_coloring_broken();
    const auto res = analyze_array_deadlocks(p, 16);
    bench::row("broken variant (corrects only (0,0) pairs)",
               "deadlocked arrays at every length ≥ 2",
               join(res.deadlocked_sizes(), " ",
                    [](std::size_t n) { return std::to_string(n); }));
    const auto witness = array_deadlock_witness(p, 6);
    bench::row("witness array n=6", "a stuck array outside I",
               witness ? join(*witness, ",",
                              [&](Value v) { return p.domain().name(v); })
                       : "none");
  }

  {
    const Protocol p = protocols::array_sort(3);
    const auto res = analyze_array_deadlocks(p, 32);
    bench::row("sorting sweep (LC: x[-1] ≤ x[0])",
               "deadlock-free for every length; all deadlocks sorted",
               res.deadlock_free_all_n ? "deadlock-free for every length"
                                       : "FAIL");
  }

  {
    // Array synthesis: from the EMPTY 2-coloring input, the path-cut
    // Resolve step plus any self-disabling candidates recover the flip
    // protocol — no livelock analysis needed at all.
    const Protocol input =
        protocols::array_two_coloring().with_delta("array_2c_input", {});
    const auto res = synthesize_array_convergence(input);
    bench::row("synthesis from the empty 2-coloring input",
               "succeeds (impossible on rings); livelock check unnecessary",
               cat(res.success ? "SUCCESS" : "FAILURE", ", ",
                   res.solutions.size(), " solution(s), Resolve={00,11}",
                   res.success && res.solutions[0].protocol.delta() ==
                                      protocols::array_two_coloring().delta()
                       ? ", equals the hand-written flip protocol"
                       : ""));
  }
  {
    // Trees (the paper's Def. 4.1 remark): for parent-read localities the
    // deadlock theory reduces to the array case; spot-check the reduction
    // on random in-tree shapes.
    const Protocol good = protocols::array_two_coloring();
    const Protocol bad = protocols::array_two_coloring_broken();
    std::size_t good_clean = 0, bad_dead = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto shape = random_tree_shape(7, seed);
      if (check_tree(TreeInstance(good, shape)).num_deadlocks_outside_i == 0)
        ++good_clean;
      if (check_tree(TreeInstance(bad, shape)).num_deadlocks_outside_i > 0)
        ++bad_dead;
    }
    bench::row("tree reduction (8 random 7-node in-trees)",
               "array certification transfers to every tree shape",
               cat("certified protocol clean on ", good_clean,
                   "/8 shapes; broken protocol deadlocked on ", bad_dead,
                   "/8"));
  }
  bench::footer();
}

void BM_ArrayLocalAnalysis(benchmark::State& state) {
  const Protocol p = protocols::array_two_coloring();
  for (auto _ : state) {
    const auto res = analyze_array_deadlocks(p, 64);
    benchmark::DoNotOptimize(res.deadlock_free_all_n);
  }
}
BENCHMARK(BM_ArrayLocalAnalysis);

void BM_ArrayExhaustiveCheck(benchmark::State& state) {
  const Protocol p = protocols::array_two_coloring();
  const ArrayInstance inst(p, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto res = check_array(inst);
    benchmark::DoNotOptimize(res.has_livelock);
  }
  state.SetComplexityN(static_cast<std::int64_t>(inst.num_states()));
}
BENCHMARK(BM_ArrayExhaustiveCheck)->DenseRange(4, 14)->Complexity();

}  // namespace

RINGSTAB_BENCH_MAIN(report)
