# topology: array
# expect: converges
# 2-coloring on an ARRAY (open chain). Impossible on unidirectional rings
# (paper Fig. 11), but the parity obstruction disappears on arrays.
# Convention: the domain's last value B is the virtual boundary marker.
# Analyze with: ringstab analyze array_two_coloring.ring --array
protocol array_2coloring;
domain a, b, B;
reads -1 .. 0;
legit: x[-1] == B || (x[0] != B && x[-1] != x[0]);
action flip: x[-1] != B && x[0] != B && x[-1] == x[0] -> x[0] := 1 - x[0];
