# lint: allow(RS003, RS110)
# Example 4.2: the generalizable maximal matching protocol on a
# bidirectional ring (actions A1–A5, originally synthesized by STSyn for
# K=6). Theorem 4.2 certifies deadlock-freedom for every K.
protocol matching_gen;
domain left, right, self;
reads -1 .. 1;
legit: (x[0] == right && x[1] == left)
    || (x[-1] == right && x[0] == left)
    || (x[-1] == left && x[0] == self && x[1] == right);

action A1:  x[-1] == left && x[0] != self && x[1] == right -> x[0] := self;
action A2:  x[-1] == self && x[0] == self && x[1] == self
            -> x[0] := right | x[0] := left;
action A3a: x[-1] == right && x[0] == self                 -> x[0] := left;
action A3b: x[0] == self && x[1] == left                   -> x[0] := right;
action A4a: x[-1] == right && x[0] == right && x[1] != left -> x[0] := left;
action A4b: x[-1] != right && x[0] == left && x[1] == left  -> x[0] := right;
action A5a: x[-1] == self && x[0] != left && x[1] == right  -> x[0] := left;
action A5b: x[-1] == left && x[0] != right && x[1] == self  -> x[0] := right;
