# expect: fails
# lint: allow(RS011)
# The Sum-Not-Two protocol of Section 6.2 — synthesis input.
protocol sum_not_two;
domain 3;
reads -1 .. 0;
legit: x[-1] + x[0] != 2;
