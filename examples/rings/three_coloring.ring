# expect: fails
# lint: allow(RS011)
# 3-coloring on a unidirectional ring (Section 6.1) — synthesis input.
# The methodology provably FAILS on this one: every candidate forms a
# pseudo-livelock participating in a contiguous trail.
protocol three_coloring;
domain 3;
reads -1 .. 0;
legit: x[-1] != x[0];
