# lint: allow(RS002, RS030)
# Herman's randomized token ring (Herman 1990). Process r holds a token iff
# x[r-1] = x[r]. Under the synchronous-coin scheduler with coin 1/2
# (`ringstab simulate herman.ring -k 7 --random --target one-token`), a
# token holder re-randomizes its bit and a non-holder copies its left
# neighbor — exactly Herman's protocol. On odd rings the token count keeps
# its parity, so the ring converges to a single token in expected
# O(K^2) rounds ((4/27)K^2 — the Herman-protocol conjecture, docs/theory.md).
# Deliberately NOT certifiable by the adversarial-scheduler analyses: an
# interleaving daemon can shuttle tokens forever — hence the RS002 (toss/
# pass two-cycle) and RS030 (token passing leaves LC_r locally) allowances.
protocol herman;
domain 2;
reads -1 .. 0;
legit: x[-1] != x[0];
action toss: x[-1] == x[0] -> x[0] := 1 - x[0];
action pass: x[-1] != x[0] -> x[0] := x[-1];
