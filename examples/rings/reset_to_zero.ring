# expect: fails
# lint: allow(RS011, RS020)
# Reset-to-zero — synthesis input: legitimate iff every register is 0.
# Each minimal Resolve set pairs two illegitimate deadlocks that share a
# window context (01 with 02, or 11 with 12, or 21 with 22), so the
# candidate product contains combinations like {01 -> 02, 02 -> 01} whose
# added transitions chain into a t-arc cycle (Assumption 1 violation).
# The lint pre-filter discards those with RS002 before any trail work
# (`lint.candidates_rejected`); RS020's unused-value note is suppressed
# because the repair transitions are what write the nonzero values.
protocol reset_to_zero;
domain 3;
reads -1 .. 0;
legit: x[0] == 0;
