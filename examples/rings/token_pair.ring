# expect: fails
# lint: allow(RS011)
# "No adjacent tokens": at most every other process may hold a token.
# A user-defined protocol, not from the paper — synthesis succeeds via the
# NPL fast path with the single action 11 → 10.
protocol no_adjacent_tokens;
domain 2;
reads -1 .. 0;
legit: !(x[-1] == 1 && x[0] == 1);
