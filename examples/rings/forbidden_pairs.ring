# expect: fails
# lint: allow(RS011)
# Forbidden-pairs — synthesis input whose candidate portfolio contains an
# ill-formed member. Exactly the windows 01 and 12 are illegitimate, so the
# unique minimal Resolve set is {01, 12} and the enumerator offers two
# rewrites for each: 01 -> {00, 02} and 12 -> {10, 11}. The combination
# {01->02, 12->11} projects to the value cycle 1 -> 2 -> 1, violating
# self-termination (Assumption 1) — the lint pre-filter rejects it with
# RS002 (`lint.candidates_rejected`); the other three combinations are
# certified via the NPL fast path.
protocol forbidden_pairs;
domain 3;
reads -1 .. 0;
legit: !(x[-1] == 0 && x[0] == 1) && !(x[-1] == 1 && x[0] == 2);
