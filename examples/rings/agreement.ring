# expect: fails
# lint: allow(RS011)
# Binary agreement on a unidirectional ring (paper Example 5.2 input).
# Legitimate: every process agrees with its predecessor — i.e. all equal.
# No actions: the protocol is a synthesis input (Problem 3.1).
protocol agreement;
domain 2;
reads -1 .. 0;
legit: x[-1] == x[0];
