# expect: converges
# Sum-Not-Two with the convergence actions synthesized in Section 6.2
# ({t21, t12, t01}). Strongly self-stabilizing for every ring size.
protocol sum_not_two_ss;
domain 3;
reads -1 .. 0;
legit: x[-1] + x[0] != 2;
action bump_up:   x[-1] + x[0] == 2 && x[0] != 2 -> x[0] := (x[0] + 1) % 3;
action bump_down: x[-1] + x[0] == 2 && x[0] == 2 -> x[0] := (x[0] - 1) % 3;
