// Deep dive on the paper's maximal-matching case study: why Example 4.2
// generalizes and Example 4.3 does not, with constructive witnesses.
//
// This is the workflow a protocol designer would follow: run the local
// analysis, read the bad cycles, extract witness rings, fix the protocol,
// re-check.
#include <iostream>

#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "local/deadlock.hpp"
#include "protocols/matching.hpp"

int main() {
  using namespace ringstab;

  std::cout << "--- Example 4.3: the non-generalizable matching protocol ---\n";
  const Protocol bad = protocols::matching_nongeneralizable();
  std::cout << describe(bad) << "\n";

  const auto analysis = analyze_deadlocks(bad, 32);
  std::cout << "Theorem 4.2: "
            << (analysis.deadlock_free_all_k ? "deadlock-free for every K"
                                             : "NOT generalizable")
            << "\n";
  std::cout << "bad cycles in the deadlock RCG (each one is a recipe for a "
               "deadlocked ring):\n";
  for (const auto& c : analysis.bad_cycles) {
    std::cout << "  length " << c.size() << ": ";
    for (auto v : c) std::cout << bad.space().brief(v) << " ";
    std::cout << "\n";
  }
  std::cout << "⇒ deadlocked ring sizes up to 32:";
  for (auto k : analysis.deadlocked_sizes()) std::cout << " " << k;
  std::cout << "\n\n";

  std::cout << "constructive witnesses (assign the cycle around the ring):\n";
  for (std::size_t k : {4u, 6u, 7u, 10u}) {
    const auto ring = deadlock_witness_ring(bad, k);
    if (!ring) {
      std::cout << "  K=" << k << ": no witness (clean size)\n";
      continue;
    }
    std::cout << "  K=" << k << ": ⟨"
              << join(*ring, ",",
                      [&](Value v) { return bad.domain().name(v); })
              << "⟩";
    const RingInstance inst(bad, k);
    const GlobalStateId s = inst.encode(*ring);
    std::cout << "  → every process deadlocked: " << std::boolalpha
              << inst.is_deadlock(s) << ", outside I: " << !inst.in_invariant(s)
              << "\n";
  }

  std::cout << "\nnote: K=5 is clean — this protocol was synthesized for 5 "
               "processes and verifies there:\n";
  std::cout << "  K=5 strongly stabilizes: " << std::boolalpha
            << strongly_stabilizing(RingInstance(bad, 5)) << "\n\n";

  std::cout << "--- Example 4.2: the generalizable repair ---\n";
  const Protocol good = protocols::matching_generalizable();
  const auto fixed = analyze_deadlocks(good);
  std::cout << "Theorem 4.2: "
            << (fixed.deadlock_free_all_k
                    ? "deadlock-free for every ring size"
                    : "still broken")
            << " (" << fixed.local_deadlocks.size() << " local deadlocks, "
            << fixed.illegitimate_deadlocks.size()
            << " illegitimate, none on a cycle)\n";
  std::cout << "sampled global confirmation:";
  for (std::size_t k = 4; k <= 9; ++k) {
    const RingInstance inst(good, k);
    std::cout << " K=" << k << ":"
              << (GlobalChecker(inst).count_deadlocks_outside_invariant() == 0
                      ? "ok"
                      : "dead");
  }
  std::cout << "\n";
  return 0;
}
