// Fault-injection demo: a ring of 64 processes running the synthesized
// sum-not-two protocol absorbs repeated bursts of transient faults — the
// self-stabilization story the paper's introduction motivates (soft errors,
// bad initialization, loss of coordination).
#include <iomanip>
#include <iostream>

#include "protocols/sum_not_two.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace ringstab;

  const Protocol p = protocols::sum_not_two_solution();
  constexpr std::size_t kRing = 64;
  Simulator sim(p, kRing, /*seed=*/2024);

  // Start legitimate: all zeros (0 + 0 ≠ 2 everywhere).
  sim.set_state(std::vector<Value>(kRing, 0));
  std::cout << "ring of " << kRing
            << " processes running sum-not-two, starting inside I\n\n";
  std::cout << std::setw(8) << "burst" << std::setw(10) << "faults"
            << std::setw(12) << "recovery" << std::setw(12) << "in I after"
            << "\n";

  std::size_t total_steps = 0;
  for (int burst = 1; burst <= 12; ++burst) {
    const std::size_t faults = static_cast<std::size_t>(burst * 2);
    sim.inject_faults(faults);
    const auto run = sim.run_to_convergence();
    total_steps += run.steps;
    std::cout << std::setw(8) << burst << std::setw(10) << faults
              << std::setw(10) << run.steps << " steps" << std::setw(10)
              << std::boolalpha << run.converged << "\n";
    if (!run.converged) {
      std::cout << "UNEXPECTED: failed to recover — the local certification "
                   "would be unsound\n";
      return 1;
    }
  }
  std::cout << "\nall bursts absorbed; " << total_steps
            << " recovery steps total\n";

  // And the stress version: full random corruption, many trials.
  const auto stats = measure_convergence(p, kRing, 200, 7);
  std::cout << "200 fully random starts: " << stats.converged
            << " converged, mean " << stats.mean_steps << " steps, max "
            << stats.max_steps << "\n";
  return stats.failed == 0 ? 0 : 1;
}
