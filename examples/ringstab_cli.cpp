// ringstab — command-line front-end over .ring protocol files.
//
//   ringstab analyze    <file.ring>             local verdicts (Thm 4.2/5.14)
//   ringstab synthesize <file.ring> [--all]     solve Problem 3.1
//   ringstab check      <file.ring> -k <K>      exhaustive global check
//   ringstab sweep      <file.ring> [--min K] [--max K]   cutoff verification
//   ringstab dot        <file.ring> [--rcg|--ltg|--deadlock-rcg]
//   ringstab simulate   <file.ring> -k <K> [--trials N] [--seed S]
//                       [--random [--trajectories N] [--coin P] ...]
//   ringstab emit       <file.ring>             round-trip to .ring source
//   ringstab lint       <file.ring> [--json]    structured diagnostics
//
// The check/synthesize/lint output paths live in src/serve/exec.cpp and are
// shared byte-for-byte with the ringstab-serve daemon (docs/serve.md).
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>

#include "core/fmt.hpp"
#include "obs/session.hpp"
#include "analysis/lint.hpp"
#include "core/parser.hpp"
#include "core/printer.hpp"
#include "core/ring_writer.hpp"
#include "global/cutoff.hpp"
#include "local/array.hpp"
#include "report/report.hpp"
#include "graph/dot.hpp"
#include "local/convergence.hpp"
#include "local/rcg.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/exec.hpp"
#include "serve/shutdown.hpp"
#include "sim/simulator.hpp"
#include "synthesis/array_synthesizer.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

int usage() {
  std::cerr <<
      "usage: ringstab <command> <file.ring> [options]\n"
      "  analyze    local convergence analysis (valid for every ring size)\n"
      "  synthesize add convergence (Problem 3.1); --all prints every\n"
      "             solution; --jobs N evaluates candidates on N lanes\n"
      "             (alias: synth)\n"
      "  check      exhaustive model check at one size: -k <K> [--jobs N]\n"
      "             [--symmetry]  check the rotation quotient (necklace\n"
      "             enumeration; identical verdicts, ~K× fewer states)\n"
      "  sweep      cutoff verification: [--min K] [--max K]\n"
      "  dot        emit graphviz: --rcg (default), --ltg, --deadlock-rcg\n"
      "  simulate   random-scheduler runs: -k <K> [--trials N] [--seed S]\n"
      "             [--jobs N]; with --random, Monte Carlo convergence-time\n"
      "             estimation under a probabilistic scheduler\n"
      "             (docs/simulation.md): [--trajectories N] [--cap N]\n"
      "             [--scheduler coin|weighted] [--coin P]\n"
      "             [--target invariant|one-token]\n"
      "             [--start random|zero|three]; bit-identical at every\n"
      "             --jobs N for a fixed seed\n"
      "  emit       print the protocol back as .ring source\n"
      "  lint       structured RS0xx/RS1xx diagnostics over the DSL and the\n"
      "             representative process; --json for machine-readable\n"
      "             output (docs/lint.md); exit 1 iff errors, or with\n"
      "             --werror iff errors or warnings\n"
      "  report     full markdown analysis report [--array] [--max K]\n"
      "  trace      step-by-step run: -k <K> [--from v,v,...] [--seed S]\n"
      "  --jobs N   worker threads for the global checker / simulator\n"
      "             sweeps and the synthesis candidate portfolio (default 1 =\n"
      "             the serial engine; 0 = all cores; results are identical\n"
      "             at every N)\n"
      "observability (any command):\n"
      "  --stats         phase/counter summary on stderr at exit\n"
      "  --trace <file>  Chrome trace-event JSON (chrome://tracing, Perfetto)\n"
      "  --jsonl <file>  JSON-lines event stream\n"
      "  --metrics <file> versioned run manifest (ringstab.metrics.v2:\n"
      "                  per-phase self/total times, counters, histogram\n"
      "                  quantiles, memory peaks; diffable by ringstab-perf)\n"
      "  --progress      periodic states/sec heartbeat on stderr\n";
  return 2;
}

/// Value of a value-taking flag, or nullptr when the flag is absent. A flag
/// in the final argv slot, or one whose "value" is the next `--` option
/// (`--jsonl --stats` would otherwise write a file named "--stats"), is an
/// error rather than silently absent.
const char* arg_string(int argc, char** argv, const char* name) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], name) != 0) continue;
    if (i + 1 >= argc)
      throw ModelError(cat("flag ", name, " requires a value"));
    if (std::strncmp(argv[i + 1], "--", 2) == 0)
      throw ModelError(cat("flag ", name, " is missing its value (found '",
                           argv[i + 1], "')"));
    return argv[i + 1];
  }
  return nullptr;
}

/// Strict numeric flag: absent → fallback; anything non-numeric, trailing
/// garbage, or outside [min, max] is a one-line error — never a silent 0
/// (atoll on "foo") or a size_t wraparound (on "-3").
long long arg_value(int argc, char** argv, const char* name,
                    long long fallback, long long min, long long max) {
  const char* raw = arg_string(argc, argv, name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long n = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || n < min || n > max)
    throw ModelError(cat("invalid ", name, " value '", raw,
                         "': expected an integer in [", min, ", ", max, "]"));
  return n;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 3; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// --jobs: a non-negative integer; 0 resolves to all hardware lanes.
/// Negative or non-numeric values are rejected up front.
std::size_t parse_jobs(int argc, char** argv) {
  const char* raw = arg_string(argc, argv, "--jobs");
  if (raw == nullptr) return 1;
  char* end = nullptr;
  const long long n = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0)
    throw ModelError(cat("invalid --jobs value '", raw,
                         "': expected a non-negative integer "
                         "(0 = all hardware threads)"));
  return resolve_threads(static_cast<std::size_t>(n));
}

int cmd_analyze_array(const Protocol& p) {
  std::cout << describe(p) << "\n";
  const auto res = analyze_array_deadlocks(p);
  std::cout << "array deadlock analysis (walk condition, exact for every "
               "length):\n  "
            << (res.deadlock_free_all_n
                    ? "deadlock-free for every array length"
                    : "deadlocked lengths up to " +
                          std::to_string(res.spectrum_max_n) + ": " +
                          join(res.deadlocked_sizes(), " ",
                               [](std::size_t n) { return std::to_string(n); }))
            << "\n  terminates under every schedule: "
            << (array_terminates_always(p)
                    ? "yes (unidirectional + self-disabling)"
                    : "not guaranteed by the local argument")
            << "\n";
  return res.deadlock_free_all_n ? 0 : 1;
}

int cmd_analyze(const Protocol& p) {
  std::cout << describe(p) << "\n";
  const auto res = check_convergence(p);
  std::cout << res.summary(p) << "\n";
  if (!res.deadlocks.deadlock_free_all_k) {
    std::cout << "deadlocked ring sizes up to "
              << res.deadlocks.spectrum_max_k << ":";
    for (std::size_t k : res.deadlocks.deadlocked_sizes())
      std::cout << " " << k;
    std::cout << "\nbad cycles in the deadlock RCG:\n";
    for (const auto& c : res.deadlocks.bad_cycles) {
      std::cout << "  [";
      for (auto v : c) std::cout << p.space().brief(v) << " ";
      std::cout << "]\n";
    }
  }
  if (res.livelocks.trail())
    std::cout << "witness trail: " << res.livelocks.trail()->to_string(p)
              << "\n";
  return res.verdict == ConvergenceAnalysis::Verdict::kConverges ? 0 : 1;
}

int cmd_dot(const Protocol& p, int argc, char** argv) {
  if (has_flag(argc, argv, "--ltg")) {
    std::cout << Ltg(p).to_dot();
    return 0;
  }
  const bool deadlock_only = has_flag(argc, argv, "--deadlock-rcg");
  const Digraph g = deadlock_only ? deadlock_rcg(p) : build_rcg(p.space());
  DotOptions opts;
  opts.graph_name = deadlock_only ? "deadlock_rcg" : "rcg";
  opts.label = [&](VertexId v) { return p.space().brief(v); };
  opts.vertex_attrs = [&](VertexId v) {
    return p.is_legit(v) ? std::string("style=filled,fillcolor=lightgray")
                         : std::string();
  };
  if (deadlock_only)
    opts.include = [&, g = &g](VertexId v) {
      return p.is_deadlock(v);
    };
  std::cout << to_dot(g, opts);
  return 0;
}

int cmd_trace(const Protocol& p, std::size_t k, std::uint64_t seed,
              const char* from, std::size_t max_steps) {
  Simulator sim(p, k, seed);
  if (from != nullptr) {
    std::vector<Value> state;
    std::string token;
    for (const char* c = from;; ++c) {
      if (*c == ',' || *c == '\0') {
        if (!token.empty()) {
          const auto v = p.domain().value_of(token);
          if (!v) throw ModelError("unknown value in --from: " + token);
          state.push_back(*v);
          token.clear();
        }
        if (*c == '\0') break;
      } else {
        token += *c;
      }
    }
    sim.set_state(std::move(state));
  } else {
    sim.randomize();
  }

  auto dump = [&](const std::vector<Value>& state) {
    std::string s;
    for (Value v : state) s += p.domain().abbrev(v);
    return s;
  };
  std::cout << "     " << dump(sim.state())
            << (sim.in_invariant() ? "   ∈ I" : "   ∉ I") << "\n";
  for (std::size_t n = 1; n <= max_steps; ++n) {
    if (sim.in_invariant() && sim.deadlocked()) {
      std::cout << "silent legitimate state reached after " << n - 1
                << " steps\n";
      return 0;
    }
    const auto step = sim.step();
    if (!step) {
      std::cout << (sim.in_invariant()
                        ? "silent legitimate state reached"
                        : "DEADLOCK outside I")
                << " after " << n - 1 << " steps\n";
      return sim.in_invariant() ? 0 : 1;
    }
    std::cout << std::setw(4) << n << " " << dump(sim.state()) << "   P"
              << step->process << ": "
              << p.domain().name(p.space().self(step->transition.from)) << "→"
              << p.domain().name(p.space().self(step->transition.to))
              << (sim.in_invariant() ? "   ∈ I" : "") << "\n";
  }
  std::cout << "step cap reached\n";
  return 1;
}

/// `simulate --random`: the Monte Carlo estimator, rendered by
/// serve::render_simulate so the daemon's `simulate` verdicts are
/// byte-identical to the CLI's.
int cmd_simulate_random(const Protocol& p, int argc, char** argv,
                        std::size_t jobs) {
  serve::RequestOptions opts;
  opts.jobs = jobs;
  opts.trajectories = static_cast<std::size_t>(
      arg_value(argc, argv, "--trajectories", 1000, 1, 100'000'000));
  opts.sim_seed = static_cast<std::uint64_t>(
      arg_value(argc, argv, "--seed", 1, 0,
                std::numeric_limits<long long>::max()));
  opts.round_cap = static_cast<std::size_t>(
      arg_value(argc, argv, "--cap", 100'000, 1, 1'000'000'000));
  if (const char* s = arg_string(argc, argv, "--scheduler"))
    opts.scheduler = s;
  if (const char* s = arg_string(argc, argv, "--target")) opts.target = s;
  if (const char* s = arg_string(argc, argv, "--start")) opts.start = s;
  if (const char* raw = arg_string(argc, argv, "--coin")) {
    char* end = nullptr;
    const double coin = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !(coin >= 0.0 && coin <= 1.0))
      throw ModelError(cat("invalid --coin value '", raw,
                           "': expected a probability in [0, 1]"));
    opts.coin = coin;
  }
  const auto k =
      static_cast<std::size_t>(arg_value(argc, argv, "-k", 8, 2, 4095));
  return serve::render_simulate(p, k, opts, std::cout);
}

int cmd_simulate(const Protocol& p, std::size_t k, std::size_t trials,
                 std::uint64_t seed, std::size_t jobs) {
  const auto stats = measure_convergence(p, k, trials, seed, 1'000'000,
                                         Scheduler::kUniformRandom, jobs);
  std::cout << p.name() << " at K=" << k << ", " << trials
            << " random starts (seed " << seed << "):\n"
            << "  converged: " << stats.converged << "/" << stats.trials
            << "\n  mean steps: " << stats.mean_steps
            << "\n  max steps:  " << stats.max_steps << "\n";
  return stats.failed == 0 ? 0 : 1;
}

/// Command dispatch, separated from main() so the observability session can
/// fold sink health into the final exit code after the command returns.
int run(const std::string& command, int argc, char** argv) {
  if (command == "lint") {
    // Dispatched before parse_protocol_file so unparsable files still
    // produce a located RS000 diagnostic instead of a raw exception.
    const LintResult lint = lint_ring_file(argv[2]);
    return serve::render_lint(lint, argv[2], has_flag(argc, argv, "--json"),
                              has_flag(argc, argv, "--werror"), std::cout);
  }

  const Protocol p = parse_protocol_file(argv[2]);
  const std::size_t jobs = parse_jobs(argc, argv);
  if (command == "analyze")
    return has_flag(argc, argv, "--array") ? cmd_analyze_array(p)
                                           : cmd_analyze(p);
  if (command == "synthesize" || command == "synth") {
    if (has_flag(argc, argv, "--array")) {
      ArraySynthesisOptions options;
      options.num_threads = jobs;
      const auto res = synthesize_array_convergence(p, options);
      std::cout << res.summary(p) << "\n";
      if (res.success) std::cout << describe(res.solutions[0].protocol);
      return res.success ? 0 : 1;
    }
    return serve::render_synthesize(p, has_flag(argc, argv, "--all"), jobs,
                                    std::cout);
  }
  if (command == "check") {
    const auto k =
        static_cast<std::size_t>(arg_value(argc, argv, "-k", 5, 2, 63));
    return serve::render_check(p, k, jobs, has_flag(argc, argv, "--symmetry"),
                               std::cout);
  }
  if (command == "sweep") {
    const auto rep = verify_up_to_cutoff(
        p, static_cast<std::size_t>(arg_value(argc, argv, "--min", 2, 2, 63)),
        static_cast<std::size_t>(arg_value(argc, argv, "--max", 9, 2, 63)));
    std::cout << rep.to_string(p);
    return rep.all_stabilize ? 0 : 1;
  }
  if (command == "emit") {
    std::cout << to_ring_source(p);
    return 0;
  }
  if (command == "report") {
    ReportOptions opts;
    opts.array_topology = has_flag(argc, argv, "--array");
    opts.max_ring =
        static_cast<std::size_t>(arg_value(argc, argv, "--max", 7, 2, 63));
    opts.num_threads = jobs;
    std::cout << markdown_report(p, opts);
    return 0;
  }
  if (command == "dot") return cmd_dot(p, argc, argv);
  if (command == "trace") {
    return cmd_trace(
        p, static_cast<std::size_t>(arg_value(argc, argv, "-k", 8, 2, 63)),
        static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 1, 0,
                                             std::numeric_limits<long long>::max())),
        arg_string(argc, argv, "--from"),
        static_cast<std::size_t>(
            arg_value(argc, argv, "--max", 200, 1, 1'000'000'000)));
  }
  if (command == "simulate" && has_flag(argc, argv, "--random"))
    return cmd_simulate_random(p, argc, argv, jobs);
  if (command == "simulate")
    return cmd_simulate(
        p, static_cast<std::size_t>(arg_value(argc, argv, "-k", 8, 2, 63)),
        static_cast<std::size_t>(
            arg_value(argc, argv, "--trials", 100, 1, 1'000'000'000)),
        static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 1, 0,
                                             std::numeric_limits<long long>::max())),
        jobs);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    // Installed before the session (and before any engine spawns workers)
    // so SIGINT/SIGTERM flush partial metrics instead of dropping them.
    const serve::ShutdownWatcher watcher(serve::flush_and_exit_on_signal);

    obs::SessionOptions obs_opts;
    obs_opts.stats = has_flag(argc, argv, "--stats");
    obs_opts.progress = has_flag(argc, argv, "--progress");
    if (const char* f = arg_string(argc, argv, "--trace")) obs_opts.trace_path = f;
    if (const char* f = arg_string(argc, argv, "--jsonl")) obs_opts.jsonl_path = f;
    if (const char* f = arg_string(argc, argv, "--metrics")) obs_opts.metrics_path = f;
    obs_opts.command = command;
    for (int i = 2; i < argc; ++i) obs_opts.command += cat(" ", argv[i]);
    obs::Session obs_session(obs_opts);

    int rc = run(command, argc, argv);
    // A run whose requested artifact (--metrics/--trace/--jsonl) failed to
    // write completely must not exit 0.
    if (!obs_session.finish() && rc == 0) rc = 1;
    return rc;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
