// ringstab-batch — verify every .ring protocol in a directory and print a
// summary table. CI usage: `ringstab-batch <dir> --strict` exits nonzero
// unless every protocol's verdict matches its annotation.
//
// Files may annotate expectations in comments:
//   # topology: array            → analyze under the array convention
//   # expect: converges          → must be certified convergent
//   # expect: fails              → synthesis-input / must NOT be certified
// Unannotated files are analyzed and reported, never failed on.
//
// `--check K` additionally cross-validates every ring protocol against the
// exhaustive global checker at size K (`--symmetry` swaps in the
// rotation-quotient engine — same verdicts, ~K× fewer states); `--synth`
// runs the Problem 3.1 synthesizer on every uncertified ring protocol (one
// verdict memo shared across the whole directory, so repeated candidate
// signatures are verified once); `--simulate K` adds a light Monte Carlo
// convergence probe per ring protocol (docs/simulation.md); `--lint` runs
// the RS0xx lint passes on
// every file (honoring `# lint: allow(...)` directives) and, with
// `--strict`, fails on error-level diagnostics.
//
// `--serve <socket>` sends each file to a ringstab-serve daemon instead of
// analyzing locally. The row logic (serve::batch_outcome) is shared, so the
// table is byte-identical either way — warm daemon caches just make it
// faster (docs/serve.md).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/types.hpp"
#include "obs/session.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/shutdown.hpp"
#include "synthesis/portfolio.hpp"

namespace {

using namespace ringstab;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Strict non-negative integer parse for --check / --jobs values.
std::size_t parse_count(const char* flag, const char* raw) {
  char* end = nullptr;
  const long long n = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0)
    throw ModelError(std::string("invalid ") + flag + " value '" + raw +
                     "': expected a non-negative integer");
  return static_cast<std::size_t>(n);
}

/// The value slot after a value-taking option. A flag at the end of argv or
/// one followed by another `--` option is a missing value, not a value.
const char* take_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc)
    throw ModelError(std::string("flag ") + flag + " requires a value");
  if (std::strncmp(argv[i + 1], "--", 2) == 0)
    throw ModelError(std::string("flag ") + flag +
                     " is missing its value (found '" + argv[i + 1] + "')");
  return argv[++i];
}

struct BatchConfig {
  std::string dir;
  std::string serve_socket;  // "" = analyze locally
  bool strict = false;
  serve::RequestOptions options;  // symmetry/lint/synth/check_k/jobs
};

int run(const BatchConfig& cfg) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(cfg.dir))
    if (entry.path().extension() == ".ring") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no .ring files under " << cfg.dir << "\n";
    return 2;
  }

  // Local mode shares one verdict memo across the directory; in serve mode
  // the daemon holds its own process-lifetime memo instead.
  const std::shared_ptr<VerdictMemo> synth_memo =
      cfg.options.synth && cfg.serve_socket.empty()
          ? std::make_shared<VerdictMemo>()
          : nullptr;
  std::optional<serve::Client> client;
  if (!cfg.serve_socket.empty()) client.emplace(cfg.serve_socket);

  const bool wide = cfg.options.check_k >= 2 || cfg.options.synth ||
                    cfg.options.lint || cfg.options.sim_k >= 2;
  const int verdict_w = wide ? 52 : 36;
  std::size_t failures = 0;
  std::cout << std::left << std::setw(28) << "file" << std::setw(22)
            << "protocol" << std::setw(verdict_w) << "verdict"
            << "expectation\n"
            << std::string(60 + verdict_w, '-') << "\n";
  for (const auto& path : files) {
    const std::string file = path.filename().string();
    serve::BatchOutcome out;
    if (client) {
      serve::Request req;
      req.cmd = "analyze";
      req.source = slurp(path);
      req.name = file;
      req.options = cfg.options;
      const serve::Response resp = client->request(req);
      if (!resp.ok)
        throw ModelError("serve: request for " + file +
                         " failed: " + resp.error);
      out = serve::parse_batch_outcome(resp.output);
    } else {
      out = serve::batch_outcome(slurp(path), file, cfg.options, synth_memo);
    }
    std::cout << std::left << std::setw(28) << file << std::setw(22)
              << out.name << std::setw(verdict_w) << out.verdict
              << (out.expectation.empty()
                      ? "-"
                      : out.expectation + (out.ok ? " ✓" : " ✗ MISMATCH"))
              << "\n";
    if (!out.ok) ++failures;
  }
  std::cout << std::string(96, '-') << "\n"
            << files.size() << " protocols, " << failures
            << " expectation mismatches\n";
  return cfg.strict && failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ringstab-batch <directory> [--strict] [--check K] "
                 "[--symmetry] [--synth] [--lint] [--werror] [--simulate K] "
                 "[--jobs N] "
                 "[--serve SOCKET] [--stats] [--trace FILE] [--jsonl FILE] "
                 "[--metrics FILE] [--progress]\n";
    return 2;
  }
  BatchConfig cfg;
  cfg.dir = argv[1];
  obs::SessionOptions obs_opts;
  try {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      cfg.strict = true;
    } else if (std::strcmp(argv[i], "--symmetry") == 0) {
      cfg.options.symmetry = true;
    } else if (std::strcmp(argv[i], "--synth") == 0) {
      cfg.options.synth = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      cfg.options.lint = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      cfg.options.werror = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cfg.options.check_k =
          parse_count("--check", take_value(argc, argv, i, "--check"));
    } else if (std::strcmp(argv[i], "--simulate") == 0) {
      // A light Monte Carlo probe per ring protocol (docs/simulation.md):
      // 200 synchronous-coin trajectories capped at 2000 rounds, reported
      // in the verdict column. Diagnostic only — never fails a file.
      cfg.options.sim_k = parse_count(
          "--simulate", take_value(argc, argv, i, "--simulate"));
      if (cfg.options.sim_k < 2)
        throw ModelError("--simulate requires a ring size of at least 2");
      cfg.options.trajectories = 200;
      cfg.options.round_cap = 2000;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      cfg.options.jobs = ringstab::resolve_threads(
          parse_count("--jobs", take_value(argc, argv, i, "--jobs")));
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      cfg.serve_socket = take_value(argc, argv, i, "--serve");
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      obs_opts.stats = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      obs_opts.progress = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      obs_opts.trace_path = take_value(argc, argv, i, "--trace");
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      obs_opts.jsonl_path = take_value(argc, argv, i, "--jsonl");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      obs_opts.metrics_path = take_value(argc, argv, i, "--metrics");
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }
  obs_opts.command = "batch";
  for (int i = 1; i < argc; ++i) obs_opts.command += std::string(" ") + argv[i];

  // Installed before the session and before any worker threads exist, so an
  // interrupt mid-directory flushes a partial ("interrupted":true) manifest
  // instead of losing the run's metrics.
  const serve::ShutdownWatcher watcher(serve::flush_and_exit_on_signal);
  obs::Session obs_session(obs_opts);

  int rc = run(cfg);
  if (!obs_session.finish() && rc == 0) rc = 1;
  return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
