// ringstab-batch — verify every .ring protocol in a directory and print a
// summary table. CI usage: `ringstab-batch <dir> --strict` exits nonzero
// unless every protocol's verdict matches its annotation.
//
// Files may annotate expectations in comments:
//   # topology: array            → analyze under the array convention
//   # expect: converges          → must be certified convergent
//   # expect: fails              → synthesis-input / must NOT be certified
// Unannotated files are analyzed and reported, never failed on.
//
// `--check K` additionally cross-validates every ring protocol against the
// exhaustive global checker at size K (`--symmetry` swaps in the
// rotation-quotient engine — same verdicts, ~K× fewer states); `--synth`
// runs the Problem 3.1 synthesizer on every uncertified ring protocol (one
// verdict memo shared across the whole directory, so repeated candidate
// signatures are verified once); `--jobs N` runs those checks and the
// synthesis candidate portfolio on N worker threads (0 = all cores);
// `--lint` runs the RS0xx lint passes on every file (honoring `# lint:
// allow(...)` directives) and, with `--strict`, fails on error-level
// diagnostics.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "analysis/lint.hpp"
#include "core/parser.hpp"
#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "local/array.hpp"
#include "local/convergence.hpp"
#include "obs/session.hpp"
#include "parallel/thread_pool.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace {

using namespace ringstab;

struct FileOutcome {
  std::string file;
  std::string name;
  std::string verdict;
  std::string expectation;  // "", "converges", "fails"
  bool ok = true;           // expectation met (or none given)
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool has_marker(const std::string& text, const std::string& marker) {
  return text.find(marker) != std::string::npos;
}

/// Strict non-negative integer parse for --check / --jobs values.
std::size_t parse_count(const char* flag, const char* raw) {
  char* end = nullptr;
  const long long n = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || n < 0)
    throw ModelError(std::string("invalid ") + flag + " value '" + raw +
                     "': expected a non-negative integer");
  return static_cast<std::size_t>(n);
}

/// The value slot after a value-taking option. A flag at the end of argv or
/// one followed by another `--` option is a missing value, not a value.
const char* take_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc)
    throw ModelError(std::string("flag ") + flag + " requires a value");
  if (std::strncmp(argv[i + 1], "--", 2) == 0)
    throw ModelError(std::string("flag ") + flag +
                     " is missing its value (found '" + argv[i + 1] + "')");
  return argv[++i];
}

FileOutcome process(const std::filesystem::path& path, std::size_t check_k,
                    std::size_t jobs, bool symmetry, bool lint,
                    const std::shared_ptr<VerdictMemo>& synth_memo) {
  FileOutcome out;
  out.file = path.filename().string();
  const std::string text = slurp(path);
  const bool array = has_marker(text, "topology: array");
  if (has_marker(text, "expect: converges")) out.expectation = "converges";
  if (has_marker(text, "expect: fails")) out.expectation = "fails";

  std::string lint_note;
  try {
    const ProtocolSource src = parse_protocol_source(text, out.file);
    if (lint) {
      const LintResult lr = lint_source(src);
      lint_note = lr.diagnostics.empty()
                      ? " [lint: clean]"
                      : " [lint: " + std::to_string(lr.count(Severity::kError)) +
                            " err, " +
                            std::to_string(lr.count(Severity::kWarning)) +
                            " warn]";
      if (lr.has_error()) out.ok = false;
    }
    const Protocol p = build_protocol(src);
    out.name = p.name();
    bool certified = false;
    if (array) {
      const auto res = analyze_array_deadlocks(p);
      certified = res.deadlock_free_all_n && array_terminates_always(p);
      out.verdict = certified ? "converges (array, every length)"
                              : "deadlocks (array)";
    } else {
      const auto res = check_convergence(p);
      certified = res.verdict == ConvergenceAnalysis::Verdict::kConverges;
      switch (res.verdict) {
        case ConvergenceAnalysis::Verdict::kConverges:
          out.verdict = "converges (every ring size)";
          break;
        case ConvergenceAnalysis::Verdict::kDeadlock:
          out.verdict = "deadlocks";
          break;
        case ConvergenceAnalysis::Verdict::kTrailFound:
          out.verdict = "trail found (uncertifiable)";
          break;
        case ConvergenceAnalysis::Verdict::kInconclusive:
          out.verdict = "inconclusive";
          break;
      }
      if (check_k >= 2) {
        const RingInstance ring(p, check_k);
        const bool global_ok =
            symmetry ? check_symmetric(ring, 8, jobs).strongly_converges()
                     : strongly_stabilizing(ring, jobs);
        out.verdict += global_ok ? " [global@K ok]" : " [global@K FAILS]";
        // A local certificate must never contradict the exhaustive check.
        if (certified && !global_ok) out.ok = false;
      }
      if (synth_memo != nullptr && !certified) {
        // Diagnostic only (never affects ok): can Problem 3.1 repair this
        // input? The directory-wide memo makes repeated signatures cheap.
        SynthesisOptions opts;
        opts.num_threads = jobs;
        opts.memo = synth_memo;
        opts.keep_rejected_reports = false;
        opts.require_closed_invariant = false;
        const auto synth = synthesize_convergence(p, opts);
        out.verdict += synth.success
                           ? " [synth: " +
                                 std::to_string(synth.solutions.size()) +
                                 " solutions]"
                           : " [synth: none]";
      }
    }
    if (out.expectation == "converges") out.ok = out.ok && certified;
    if (out.expectation == "fails") out.ok = out.ok && !certified;
  } catch (const Error& e) {
    out.verdict = std::string("ERROR: ") + e.what();
    out.ok = out.expectation.empty() && lint_note.empty();
  }
  out.verdict += lint_note;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ringstab-batch <directory> [--strict] [--check K] "
                 "[--symmetry] [--synth] [--lint] [--jobs N] [--stats] "
                 "[--trace FILE] [--jsonl FILE] [--metrics FILE] "
                 "[--progress]\n";
    return 2;
  }
  bool strict = false;
  bool symmetry = false;  // --check via the rotation-quotient engine
  bool synth = false;     // try Problem 3.1 on uncertified ring protocols
  bool lint = false;      // run the RS0xx lint passes on every file
  std::size_t check_k = 0;  // 0 = local analysis only
  std::size_t jobs = 1;
  obs::SessionOptions obs_opts;
  try {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--symmetry") == 0) {
      symmetry = true;
    } else if (std::strcmp(argv[i], "--synth") == 0) {
      synth = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_k = parse_count("--check", take_value(argc, argv, i, "--check"));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = ringstab::resolve_threads(
          parse_count("--jobs", take_value(argc, argv, i, "--jobs")));
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      obs_opts.stats = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      obs_opts.progress = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      obs_opts.trace_path = take_value(argc, argv, i, "--trace");
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      obs_opts.jsonl_path = take_value(argc, argv, i, "--jsonl");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      obs_opts.metrics_path = take_value(argc, argv, i, "--metrics");
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }
  obs_opts.command = "batch";
  for (int i = 1; i < argc; ++i) obs_opts.command += std::string(" ") + argv[i];
  const obs::Session obs_session(obs_opts);

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(argv[1]))
    if (entry.path().extension() == ".ring") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no .ring files under " << argv[1] << "\n";
    return 2;
  }

  const std::shared_ptr<VerdictMemo> synth_memo =
      synth ? std::make_shared<VerdictMemo>() : nullptr;
  const int verdict_w = check_k >= 2 || synth || lint ? 52 : 36;
  std::size_t failures = 0;
  std::cout << std::left << std::setw(28) << "file" << std::setw(22)
            << "protocol" << std::setw(verdict_w) << "verdict"
            << "expectation\n"
            << std::string(60 + verdict_w, '-') << "\n";
  for (const auto& path : files) {
    const FileOutcome out =
        process(path, check_k, jobs, symmetry, lint, synth_memo);
    std::cout << std::left << std::setw(28) << out.file << std::setw(22)
              << out.name << std::setw(verdict_w) << out.verdict
              << (out.expectation.empty()
                      ? "-"
                      : out.expectation + (out.ok ? " ✓" : " ✗ MISMATCH"))
              << "\n";
    if (!out.ok) ++failures;
  }
  std::cout << std::string(96, '-') << "\n"
            << files.size() << " protocols, " << failures
            << " expectation mismatches\n";
  return strict && failures > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
