// Walk through every protocol the paper discusses, print the local verdicts
// next to exhaustive global checks. This is the "do we match the paper?"
// smoke harness.
#include <iostream>

#include "core/printer.hpp"
#include "global/checker.hpp"
#include "local/convergence.hpp"
#include "local/deadlock.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/matching.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"

using namespace ringstab;

namespace {

void global_row(const Protocol& p, std::size_t k) {
  const RingInstance ring(p, k);
  const GlobalChecker checker(ring);
  std::vector<GlobalStateId> dead;
  const std::size_t ndead = checker.count_deadlocks_outside_invariant(&dead, 2);
  const auto live = checker.find_livelock();
  std::cout << "    K=" << k << ": deadlocks_outside_I=" << ndead;
  if (!dead.empty()) std::cout << " (e.g. " << ring.brief(dead[0]) << ")";
  std::cout << " livelock=" << (live ? "YES" : "no");
  if (live) {
    std::cout << " cycle_len=" << live->size() << " [";
    for (std::size_t i = 0; i < std::min<std::size_t>(live->size(), 4); ++i)
      std::cout << ring.brief((*live)[i]) << " ";
    std::cout << "...]";
  }
  std::cout << "\n";
}

void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace

int main() {
  // --- Example 4.2: generalizable maximal matching ---
  header("matching_generalizable (Ex 4.2)");
  {
    const Protocol p = protocols::matching_generalizable();
    const auto dl = analyze_deadlocks(p);
    std::cout << "  local deadlocks=" << dl.local_deadlocks.size()
              << " illegit=" << dl.illegitimate_deadlocks.size()
              << " deadlock_free_all_K=" << std::boolalpha
              << dl.deadlock_free_all_k << "\n";
    for (std::size_t k = 4; k <= 8; ++k) global_row(p, k);
  }

  // --- Example 4.3: non-generalizable matching ---
  header("matching_nongeneralizable (Ex 4.3)");
  {
    const Protocol p = protocols::matching_nongeneralizable();
    const auto dl = analyze_deadlocks(p, 24);
    std::cout << "  deadlock_free_all_K=" << std::boolalpha
              << dl.deadlock_free_all_k << " bad_cycles=";
    for (const auto& c : dl.bad_cycles) {
      std::cout << "[";
      for (auto v : c) std::cout << p.space().brief(v) << " ";
      std::cout << "] ";
    }
    std::cout << "\n  deadlocked sizes up to 24:";
    for (auto k : dl.deadlocked_sizes()) std::cout << " " << k;
    std::cout << "\n";
    for (std::size_t k = 4; k <= 10; ++k) global_row(p, k);
  }

  // --- Example 5.2 / Fig 10: agreement with both transitions ---
  header("agreement_both (Ex 5.2)");
  {
    const Protocol p = protocols::agreement_both();
    const auto live = check_livelock_freedom(p);
    std::cout << "  livelock verdict: "
              << (live.verdict == LivelockAnalysis::Verdict::kTrailFound
                      ? "trail found"
                      : "free/inconclusive");
    if (live.trail())
      std::cout << "\n  trail: " << live.trail()->to_string(p);
    std::cout << "\n";
    for (std::size_t k = 3; k <= 6; ++k) global_row(p, k);
  }

  // --- Fig 8: Gouda–Acharya fragment, K=5 livelock ---
  header("matching_gouda_acharya_fragment (Fig 8)");
  {
    const Protocol p = protocols::matching_gouda_acharya_fragment();
    const auto live = check_livelock_freedom(p);
    std::cout << "  livelock verdict: "
              << (live.verdict == LivelockAnalysis::Verdict::kTrailFound
                      ? "trail found"
                      : "free/inconclusive")
              << " covers_all=" << std::boolalpha << live.covers_all_livelocks
              << "\n";
    if (live.trail())
      std::cout << "  trail: " << live.trail()->to_string(p) << "\n";
    for (std::size_t k = 4; k <= 6; ++k) global_row(p, k);
  }

  // --- Section 6.1: 3-coloring synthesis must FAIL ---
  header("3-coloring synthesis (Sec 6.1, Fig 9)");
  {
    const Protocol p = protocols::coloring_empty(3);
    const auto res = synthesize_convergence(p);
    std::cout << res.summary(p);
    const Protocol rot = protocols::three_coloring_rotation();
    std::cout << "  rotation candidate globally:\n";
    for (std::size_t k = 3; k <= 6; ++k) global_row(rot, k);
  }

  // --- Section 6.2: 2-coloring must FAIL ---
  header("2-coloring synthesis (Fig 11)");
  {
    const Protocol p = protocols::coloring_empty(2);
    const auto res = synthesize_convergence(p);
    std::cout << res.summary(p);
    for (const auto& r : res.reports)
      if (r.trail) std::cout << "  trail: " << r.trail->to_string(p) << "\n";
  }

  // --- Section 6.2: sum-not-two must SUCCEED, rotations rejected ---
  header("sum-not-two synthesis (Fig 12)");
  {
    const Protocol p = protocols::sum_not_two_empty();
    const auto res = synthesize_convergence(p);
    std::cout << res.summary(p);
    std::cout << "  paper's solution, globally:\n";
    const Protocol sol = protocols::sum_not_two_solution();
    for (std::size_t k = 3; k <= 7; ++k) global_row(sol, k);
    std::cout << "  rejected rotation, globally (trail said K=3 suspect):\n";
    const Protocol rot = protocols::sum_not_two_rotation(true);
    for (std::size_t k = 3; k <= 8; ++k) global_row(rot, k);
  }
  return 0;
}
