// Synthesis gallery: run Problem 3.1 on every synthesis input in the zoo,
// print each outcome with its solutions grouped up to value symmetry, and
// cross-verify the accepted protocols exhaustively. The one-stop tour of
// what the local method can and cannot build.
#include <iostream>

#include "core/printer.hpp"
#include "global/checker.hpp"
#include "protocols/agreement.hpp"
#include "protocols/coloring.hpp"
#include "protocols/misc.hpp"
#include "protocols/sum_not_two.hpp"
#include "synthesis/local_synthesizer.hpp"
#include "transform/transform.hpp"

int main() {
  using namespace ringstab;

  const std::vector<Protocol> inputs = {
      protocols::agreement_empty(),
      protocols::agreement_empty(3),
      protocols::coloring_empty(2),
      protocols::coloring_empty(3),
      protocols::sum_not_two_empty(),
      protocols::sum_not_q_empty(4, 3),
      protocols::no_adjacent_ones_empty(),
      protocols::monotone_empty(3),
      protocols::alternator_empty(),
  };

  std::size_t successes = 0;
  for (const Protocol& input : inputs) {
    const auto res = synthesize_convergence(input);
    std::cout << "=== " << input.name() << " ===\n" << res.summary(input);
    if (!res.success) {
      std::cout << "\n";
      continue;
    }
    ++successes;

    std::vector<Protocol> sols;
    for (const auto& s : res.solutions) sols.push_back(s.protocol);
    const auto orbits = value_symmetry_orbits(sols);
    std::cout << "  " << sols.size() << " solutions in " << orbits.size()
              << " value-symmetry class(es); representative of each:\n";
    for (const auto& orbit : orbits) {
      const Protocol& rep = sols[orbit.front()];
      for (const auto& a : to_guarded_commands(rep))
        std::cout << "    " << a.text << "\n";
      // Exhaustive verification of the representative.
      bool ok = true;
      for (std::size_t k = 2; k <= 7 && ok; ++k)
        ok = strongly_stabilizing(RingInstance(rep, k));
      std::cout << "    → verified K=2..7: " << (ok ? "ok" : "FAILED")
                << "  (orbit size " << orbit.size() << ")\n";
      if (!ok) return 1;
    }
    std::cout << "\n";
  }
  std::cout << successes << "/" << inputs.size()
            << " synthesis inputs admit generalizable solutions\n";
  return 0;
}
