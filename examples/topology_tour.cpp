// A tour of one problem — 2-coloring — across three topologies, showing why
// topology is the whole story for this invariant:
//
//   RING:  impossible (the paper's Figure 11; the trail betrays the parity
//          obstruction, and every candidate livelocks on odd rings)
//   ARRAY: trivial (the paper's future-work topology; synthesized here)
//   TREE:  inherited from arrays (a bad tree would contain a bad path)
#include <iostream>

#include "core/printer.hpp"
#include "global/array_instance.hpp"
#include "global/checker.hpp"
#include "global/tree_instance.hpp"
#include "local/array.hpp"
#include "protocols/arrays.hpp"
#include "protocols/coloring.hpp"
#include "synthesis/array_synthesizer.hpp"
#include "synthesis/local_synthesizer.hpp"

int main() {
  using namespace ringstab;

  std::cout << "===== RING: 2-coloring is impossible =====\n";
  const Protocol ring_input = protocols::coloring_empty(2);
  const auto ring = synthesize_convergence(ring_input);
  std::cout << ring.summary(ring_input);
  for (const auto& r : ring.reports)
    if (r.trail)
      std::cout << "  rejecting trail: " << r.trail->to_string(ring_input)
                << "\n";
  const Protocol cand = protocols::coloring_with_choices(2, {1, 0});
  std::cout << "  the lone candidate on odd rings:";
  for (std::size_t k : {3u, 5u, 7u})
    std::cout << " K=" << k << ":"
              << (GlobalChecker(RingInstance(cand, k)).find_livelock()
                      ? "livelock"
                      : "ok");
  std::cout << "\n\n";

  std::cout << "===== ARRAY: the parity obstruction disappears =====\n";
  const Protocol array_input =
      protocols::array_two_coloring().with_delta("array_2coloring_input", {});
  const auto arr = synthesize_array_convergence(array_input);
  std::cout << arr.summary(array_input);
  const Protocol& solution = arr.solutions.front().protocol;
  std::cout << describe(solution);
  std::cout << "  exhaustive confirmation:";
  for (std::size_t n = 2; n <= 9; ++n) {
    const auto check = check_array(ArrayInstance(solution, n));
    std::cout << " n=" << n << ":"
              << (check.num_deadlocks_outside_i == 0 && !check.has_livelock
                      ? "ok"
                      : "FAIL");
  }
  std::cout << "\n\n";

  std::cout << "===== TREE: inherited from the array certificate =====\n";
  std::cout << "  random 8-node in-trees running the array solution:\n";
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto shape = random_tree_shape(8, seed);
    std::cout << "    shape [parents:";
    for (auto p : shape) std::cout << " " << p;
    const auto check = check_tree(TreeInstance(solution, shape));
    std::cout << "]: deadlocks=" << check.num_deadlocks_outside_i
              << " livelock=" << (check.has_livelock ? "yes" : "no")
              << " terminates=" << (check.terminates ? "yes" : "no") << "\n";
  }
  std::cout << "\nsame invariant, three topologies: the ring's cycle is the "
               "only obstruction.\n";
  return 0;
}
