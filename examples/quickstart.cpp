// Quickstart: synthesize a self-stabilizing binary agreement protocol for
// rings of EVERY size, entirely in the local state space of one process —
// then cross-check the result with the global model checker and simulator.
//
// This walks the paper's Section 6.2 agreement example end to end.
#include <iostream>

#include "core/printer.hpp"
#include "global/checker.hpp"
#include "protocols/agreement.hpp"
#include "sim/simulator.hpp"
#include "synthesis/local_synthesizer.hpp"

int main() {
  using namespace ringstab;

  // 1. The input: an empty protocol whose invariant says "agree with your
  //    predecessor" — I(K) = ∧_r (x_r = x_{r-1}), i.e. all values equal.
  const Protocol input = protocols::agreement_empty();
  std::cout << describe(input) << "\n";

  // 2. Synthesize convergence (Problem 3.1) with local reasoning only.
  const SynthesisResult result = synthesize_convergence(input);
  std::cout << result.summary(input) << "\n";
  if (!result.success) return 1;

  // 3. Inspect the first solution as guarded commands.
  const Protocol& pss = result.solutions.front().protocol;
  std::cout << describe(pss) << "\n";

  // 4. The local verdict claims convergence for EVERY ring size. Sample a
  //    few sizes with the exhaustive global checker.
  for (std::size_t k : {3, 5, 8}) {
    const RingInstance ring(pss, k);
    const GlobalCheckResult check = GlobalChecker(ring).check_all();
    std::cout << "K=" << k << ": " << ring.num_states() << " states, "
              << (check.strongly_converges() ? "strongly converges"
                                             : "DOES NOT converge")
              << ", worst-case recovery " << check.max_recovery_steps
              << " steps\n";
  }

  // 5. And run it: corrupt a ring of 12 processes, watch it self-stabilize.
  Simulator sim(pss, 12, /*seed=*/7);
  sim.randomize();
  const auto run = sim.run_to_convergence();
  std::cout << "\nsimulated K=12 from a random state: converged="
            << std::boolalpha << run.converged << " after " << run.steps
            << " steps\n";
  return 0;
}
