#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Checks every inline markdown link ([text](target)) in the given files:

* relative file targets must exist (resolved from the linking file's
  directory; a `#fragment` suffix is stripped, a bare `#fragment` is
  accepted — same-file anchors are not resolvable without a renderer);
* absolute-path targets (`/...`) are rejected — they break on GitHub
  and in local checkouts alike;
* http(s)/mailto targets are *not* fetched (CI must stay offline);
  they are only required to be non-empty.

Exit code 0 when every link resolves, 1 otherwise (each failure is
printed as `file:line: message`). No dependencies beyond the standard
library, by design.
"""

import re
import sys
from pathlib import Path

# Inline links only. Matches [text](target) while skipping images' extra
# `!` (images are links too — check them the same way) and ``code spans``
# via the scrub below.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def check_file(path: Path) -> list[str]:
    failures = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # same-file anchor
            if target.startswith("/"):
                failures.append(
                    f"{path}:{lineno}: absolute link target '{target}' "
                    "(use a relative path)")
                continue
            file_part = target.split("#", 1)[0]
            if not (path.parent / file_part).exists():
                failures.append(
                    f"{path}:{lineno}: broken link target '{target}' "
                    f"(no such file: {path.parent / file_part})")
    return failures


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_links.py <file.md | dir> ...", file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_links.py: no such file: {p}", file=sys.stderr)
            return 2
    failures = []
    for f in files:
        failures.extend(check_file(f))
    for failure in failures:
        print(failure)
    print(f"check_links.py: {len(files)} files, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
