#!/usr/bin/env bash
# Tier-1 gate + sanitized builds.
#
#   scripts/check.sh            full: build, ctest, TSan test_parallel+test_obs
#                               +test_parallel_scc+test_synthesis_parallel
#                               +test_serve, ASan test_symmetry + CLI
#                               parsing/synthesis/lint tests, UBSan
#                               core/local/analysis test binaries
#   scripts/check.sh --fast     tier-1 only (skip the sanitizer builds)
#   scripts/check.sh --tsan     TSan stage only (the CI tsan job's recipe)
#
# Run from anywhere; builds land in <repo>/build, build-tsan, build-asan,
# build-ubsan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-full}"

if [[ "$mode" != "--tsan" ]]; then
  echo "== tier-1: configure + build =="
  cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build" -j "$jobs"

  echo "== tier-1: ctest =="
  ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

  if [[ "$mode" == "--fast" ]]; then
    echo "== OK (fast mode: sanitizer build skipped) =="
    exit 0
  fi
fi

echo "== TSan: build test_parallel + test_parallel_scc + test_obs + test_synthesis_parallel + test_serve =="
cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRINGSTAB_SANITIZE=thread
cmake --build "$repo/build-tsan" -j "$jobs" \
      --target test_parallel test_parallel_scc test_obs test_synthesis_parallel \
               test_serve

echo "== TSan: run =="
"$repo/build-tsan/tests/test_parallel"
# FB/FWBW decomposition, fused checker passes, and the quotient SCC port:
# the randomized cross-validation plus the zoo sweeps drive every atomic
# (frontier dedup, transpose fill cursors, rank-space mask writes).
"$repo/build-tsan/tests/test_parallel_scc"
"$repo/build-tsan/tests/test_obs"
# The zoo-wide bit-identity sweeps re-run full synthesis dozens of times and
# take minutes under TSan; the remaining tests drive every concurrent code
# path (portfolio lanes, memo shards, quota claims, nested regions) and are
# what TSan is here to watch.
"$repo/build-tsan/tests/test_synthesis_parallel" \
    --gtest_filter='-PortfolioSynthesis.LocalBitIdenticalAcrossThreadCounts:PortfolioSynthesis.MemoizationDoesNotChangeResults:PortfolioSynthesis.SharedSignaturesHitTheMemo'
# The serve daemon's concurrency: accept thread vs connection threads vs
# shutdown, the sharded verdict cache, and the sigwait watcher. The zoo
# bit-identity sweep re-runs every engine at every K and takes minutes
# under TSan; the remaining tests drive all the serve-side threading.
"$repo/build-tsan/tests/test_serve" --gtest_filter='-ServeZooHeavy.*'

if [[ "$mode" == "--tsan" ]]; then
  echo "== OK (tsan mode: TSan stage only) =="
  exit 0
fi

echo "== ASan: build test_symmetry + CLI tools =="
cmake -B "$repo/build-asan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRINGSTAB_SANITIZE=address
cmake --build "$repo/build-asan" -j "$jobs" \
      --target test_symmetry ringstab_cli ringstab_batch

echo "== ASan: run =="
"$repo/build-asan/tests/test_symmetry"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
      -R 'cli_(bad_k|negative_k|missing_flag_value|flag_value_flag|batch_missing_value|check_symmetry|batch_symmetry|bad_jobs|synth_alias|synthesize_jobs|synthesize_bad_jobs|batch_synth|lint|lint_json|lint_error|batch_lint)'

echo "== UBSan: build core/local/analysis test binaries =="
cmake -B "$repo/build-ubsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRINGSTAB_SANITIZE=undefined
cmake --build "$repo/build-ubsan" -j "$jobs" \
      --target test_domain test_local_state test_protocol test_parser \
               test_deadlock test_livelock test_lint

echo "== UBSan: run =="
# Recovery is disabled in the build, so any UB aborts the stage.
for t in test_domain test_local_state test_protocol test_parser \
         test_deadlock test_livelock test_lint; do
  "$repo/build-ubsan/tests/$t"
done

echo "== OK =="
