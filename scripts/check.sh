#!/usr/bin/env bash
# Tier-1 gate + thread-sanitized concurrency tests.
#
#   scripts/check.sh            full: build, ctest, TSan test_parallel+test_obs
#   scripts/check.sh --fast     tier-1 only (skip the sanitizer build)
#
# Run from anywhere; builds land in <repo>/build and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: configure + build =="
cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$fast" == 1 ]]; then
  echo "== OK (fast mode: sanitizer build skipped) =="
  exit 0
fi

echo "== TSan: build test_parallel + test_obs =="
cmake -B "$repo/build-tsan" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRINGSTAB_SANITIZE=thread
cmake --build "$repo/build-tsan" -j "$jobs" --target test_parallel test_obs

echo "== TSan: run =="
"$repo/build-tsan/tests/test_parallel"
"$repo/build-tsan/tests/test_obs"

echo "== OK =="
