#!/usr/bin/env bash
# clang-tidy over the project sources, driven by the compile_commands.json
# the CMake configure exports (CMAKE_EXPORT_COMPILE_COMMANDS is on by
# default; see the root CMakeLists.txt).
#
#   scripts/tidy.sh               all of src/
#   scripts/tidy.sh src/analysis  one subtree (any number of paths/files)
#
# Checks and scope live in .clang-tidy. Exits 0 with a notice when
# clang-tidy is not installed, so CI images without LLVM tooling skip the
# stage instead of failing it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not installed; skipping (checks listed in .clang-tidy)"
  exit 0
fi

build="$repo/build"
if [[ ! -f "$build/compile_commands.json" ]]; then
  echo "== tidy: configure (compile_commands.json) =="
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
fi

targets=("$@")
if [[ ${#targets[@]} -eq 0 ]]; then
  targets=("$repo/src")
fi

files=()
for t in "${targets[@]}"; do
  if [[ -d "$t" ]]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$t" -name '*.cpp' | sort)
  else
    files+=("$t")
  fi
done

echo "== tidy: ${#files[@]} file(s), warnings are errors =="
status=0
printf '%s\n' "${files[@]}" | xargs -P "$jobs" -n 8 \
  clang-tidy -p "$build" --quiet --warnings-as-errors='*' || status=$?
if [[ "$status" -ne 0 ]]; then
  echo "== tidy: FAILED =="
  exit "$status"
fi
echo "== tidy: OK =="
