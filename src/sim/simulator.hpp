// Random-scheduler ring simulation with fault injection.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/protocol.hpp"
#include "local/precedence.hpp"

namespace ringstab {

/// Interleaving scheduler policies.
enum class Scheduler {
  kUniformRandom,  // uniform over enabled (process, transition) pairs
  kRoundRobin,     // cyclic scan; the next enabled process fires
  kLeftmostFirst,  // the lowest-index enabled process fires (deterministic
                   // daemon; still random among that process's transitions)
};

/// Executes a concrete ring under an interleaving scheduler (one enabled
/// process fires one of its enabled transitions per step). Deterministic
/// per (seed, scheduler).
class Simulator {
 public:
  Simulator(Protocol protocol, std::size_t ring_size, std::uint64_t seed = 1,
            Scheduler scheduler = Scheduler::kUniformRandom);

  const Protocol& protocol() const { return protocol_; }
  const std::vector<Value>& state() const { return state_; }
  void set_state(std::vector<Value> state);

  /// Uniformly random global state.
  void randomize();

  /// Restart the RNG stream and scheduler cursor, as if freshly constructed
  /// with `seed`. Lets batch drivers reuse one Simulator across trials with
  /// per-trial seeds.
  void reseed(std::uint64_t seed);

  /// Transient faults: corrupt `count` distinct variables to random values.
  void inject_faults(std::size_t count);

  bool in_invariant() const;
  bool deadlocked() const;

  /// Fire one random enabled transition; nullopt when deadlocked.
  std::optional<ScheduledStep> step();

  /// Run until the invariant holds or `max_steps` elapse.
  struct RunResult {
    bool converged = false;
    std::size_t steps = 0;
    bool deadlocked_outside_i = false;
  };
  RunResult run_to_convergence(std::size_t max_steps = 1'000'000);

 private:
  Protocol protocol_;
  std::vector<Value> state_;
  std::mt19937_64 rng_;
  Scheduler scheduler_;
  std::size_t rr_cursor_ = 0;  // round-robin scan position
};

/// Aggregate recovery statistics over repeated randomized trials.
struct ConvergenceStats {
  std::size_t trials = 0;
  std::size_t converged = 0;
  std::size_t failed = 0;  // hit the step cap or deadlocked outside I
  double mean_steps = 0.0;
  std::size_t max_steps = 0;
  std::size_t p50_steps = 0;  // median over converged runs
  std::size_t p95_steps = 0;
};

/// `num_threads <= 1` reproduces the seed engine exactly: one Simulator,
/// one RNG stream across all trials. `num_threads > 1` distributes trials
/// over the shared pool with an independent, splitmix-derived RNG stream
/// per trial; those stats are deterministic for a given (seed, trials) at
/// ANY parallel thread count, but are a different (equally valid) sample
/// than the serial stream.
ConvergenceStats measure_convergence(const Protocol& p, std::size_t ring_size,
                                     std::size_t trials,
                                     std::uint64_t seed = 1,
                                     std::size_t step_cap = 1'000'000,
                                     Scheduler scheduler =
                                         Scheduler::kUniformRandom,
                                     std::size_t num_threads = 1);

}  // namespace ringstab
