// Random-scheduler ring simulation with fault injection, plus the Monte
// Carlo convergence-time estimator for randomized protocols
// (docs/simulation.md).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/protocol.hpp"
#include "local/precedence.hpp"

namespace ringstab {

/// Scheduler policies. The first three are *interleaving* daemons (one
/// process fires per step) executable by the step-at-a-time Simulator; the
/// last two are *probabilistic* policies executable only by the batched
/// trajectory estimator (`estimate_convergence_rounds`), which owns the
/// counter-based PRNG streams that make them reproducible in parallel.
enum class Scheduler {
  kUniformRandom,    // uniform over enabled (process, transition) pairs
  kRoundRobin,       // cyclic scan; the next enabled process fires
  kLeftmostFirst,    // the lowest-index enabled process fires (deterministic
                     // daemon; still random among that process's transitions)
  kSynchronousCoin,  // synchronous rounds: every enabled process whose local
                     // state violates LC_r fires with probability `coin`,
                     // enabled processes inside LC fire with probability 1;
                     // all writes read the pre-round state. With Herman's
                     // LC_r (x[-1] ≠ x[0]) and coin = 1/2 this is exactly
                     // Herman's randomized token ring.
  kWeightedRandom,   // interleaving: one enabled (process, transition) pair
                     // per step, drawn with probability ∝ its transition
                     // weight (uniform when no weights are given)
};

/// When a trajectory counts as converged.
enum class ConvergenceTarget {
  kInvariant,   // every process satisfies LC_r (the invariant I(K))
  kOneIllegit,  // exactly one process violates LC_r — for Herman, "one
                // token"; the invariant itself is unreachable on odd rings
                // (token-count parity), so this is the stabilization target
};

/// Initial-state distribution for sampled trajectories.
enum class StartKind {
  kRandom,       // uniform over all |D|^K global states
  kAllZero,      // every variable 0 (for Herman: every process holds a token)
  kThreeTokens,  // binary state with exactly three equally spaced LC_r
                 // violations — the conjectured extremal Herman start; odd
                 // K and |D| ≥ 2 required
};

/// Executes a concrete ring under an interleaving scheduler (one enabled
/// process fires one of its enabled transitions per step). Deterministic
/// per (seed, scheduler). Rejects the probabilistic schedulers — those
/// have no single-step semantics here; use estimate_convergence_rounds.
class Simulator {
 public:
  Simulator(Protocol protocol, std::size_t ring_size, std::uint64_t seed = 1,
            Scheduler scheduler = Scheduler::kUniformRandom);

  const Protocol& protocol() const { return protocol_; }
  const std::vector<Value>& state() const { return state_; }
  void set_state(std::vector<Value> state);

  /// Uniformly random global state.
  void randomize();

  /// Restart the RNG stream and scheduler cursor, as if freshly constructed
  /// with `seed`. Lets batch drivers reuse one Simulator across trials with
  /// per-trial seeds.
  void reseed(std::uint64_t seed);

  /// Transient faults: corrupt `count` distinct variables to random values.
  void inject_faults(std::size_t count);

  bool in_invariant() const;
  bool deadlocked() const;

  /// Fire one random enabled transition; nullopt when deadlocked.
  std::optional<ScheduledStep> step();

  /// Run until the invariant holds or `max_steps` elapse.
  struct RunResult {
    bool converged = false;
    std::size_t steps = 0;
    bool deadlocked_outside_i = false;
  };
  RunResult run_to_convergence(std::size_t max_steps = 1'000'000);

 private:
  Protocol protocol_;
  std::vector<Value> state_;
  std::mt19937_64 rng_;
  Scheduler scheduler_;
  std::size_t rr_cursor_ = 0;  // round-robin scan position
};

/// Aggregate recovery statistics over repeated randomized trials.
struct ConvergenceStats {
  std::size_t trials = 0;
  std::size_t converged = 0;
  std::size_t failed = 0;  // hit the step cap or deadlocked outside I
  double mean_steps = 0.0;
  std::size_t max_steps = 0;
  std::size_t p50_steps = 0;  // median over converged runs
  std::size_t p95_steps = 0;
};

/// `num_threads <= 1` reproduces the seed engine exactly: one Simulator,
/// one RNG stream across all trials. `num_threads > 1` distributes trials
/// over the shared pool with an independent, splitmix-derived RNG stream
/// per trial; those stats are deterministic for a given (seed, trials) at
/// ANY parallel thread count, but are a different (equally valid) sample
/// than the serial stream. Interleaving schedulers only.
ConvergenceStats measure_convergence(const Protocol& p, std::size_t ring_size,
                                     std::size_t trials,
                                     std::uint64_t seed = 1,
                                     std::size_t step_cap = 1'000'000,
                                     Scheduler scheduler =
                                         Scheduler::kUniformRandom,
                                     std::size_t num_threads = 1);

// ── Monte Carlo expected-convergence-time estimation ──

/// Options for estimate_convergence_rounds. Everything except
/// `num_threads` affects the estimate; `num_threads` never does — the
/// per-trajectory counter-based PRNG streams (src/sim/prng.hpp) make the
/// result bit-identical at every thread count, which is what lets
/// ringstab-serve cache simulate verdicts without keying on `jobs`.
struct EstimateOptions {
  Scheduler scheduler = Scheduler::kSynchronousCoin;
  ConvergenceTarget target = ConvergenceTarget::kInvariant;
  StartKind start = StartKind::kRandom;
  double coin = 0.5;         // kSynchronousCoin: fire probability outside LC
  std::uint64_t seed = 1;
  std::size_t trajectories = 1000;
  std::size_t round_cap = 100'000;  // per-trajectory rounds (or steps, for
                                    // the interleaving kWeightedRandom)
  std::size_t num_threads = 1;
  /// kWeightedRandom: weight per transition, indexed like
  /// Protocol::index_of. Empty = uniform. Must be non-negative with a
  /// positive sum when given.
  std::vector<double> weights;
};

/// The estimate. Mean/stddev/CI/percentiles are over *converged*
/// trajectories; `censored` counts trajectories that hit the round cap or
/// froze (no process enabled while outside the target — the state can
/// never change again). Work totals cover every executed round, censored
/// or not; one "process step" is one process-slot evaluation, K per
/// synchronous round.
struct ConvergenceEstimate {
  std::size_t trajectories = 0;
  std::size_t converged = 0;
  std::size_t censored = 0;
  double mean_rounds = 0.0;
  double stddev_rounds = 0.0;    // sample stddev (n−1)
  double ci95_half_width = 0.0;  // 1.96 · stddev / √converged
  std::uint64_t min_rounds = 0;
  std::uint64_t max_rounds = 0;
  std::uint64_t p50_rounds = 0;
  std::uint64_t p95_rounds = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_process_steps = 0;

  bool operator==(const ConvergenceEstimate&) const = default;
};

/// Sample `opts.trajectories` independent trajectories of `p` on a ring of
/// `ring_size` under a probabilistic scheduler and estimate the expected
/// number of rounds to reach `opts.target`, with a 95% confidence
/// interval. Trajectory t draws all of its randomness (initial state and
/// coins) from counter-based stream mix(seed, t), and per-trajectory
/// results are folded in trajectory order, so the estimate is a pure
/// function of (protocol, ring_size, options − num_threads): bit-identical
/// at every thread count. Throws ModelError for interleaving-daemon
/// schedulers (use measure_convergence) and invalid options.
ConvergenceEstimate estimate_convergence_rounds(
    const Protocol& p, std::size_t ring_size,
    const EstimateOptions& opts = {});

}  // namespace ringstab
