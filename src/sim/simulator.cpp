#include "sim/simulator.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {

Simulator::Simulator(Protocol protocol, std::size_t ring_size,
                     std::uint64_t seed, Scheduler scheduler)
    : protocol_(std::move(protocol)),
      state_(ring_size, 0),
      rng_(seed),
      scheduler_(scheduler) {
  if (ring_size < 2) throw ModelError("ring size must be at least 2");
}

void Simulator::set_state(std::vector<Value> state) {
  if (state.size() != state_.size())
    throw ModelError("state size does not match ring size");
  for (Value v : state)
    if (v >= protocol_.domain().size())
      throw ModelError("state value outside the domain");
  state_ = std::move(state);
}

void Simulator::randomize() {
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(protocol_.domain().size()) - 1);
  for (auto& v : state_) v = static_cast<Value>(dist(rng_));
}

void Simulator::reseed(std::uint64_t seed) {
  rng_.seed(seed);
  rr_cursor_ = 0;
}

void Simulator::inject_faults(std::size_t count) {
  count = std::min(count, state_.size());
  std::vector<std::size_t> idx(state_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::shuffle(idx.begin(), idx.end(), rng_);
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(protocol_.domain().size()) - 1);
  for (std::size_t i = 0; i < count; ++i)
    state_[idx[i]] = static_cast<Value>(dist(rng_));
}

bool Simulator::in_invariant() const {
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (!protocol_.is_legit(local_state_of(protocol_, state_, i)))
      return false;
  return true;
}

bool Simulator::deadlocked() const {
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (protocol_.is_enabled(local_state_of(protocol_, state_, i)))
      return false;
  return true;
}

std::optional<ScheduledStep> Simulator::step() {
  // Pick the firing process per the scheduler policy, then one of its
  // enabled transitions uniformly.
  auto fire_at = [&](std::size_t i) -> std::optional<ScheduledStep> {
    const LocalStateId ls = local_state_of(protocol_, state_, i);
    const auto from = protocol_.transitions_from(ls);
    if (from.empty()) return std::nullopt;
    std::uniform_int_distribution<std::size_t> pick(0, from.size() - 1);
    const ScheduledStep chosen{i, from[pick(rng_)]};
    const bool ok = apply_step(protocol_, state_, chosen);
    RINGSTAB_ASSERT(ok, "enabled step failed to apply");
    return chosen;
  };

  switch (scheduler_) {
    case Scheduler::kUniformRandom: {
      std::vector<ScheduledStep> enabled;
      for (std::size_t i = 0; i < state_.size(); ++i) {
        const LocalStateId ls = local_state_of(protocol_, state_, i);
        for (const auto& t : protocol_.transitions_from(ls))
          enabled.push_back({i, t});
      }
      if (enabled.empty()) return std::nullopt;
      std::uniform_int_distribution<std::size_t> dist(0, enabled.size() - 1);
      const ScheduledStep chosen = enabled[dist(rng_)];
      const bool ok = apply_step(protocol_, state_, chosen);
      RINGSTAB_ASSERT(ok, "enabled step failed to apply");
      return chosen;
    }
    case Scheduler::kRoundRobin: {
      for (std::size_t scanned = 0; scanned < state_.size(); ++scanned) {
        const std::size_t i = (rr_cursor_ + scanned) % state_.size();
        if (auto step = fire_at(i)) {
          rr_cursor_ = (i + 1) % state_.size();
          return step;
        }
      }
      return std::nullopt;
    }
    case Scheduler::kLeftmostFirst: {
      for (std::size_t i = 0; i < state_.size(); ++i)
        if (auto step = fire_at(i)) return step;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

Simulator::RunResult Simulator::run_to_convergence(std::size_t max_steps) {
  RunResult res;
  for (res.steps = 0; res.steps < max_steps; ++res.steps) {
    if (in_invariant()) {
      res.converged = true;
      return res;
    }
    if (!step()) {
      res.deadlocked_outside_i = true;
      return res;
    }
  }
  res.converged = in_invariant();
  return res;
}

namespace {

// splitmix64: cheap, well-mixed per-trial seed derivation.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t z = seed + (trial + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ConvergenceStats measure_convergence(const Protocol& p, std::size_t ring_size,
                                     std::size_t trials, std::uint64_t seed,
                                     std::size_t step_cap, Scheduler scheduler,
                                     std::size_t num_threads) {
  ConvergenceStats stats;
  stats.trials = trials;
  const obs::Span span("sim.measure_convergence");
  obs::Counter& trials_ctr = obs::counter("sim.trials");
  obs::Counter& steps_ctr = obs::counter("sim.steps");
  std::vector<Simulator::RunResult> runs(trials);
  if (num_threads <= 1) {
    // Seed-engine behavior: one RNG stream threads through every trial.
    Simulator sim(p, ring_size, seed, scheduler);
    for (std::size_t t = 0; t < trials; ++t) {
      sim.randomize();
      runs[t] = sim.run_to_convergence(step_cap);
      trials_ctr.add(1);
      steps_ctr.add(runs[t].steps);
    }
  } else {
    // One independent stream per trial, assigned by trial index — the
    // result slots are aggregated in trial order below, so the stats are
    // identical for every parallel thread count.
    parallel_for(trials, num_threads, 64,
                 [&](const ChunkRange& chunk, std::size_t) {
      Simulator sim(p, ring_size, seed, scheduler);
      std::uint64_t chunk_steps = 0;
      for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
        sim.reseed(mix_seed(seed, t));
        sim.randomize();
        runs[t] = sim.run_to_convergence(step_cap);
        chunk_steps += runs[t].steps;
      }
      trials_ctr.add(chunk.end - chunk.begin);
      steps_ctr.add(chunk_steps);
    });
  }
  double total = 0;
  std::vector<std::size_t> steps;
  steps.reserve(trials);
  for (const auto& run : runs) {
    if (run.converged) {
      ++stats.converged;
      total += static_cast<double>(run.steps);
      stats.max_steps = std::max(stats.max_steps, run.steps);
      steps.push_back(run.steps);
    } else {
      ++stats.failed;
    }
  }
  obs::counter("sim.converged").add(stats.converged);
  stats.mean_steps = stats.converged ? total / stats.converged : 0.0;
  if (!steps.empty()) {
    std::sort(steps.begin(), steps.end());
    stats.p50_steps = steps[steps.size() / 2];
    stats.p95_steps = steps[std::min(steps.size() - 1,
                                     steps.size() * 95 / 100)];
  }
  return stats;
}

}  // namespace ringstab
