#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "core/fmt.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/prng.hpp"

namespace ringstab {

namespace {

bool interleaving(Scheduler s) {
  return s == Scheduler::kUniformRandom || s == Scheduler::kRoundRobin ||
         s == Scheduler::kLeftmostFirst;
}

}  // namespace

Simulator::Simulator(Protocol protocol, std::size_t ring_size,
                     std::uint64_t seed, Scheduler scheduler)
    : protocol_(std::move(protocol)),
      state_(ring_size, 0),
      rng_(seed),
      scheduler_(scheduler) {
  if (ring_size < 2) throw ModelError("ring size must be at least 2");
  if (!interleaving(scheduler))
    throw ModelError(
        "Simulator executes interleaving daemons only; the probabilistic "
        "schedulers run under estimate_convergence_rounds");
}

void Simulator::set_state(std::vector<Value> state) {
  if (state.size() != state_.size())
    throw ModelError("state size does not match ring size");
  for (Value v : state)
    if (v >= protocol_.domain().size())
      throw ModelError("state value outside the domain");
  state_ = std::move(state);
}

void Simulator::randomize() {
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(protocol_.domain().size()) - 1);
  for (auto& v : state_) v = static_cast<Value>(dist(rng_));
}

void Simulator::reseed(std::uint64_t seed) {
  rng_.seed(seed);
  rr_cursor_ = 0;
}

void Simulator::inject_faults(std::size_t count) {
  count = std::min(count, state_.size());
  std::vector<std::size_t> idx(state_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::shuffle(idx.begin(), idx.end(), rng_);
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(protocol_.domain().size()) - 1);
  for (std::size_t i = 0; i < count; ++i)
    state_[idx[i]] = static_cast<Value>(dist(rng_));
}

bool Simulator::in_invariant() const {
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (!protocol_.is_legit(local_state_of(protocol_, state_, i)))
      return false;
  return true;
}

bool Simulator::deadlocked() const {
  for (std::size_t i = 0; i < state_.size(); ++i)
    if (protocol_.is_enabled(local_state_of(protocol_, state_, i)))
      return false;
  return true;
}

std::optional<ScheduledStep> Simulator::step() {
  // Pick the firing process per the scheduler policy, then one of its
  // enabled transitions uniformly.
  auto fire_at = [&](std::size_t i) -> std::optional<ScheduledStep> {
    const LocalStateId ls = local_state_of(protocol_, state_, i);
    const auto from = protocol_.transitions_from(ls);
    if (from.empty()) return std::nullopt;
    std::uniform_int_distribution<std::size_t> pick(0, from.size() - 1);
    const ScheduledStep chosen{i, from[pick(rng_)]};
    const bool ok = apply_step(protocol_, state_, chosen);
    RINGSTAB_ASSERT(ok, "enabled step failed to apply");
    return chosen;
  };

  switch (scheduler_) {
    case Scheduler::kUniformRandom: {
      std::vector<ScheduledStep> enabled;
      for (std::size_t i = 0; i < state_.size(); ++i) {
        const LocalStateId ls = local_state_of(protocol_, state_, i);
        for (const auto& t : protocol_.transitions_from(ls))
          enabled.push_back({i, t});
      }
      if (enabled.empty()) return std::nullopt;
      std::uniform_int_distribution<std::size_t> dist(0, enabled.size() - 1);
      const ScheduledStep chosen = enabled[dist(rng_)];
      const bool ok = apply_step(protocol_, state_, chosen);
      RINGSTAB_ASSERT(ok, "enabled step failed to apply");
      return chosen;
    }
    case Scheduler::kRoundRobin: {
      for (std::size_t scanned = 0; scanned < state_.size(); ++scanned) {
        const std::size_t i = (rr_cursor_ + scanned) % state_.size();
        if (auto step = fire_at(i)) {
          rr_cursor_ = (i + 1) % state_.size();
          return step;
        }
      }
      return std::nullopt;
    }
    case Scheduler::kLeftmostFirst: {
      for (std::size_t i = 0; i < state_.size(); ++i)
        if (auto step = fire_at(i)) return step;
      return std::nullopt;
    }
    default:
      return std::nullopt;  // unreachable: the constructor rejects these
  }
}

Simulator::RunResult Simulator::run_to_convergence(std::size_t max_steps) {
  RunResult res;
  for (res.steps = 0; res.steps < max_steps; ++res.steps) {
    if (in_invariant()) {
      res.converged = true;
      return res;
    }
    if (!step()) {
      res.deadlocked_outside_i = true;
      return res;
    }
  }
  res.converged = in_invariant();
  return res;
}

namespace {

// splitmix64: cheap, well-mixed per-trial seed derivation.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t z = seed + (trial + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ConvergenceStats measure_convergence(const Protocol& p, std::size_t ring_size,
                                     std::size_t trials, std::uint64_t seed,
                                     std::size_t step_cap, Scheduler scheduler,
                                     std::size_t num_threads) {
  ConvergenceStats stats;
  stats.trials = trials;
  const obs::Span span("sim.measure_convergence");
  obs::Counter& trials_ctr = obs::counter("sim.trials");
  obs::Counter& steps_ctr = obs::counter("sim.steps");
  std::vector<Simulator::RunResult> runs(trials);
  if (num_threads <= 1) {
    // Seed-engine behavior: one RNG stream threads through every trial.
    Simulator sim(p, ring_size, seed, scheduler);
    for (std::size_t t = 0; t < trials; ++t) {
      sim.randomize();
      runs[t] = sim.run_to_convergence(step_cap);
      trials_ctr.add(1);
      steps_ctr.add(runs[t].steps);
    }
  } else {
    // One independent stream per trial, assigned by trial index — the
    // result slots are aggregated in trial order below, so the stats are
    // identical for every parallel thread count.
    parallel_for(trials, num_threads, 64,
                 [&](const ChunkRange& chunk, std::size_t) {
      Simulator sim(p, ring_size, seed, scheduler);
      std::uint64_t chunk_steps = 0;
      for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
        sim.reseed(mix_seed(seed, t));
        sim.randomize();
        runs[t] = sim.run_to_convergence(step_cap);
        chunk_steps += runs[t].steps;
      }
      trials_ctr.add(chunk.end - chunk.begin);
      steps_ctr.add(chunk_steps);
    });
  }
  double total = 0;
  std::vector<std::size_t> steps;
  steps.reserve(trials);
  for (const auto& run : runs) {
    if (run.converged) {
      ++stats.converged;
      total += static_cast<double>(run.steps);
      stats.max_steps = std::max(stats.max_steps, run.steps);
      steps.push_back(run.steps);
    } else {
      ++stats.failed;
    }
  }
  obs::counter("sim.converged").add(stats.converged);
  stats.mean_steps = stats.converged ? total / stats.converged : 0.0;
  if (!steps.empty()) {
    std::sort(steps.begin(), steps.end());
    stats.p50_steps = steps[steps.size() / 2];
    stats.p95_steps = steps[std::min(steps.size() - 1,
                                     steps.size() * 95 / 100)];
  }
  return stats;
}

// ── Monte Carlo expected-convergence-time estimation ──

namespace {

/// Flat per-local-state dispatch tables, so the trajectory kernels never
/// touch the Protocol during the hot loop.
struct SlotTable {
  std::vector<std::uint8_t> legit;      // [ls] LC_r holds
  std::vector<std::uint32_t> begin;     // [ls] first entry in to_value
  std::vector<std::uint32_t> count;     // [ls] number of enabled transitions
  std::vector<Value> to_value;          // [entry] new self value
  std::vector<double> weight;           // [entry] kWeightedRandom weight
};

SlotTable build_table(const Protocol& p, const std::vector<double>& weights) {
  if (!weights.empty()) {
    if (weights.size() != p.delta().size())
      throw ModelError(cat("weights size ", weights.size(),
                           " does not match the protocol's ",
                           p.delta().size(), " transitions"));
    for (double w : weights)
      if (!(w >= 0.0))
        throw ModelError("transition weights must be non-negative");
  }
  SlotTable tab;
  const std::size_t n = p.num_states();
  tab.legit.resize(n);
  tab.begin.resize(n);
  tab.count.resize(n);
  for (std::size_t ls = 0; ls < n; ++ls) {
    tab.legit[ls] = p.is_legit(ls) ? 1 : 0;
    const auto from = p.transitions_from(ls);
    tab.begin[ls] = static_cast<std::uint32_t>(tab.to_value.size());
    tab.count[ls] = static_cast<std::uint32_t>(from.size());
    for (const auto& t : from) {
      tab.to_value.push_back(p.space().self(t.to));
      tab.weight.push_back(weights.empty() ? 1.0 : weights[p.index_of(t)]);
    }
  }
  return tab;
}

struct TrajectoryResult {
  std::uint64_t rounds = 0;
  bool converged = false;
};

/// Draw the trajectory's initial state. Uses the stream's first draws, so
/// the whole trajectory — start included — is a function of (seed, index).
void init_state(StartKind start, std::size_t domain, CounterRng& rng,
                std::vector<Value>& cur) {
  const std::size_t k = cur.size();
  switch (start) {
    case StartKind::kRandom:
      for (auto& v : cur) v = static_cast<Value>(rng.below(domain));
      break;
    case StartKind::kAllZero:
      std::fill(cur.begin(), cur.end(), Value{0});
      break;
    case StartKind::kThreeTokens:
      // LC_r violations (Herman tokens) exactly at 0, ⌊K/3⌋, ⌊2K/3⌋: the
      // value flips at every position that is NOT a violation site. Odd K
      // makes the flip count K−3 even, so the pattern closes around the
      // ring.
      cur[0] = 0;
      for (std::size_t i = 1; i < k; ++i) {
        const bool token = i == k / 3 || i == 2 * k / 3;
        cur[i] = token ? cur[i - 1] : static_cast<Value>(1 - cur[i - 1]);
      }
      break;
  }
}

bool target_met(ConvergenceTarget target, std::size_t illegit) {
  return target == ConvergenceTarget::kInvariant ? illegit == 0
                                                 : illegit == 1;
}

/// One synchronous-coin trajectory. `ls_of(cur, i)` computes process i's
/// local state; the caller picks a fast closed form when the locality
/// allows it. Every round does one local-state scan (cached in `ls_buf`)
/// and one simultaneous write pass reading only pre-round values.
template <typename LsOf>
TrajectoryResult run_synchronous(const SlotTable& tab, std::size_t round_cap,
                                 ConvergenceTarget target, double coin,
                                 std::vector<Value>& cur,
                                 std::vector<Value>& next,
                                 std::vector<LocalStateId>& ls_buf,
                                 CounterRng& rng, const LsOf& ls_of) {
  const std::size_t k = cur.size();
  for (std::uint64_t r = 0;; ++r) {
    std::size_t illegit = 0;
    bool any_enabled = false;
    for (std::size_t i = 0; i < k; ++i) {
      const LocalStateId ls = ls_of(cur, i);
      ls_buf[i] = ls;
      illegit += tab.legit[ls] ? 0 : 1;
      any_enabled |= tab.count[ls] != 0;
    }
    if (target_met(target, illegit)) return {r, true};
    if (r >= round_cap || !any_enabled) return {r, false};
    for (std::size_t i = 0; i < k; ++i) {
      const LocalStateId ls = ls_buf[i];
      const std::uint32_t n = tab.count[ls];
      Value v = cur[i];
      // Enabled processes inside LC fire unconditionally; enabled
      // processes outside LC fire with probability `coin` (for Herman:
      // copy always, re-randomize the token bit).
      if (n != 0 && (tab.legit[ls] || rng.bernoulli(coin)))
        v = n == 1 ? tab.to_value[tab.begin[ls]]
                   : tab.to_value[tab.begin[ls] + rng.below(n)];
      next[i] = v;
    }
    cur.swap(next);
  }
}

/// One weighted-interleaving trajectory: each step draws a single enabled
/// (process, transition) pair with probability proportional to its weight.
TrajectoryResult run_weighted(const SlotTable& tab, std::size_t step_cap,
                              ConvergenceTarget target, const Protocol& p,
                              std::vector<Value>& cur, CounterRng& rng) {
  const std::size_t k = cur.size();
  std::vector<std::pair<std::size_t, std::uint32_t>> enabled;  // (i, entry)
  for (std::uint64_t r = 0;; ++r) {
    std::size_t illegit = 0;
    double total = 0.0;
    enabled.clear();
    for (std::size_t i = 0; i < k; ++i) {
      const LocalStateId ls = local_state_of(p, cur, i);
      illegit += tab.legit[ls] ? 0 : 1;
      for (std::uint32_t e = 0; e < tab.count[ls]; ++e) {
        const std::uint32_t entry = tab.begin[ls] + e;
        if (tab.weight[entry] <= 0.0) continue;
        enabled.emplace_back(i, entry);
        total += tab.weight[entry];
      }
    }
    if (target_met(target, illegit)) return {r, true};
    if (r >= step_cap || enabled.empty()) return {r, false};
    double x = rng.uniform() * total;
    std::size_t pick = enabled.size() - 1;  // guard against rounding
    for (std::size_t j = 0; j < enabled.size(); ++j) {
      x -= tab.weight[enabled[j].second];
      if (x < 0.0) {
        pick = j;
        break;
      }
    }
    cur[enabled[pick].first] = tab.to_value[enabled[pick].second];
  }
}

}  // namespace

ConvergenceEstimate estimate_convergence_rounds(const Protocol& p,
                                                std::size_t ring_size,
                                                const EstimateOptions& opts) {
  if (ring_size < 2) throw ModelError("ring size must be at least 2");
  if (opts.trajectories == 0)
    throw ModelError("trajectories must be at least 1");
  if (!(opts.coin >= 0.0 && opts.coin <= 1.0))
    throw ModelError(cat("coin probability ", opts.coin,
                         " outside [0, 1]"));
  if (interleaving(opts.scheduler))
    throw ModelError(
        "estimate_convergence_rounds runs the probabilistic schedulers "
        "(kSynchronousCoin, kWeightedRandom); use measure_convergence for "
        "interleaving daemons");
  if (opts.start == StartKind::kThreeTokens) {
    if (ring_size % 2 == 0)
      throw ModelError("the three-token start requires an odd ring size");
    if (p.domain().size() < 2)
      throw ModelError("the three-token start requires a domain of size ≥ 2");
  }

  const obs::Span span("sim.estimate");
  const SlotTable tab = build_table(p, opts.weights);
  const std::size_t d = p.domain().size();
  const Locality loc = p.locality();
  const bool fast10 = loc.left == 1 && loc.right == 0;

  std::vector<TrajectoryResult> results(opts.trajectories);
  parallel_for(opts.trajectories, opts.num_threads, 16,
               [&](const ChunkRange& chunk, std::size_t) {
    std::vector<Value> cur(ring_size), next(ring_size);
    std::vector<LocalStateId> ls_buf(ring_size);
    for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
      CounterRng rng(trajectory_stream_key(opts.seed, t));
      init_state(opts.start, d, rng, cur);
      if (opts.scheduler == Scheduler::kWeightedRandom) {
        results[t] =
            run_weighted(tab, opts.round_cap, opts.target, p, cur, rng);
      } else if (fast10) {
        // Locality {1, 0}: ls = x[i−1] + |D|·x[i] (LocalStateSpace's
        // mixed-radix order), with the left neighbor read directly.
        const auto ls_of = [d, ring_size](const std::vector<Value>& s,
                                          std::size_t i) {
          return static_cast<LocalStateId>(
              s[i == 0 ? ring_size - 1 : i - 1] + d * s[i]);
        };
        results[t] = run_synchronous(tab, opts.round_cap, opts.target,
                                     opts.coin, cur, next, ls_buf, rng, ls_of);
      } else {
        const auto ls_of = [&p](const std::vector<Value>& s, std::size_t i) {
          return local_state_of(p, s, i);
        };
        results[t] = run_synchronous(tab, opts.round_cap, opts.target,
                                     opts.coin, cur, next, ls_buf, rng, ls_of);
      }
    }
  });

  // Serial fold in trajectory order: with per-trajectory streams above,
  // this makes the whole estimate bit-identical at every thread count.
  ConvergenceEstimate est;
  est.trajectories = opts.trajectories;
  obs::Histogram& rounds_hist = obs::histogram("sim.trajectory_rounds");
  std::vector<std::uint64_t> conv;
  conv.reserve(opts.trajectories);
  for (const TrajectoryResult& r : results) {
    est.total_rounds += r.rounds;
    est.total_process_steps += r.rounds * ring_size;
    rounds_hist.record(r.rounds);
    if (r.converged)
      conv.push_back(r.rounds);
    else
      ++est.censored;
  }
  est.converged = conv.size();
  obs::counter("sim.trajectories").add(est.trajectories);
  obs::counter("sim.rounds").add(est.total_rounds);
  obs::counter("sim.process_steps").add(est.total_process_steps);
  obs::counter("sim.converged").add(est.converged);
  if (!conv.empty()) {
    double sum = 0.0;
    for (std::uint64_t r : conv) sum += static_cast<double>(r);
    est.mean_rounds = sum / static_cast<double>(conv.size());
    if (conv.size() >= 2) {
      double sq = 0.0;
      for (std::uint64_t r : conv) {
        const double dlt = static_cast<double>(r) - est.mean_rounds;
        sq += dlt * dlt;
      }
      est.stddev_rounds = std::sqrt(sq / static_cast<double>(conv.size() - 1));
      est.ci95_half_width =
          1.96 * est.stddev_rounds / std::sqrt(static_cast<double>(conv.size()));
    }
    std::vector<std::uint64_t> sorted = conv;
    std::sort(sorted.begin(), sorted.end());
    est.min_rounds = sorted.front();
    est.max_rounds = sorted.back();
    est.p50_rounds = sorted[sorted.size() / 2];
    est.p95_rounds =
        sorted[std::min(sorted.size() - 1, sorted.size() * 95 / 100)];
  }
  return est;
}

}  // namespace ringstab
