// Counter-based PRNG streams for reproducible parallel trajectory sampling
// (docs/simulation.md).
//
// A trajectory's randomness is a pure function of (seed, trajectory index):
// stream t draws value n as mix64(stream_key(seed, t), n). Streams carry no
// shared mutable state, so trajectories can be partitioned across worker
// lanes in any way — chunked, striped, work-stolen — and every draw is still
// bit-identical to the serial schedule. This is what makes the estimator's
// results invariant under the thread count.
#pragma once

#include <cstdint>

namespace ringstab {

/// Stateless splitmix64-style finalizer over a (key, counter) pair. The
/// constants are Stafford's mix13; both inputs are diffused through three
/// xor-shift/multiply rounds, so consecutive counters land far apart.
inline std::uint64_t mix64(std::uint64_t key, std::uint64_t counter) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull * (counter + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The per-trajectory stream key. Double-mixing (seed then index) keeps
/// related seeds (1, 2, 3, …) from producing related streams.
inline std::uint64_t trajectory_stream_key(std::uint64_t seed,
                                           std::uint64_t trajectory) {
  return mix64(mix64(0x52494e4753544142ull /* "RINGSTAB" */, seed),
               trajectory);
}

/// One trajectory's private generator: a key plus a draw counter. Copyable,
/// 16 bytes, no heap; `next()` is ~6 ALU ops.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t key) : key_(key) {}

  std::uint64_t next() { return mix64(key_, counter_++); }

  /// True with probability `p` (clamped to [0, 1]). Compares the top 53
  /// bits of a draw against p scaled to 2^53 — exact for p = k/2^53, and in
  /// particular exact for the default coin 1/2.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    const auto threshold =
        static_cast<std::uint64_t>(p * 9007199254740992.0);  // p · 2^53
    return (next() >> 11) < threshold;
  }

  /// Uniform in [0, n) via the 128-bit multiply trick (no modulo bias worth
  /// caring about at simulation n's, no divide).
  std::uint64_t below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
};

}  // namespace ringstab
