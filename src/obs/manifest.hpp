// The versioned run manifest: one JSON document per run capturing where
// the time went (span tree folded into per-phase self/total times), how
// much work happened (exact counters), the shape of the work (histogram
// quantiles), and how much memory it took (gauge peaks, RSS high-water).
//
// Schema id: "ringstab.metrics.v2" (see docs/observability.md for the
// field-by-field reference). Every numeric field is an unsigned integer
// (times in nanoseconds), so emit → parse → re-emit is byte-identical —
// the property `ringstab-perf` and the round-trip test rely on.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics_json.hpp"
#include "obs/obs.hpp"

namespace ringstab::obs {

inline constexpr const char* kManifestSchema = "ringstab.metrics.v2";

/// A Sink that folds the span stream into per-phase (name → calls,
/// total_ns, self_ns) aggregates and emits the manifest document on
/// flush(). Self time is a phase's total minus the totals of its direct
/// children; chunk slices are aggregated under "<phase>/chunks" with
/// self == total (they have no children).
class MetricsSink : public Sink {
 public:
  /// `command` names the run (e.g. "check --symmetry", "bench.symmetry");
  /// recorded verbatim in the manifest.
  MetricsSink(std::ostream& out, std::string command);

  void on_span(const SpanRecord& rec) override;
  void on_counters(const std::vector<CounterTotal>& totals) override;
  void on_histograms(const std::vector<HistogramSnapshot>& hists) override;
  void on_gauges(const std::vector<GaugeSnapshot>& gauges) override;
  void flush() override;

  /// The manifest document (also what flush() writes). Exposed so benches
  /// can embed a manifest into their BENCH_*.json without a temp file.
  json::Value build() const;

 private:
  struct PhaseAgg {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::size_t order = 0;  // first-seen rank, for stable emission order
  };

  std::ostream* out_;
  std::string command_;
  Ticks created_at_;
  Ticks first_start_ = ~Ticks{0};
  Ticks last_end_ = 0;
  std::map<std::string, PhaseAgg> phases_;
  // Per-lane running sum of closed child span durations, indexed by depth
  // (children close before their parent on the same thread, so when a span
  // at depth d closes, slot d+1 holds exactly its direct children's total).
  std::map<std::uint32_t, std::vector<std::uint64_t>> child_ns_;
  std::vector<CounterTotal> counters_;
  std::vector<HistogramSnapshot> histograms_;
  std::vector<GaugeSnapshot> gauges_;
  bool flushed_ = false;
};

/// Validates the structural invariants `ringstab-perf validate` enforces:
/// schema id, required top-level fields, numeric field types, and
/// phases' self <= total. Returns an empty string when valid, else a
/// one-line description of the first problem.
std::string validate_manifest(const json::Value& doc);

}  // namespace ringstab::obs
