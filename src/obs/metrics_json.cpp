#include "obs/metrics_json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "obs/sinks.hpp"  // json_escape

namespace ringstab::obs::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        return Value::boolean_v(true);
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        return Value::boolean_v(false);
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return Value{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our emitters; pass them through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == begin) fail("empty number");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::string(text_.substr(begin, pos_ - begin));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_into(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::Null: out += "null"; break;
    case Value::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    case Value::Kind::Number: out += v.number; break;
    case Value::Kind::String:
      out += '"';
      out += json_escape(v.str);
      out += '"';
      break;
    case Value::Kind::Array:
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out += ',';
        dump_into(v.items[i], out);
      }
      out += ']';
      break;
    case Value::Kind::Object:
      out += '{';
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(v.members[i].first);
        out += "\":";
        dump_into(v.members[i].second, out);
      }
      out += '}';
      break;
  }
}

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t Value::as_u64(std::uint64_t fallback) const {
  if (kind != Kind::Number || number.empty() || number[0] == '-')
    return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(number.c_str(), &end, 10);
  if (errno != 0 || end != number.c_str() + number.size()) return fallback;
  return static_cast<std::uint64_t>(v);
}

double Value::as_double(double fallback) const {
  if (kind != Kind::Number || number.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(number.c_str(), &end);
  if (errno != 0 || end != number.c_str() + number.size()) return fallback;
  return v;
}

Value Value::object() {
  Value v;
  v.kind = Kind::Object;
  return v;
}

Value Value::array() {
  Value v;
  v.kind = Kind::Array;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind = Kind::String;
  v.str = std::move(s);
  return v;
}

Value Value::number_u64(std::uint64_t n) {
  Value v;
  v.kind = Kind::Number;
  v.number = std::to_string(n);
  return v;
}

Value Value::number_raw(std::string digits) {
  Value v;
  v.kind = Kind::Number;
  v.number = std::move(digits);
  return v;
}

Value Value::boolean_v(bool b) {
  Value v;
  v.kind = Kind::Bool;
  v.boolean = b;
  return v;
}

Value& Value::add(std::string key, Value v) {
  members.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  items.push_back(std::move(v));
  return *this;
}

Value parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& v) {
  std::string out;
  dump_into(v, out);
  return out;
}

}  // namespace ringstab::obs::json
