// Pluggable observability sinks: null, human-readable stats, JSON-lines
// event stream, and Chrome trace-event export (chrome://tracing, Perfetto).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace ringstab::obs {

/// Discards everything. Exists so "instrumentation on, output off" can be
/// tested to leave results bit-identical.
class NullSink : public Sink {};

/// Aggregates spans per phase name and prints a phase/counter summary
/// table on flush. Chunk slices are aggregated separately from their
/// enclosing phase spans (shown indented, as `⟨chunks⟩`).
class StatsSink : public Sink {
 public:
  /// Writes to `out` on flush (not owned; must outlive the sink).
  explicit StatsSink(std::ostream& out) : out_(&out) {}

  void on_span(const SpanRecord& rec) override;
  void on_counters(const std::vector<CounterTotal>& totals) override;
  void on_histograms(const std::vector<HistogramSnapshot>& hists) override;
  void on_gauges(const std::vector<GaugeSnapshot>& gauges) override;
  void flush() override;

 private:
  struct Agg {
    std::uint64_t calls = 0;
    Ticks total = 0;
    Ticks min = 0;
    Ticks max = 0;
    std::size_t order = 0;  // first-seen rank, for stable display
  };
  std::ostream* out_;
  std::map<std::string, Agg> phases_;  // key: name, '\x01'+name for chunks
  std::vector<CounterTotal> counters_;
  std::vector<HistogramSnapshot> histograms_;
  std::vector<GaugeSnapshot> gauges_;
  bool flushed_ = false;
};

/// One JSON object per line per event: spans, heartbeats, final counters.
/// Machine-readable without buffering; suitable for long runs.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void on_span(const SpanRecord& rec) override;
  void on_heartbeat(const Heartbeat& hb) override;
  void on_counters(const std::vector<CounterTotal>& totals) override;
  void on_histograms(const std::vector<HistogramSnapshot>& hists) override;
  void on_gauges(const std::vector<GaugeSnapshot>& gauges) override;
  void flush() override;

 private:
  std::ostream* out_;
};

/// Buffers span records and writes a Chrome trace-event JSON array on
/// flush: complete ("X") events with microsecond timestamps, one `tid`
/// track per worker lane, plus thread_name metadata so Perfetto labels the
/// tracks. Counter totals become one "C" event at the end of the trace.
class ChromeTraceSink : public Sink {
 public:
  explicit ChromeTraceSink(std::ostream& out) : out_(&out) {}

  void on_span(const SpanRecord& rec) override;
  void on_counters(const std::vector<CounterTotal>& totals) override;
  void flush() override;

 private:
  std::ostream* out_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterTotal> counters_;
  bool flushed_ = false;
};

/// Owns an output file stream and forwards to an inner sink writing to it.
/// Lets the CLI hand `--trace t.json` / `--jsonl ev.jsonl` to the registry
/// without leaking stream lifetimes.
///
/// Failure discipline: the stream state is re-checked after every flush —
/// not just at open — so a disk that fills mid-run (or an fd that goes
/// bad) is reported once on stderr with the errno cause, healthy() goes
/// false, and Session::finish() turns that into a nonzero exit.
template <typename InnerSink>
class FileSink : public Sink {
 public:
  /// Extra arguments are forwarded to the inner sink after the stream
  /// (e.g. the command string for MetricsSink).
  template <typename... Args>
  explicit FileSink(const std::string& path, Args&&... args)
      : path_(path),
        file_(std::make_unique<std::ofstream>(path)),
        inner_(*file_, std::forward<Args>(args)...) {}
  bool ok() const { return file_->good(); }
  void on_span(const SpanRecord& r) override { inner_.on_span(r); }
  void on_heartbeat(const Heartbeat& h) override { inner_.on_heartbeat(h); }
  void on_counters(const std::vector<CounterTotal>& t) override {
    inner_.on_counters(t);
  }
  void on_histograms(const std::vector<HistogramSnapshot>& h) override {
    inner_.on_histograms(h);
  }
  void on_gauges(const std::vector<GaugeSnapshot>& g) override {
    inner_.on_gauges(g);
  }
  void flush() override {
    errno = 0;
    inner_.flush();
    file_->flush();
    if (!file_->good()) note_write_failure(errno);
  }
  bool healthy() const override { return !failed_ && file_->good(); }
  std::string describe() const override { return "output file " + path_; }

 private:
  void note_write_failure(int err) {
    failed_ = true;
    if (warned_) return;
    warned_ = true;
    std::fprintf(stderr, "ringstab: warning: write to %s failed (%s)\n",
                 path_.c_str(),
                 err != 0 ? std::strerror(err) : "stream in failed state");
  }

  std::string path_;
  std::unique_ptr<std::ofstream> file_;
  InnerSink inner_;
  bool failed_ = false;  // sticky: clear()ing the stream can't unfail us
  bool warned_ = false;
};

/// JSON string escaping shared by the sinks (and reusable by benches).
std::string json_escape(std::string_view s);

}  // namespace ringstab::obs
