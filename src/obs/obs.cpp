#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>

namespace ringstab::obs {
namespace {

thread_local std::uint32_t t_tid = 0;
thread_local std::vector<const char*> t_span_stack;

std::string format_count(std::uint64_t v) {
  char buf[32];
  if (v >= 10'000'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(v) / 1e9);
  else if (v >= 10'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
  else if (v >= 100'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Ticks now() {
  return static_cast<Ticks>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t Counter::shard_index() {
  // Distinct threads land on distinct shards until kShards threads exist;
  // beyond that they share (still lock-free, merely contended).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: outlives static dtors
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_)
    if (n == name) return *c;
  counters_.emplace_back(std::string(name),
                         std::make_unique<Counter>(std::string(name)));
  return *counters_.back().second;
}

std::vector<CounterTotal> Registry::snapshot_counters() const {
  std::lock_guard lock(mu_);
  std::vector<CounterTotal> out;
  for (const auto& [n, c] : counters_) {
    const std::uint64_t v = c->total();
    if (v > 0) out.push_back({n, v});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset_counters() {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_) c->reset();
}

void Registry::add_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Registry::clear_sinks() {
  std::lock_guard lock(mu_);
  sinks_.clear();
}

void Registry::emit_span(const SpanRecord& rec) {
  std::lock_guard lock(mu_);
  for (auto& s : sinks_) s->on_span(rec);
}

void Registry::beat_locked(Ticks at) {
  // Totals are a live (non-quiescent) read: safe, possibly a few adds shy
  // of the in-flight truth. The final exact totals come from finish().
  std::vector<CounterTotal> totals;
  for (const auto& [n, c] : counters_) {
    const std::uint64_t v = c->total();
    if (v > 0) totals.push_back({n, v});
  }
  std::sort(totals.begin(), totals.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              return a.name < b.name;
            });
  Heartbeat hb;
  hb.at = at;
  hb.elapsed_sec =
      static_cast<double>(at - heartbeat_started_) / 1e9;
  const double interval =
      std::max(last_beat_totals_.empty() ? hb.elapsed_sec
                                         : last_interval_sec_,
               1e-9);
  for (const CounterTotal& t : totals) {
    std::uint64_t prev = 0;
    for (const CounterTotal& p : last_beat_totals_)
      if (p.name == t.name) prev = p.value;
    hb.lines.push_back(
        {t.name, t.value, static_cast<double>(t.value - prev) / interval});
  }
  std::string msg = "[obs] " + std::to_string(hb.elapsed_sec);
  msg.resize(msg.find('.') + 2);  // one decimal of elapsed seconds
  msg += "s";
  for (const auto& line : hb.lines) {
    msg += "  " + line.name + "=" + format_count(line.total);
    if (line.rate_per_sec >= 1.0)
      msg += " (" +
             format_count(static_cast<std::uint64_t>(line.rate_per_sec)) +
             "/s)";
  }
  msg += "\n";
  std::fputs(msg.c_str(), stderr);
  for (auto& s : sinks_) s->on_heartbeat(hb);
  last_beat_totals_ = std::move(totals);
}

void Registry::start_heartbeat(std::chrono::milliseconds period) {
  std::lock_guard lock(mu_);
  if (heartbeat_.joinable()) return;
  heartbeat_started_ = now();
  last_beat_totals_.clear();
  last_interval_sec_ = static_cast<double>(period.count()) / 1e3;
  heartbeat_ = std::jthread([this, period](std::stop_token stop) {
    std::unique_lock lock(mu_);
    while (!stop.stop_requested()) {
      if (heartbeat_cv_.wait_for(lock, stop, period,
                                 [&] { return stop.stop_requested(); }))
        return;
      beat_locked(now());
    }
  });
}

void Registry::stop_heartbeat() {
  {
    std::lock_guard lock(mu_);
    if (!heartbeat_.joinable()) return;
    heartbeat_.request_stop();
  }
  heartbeat_cv_.notify_all();
  heartbeat_.join();
  heartbeat_ = std::jthread();
}

void Registry::finish() {
  stop_heartbeat();
  const auto totals = snapshot_counters();
  std::lock_guard lock(mu_);
  for (auto& s : sinks_) s->on_counters(totals);
  for (auto& s : sinks_) s->flush();
}

Span::Span(const char* name, bool chunk) : name_(name), chunk_(chunk) {
  if (!enabled()) return;
  active_ = true;
  t_span_stack.push_back(name_);
  start_ = now();
}

Span::~Span() {
  if (!active_) return;
  const Ticks end = now();
  t_span_stack.pop_back();
  SpanRecord rec;
  rec.name = name_;
  rec.start = start_;
  rec.end = end;
  rec.tid = t_tid;
  rec.depth = static_cast<std::uint32_t>(t_span_stack.size());
  rec.chunk = chunk_;
  Registry::global().emit_span(rec);
}

const char* current_span_name() {
  return t_span_stack.empty() ? nullptr : t_span_stack.back();
}

LaneScope::LaneScope(std::uint32_t lane) : prev_(t_tid) { t_tid = lane; }
LaneScope::~LaneScope() { t_tid = prev_; }

}  // namespace ringstab::obs
