#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>

namespace ringstab::obs {
namespace {

thread_local std::uint32_t t_tid = 0;
thread_local std::vector<const char*> t_span_stack;

std::string format_count(std::uint64_t v) {
  char buf[32];
  if (v >= 10'000'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(v) / 1e9);
  else if (v >= 10'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
  else if (v >= 100'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  return buf;
}

/// Parses a "VmRSS:   123 kB" style line value into bytes, 0 on no match.
std::uint64_t proc_status_kb(const std::string& line, const char* key) {
  if (line.rfind(key, 0) != 0) return 0;
  const char* p = line.c_str() + std::string_view(key).size();
  while (*p == ' ' || *p == '\t') ++p;
  std::uint64_t kb = 0;
  while (*p >= '0' && *p <= '9') kb = kb * 10 + static_cast<std::uint64_t>(*p++ - '0');
  return kb * 1024;
}

}  // namespace

Ticks now() {
  return static_cast<Ticks>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* git_describe() {
#ifdef RINGSTAB_GIT_DESCRIBE
  return RINGSTAB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::size_t detail::thread_ordinal() {
  // Distinct threads get distinct ordinals; shard owners take these mod
  // their shard count, so threads spread over shards until more threads
  // than shards exist (then they share — still lock-free, merely
  // contended).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

std::uint32_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::uint32_t>(value);
  const std::uint32_t msb =
      63u - static_cast<std::uint32_t>(std::countl_zero(value));
  const std::uint32_t octave = msb - kSubBits + 1;  // >= 1
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (value >> (msb - kSubBits)) & (kSubCount - 1));
  return octave * kSubCount + sub;
}

std::uint64_t Histogram::bucket_lower_bound(std::uint32_t index) {
  const std::uint32_t octave = index / kSubCount;
  const std::uint32_t sub = index % kSubCount;
  if (octave == 0) return sub;
  return static_cast<std::uint64_t>(kSubCount + sub) << (octave - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::uint32_t index) {
  const std::uint32_t octave = index / kSubCount;
  const std::uint32_t sub = index % kSubCount;
  if (octave == 0) return sub;
  // One less than the next bucket's lower bound; careful at the top where
  // the next lower bound would overflow.
  const std::uint64_t width = std::uint64_t{1} << (octave - 1);
  const std::uint64_t lo = static_cast<std::uint64_t>(kSubCount + sub)
                           << (octave - 1);
  return lo + width - 1;  // wraps to ~0 exactly at the final 64-bit bucket
}

Histogram::Histogram(std::string name)
    : name_(std::move(name)), shards_(new Shard[kShards]) {
  reset();
}

void Histogram::record(std::uint64_t value) {
  if (!enabled()) return;
  Shard& s = shards_[detail::thread_ordinal() % kShards];
  s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t m = s.min.load(std::memory_order_relaxed);
  while (value < m &&
         !s.min.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
  m = s.max.load(std::memory_order_relaxed);
  while (value > m &&
         !s.max.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.min = ~std::uint64_t{0};
  std::uint64_t merged[kBuckets] = {};
  for (std::size_t i = 0; i < kShards; ++i) {
    const Shard& s = shards_[i];
    for (std::uint32_t b = 0; b < kBuckets; ++b)
      merged[b] += s.buckets[b].load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, s.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  for (std::uint32_t b = 0; b < kBuckets; ++b)
    if (merged[b] > 0) {
      snap.buckets.emplace_back(b, merged[b]);
      snap.count += merged[b];
    }
  if (snap.count == 0) snap.min = 0;
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    for (std::uint32_t b = 0; b < kBuckets; ++b)
      s.buckets[b].store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the q-quantile among `count` sorted samples (1-based,
  // ceil(q*count) clamped into [1, count]), then walk the cumulative
  // bucket counts to the bucket holding that rank.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + (1.0 - 1e-12));
  rank = std::min(std::max<std::uint64_t>(rank, 1), count);
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      const std::uint64_t hi = Histogram::bucket_upper_bound(index);
      return std::min(std::max(hi, min), max);
    }
  }
  return max;
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: outlives static dtors
  return *reg;
}

Counter& Registry::counter(std::string_view name, bool approx) {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_)
    if (n == name) {
      if (approx) c->mark_approx();
      return *c;
    }
  counters_.emplace_back(
      std::string(name), std::make_unique<Counter>(std::string(name), approx));
  return *counters_.back().second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  for (auto& [n, h] : histograms_)
    if (n == name) return *h;
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(std::string(name)));
  return *histograms_.back().second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  return gauge_locked(name);
}

Gauge& Registry::gauge_locked(std::string_view name) {
  for (auto& [n, g] : gauges_)
    if (n == name) return *g;
  gauges_.emplace_back(std::string(name),
                       std::make_unique<Gauge>(std::string(name)));
  return *gauges_.back().second;
}

std::vector<CounterTotal> Registry::snapshot_counters() const {
  std::lock_guard lock(mu_);
  std::vector<CounterTotal> out;
  for (const auto& [n, c] : counters_) {
    const std::uint64_t v = c->total();
    if (v > 0) out.push_back({n, v, c->approx()});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<HistogramSnapshot> Registry::snapshot_histograms() const {
  std::lock_guard lock(mu_);
  std::vector<HistogramSnapshot> out;
  for (const auto& [n, h] : histograms_) {
    HistogramSnapshot snap = h->snapshot();
    if (snap.count > 0) out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<GaugeSnapshot> Registry::snapshot_gauges() const {
  std::lock_guard lock(mu_);
  std::vector<GaugeSnapshot> out;
  for (const auto& [n, g] : gauges_) {
    if (g->peak() > 0) out.push_back({n, g->value(), g->peak()});
  }
  std::sort(out.begin(), out.end(),
            [](const GaugeSnapshot& a, const GaugeSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset_counters() {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_) c->reset();
}

void Registry::reset_histograms() {
  std::lock_guard lock(mu_);
  for (auto& [n, h] : histograms_) h->reset();
}

void Registry::reset_gauges() {
  std::lock_guard lock(mu_);
  for (auto& [n, g] : gauges_) g->reset();
}

void Registry::add_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Registry::clear_sinks() {
  std::lock_guard lock(mu_);
  sinks_.clear();
}

void Registry::emit_span(const SpanRecord& rec) {
  std::lock_guard lock(mu_);
  for (auto& s : sinks_) s->on_span(rec);
  // Top-level phase boundaries double as memory sampling points, so the
  // manifest's RSS peak reflects every phase even without --progress.
  if (rec.depth == 0 && !rec.chunk) sample_memory_locked();
}

void Registry::sample_process_memory() {
  std::lock_guard lock(mu_);
  sample_memory_locked();
}

void Registry::sample_memory_locked() {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return;
  std::string line;
  std::uint64_t rss = 0, hwm = 0;
  while (std::getline(in, line)) {
    if (std::uint64_t v = proc_status_kb(line, "VmRSS:")) rss = v;
    if (std::uint64_t v = proc_status_kb(line, "VmHWM:")) hwm = v;
  }
  if (rss > 0) gauge_locked("mem.rss_bytes").set(rss);
  if (hwm > 0) gauge_locked("mem.hwm_bytes").set(hwm);
}

void Registry::beat_locked(Ticks at, bool final_beat) {
  // Totals are a live (non-quiescent) read: safe, possibly a few adds shy
  // of the in-flight truth. The final exact totals come from finish().
  sample_memory_locked();
  std::vector<CounterTotal> totals;
  for (const auto& [n, c] : counters_) {
    const std::uint64_t v = c->total();
    if (v > 0) totals.push_back({n, v, c->approx()});
  }
  std::sort(totals.begin(), totals.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              return a.name < b.name;
            });
  Heartbeat hb;
  hb.at = at;
  hb.elapsed_sec =
      static_cast<double>(at - heartbeat_started_) / 1e9;
  hb.final = final_beat;
  const double interval =
      std::max(last_beat_totals_.empty() ? hb.elapsed_sec
                                         : last_interval_sec_,
               1e-9);
  for (const CounterTotal& t : totals) {
    std::uint64_t prev = 0;
    for (const CounterTotal& p : last_beat_totals_)
      if (p.name == t.name) prev = p.value;
    hb.lines.push_back(
        {t.name, t.value, static_cast<double>(t.value - prev) / interval});
  }
  for (const auto& [n, g] : gauges_)
    if (g->peak() > 0) hb.gauges.push_back({n, g->value(), g->peak()});
  std::sort(hb.gauges.begin(), hb.gauges.end(),
            [](const GaugeSnapshot& a, const GaugeSnapshot& b) {
              return a.name < b.name;
            });
  std::string msg = "[obs] " + std::to_string(hb.elapsed_sec);
  msg.resize(msg.find('.') + 2);  // one decimal of elapsed seconds
  msg += final_beat ? "s (final)" : "s";
  for (const auto& line : hb.lines) {
    msg += "  " + line.name + "=" + format_count(line.total);
    if (line.rate_per_sec >= 1.0)
      msg += " (" +
             format_count(static_cast<std::uint64_t>(line.rate_per_sec)) +
             "/s)";
  }
  for (const auto& g : hb.gauges)
    if (g.name == "mem.rss_bytes")
      msg += "  rss=" + format_count(g.value) + "B";
  msg += "\n";
  std::fputs(msg.c_str(), stderr);
  for (auto& s : sinks_) s->on_heartbeat(hb);
  last_beat_totals_ = std::move(totals);
}

void Registry::start_heartbeat(std::chrono::milliseconds period) {
  std::lock_guard lock(mu_);
  if (heartbeat_.joinable()) return;
  heartbeat_started_ = now();
  last_beat_totals_.clear();
  last_interval_sec_ = static_cast<double>(period.count()) / 1e3;
  heartbeat_ = std::jthread([this, period](std::stop_token stop) {
    std::unique_lock lock(mu_);
    while (!stop.stop_requested()) {
      if (heartbeat_cv_.wait_for(lock, stop, period,
                                 [&] { return stop.stop_requested(); }))
        return;
      beat_locked(now(), /*final_beat=*/false);
    }
  });
}

void Registry::stop_heartbeat() {
  {
    std::lock_guard lock(mu_);
    if (!heartbeat_.joinable()) return;
    heartbeat_.request_stop();
  }
  heartbeat_cv_.notify_all();
  heartbeat_.join();
  heartbeat_ = std::jthread();
  // One closing beat so runs shorter than a beat interval still report
  // totals/rates, and so event streams carry a terminal "final" heartbeat.
  std::lock_guard lock(mu_);
  beat_locked(now(), /*final_beat=*/true);
}

void Registry::finish() {
  stop_heartbeat();
  sample_process_memory();
  const auto totals = snapshot_counters();
  const auto hists = snapshot_histograms();
  const auto gauges = snapshot_gauges();
  std::lock_guard lock(mu_);
  for (auto& s : sinks_) s->on_counters(totals);
  for (auto& s : sinks_) s->on_histograms(hists);
  for (auto& s : sinks_) s->on_gauges(gauges);
  for (auto& s : sinks_) s->flush();
}

Span::Span(const char* name, bool chunk) : name_(name), chunk_(chunk) {
  if (!enabled()) return;
  active_ = true;
  t_span_stack.push_back(name_);
  start_ = now();
}

Span::~Span() {
  if (!active_) return;
  const Ticks end = now();
  t_span_stack.pop_back();
  SpanRecord rec;
  rec.name = name_;
  rec.start = start_;
  rec.end = end;
  rec.tid = t_tid;
  rec.depth = static_cast<std::uint32_t>(t_span_stack.size());
  rec.chunk = chunk_;
  Registry::global().emit_span(rec);
}

const char* current_span_name() {
  return t_span_stack.empty() ? nullptr : t_span_stack.back();
}

LaneScope::LaneScope(std::uint32_t lane) : prev_(t_tid) { t_tid = lane; }
LaneScope::~LaneScope() { t_tid = prev_; }

}  // namespace ringstab::obs
