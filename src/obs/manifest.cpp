#include "obs/manifest.hpp"

#include <algorithm>
#include <thread>

namespace ringstab::obs {

MetricsSink::MetricsSink(std::ostream& out, std::string command)
    : out_(&out), command_(std::move(command)), created_at_(now()) {}

void MetricsSink::on_span(const SpanRecord& rec) {
  const std::uint64_t dur = rec.end - rec.start;
  first_start_ = std::min(first_start_, rec.start);
  last_end_ = std::max(last_end_, rec.end);
  if (rec.chunk) {
    // Chunk slices are leaves on worker lanes; aggregate them under a
    // synthetic "<phase>/chunks" row rather than threading them into the
    // self-time bookkeeping (their parent phase runs on another lane).
    PhaseAgg& a = phases_[std::string(rec.name) + "/chunks"];
    if (a.calls == 0) a.order = phases_.size();
    ++a.calls;
    a.total_ns += dur;
    a.self_ns += dur;
    return;
  }
  // Spans close child-before-parent on their thread, so when a span at
  // depth d closes, child_ns_[tid][d+1] holds exactly the sum of its
  // direct children's durations.
  std::vector<std::uint64_t>& cs = child_ns_[rec.tid];
  if (cs.size() < rec.depth + 2) cs.resize(rec.depth + 2, 0);
  const std::uint64_t child_total = std::min(cs[rec.depth + 1], dur);
  cs[rec.depth + 1] = 0;
  cs[rec.depth] += dur;
  PhaseAgg& a = phases_[rec.name];
  if (a.calls == 0) a.order = phases_.size();
  ++a.calls;
  a.total_ns += dur;
  a.self_ns += dur - child_total;
}

void MetricsSink::on_counters(const std::vector<CounterTotal>& totals) {
  counters_ = totals;
}

void MetricsSink::on_histograms(const std::vector<HistogramSnapshot>& hists) {
  histograms_ = hists;
}

void MetricsSink::on_gauges(const std::vector<GaugeSnapshot>& gauges) {
  gauges_ = gauges;
}

json::Value MetricsSink::build() const {
  using json::Value;
  Value doc = Value::object();
  doc.add("schema", Value::string(kManifestSchema));
  doc.add("command", Value::string(command_));
  doc.add("git_describe", Value::string(git_describe()));
  // A signal-interrupted run still flushes a manifest (the ShutdownWatcher
  // path), but marks it so downstream tooling can tell partial totals from
  // a completed run. validate_manifest ignores unknown fields, so the
  // stamped document stays schema-clean.
  if (interrupted()) doc.add("interrupted", Value::boolean_v(true));

  Value hw = Value::object();
  hw.add("threads_available",
         Value::number_u64(std::max(1u, std::thread::hardware_concurrency())));
  doc.add("hardware", std::move(hw));

  const std::uint64_t wall =
      first_start_ <= last_end_ && first_start_ != ~Ticks{0}
          ? last_end_ - first_start_
          : now() - created_at_;
  doc.add("wall_time_ns", Value::number_u64(wall));

  // Phases in first-seen order (matches the --stats table).
  std::vector<std::pair<std::string, PhaseAgg>> rows(phases_.begin(),
                                                     phases_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.order < b.second.order;
  });
  Value phases = Value::array();
  for (const auto& [name, a] : rows) {
    Value p = Value::object();
    p.add("name", Value::string(name));
    p.add("calls", Value::number_u64(a.calls));
    p.add("total_ns", Value::number_u64(a.total_ns));
    p.add("self_ns", Value::number_u64(a.self_ns));
    phases.push(std::move(p));
  }
  doc.add("phases", std::move(phases));

  Value counters = Value::array();
  for (const auto& c : counters_) {
    Value v = Value::object();
    v.add("name", Value::string(c.name));
    v.add("value", Value::number_u64(c.value));
    if (c.approx) v.add("approx", Value::boolean_v(true));
    counters.push(std::move(v));
  }
  doc.add("counters", std::move(counters));

  Value hists = Value::array();
  for (const auto& h : histograms_) {
    Value v = Value::object();
    v.add("name", Value::string(h.name));
    v.add("count", Value::number_u64(h.count));
    v.add("sum", Value::number_u64(h.sum));
    v.add("min", Value::number_u64(h.min));
    v.add("p50", Value::number_u64(h.quantile(0.50)));
    v.add("p90", Value::number_u64(h.quantile(0.90)));
    v.add("p99", Value::number_u64(h.quantile(0.99)));
    v.add("max", Value::number_u64(h.max));
    hists.push(std::move(v));
  }
  doc.add("histograms", std::move(hists));

  Value gauges = Value::array();
  for (const auto& g : gauges_) {
    Value v = Value::object();
    v.add("name", Value::string(g.name));
    v.add("value", Value::number_u64(g.value));
    v.add("peak", Value::number_u64(g.peak));
    gauges.push(std::move(v));
  }
  doc.add("gauges", std::move(gauges));
  return doc;
}

void MetricsSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  *out_ << json::dump(build()) << "\n";
  out_->flush();
}

namespace {

bool is_u64(const json::Value* v) {
  return v != nullptr && v->is_number() && !v->number.empty() &&
         v->number[0] != '-' &&
         v->number.find_first_of(".eE") == std::string::npos;
}

std::string check_named_u64s(const json::Value& doc, const char* section,
                             const std::vector<const char*>& fields) {
  const json::Value* arr = doc.find(section);
  if (arr == nullptr || !arr->is_array())
    return std::string("missing or non-array \"") + section + "\"";
  for (std::size_t i = 0; i < arr->items.size(); ++i) {
    const json::Value& e = arr->items[i];
    if (!e.is_object())
      return std::string(section) + "[" + std::to_string(i) +
             "] is not an object";
    const json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string())
      return std::string(section) + "[" + std::to_string(i) +
             "] has no string \"name\"";
    for (const char* f : fields)
      if (!is_u64(e.find(f)))
        return std::string(section) + " entry \"" + name->str +
               "\": field \"" + f + "\" missing or not an unsigned integer";
  }
  return "";
}

}  // namespace

std::string validate_manifest(const json::Value& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string())
    return "missing string \"schema\"";
  if (schema->str != kManifestSchema)
    return "schema is \"" + schema->str + "\", expected \"" +
           kManifestSchema + "\"";
  for (const char* f : {"command", "git_describe"}) {
    const json::Value* v = doc.find(f);
    if (v == nullptr || !v->is_string())
      return std::string("missing string \"") + f + "\"";
  }
  if (!is_u64(doc.find("wall_time_ns")))
    return "missing unsigned integer \"wall_time_ns\"";
  const json::Value* hw = doc.find("hardware");
  if (hw == nullptr || !hw->is_object() ||
      !is_u64(hw->find("threads_available")))
    return "missing \"hardware\" object with \"threads_available\"";
  if (std::string err = check_named_u64s(
          doc, "phases", {"calls", "total_ns", "self_ns"});
      !err.empty())
    return err;
  if (const json::Value* phases = doc.find("phases")) {
    for (const json::Value& p : phases->items) {
      if (p.find("self_ns")->as_u64() > p.find("total_ns")->as_u64())
        return "phase \"" + p.find("name")->str + "\": self_ns > total_ns";
    }
  }
  if (std::string err = check_named_u64s(doc, "counters", {"value"});
      !err.empty())
    return err;
  if (std::string err = check_named_u64s(
          doc, "histograms",
          {"count", "sum", "min", "p50", "p90", "p99", "max"});
      !err.empty())
    return err;
  if (std::string err = check_named_u64s(doc, "gauges", {"value", "peak"});
      !err.empty())
    return err;
  return "";
}

}  // namespace ringstab::obs
