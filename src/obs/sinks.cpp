#include "obs/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace ringstab::obs {
namespace {

double ms(Ticks t) { return static_cast<double>(t) / 1e6; }
double us(Ticks t) { return static_cast<double>(t) / 1e3; }

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ─── StatsSink ───────────────────────────────────────────────────────────

void StatsSink::on_span(const SpanRecord& rec) {
  const std::string key =
      rec.chunk ? std::string(1, '\x01') + rec.name : std::string(rec.name);
  Agg& a = phases_[key];
  if (a.calls == 0) {
    a.min = a.max = rec.end - rec.start;
    a.order = phases_.size();
  }
  const Ticks d = rec.end - rec.start;
  ++a.calls;
  a.total += d;
  a.min = std::min(a.min, d);
  a.max = std::max(a.max, d);
}

void StatsSink::on_counters(const std::vector<CounterTotal>& totals) {
  counters_ = totals;
}

void StatsSink::on_histograms(const std::vector<HistogramSnapshot>& hists) {
  histograms_ = hists;
}

void StatsSink::on_gauges(const std::vector<GaugeSnapshot>& gauges) {
  gauges_ = gauges;
}

void StatsSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  std::ostream& os = *out_;
  os << "── obs phase summary "
     << "──────────────────────────────────────────\n";
  if (phases_.empty()) os << "  (no spans recorded)\n";
  // Display in first-seen order; chunk aggregates directly under their
  // phase when both exist.
  std::vector<std::pair<std::string, Agg>> rows(phases_.begin(),
                                                phases_.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) {
              return a.second.order < b.second.order;
            });
  os << "  " << std::left << std::setw(34) << "phase" << std::right
     << std::setw(8) << "calls" << std::setw(12) << "total ms"
     << std::setw(11) << "mean ms" << std::setw(11) << "max ms" << "\n";
  for (const auto& [key, a] : rows) {
    const bool chunk = !key.empty() && key[0] == '\x01';
    const std::string label =
        chunk ? "  " + key.substr(1) + " ⟨chunks⟩" : key;
    os << "  " << std::left << std::setw(34) << label << std::right
       << std::setw(8) << a.calls << std::setw(12) << std::fixed
       << std::setprecision(2) << ms(a.total) << std::setw(11)
       << ms(a.total) / static_cast<double>(a.calls) << std::setw(11)
       << ms(a.max) << "\n";
  }
  if (!counters_.empty()) {
    os << "── obs counters "
       << "───────────────────────────────────────────────\n";
    // Approximate (schedule-dependent) counters carry a `~` prefix.
    for (const auto& c : counters_)
      os << "  " << std::left << std::setw(40)
         << (c.approx ? "~" + c.name : c.name) << std::right << std::setw(16)
         << c.value << "\n";
  }
  if (!histograms_.empty()) {
    os << "── obs histograms "
       << "─────────────────────────────────────────────\n";
    os << "  " << std::left << std::setw(30) << "histogram" << std::right
       << std::setw(10) << "count" << std::setw(12) << "p50"
       << std::setw(12) << "p90" << std::setw(12) << "p99" << std::setw(12)
       << "max" << "\n";
    for (const auto& h : histograms_)
      os << "  " << std::left << std::setw(30) << h.name << std::right
         << std::setw(10) << h.count << std::setw(12) << h.quantile(0.50)
         << std::setw(12) << h.quantile(0.90) << std::setw(12)
         << h.quantile(0.99) << std::setw(12) << h.max << "\n";
  }
  if (!gauges_.empty()) {
    os << "── obs gauges "
       << "─────────────────────────────────────────────────\n";
    for (const auto& g : gauges_)
      os << "  " << std::left << std::setw(40) << g.name << std::right
         << std::setw(16) << g.value << "  peak " << g.peak << "\n";
  }
  os << "──────────────────────────────────────────"
     << "─────────────────────\n";
  os.flush();
}

// ─── JsonlSink ───────────────────────────────────────────────────────────

void JsonlSink::on_span(const SpanRecord& rec) {
  *out_ << "{\"type\":\"span\",\"name\":\"" << json_escape(rec.name)
        << "\",\"start_ns\":" << rec.start << ",\"dur_ns\":"
        << rec.end - rec.start << ",\"tid\":" << rec.tid
        << ",\"depth\":" << rec.depth
        << ",\"chunk\":" << (rec.chunk ? "true" : "false") << "}\n";
}

void JsonlSink::on_heartbeat(const Heartbeat& hb) {
  *out_ << "{\"type\":\"heartbeat\",\"elapsed_sec\":" << hb.elapsed_sec
        << ",\"final\":" << (hb.final ? "true" : "false") << ",\"counters\":{";
  for (std::size_t i = 0; i < hb.lines.size(); ++i)
    *out_ << (i ? "," : "") << "\"" << json_escape(hb.lines[i].name)
          << "\":" << hb.lines[i].total;
  *out_ << "}";
  if (!hb.gauges.empty()) {
    *out_ << ",\"gauges\":{";
    for (std::size_t i = 0; i < hb.gauges.size(); ++i)
      *out_ << (i ? "," : "") << "\"" << json_escape(hb.gauges[i].name)
            << "\":" << hb.gauges[i].value;
    *out_ << "}";
  }
  *out_ << "}\n";
}

void JsonlSink::on_counters(const std::vector<CounterTotal>& totals) {
  *out_ << "{\"type\":\"counters\"";
  for (const auto& c : totals)
    *out_ << ",\"" << json_escape(c.name) << "\":" << c.value;
  *out_ << "}\n";
}

void JsonlSink::on_histograms(const std::vector<HistogramSnapshot>& hists) {
  for (const auto& h : hists) {
    *out_ << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
          << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
          << ",\"min\":" << h.min << ",\"max\":" << h.max
          << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
          << ",\"p99\":" << h.quantile(0.99) << "}\n";
  }
}

void JsonlSink::on_gauges(const std::vector<GaugeSnapshot>& gauges) {
  for (const auto& g : gauges) {
    *out_ << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
          << "\",\"value\":" << g.value << ",\"peak\":" << g.peak << "}\n";
  }
}

void JsonlSink::flush() { out_->flush(); }

// ─── ChromeTraceSink ─────────────────────────────────────────────────────

void ChromeTraceSink::on_span(const SpanRecord& rec) {
  spans_.push_back(rec);
}

void ChromeTraceSink::on_counters(const std::vector<CounterTotal>& totals) {
  counters_ = totals;
}

void ChromeTraceSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  std::ostream& os = *out_;
  // Rebase timestamps so the trace starts near 0.
  Ticks epoch = ~Ticks{0};
  for (const SpanRecord& s : spans_) epoch = std::min(epoch, s.start);
  if (spans_.empty()) epoch = 0;

  std::vector<std::uint32_t> tids;
  for (const SpanRecord& s : spans_)
    if (std::find(tids.begin(), tids.end(), s.tid) == tids.end())
      tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());

  os << "[\n"
     << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"ringstab\"}}";
  for (std::uint32_t tid : tids) {
    os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (tid == 0 ? std::string("main") : "worker-" + std::to_string(tid))
       << "\"}}";
  }
  os << std::fixed << std::setprecision(3);
  for (const SpanRecord& s : spans_) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\""
       << json_escape(s.name) << "\",\"cat\":\""
       << (s.chunk ? "chunk" : "phase") << "\",\"ts\":" << us(s.start - epoch)
       << ",\"dur\":" << us(s.end - s.start) << "}";
  }
  // Final counter totals as one counter event at the end of the trace.
  Ticks last = epoch;
  for (const SpanRecord& s : spans_) last = std::max(last, s.end);
  for (const auto& c : counters_) {
    os << ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\""
       << json_escape(c.name) << "\",\"ts\":" << us(last - epoch)
       << ",\"args\":{\"value\":" << c.value << "}}";
  }
  os << "\n]\n";
  os.flush();
}

}  // namespace ringstab::obs
