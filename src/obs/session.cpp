#include "obs/session.hpp"

#include <iostream>
#include <memory>
#include <stdexcept>

#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/sinks.hpp"

namespace ringstab::obs {

Session::Session(const SessionOptions& options) {
  const bool wanted = options.stats || options.progress ||
                      !options.trace_path.empty() ||
                      !options.jsonl_path.empty() ||
                      !options.metrics_path.empty();
  if (!wanted) return;

  Registry& reg = Registry::global();
  reg.clear_sinks();
  reg.reset_counters();
  reg.reset_histograms();
  reg.reset_gauges();
  if (options.stats) reg.add_sink(std::make_shared<StatsSink>(std::cerr));
  if (!options.trace_path.empty()) {
    auto sink =
        std::make_shared<FileSink<ChromeTraceSink>>(options.trace_path);
    if (!sink->ok())
      throw std::runtime_error("cannot open trace file: " +
                               options.trace_path);
    file_sinks_.push_back(sink);
    reg.add_sink(std::move(sink));
  }
  if (!options.jsonl_path.empty()) {
    auto sink = std::make_shared<FileSink<JsonlSink>>(options.jsonl_path);
    if (!sink->ok())
      throw std::runtime_error("cannot open jsonl file: " +
                               options.jsonl_path);
    file_sinks_.push_back(sink);
    reg.add_sink(std::move(sink));
  }
  if (!options.metrics_path.empty()) {
    auto sink = std::make_shared<FileSink<MetricsSink>>(options.metrics_path,
                                                        options.command);
    if (!sink->ok())
      throw std::runtime_error("cannot open metrics file: " +
                               options.metrics_path);
    file_sinks_.push_back(sink);
    reg.add_sink(std::move(sink));
  }
  g_enabled.store(true, std::memory_order_relaxed);
  reg.sample_process_memory();  // baseline RSS before the run does work
  if (options.progress) reg.start_heartbeat(options.heartbeat_period);
  active_ = true;
}

bool Session::finish() {
  if (!active_) return true;
  if (finished_) return ok_;
  finished_ = true;
  Registry& reg = Registry::global();
  reg.finish();
  g_enabled.store(false, std::memory_order_relaxed);
  for (const auto& sink : file_sinks_) {
    if (!sink->healthy()) {
      ok_ = false;
      std::cerr << "ringstab: error: " << sink->describe()
                << " is incomplete (a write failed mid-run)\n";
    }
  }
  reg.clear_sinks();
  file_sinks_.clear();
  return ok_;
}

Session::~Session() { finish(); }

}  // namespace ringstab::obs
