// RAII configuration of process-wide observability from front-end flags
// (--stats / --trace / --jsonl / --metrics / --progress).
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace ringstab::obs {

class Sink;

struct SessionOptions {
  bool stats = false;          // print a phase/counter summary at exit
  bool progress = false;       // periodic counter heartbeat on stderr
  std::string trace_path;      // Chrome trace-event JSON ("" = off)
  std::string jsonl_path;      // JSON-lines event stream ("" = off)
  std::string metrics_path;    // versioned run manifest JSON ("" = off)
  std::string command;         // run label recorded in the manifest
  std::chrono::milliseconds heartbeat_period{1000};
};

/// Enables instrumentation on construction when any output is requested
/// (otherwise a no-op: the engines keep their uninstrumented fast path) and
/// finishes on destruction — stops the heartbeat, delivers exact counter
/// totals, flushes and detaches every sink, disables instrumentation.
/// The stats summary goes to stderr so stdout stays machine-parseable.
class Session {
 public:
  explicit Session(const SessionOptions& options);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool active() const { return active_; }

  /// Explicit teardown: delivers totals, flushes sinks, and reports
  /// whether every file-backed artifact was written intact. Front-ends
  /// call this before exiting and fold `false` into a nonzero exit code
  /// so `--metrics x.json` can never silently leave a truncated x.json.
  /// Idempotent; the destructor calls it (discarding the result) if the
  /// front-end didn't.
  bool finish();

 private:
  bool active_ = false;
  bool finished_ = false;
  bool ok_ = true;
  /// The file-backed sinks this session registered, kept so finish() can
  /// interrogate their health after the final flush.
  std::vector<std::shared_ptr<Sink>> file_sinks_;
};

}  // namespace ringstab::obs
