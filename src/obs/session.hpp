// RAII configuration of process-wide observability from front-end flags
// (--stats / --trace / --jsonl / --metrics / --progress).
#pragma once

#include <chrono>
#include <string>

namespace ringstab::obs {

struct SessionOptions {
  bool stats = false;          // print a phase/counter summary at exit
  bool progress = false;       // periodic counter heartbeat on stderr
  std::string trace_path;      // Chrome trace-event JSON ("" = off)
  std::string jsonl_path;      // JSON-lines event stream ("" = off)
  std::string metrics_path;    // versioned run manifest JSON ("" = off)
  std::string command;         // run label recorded in the manifest
  std::chrono::milliseconds heartbeat_period{1000};
};

/// Enables instrumentation on construction when any output is requested
/// (otherwise a no-op: the engines keep their uninstrumented fast path) and
/// finishes on destruction — stops the heartbeat, delivers exact counter
/// totals, flushes and detaches every sink, disables instrumentation.
/// The stats summary goes to stderr so stdout stays machine-parseable.
class Session {
 public:
  explicit Session(const SessionOptions& options);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
};

}  // namespace ringstab::obs
