// A small self-contained JSON document model with a recursive-descent
// parser and a compact serializer, shared by the run-manifest sink
// (manifest.hpp) and the `ringstab-perf` regression tool.
//
// Two properties matter more than generality here:
//  * Round-trip fidelity: numbers keep their source text verbatim and
//    object members keep insertion order, so parse → dump reproduces a
//    document emitted by dump() byte for byte. The manifest schema is
//    all-integer for exactly this reason (no float re-formatting drift),
//    and tests/test_obs.cpp locks the emit → parse → re-emit loop in.
//  * Diagnosable failure: parse errors throw with a byte offset, which
//    ringstab-perf turns into its exit-code-2 schema errors.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ringstab::obs::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  std::string number;  // numeric source text, kept verbatim for round-trip
  std::string str;     // decoded string payload
  std::vector<Value> items;                              // Array
  std::vector<std::pair<std::string, Value>> members;    // Object, ordered

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Numeric accessors; return `fallback` when not a number (or overflow).
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;

  // ── construction helpers (builder style, insertion-ordered) ──
  static Value object();
  static Value array();
  static Value string(std::string s);
  static Value number_u64(std::uint64_t v);
  static Value number_raw(std::string digits);
  static Value boolean_v(bool b);
  /// Appends a member (no duplicate check) and returns the object itself.
  Value& add(std::string key, Value v);
  Value& push(Value v);
};

/// Parses one JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Compact one-line serialization (no added whitespace); members in
/// insertion order, numbers verbatim.
std::string dump(const Value& v);

}  // namespace ringstab::obs::json
