// Observability core: RAII phase spans on a monotonic clock, named
// counters with lock-free sharded storage, and pluggable event sinks.
//
// Design notes:
//  * One process-wide Registry (Registry::global()). Instrumentation sites
//    never pass handles around; they open spans and bump counters by name.
//  * Everything is gated on a single relaxed atomic `enabled` flag. With
//    observability off (the default) a Span constructor and a Counter::add
//    are one relaxed load and a predictable branch — the engines' results
//    and throughput are those of the uninstrumented code.
//  * Counter::add is lock-free: each thread hashes to one of kShards
//    cache-line-padded atomic slots and does a relaxed fetch_add. Sums over
//    the shards are exact once writers have quiesced (a parallel_for join,
//    a Session finish) because every add lands whole in exactly one shard.
//  * Spans nest per thread (a thread-local stack); parallel_for emits one
//    chunk-grained span per chunk on the lane that ran it, tagged with the
//    lane id, so trace sinks can render one track per worker thread.
//  * Sinks (sinks.hpp) consume span records, heartbeats, and final counter
//    totals; Registry serializes all sink calls under one mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ringstab::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch.
using Ticks = std::uint64_t;
Ticks now();

/// Global instrumentation switch, read on every span/counter fast path.
inline std::atomic<bool> g_enabled{false};
inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// One finished span. `name` must be a string with static storage duration
/// (instrumentation sites use literals).
struct SpanRecord {
  const char* name = "";
  Ticks start = 0;
  Ticks end = 0;
  std::uint32_t tid = 0;    // logical lane: 0 = caller, 1.. = pool workers
  std::uint32_t depth = 0;  // nesting depth on its thread at open time
  bool chunk = false;       // a parallel_for chunk slice (vs a phase span)
};

struct CounterTotal {
  std::string name;
  std::uint64_t value = 0;
};

struct Heartbeat {
  Ticks at = 0;
  double elapsed_sec = 0;
  /// Counters with nonzero totals, plus their rate since the last beat.
  struct Line {
    std::string name;
    std::uint64_t total = 0;
    double rate_per_sec = 0;  // delta since previous beat / interval
  };
  std::vector<Line> lines;
};

/// Event consumer; implementations in sinks.hpp. All callbacks run under
/// the Registry mutex (serialized, possibly from the heartbeat thread).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord&) {}
  virtual void on_heartbeat(const Heartbeat&) {}
  /// Final exact totals, once, at Session end.
  virtual void on_counters(const std::vector<CounterTotal>&) {}
  virtual void flush() {}
};

/// A named monotonically increasing counter with sharded lock-free storage.
class Counter {
 public:
  static constexpr std::size_t kShards = 32;

  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  /// Relaxed fetch_add on this thread's shard; no-op while disabled.
  void add(std::uint64_t n) {
    if (!enabled() || n == 0) return;
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over the shards: exact once all writers have joined.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index();

  std::string name_;
  Shard shards_[kShards];
};

/// The process-wide registry of counters and sinks.
class Registry {
 public:
  static Registry& global();

  /// Find-or-create; the reference stays valid for the process lifetime.
  Counter& counter(std::string_view name);

  /// Exact totals of every registered counter, sorted by name. Counters
  /// that never fired (total 0) are omitted.
  std::vector<CounterTotal> snapshot_counters() const;
  void reset_counters();

  void add_sink(std::shared_ptr<Sink> sink);
  void clear_sinks();

  void emit_span(const SpanRecord& rec);

  /// Periodic heartbeat: counter totals + rates to stderr and to every
  /// sink, on a dedicated thread, until stop_heartbeat()/finish().
  void start_heartbeat(std::chrono::milliseconds period);
  void stop_heartbeat();

  /// Stop the heartbeat, deliver final counter totals, flush all sinks.
  void finish();

 private:
  Registry() = default;
  void beat_locked(Ticks at);  // requires mu_

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::jthread heartbeat_;
  std::condition_variable_any heartbeat_cv_;
  Ticks heartbeat_started_ = 0;
  double last_interval_sec_ = 0;  // configured beat period, for rates
  std::vector<CounterTotal> last_beat_totals_;
};

/// Shorthand: Registry::global().counter(name).
inline Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

/// RAII phase span. Opens on construction (when enabled), emits one
/// SpanRecord on destruction. `name` must outlive the program (literal).
class Span {
 public:
  explicit Span(const char* name, bool chunk = false);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  Ticks start_ = 0;
  bool active_ = false;
  bool chunk_ = false;
};

/// Innermost open span name on this thread, or nullptr. parallel_for reads
/// this on the calling thread to label the chunk slices it emits on lanes.
const char* current_span_name();

/// Sets this thread's logical lane id for the scope (used by the pool so
/// spans opened inside a parallel region carry the worker's track id).
class LaneScope {
 public:
  explicit LaneScope(std::uint32_t lane);
  ~LaneScope();
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  std::uint32_t prev_;
};

}  // namespace ringstab::obs
