// Observability core: RAII phase spans on a monotonic clock, named
// counters with lock-free sharded storage, log-bucketed latency/size
// histograms, gauges with peak tracking, and pluggable event sinks.
//
// Design notes:
//  * One process-wide Registry (Registry::global()). Instrumentation sites
//    never pass handles around; they open spans and bump counters by name.
//  * Everything is gated on a single relaxed atomic `enabled` flag. With
//    observability off (the default) a Span constructor, a Counter::add,
//    and a Histogram::record are one relaxed load and a predictable
//    branch — the engines' results and throughput are those of the
//    uninstrumented code.
//  * Counter::add is lock-free: each thread hashes to one of kShards
//    cache-line-padded atomic slots and does a relaxed fetch_add. Sums over
//    the shards are exact once writers have quiesced (a parallel_for join,
//    a Session finish) because every add lands whole in exactly one shard.
//  * Histogram::record uses the same per-thread sharding over per-shard
//    bucket arrays; merged bucket counts are exact after writers quiesce,
//    so histograms of problem-shaped values (e.g. SCC region sizes) are
//    bit-identical at every thread count.
//  * Counters are exact by default; registration sites that count *work
//    done under a race* (early-exit scans, memo traffic) register with
//    approx=true and render with a `~` prefix in --stats and an
//    "approx" flag in the run manifest.
//  * Spans nest per thread (a thread-local stack); parallel_for emits one
//    chunk-grained span per chunk on the lane that ran it, tagged with the
//    lane id, so trace sinks can render one track per worker thread.
//  * Sinks (sinks.hpp) consume span records, heartbeats, and final counter
//    /histogram/gauge totals; Registry serializes all sink calls under one
//    mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ringstab::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch.
using Ticks = std::uint64_t;
Ticks now();

/// Global instrumentation switch, read on every span/counter fast path.
inline std::atomic<bool> g_enabled{false};
inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// `git describe` of the build (compile-time stamp, "unknown" outside git).
const char* git_describe();

/// Set (never cleared) when a signal cut the run short; the manifest sink
/// stamps `"interrupted": true` so downstream tooling can tell a partial
/// artifact from a completed one. Safe to call from any thread — but NOT
/// from an async signal handler (the flag is consumed by ordinary code;
/// the serve::ShutdownWatcher sigwait thread is the intended caller).
inline std::atomic<bool> g_interrupted{false};
inline void mark_interrupted() {
  g_interrupted.store(true, std::memory_order_relaxed);
}
inline bool interrupted() {
  return g_interrupted.load(std::memory_order_relaxed);
}

namespace detail {
/// Small dense per-thread ordinal: distinct threads land on distinct
/// shards (mod the shard count) until more threads than shards exist.
std::size_t thread_ordinal();
}  // namespace detail

/// One finished span. `name` must be a string with static storage duration
/// (instrumentation sites use literals).
struct SpanRecord {
  const char* name = "";
  Ticks start = 0;
  Ticks end = 0;
  std::uint32_t tid = 0;    // logical lane: 0 = caller, 1.. = pool workers
  std::uint32_t depth = 0;  // nesting depth on its thread at open time
  bool chunk = false;       // a parallel_for chunk slice (vs a phase span)
};

struct CounterTotal {
  std::string name;
  std::uint64_t value = 0;
  /// True when the registration site marked the counter schedule-dependent
  /// (counts work done, not problem size). Rendered as `~name`.
  bool approx = false;
};

/// Merged view of one histogram once writers have quiesced. Bucket counts
/// are exact; bucket values are the log-bucket lower bounds.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // exact smallest recorded value
  std::uint64_t max = 0;  // exact largest recorded value
  /// Nonzero buckets, ascending: (bucket index, count).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  /// Upper bound of the bucket holding the q-quantile, clamped into
  /// [min, max]; q in [0, 1]. quantile(1.0) == max.
  std::uint64_t quantile(double q) const;
};

struct GaugeSnapshot {
  std::string name;
  std::uint64_t value = 0;
  std::uint64_t peak = 0;
};

struct Heartbeat {
  Ticks at = 0;
  double elapsed_sec = 0;
  /// The teardown beat emitted when --progress stops, so runs shorter than
  /// one beat interval still report totals.
  bool final = false;
  /// Counters with nonzero totals, plus their rate since the last beat.
  struct Line {
    std::string name;
    std::uint64_t total = 0;
    double rate_per_sec = 0;  // delta since previous beat / interval
  };
  std::vector<Line> lines;
  /// Gauges with nonzero peaks (memory telemetry sampled before the beat).
  std::vector<GaugeSnapshot> gauges;
};

/// Event consumer; implementations in sinks.hpp. All callbacks run under
/// the Registry mutex (serialized, possibly from the heartbeat thread).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord&) {}
  virtual void on_heartbeat(const Heartbeat&) {}
  /// Final exact totals, once, at Session end.
  virtual void on_counters(const std::vector<CounterTotal>&) {}
  virtual void on_histograms(const std::vector<HistogramSnapshot>&) {}
  virtual void on_gauges(const std::vector<GaugeSnapshot>&) {}
  virtual void flush() {}
  /// False once the sink's backing artifact can no longer be completed
  /// (e.g. a write to its file failed). Checked by Session::finish() so a
  /// run that asked for --metrics/--trace/--jsonl exits nonzero instead of
  /// silently leaving a truncated artifact behind.
  virtual bool healthy() const { return true; }
  /// Short human label for health warnings ("metrics file x.json", …).
  virtual std::string describe() const { return "sink"; }
};

/// A named monotonically increasing counter with sharded lock-free storage.
class Counter {
 public:
  static constexpr std::size_t kShards = 32;

  explicit Counter(std::string name, bool approx = false)
      : name_(std::move(name)), approx_(approx) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }
  bool approx() const { return approx_.load(std::memory_order_relaxed); }
  void mark_approx() { approx_.store(true, std::memory_order_relaxed); }

  /// Relaxed fetch_add on this thread's shard; no-op while disabled.
  void add(std::uint64_t n) {
    if (!enabled() || n == 0) return;
    shards_[detail::thread_ordinal() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over the shards: exact once all writers have joined.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  std::string name_;
  std::atomic<bool> approx_;
  Shard shards_[kShards];
};

/// A named log-bucketed (HDR-style) histogram of uint64 values with the
/// same sharded-per-thread relaxed-atomic design as Counter: record() is
/// one fetch_add into this thread's shard, merged bucket counts are exact
/// once writers quiesce, and the bucket partition depends only on the
/// recorded values — never on the thread count — so histograms of
/// problem-shaped metrics are thread-count-invariant.
///
/// Buckets: values below 2^kSubBits map exactly; above that, each octave
/// splits into 2^kSubBits sub-buckets (relative bucket width <= 1/8).
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 3;
  static constexpr std::uint32_t kSubCount = 1u << kSubBits;  // 8
  static constexpr std::uint32_t kBuckets = (64 - kSubBits + 1) * kSubCount;

  explicit Histogram(std::string name);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  /// Relaxed bucket increment on this thread's shard; no-op while disabled.
  void record(std::uint64_t value);

  /// Merged buckets + exact count/sum/min/max once writers have joined.
  HistogramSnapshot snapshot() const;
  void reset();

  static std::uint32_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower_bound(std::uint32_t index);
  /// Inclusive upper bound (the largest value mapping to the bucket).
  static std::uint64_t bucket_upper_bound(std::uint32_t index);

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    std::atomic<std::uint64_t> buckets[kBuckets];
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  std::string name_;
  std::unique_ptr<Shard[]> shards_;  // heap: ~32 KiB of buckets per shard
};

/// A named instantaneous level (bytes live, RSS, …) with a tracked peak.
/// Unlike counters, gauge updates are NOT gated on enabled(): allocation
/// accounting (mem.bitset_bytes) must stay balanced across enable/disable
/// transitions. Call sites are allocation-grained, never per-state.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }

  void set(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  void add(std::uint64_t n) {
    raise_peak(v_.fetch_add(n, std::memory_order_relaxed) + n);
  }
  /// Saturating at zero (a Session reset may have cleared the level while
  /// previously-counted allocations are still live).
  void sub(std::uint64_t n) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur > n ? cur - n : 0,
                                     std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_peak(std::uint64_t v) {
    std::uint64_t p = peak_.load(std::memory_order_relaxed);
    while (p < v &&
           !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::atomic<std::uint64_t> v_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// The process-wide registry of counters, histograms, gauges, and sinks.
class Registry {
 public:
  static Registry& global();

  /// Find-or-create; the reference stays valid for the process lifetime.
  /// `approx` is sticky: once any registration site marks a counter
  /// approximate it stays marked.
  Counter& counter(std::string_view name, bool approx = false);
  Histogram& histogram(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Exact totals of every registered counter, sorted by name. Counters
  /// that never fired (total 0) are omitted.
  std::vector<CounterTotal> snapshot_counters() const;
  /// Histograms with at least one recorded value, sorted by name.
  std::vector<HistogramSnapshot> snapshot_histograms() const;
  /// Gauges with a nonzero peak, sorted by name.
  std::vector<GaugeSnapshot> snapshot_gauges() const;
  void reset_counters();
  void reset_histograms();
  void reset_gauges();

  void add_sink(std::shared_ptr<Sink> sink);
  void clear_sinks();

  void emit_span(const SpanRecord& rec);

  /// Reads VmRSS/VmHWM from /proc/self/status into the mem.rss_bytes /
  /// mem.hwm_bytes gauges (no-op where /proc is unavailable). Called by
  /// the heartbeat thread before each beat, at top-level span boundaries,
  /// and by finish().
  void sample_process_memory();

  /// Periodic heartbeat: counter totals + rates to stderr and to every
  /// sink, on a dedicated thread, until stop_heartbeat()/finish().
  void start_heartbeat(std::chrono::milliseconds period);
  /// Stops the beat thread and emits one final beat (final=true) so runs
  /// shorter than one interval still report totals.
  void stop_heartbeat();

  /// Stop the heartbeat, deliver final counter/histogram/gauge totals,
  /// flush all sinks.
  void finish();

 private:
  Registry() = default;
  void beat_locked(Ticks at, bool final_beat);  // requires mu_
  Gauge& gauge_locked(std::string_view name);   // requires mu_
  void sample_memory_locked();                  // requires mu_

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::jthread heartbeat_;
  std::condition_variable_any heartbeat_cv_;
  Ticks heartbeat_started_ = 0;
  double last_interval_sec_ = 0;  // configured beat period, for rates
  std::vector<CounterTotal> last_beat_totals_;
};

/// Shorthand: Registry::global().counter(name). Pass approx=true at the
/// registration site of a schedule-dependent counter (docs/observability.md
/// "Counter semantics").
inline Counter& counter(std::string_view name, bool approx = false) {
  return Registry::global().counter(name, approx);
}

/// Shorthand: Registry::global().histogram(name).
inline Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

/// Shorthand: Registry::global().gauge(name).
inline Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}

/// RAII phase span. Opens on construction (when enabled), emits one
/// SpanRecord on destruction. `name` must outlive the program (literal).
/// Closing a top-level span also samples process memory, so the manifest's
/// memory peaks include a reading at every phase boundary.
class Span {
 public:
  explicit Span(const char* name, bool chunk = false);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  Ticks start_ = 0;
  bool active_ = false;
  bool chunk_ = false;
};

/// Innermost open span name on this thread, or nullptr. parallel_for reads
/// this on the calling thread to label the chunk slices it emits on lanes.
const char* current_span_name();

/// Sets this thread's logical lane id for the scope (used by the pool so
/// spans opened inside a parallel region carry the worker's track id).
class LaneScope {
 public:
  explicit LaneScope(std::uint32_t lane);
  ~LaneScope();
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  std::uint32_t prev_;
};

}  // namespace ringstab::obs
