#include "serve/shutdown.hpp"

#include <pthread.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/obs.hpp"

namespace ringstab::serve {

ShutdownWatcher::ShutdownWatcher(std::function<void(int)> on_signal)
    : on_signal_(std::move(on_signal)) {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  // Block on the constructing thread; every thread spawned from here on
  // (workers, connection handlers) inherits the mask, so sigwait() below
  // is the only place the process ever receives these signals.
  pthread_sigmask(SIG_BLOCK, &mask, &old_mask_);

  thread_ = std::thread([this, mask]() {
    for (;;) {
      int sig = 0;
      if (sigwait(&mask, &sig) != 0) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      const bool first = !signalled_.exchange(true, std::memory_order_acq_rel);
      if (first && on_signal_) on_signal_(sig);
      // Swallow repeats; keep sigwaiting so the destructor's wake-up
      // signal can release the thread.
    }
  });
}

ShutdownWatcher::~ShutdownWatcher() {
  stop_.store(true, std::memory_order_release);
  // The signal stays pending (it is blocked everywhere) until the watcher
  // loops back into sigwait — even if it is mid-callback right now.
  pthread_kill(thread_.native_handle(), SIGTERM);
  thread_.join();
  pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
}

bool ShutdownWatcher::signalled() const noexcept {
  return signalled_.load(std::memory_order_acquire);
}

void flush_and_exit_on_signal(int sig) {
  obs::mark_interrupted();
  std::fprintf(stderr, "\nringstab: interrupted by %s, flushing metrics\n",
               sig == SIGINT ? "SIGINT" : "SIGTERM");
  // Deliver whatever was recorded so far to every registered sink and
  // flush them; the manifest sink stamps "interrupted":true via the flag.
  obs::Registry::global().finish();
  // _Exit: the process is mid-computation on other threads; running static
  // destructors under them would be a use-after-free lottery.
  std::_Exit(128 + sig);
}

}  // namespace ringstab::serve
