// Content hashing for the serve verdict cache (DESIGN.md §12).
//
// The cache never trusts a hash for identity — entries are stored and
// compared by their full byte-string key, so a collision can at worst land
// two keys in the same shard. The hash only has to spread keys across
// shards and map buckets, which a 64-bit FNV-1a does fine without pulling
// in a third-party dependency.
#pragma once

#include <cstdint>
#include <string_view>

namespace ringstab::serve {

/// 64-bit FNV-1a over arbitrary bytes.
inline std::uint64_t hash_bytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Order-dependent mix of two hashes (golden-ratio spread).
inline std::uint64_t combine_hash(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

}  // namespace ringstab::serve
