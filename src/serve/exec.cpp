#include "serve/exec.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/lint.hpp"
#include "core/parser.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "local/array.hpp"
#include "local/convergence.hpp"
#include "obs/metrics_json.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab::serve {

int render_check(const Protocol& p, std::size_t k, std::size_t jobs,
                 bool symmetry, std::ostream& out) {
  const RingInstance ring(p, k);
  // The two engines produce identical verdicts; only the header differs.
  bool closure_ok, has_livelock, weakly, strongly;
  std::uint64_t deadlocks_outside_i;
  std::size_t max_recovery;
  std::vector<GlobalStateId> livelock_cycle;
  std::string deadlock_sample;
  if (symmetry) {
    const auto res = check_symmetric(ring, 8, jobs);
    out << p.name() << " at K=" << k << " (rotation quotient: "
        << res.num_necklaces << " necklaces for " << res.num_states
        << " states):\n";
    closure_ok = res.closure_ok;
    deadlocks_outside_i = res.num_deadlocks_outside_i;
    if (!res.deadlock_orbit_reps.empty())
      deadlock_sample = ring.brief(res.deadlock_orbit_reps[0]);
    has_livelock = res.has_livelock;
    livelock_cycle = res.livelock_cycle;
    weakly = res.weakly_converges;
    strongly = res.strongly_converges();
    max_recovery = res.max_recovery_steps;
  } else {
    const auto res = GlobalChecker(ring, jobs).check_all();
    out << p.name() << " at K=" << k << " (" << res.num_states
        << " states):\n";
    closure_ok = res.closure_ok;
    deadlocks_outside_i = res.num_deadlocks_outside_i;
    if (!res.deadlock_samples.empty())
      deadlock_sample = ring.brief(res.deadlock_samples[0]);
    has_livelock = res.has_livelock;
    livelock_cycle = res.livelock_cycle;
    weakly = res.weakly_converges;
    strongly = res.strongly_converges();
    max_recovery = res.max_recovery_steps;
  }
  out << "  closure of I:            " << (closure_ok ? "ok" : "VIOLATED")
      << "\n  deadlocks outside I:     " << deadlocks_outside_i;
  if (!deadlock_sample.empty()) out << "  (e.g. " << deadlock_sample << ")";
  out << "\n  livelock:                " << (has_livelock ? "YES" : "none");
  if (has_livelock) {
    out << "  cycle:";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(6, livelock_cycle.size()); ++i)
      out << " " << ring.brief(livelock_cycle[i]);
    if (livelock_cycle.size() > 6) out << " …";
  }
  out << "\n  weak convergence:        " << (weakly ? "yes" : "no")
      << "\n  strong self-stabilization: " << (strongly ? "YES" : "no")
      << "\n";
  if (strongly)
    out << "  worst-case recovery:     " << max_recovery << " steps\n";
  return strongly ? 0 : 1;
}

int render_synthesize(const Protocol& p, bool all, std::size_t jobs,
                      std::ostream& out) {
  SynthesisOptions options;
  options.num_threads = jobs;
  const auto res = synthesize_convergence(p, options);
  out << res.summary(p) << "\n";
  const std::size_t show = all ? res.solutions.size()
                               : std::min<std::size_t>(1, res.solutions.size());
  for (std::size_t i = 0; i < show; ++i) {
    out << "--- solution " << i + 1 << " ---\n"
        << describe(res.solutions[i].protocol) << "\n";
  }
  return res.success ? 0 : 1;
}

int render_lint(const LintResult& lint, const std::string& display_name,
                bool json, std::ostream& out) {
  if (json) {
    out << render_json(lint.diagnostics);
  } else {
    out << render_text(lint.diagnostics);
    out << display_name << ": " << lint.count(Severity::kError)
        << " error(s), " << lint.count(Severity::kWarning) << " warning(s), "
        << lint.count(Severity::kNote) << " note(s)";
    if (lint.suppressed > 0) out << ", " << lint.suppressed << " suppressed";
    out << "\n";
  }
  return lint.has_error() ? 1 : 0;
}

namespace {

bool has_marker(const std::string& text, const std::string& marker) {
  return text.find(marker) != std::string::npos;
}

}  // namespace

BatchOutcome batch_outcome(const std::string& text,
                           const std::string& filename,
                           const RequestOptions& options,
                           const std::shared_ptr<VerdictMemo>& memo) {
  BatchOutcome out;
  const bool array = has_marker(text, "topology: array");
  if (has_marker(text, "expect: converges")) out.expectation = "converges";
  if (has_marker(text, "expect: fails")) out.expectation = "fails";

  std::string lint_note;
  try {
    const ProtocolSource src = parse_protocol_source(text, filename);
    if (options.lint) {
      const LintResult lr = lint_source(src);
      lint_note = lr.diagnostics.empty()
                      ? " [lint: clean]"
                      : " [lint: " + std::to_string(lr.count(Severity::kError)) +
                            " err, " +
                            std::to_string(lr.count(Severity::kWarning)) +
                            " warn]";
      if (lr.has_error()) out.ok = false;
    }
    const Protocol p = build_protocol(src);
    out.name = p.name();
    bool certified = false;
    if (array) {
      const auto res = analyze_array_deadlocks(p);
      certified = res.deadlock_free_all_n && array_terminates_always(p);
      out.verdict = certified ? "converges (array, every length)"
                              : "deadlocks (array)";
    } else {
      const auto res = check_convergence(p);
      certified = res.verdict == ConvergenceAnalysis::Verdict::kConverges;
      switch (res.verdict) {
        case ConvergenceAnalysis::Verdict::kConverges:
          out.verdict = "converges (every ring size)";
          break;
        case ConvergenceAnalysis::Verdict::kDeadlock:
          out.verdict = "deadlocks";
          break;
        case ConvergenceAnalysis::Verdict::kTrailFound:
          out.verdict = "trail found (uncertifiable)";
          break;
        case ConvergenceAnalysis::Verdict::kInconclusive:
          out.verdict = "inconclusive";
          break;
      }
      if (options.check_k >= 2) {
        const RingInstance ring(p, options.check_k);
        const bool global_ok =
            options.symmetry
                ? check_symmetric(ring, 8, options.jobs).strongly_converges()
                : strongly_stabilizing(ring, options.jobs);
        out.verdict += global_ok ? " [global@K ok]" : " [global@K FAILS]";
        // A local certificate must never contradict the exhaustive check.
        if (certified && !global_ok) out.ok = false;
      }
      if (options.synth && !certified) {
        // Diagnostic only (never affects ok): can Problem 3.1 repair this
        // input? The shared memo makes repeated signatures cheap.
        SynthesisOptions opts;
        opts.num_threads = options.jobs;
        opts.memo = memo;
        opts.keep_rejected_reports = false;
        opts.require_closed_invariant = false;
        const auto synth = synthesize_convergence(p, opts);
        out.verdict += synth.success
                           ? " [synth: " +
                                 std::to_string(synth.solutions.size()) +
                                 " solutions]"
                           : " [synth: none]";
      }
    }
    if (out.expectation == "converges") out.ok = out.ok && certified;
    if (out.expectation == "fails") out.ok = out.ok && !certified;
  } catch (const Error& e) {
    out.verdict = std::string("ERROR: ") + e.what();
    out.ok = out.expectation.empty() && lint_note.empty();
  }
  out.verdict += lint_note;
  return out;
}

std::string batch_outcome_json(const BatchOutcome& outcome) {
  using obs::json::Value;
  Value doc = Value::object();
  doc.add("name", Value::string(outcome.name));
  doc.add("verdict", Value::string(outcome.verdict));
  doc.add("expectation", Value::string(outcome.expectation));
  doc.add("ok", Value::boolean_v(outcome.ok));
  return obs::json::dump(doc);
}

BatchOutcome parse_batch_outcome(const std::string& json_text) {
  const obs::json::Value doc = obs::json::parse(json_text);
  BatchOutcome out;
  const auto str = [&](const char* key) {
    const obs::json::Value* v = doc.find(key);
    if (v == nullptr || !v->is_string())
      throw ModelError(std::string("batch outcome missing string field '") +
                       key + "'");
    return v->str;
  };
  out.name = str("name");
  out.verdict = str("verdict");
  out.expectation = str("expectation");
  const obs::json::Value* ok = doc.find("ok");
  if (ok == nullptr || ok->kind != obs::json::Value::Kind::Bool)
    throw ModelError("batch outcome missing bool field 'ok'");
  out.ok = ok->boolean;
  return out;
}

namespace {

/// One-byte command tag for the cache key; unknown commands throw so a
/// typo'd cmd can never silently alias a real one.
char cmd_tag(const std::string& cmd) {
  if (cmd == "check") return 'C';
  if (cmd == "lint") return 'L';
  if (cmd == "synthesize") return 'S';
  if (cmd == "analyze") return 'A';
  throw ModelError("unknown serve command '" + cmd +
                   "' (expected check | lint | synthesize | analyze)");
}

}  // namespace

std::string cache_key(const Request& req) {
  std::string key;
  key.push_back(cmd_tag(req.cmd));
  memo_append_u64(key, req.k);
  // Result-affecting options only: `jobs` never changes a verdict (every
  // engine is bit-identical at any thread count), so it stays out.
  key.push_back(req.options.symmetry ? 1 : 0);
  key.push_back(req.options.all ? 1 : 0);
  key.push_back(req.options.json ? 1 : 0);
  key.push_back(req.options.lint ? 1 : 0);
  key.push_back(req.options.synth ? 1 : 0);
  memo_append_u64(key, req.options.check_k);
  // `name` is rendered into the output (lint summary lines, parse-error
  // prefixes, batch rows), so it is part of the verdict's identity.
  memo_append_u64(key, req.name.size());
  key += req.name;
  memo_append_u64(key, req.source.size());
  key += req.source;
  return key;
}

ExecResult execute(const Request& req,
                   const std::shared_ptr<VerdictMemo>& memo) {
  const char tag = cmd_tag(req.cmd);  // reject unknown cmds up front
  ExecResult res;
  std::ostringstream out;
  try {
    switch (tag) {
      case 'C': {
        if (req.k < 2 || req.k > 63)
          throw ModelError("invalid k value '" + std::to_string(req.k) +
                           "': expected an integer in [2, 63]");
        const Protocol p =
            build_protocol(parse_protocol_source(req.source, req.name));
        res.exit_code = render_check(p, req.k, req.options.jobs,
                                     req.options.symmetry, out);
        break;
      }
      case 'S': {
        const Protocol p =
            build_protocol(parse_protocol_source(req.source, req.name));
        res.exit_code =
            render_synthesize(p, req.options.all, req.options.jobs, out);
        break;
      }
      case 'L': {
        const LintResult lint = lint_ring_text(req.source, req.name);
        res.exit_code = render_lint(lint, req.name, req.options.json, out);
        break;
      }
      case 'A': {
        const BatchOutcome outcome =
            batch_outcome(req.source, req.name, req.options, memo);
        out << batch_outcome_json(outcome);
        res.exit_code = outcome.ok ? 0 : 1;
        break;
      }
    }
  } catch (const Error& e) {
    // Mirror the CLI's failure contract: a one-line `error:` message and
    // exit 1. Cached like any other verdict — the error is a pure function
    // of the request.
    out.str("");
    out << "error: " << e.what() << "\n";
    res.exit_code = 1;
  }
  res.output = out.str();
  return res;
}

}  // namespace ringstab::serve
