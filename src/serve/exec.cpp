#include "serve/exec.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

#include "analysis/lint.hpp"
#include "core/parser.hpp"
#include "core/printer.hpp"
#include "global/checker.hpp"
#include "global/symmetry.hpp"
#include "local/array.hpp"
#include "local/convergence.hpp"
#include "local/self_disabling.hpp"
#include "obs/metrics_json.hpp"
#include "sim/simulator.hpp"
#include "synthesis/local_synthesizer.hpp"

namespace ringstab::serve {

int render_check(const Protocol& p, std::size_t k, std::size_t jobs,
                 bool symmetry, std::ostream& out) {
  const RingInstance ring(p, k);
  // The two engines produce identical verdicts; only the header differs.
  bool closure_ok, has_livelock, weakly, strongly;
  std::uint64_t deadlocks_outside_i;
  std::size_t max_recovery;
  std::vector<GlobalStateId> livelock_cycle;
  std::string deadlock_sample;
  if (symmetry) {
    const auto res = check_symmetric(ring, 8, jobs);
    out << p.name() << " at K=" << k << " (rotation quotient: "
        << res.num_necklaces << " necklaces for " << res.num_states
        << " states):\n";
    closure_ok = res.closure_ok;
    deadlocks_outside_i = res.num_deadlocks_outside_i;
    if (!res.deadlock_orbit_reps.empty())
      deadlock_sample = ring.brief(res.deadlock_orbit_reps[0]);
    has_livelock = res.has_livelock;
    livelock_cycle = res.livelock_cycle;
    weakly = res.weakly_converges;
    strongly = res.strongly_converges();
    max_recovery = res.max_recovery_steps;
  } else {
    const auto res = GlobalChecker(ring, jobs).check_all();
    out << p.name() << " at K=" << k << " (" << res.num_states
        << " states):\n";
    closure_ok = res.closure_ok;
    deadlocks_outside_i = res.num_deadlocks_outside_i;
    if (!res.deadlock_samples.empty())
      deadlock_sample = ring.brief(res.deadlock_samples[0]);
    has_livelock = res.has_livelock;
    livelock_cycle = res.livelock_cycle;
    weakly = res.weakly_converges;
    strongly = res.strongly_converges();
    max_recovery = res.max_recovery_steps;
  }
  out << "  closure of I:            " << (closure_ok ? "ok" : "VIOLATED")
      << "\n  deadlocks outside I:     " << deadlocks_outside_i;
  if (!deadlock_sample.empty()) out << "  (e.g. " << deadlock_sample << ")";
  out << "\n  livelock:                " << (has_livelock ? "YES" : "none");
  if (has_livelock) {
    out << "  cycle:";
    for (std::size_t i = 0;
         i < std::min<std::size_t>(6, livelock_cycle.size()); ++i)
      out << " " << ring.brief(livelock_cycle[i]);
    if (livelock_cycle.size() > 6) out << " …";
  }
  out << "\n  weak convergence:        " << (weakly ? "yes" : "no")
      << "\n  strong self-stabilization: " << (strongly ? "YES" : "no")
      << "\n";
  if (strongly)
    out << "  worst-case recovery:     " << max_recovery << " steps\n";
  return strongly ? 0 : 1;
}

int render_synthesize(const Protocol& p, bool all, std::size_t jobs,
                      std::ostream& out) {
  SynthesisOptions options;
  options.num_threads = jobs;
  const auto res = synthesize_convergence(p, options);
  out << res.summary(p) << "\n";
  const std::size_t show = all ? res.solutions.size()
                               : std::min<std::size_t>(1, res.solutions.size());
  for (std::size_t i = 0; i < show; ++i) {
    out << "--- solution " << i + 1 << " ---\n"
        << describe(res.solutions[i].protocol) << "\n";
  }
  return res.success ? 0 : 1;
}

int render_lint(const LintResult& lint, const std::string& display_name,
                bool json, bool werror, std::ostream& out) {
  if (json) {
    out << render_json(lint.diagnostics);
  } else {
    out << render_text(lint.diagnostics);
    out << display_name << ": " << lint.count(Severity::kError)
        << " error(s), " << lint.count(Severity::kWarning) << " warning(s), "
        << lint.count(Severity::kNote) << " note(s)";
    if (lint.suppressed > 0) out << ", " << lint.suppressed << " suppressed";
    out << "\n";
  }
  if (lint.has_error()) return 1;
  return werror && lint.count(Severity::kWarning) > 0 ? 1 : 0;
}

namespace {

bool has_marker(const std::string& text, const std::string& marker) {
  return text.find(marker) != std::string::npos;
}

Scheduler parse_sim_scheduler(const std::string& s) {
  if (s == "coin") return Scheduler::kSynchronousCoin;
  if (s == "weighted") return Scheduler::kWeightedRandom;
  throw ModelError("unknown simulate scheduler '" + s +
                   "' (expected coin | weighted)");
}

ConvergenceTarget parse_sim_target(const std::string& s) {
  if (s == "invariant") return ConvergenceTarget::kInvariant;
  if (s == "one-token") return ConvergenceTarget::kOneIllegit;
  throw ModelError("unknown simulate target '" + s +
                   "' (expected invariant | one-token)");
}

StartKind parse_sim_start(const std::string& s) {
  if (s == "random") return StartKind::kRandom;
  if (s == "zero") return StartKind::kAllZero;
  if (s == "three") return StartKind::kThreeTokens;
  throw ModelError("unknown simulate start '" + s +
                   "' (expected random | zero | three)");
}

EstimateOptions estimate_options(const RequestOptions& options) {
  EstimateOptions eo;
  eo.scheduler = parse_sim_scheduler(options.scheduler);
  eo.target = parse_sim_target(options.target);
  eo.start = parse_sim_start(options.start);
  eo.coin = options.coin;
  eo.seed = options.sim_seed;
  eo.trajectories = options.trajectories;
  eo.round_cap = options.round_cap;
  eo.num_threads = options.jobs;
  return eo;
}

}  // namespace

int render_simulate(const Protocol& p, std::size_t k,
                    const RequestOptions& options, std::ostream& out) {
  const EstimateOptions eo = estimate_options(options);
  const ConvergenceEstimate est = estimate_convergence_rounds(p, k, eo);
  const char* unit =
      eo.scheduler == Scheduler::kWeightedRandom ? "steps" : "rounds";
  out << p.name() << " at K=" << k << ", " << est.trajectories
      << " trajectories (seed " << options.sim_seed << ", scheduler "
      << options.scheduler;
  if (eo.scheduler == Scheduler::kSynchronousCoin)
    out << " p=" << options.coin;
  out << ", target " << options.target << ", start " << options.start
      << "):\n";
  out << "  converged:       " << est.converged << "/" << est.trajectories;
  if (est.censored > 0)
    out << "  (" << est.censored << " censored at cap " << options.round_cap
        << ")";
  out << "\n";
  if (est.converged > 0) {
    out << "  mean " << unit << ":     " << est.mean_rounds << "  (95% CI ±"
        << est.ci95_half_width << ")\n"
        << "  stddev:          " << est.stddev_rounds << "\n"
        << "  min/p50/p95/max: " << est.min_rounds << " / " << est.p50_rounds
        << " / " << est.p95_rounds << " / " << est.max_rounds << "\n";
  }
  out << "  work:            " << est.total_rounds << " " << unit << ", "
      << est.total_process_steps << " process steps\n";
  if (eo.target == ConvergenceTarget::kOneIllegit) {
    // The Herman-protocol-conjecture reference (docs/theory.md §7).
    const double bound =
        4.0 * static_cast<double>(k) * static_cast<double>(k) / 27.0;
    out << "  (4/27)K^2 bound: " << bound << "  (mean "
        << (est.mean_rounds <= bound + est.ci95_half_width ? "consistent with"
                                                           : "ABOVE")
        << " bound)\n";
  }
  return est.censored == 0 ? 0 : 1;
}

BatchOutcome batch_outcome(const std::string& text,
                           const std::string& filename,
                           const RequestOptions& options,
                           const std::shared_ptr<VerdictMemo>& memo) {
  BatchOutcome out;
  const bool array = has_marker(text, "topology: array");
  if (has_marker(text, "expect: converges")) out.expectation = "converges";
  if (has_marker(text, "expect: fails")) out.expectation = "fails";

  std::string lint_note;
  try {
    const ProtocolSource src = parse_protocol_source(text, filename);
    if (options.lint) {
      const LintResult lr = lint_source(src);
      lint_note = lr.diagnostics.empty()
                      ? " [lint: clean]"
                      : " [lint: " + std::to_string(lr.count(Severity::kError)) +
                            " err, " +
                            std::to_string(lr.count(Severity::kWarning)) +
                            " warn]";
      if (lr.has_error()) out.ok = false;
      if (options.werror && lr.count(Severity::kWarning) > 0) out.ok = false;
    }
    const Protocol p = build_protocol(src);
    out.name = p.name();
    bool certified = false;
    if (array) {
      const auto res = analyze_array_deadlocks(p);
      certified = res.deadlock_free_all_n && array_terminates_always(p);
      out.verdict = certified ? "converges (array, every length)"
                              : "deadlocks (array)";
    } else {
      // Randomized protocols (a local t-arc cycle, e.g. Herman) violate
      // Assumption 1, so the local certifier is undefined on them; they are
      // analyzable only by the exhaustive check and the Monte Carlo probe.
      const bool assumption1 = is_self_terminating(p);
      if (assumption1) {
        const auto res = check_convergence(p);
        certified = res.verdict == ConvergenceAnalysis::Verdict::kConverges;
        switch (res.verdict) {
          case ConvergenceAnalysis::Verdict::kConverges:
            out.verdict = "converges (every ring size)";
            break;
          case ConvergenceAnalysis::Verdict::kDeadlock:
            out.verdict = "deadlocks";
            break;
          case ConvergenceAnalysis::Verdict::kTrailFound:
            out.verdict = "trail found (uncertifiable)";
            break;
          case ConvergenceAnalysis::Verdict::kInconclusive:
            out.verdict = "inconclusive";
            break;
        }
      } else {
        out.verdict = "randomized (Assumption 1 fails; simulate)";
      }
      if (options.check_k >= 2) {
        const RingInstance ring(p, options.check_k);
        const bool global_ok =
            options.symmetry
                ? check_symmetric(ring, 8, options.jobs).strongly_converges()
                : strongly_stabilizing(ring, options.jobs);
        out.verdict += global_ok ? " [global@K ok]" : " [global@K FAILS]";
        // A local certificate must never contradict the exhaustive check.
        if (certified && !global_ok) out.ok = false;
      }
      if (options.synth && !certified && assumption1) {
        // Diagnostic only (never affects ok): can Problem 3.1 repair this
        // input? The shared memo makes repeated signatures cheap.
        SynthesisOptions opts;
        opts.num_threads = options.jobs;
        opts.memo = memo;
        opts.keep_rejected_reports = false;
        opts.require_closed_invariant = false;
        const auto synth = synthesize_convergence(p, opts);
        out.verdict += synth.success
                           ? " [synth: " +
                                 std::to_string(synth.solutions.size()) +
                                 " solutions]"
                           : " [synth: none]";
      }
      if (options.sim_k >= 2) {
        // Diagnostic only (never affects ok): a Monte Carlo probe under the
        // synchronous-coin scheduler at ring size sim_k, using the request's
        // trajectory/seed/cap settings (docs/simulation.md).
        const auto est =
            estimate_convergence_rounds(p, options.sim_k,
                                        estimate_options(options));
        std::ostringstream sim;
        sim << " [sim@" << options.sim_k << ": " << est.converged << "/"
            << est.trajectories;
        if (est.converged > 0) sim << ", mean " << est.mean_rounds;
        sim << "]";
        out.verdict += sim.str();
      }
    }
    if (out.expectation == "converges") out.ok = out.ok && certified;
    if (out.expectation == "fails") out.ok = out.ok && !certified;
  } catch (const Error& e) {
    out.verdict = std::string("ERROR: ") + e.what();
    out.ok = out.expectation.empty() && lint_note.empty();
  }
  out.verdict += lint_note;
  return out;
}

std::string batch_outcome_json(const BatchOutcome& outcome) {
  using obs::json::Value;
  Value doc = Value::object();
  doc.add("name", Value::string(outcome.name));
  doc.add("verdict", Value::string(outcome.verdict));
  doc.add("expectation", Value::string(outcome.expectation));
  doc.add("ok", Value::boolean_v(outcome.ok));
  return obs::json::dump(doc);
}

BatchOutcome parse_batch_outcome(const std::string& json_text) {
  const obs::json::Value doc = obs::json::parse(json_text);
  BatchOutcome out;
  const auto str = [&](const char* key) {
    const obs::json::Value* v = doc.find(key);
    if (v == nullptr || !v->is_string())
      throw ModelError(std::string("batch outcome missing string field '") +
                       key + "'");
    return v->str;
  };
  out.name = str("name");
  out.verdict = str("verdict");
  out.expectation = str("expectation");
  const obs::json::Value* ok = doc.find("ok");
  if (ok == nullptr || ok->kind != obs::json::Value::Kind::Bool)
    throw ModelError("batch outcome missing bool field 'ok'");
  out.ok = ok->boolean;
  return out;
}

namespace {

/// One-byte command tag for the cache key; unknown commands throw so a
/// typo'd cmd can never silently alias a real one.
char cmd_tag(const std::string& cmd) {
  if (cmd == "check") return 'C';
  if (cmd == "lint") return 'L';
  if (cmd == "synthesize") return 'S';
  if (cmd == "analyze") return 'A';
  if (cmd == "simulate") return 'M';  // Monte Carlo
  throw ModelError(
      "unknown serve command '" + cmd +
      "' (expected check | lint | synthesize | analyze | simulate)");
}

/// Length-prefixed string append for the cache key; the prefix keeps bytes
/// from migrating across field boundaries and aliasing.
void memo_append_str(std::string& key, const std::string& s) {
  memo_append_u64(key, s.size());
  key += s;
}

}  // namespace

std::string cache_key(const Request& req) {
  std::string key;
  key.push_back(cmd_tag(req.cmd));
  memo_append_u64(key, req.k);
  // Result-affecting options only: `jobs` never changes a verdict (every
  // engine is bit-identical at any thread count), so it stays out.
  key.push_back(req.options.symmetry ? 1 : 0);
  key.push_back(req.options.all ? 1 : 0);
  key.push_back(req.options.json ? 1 : 0);
  key.push_back(req.options.lint ? 1 : 0);
  key.push_back(req.options.werror ? 1 : 0);
  key.push_back(req.options.synth ? 1 : 0);
  memo_append_u64(key, req.options.check_k);
  // Monte Carlo options: every field changes the sampled estimate, so every
  // field is identity. The coin keys on its exact IEEE-754 bits.
  memo_append_u64(key, req.options.trajectories);
  memo_append_u64(key, req.options.sim_seed);
  memo_append_u64(key, req.options.round_cap);
  memo_append_u64(key, std::bit_cast<std::uint64_t>(req.options.coin));
  memo_append_u64(key, req.options.sim_k);
  memo_append_str(key, req.options.scheduler);
  memo_append_str(key, req.options.target);
  memo_append_str(key, req.options.start);
  // `name` is rendered into the output (lint summary lines, parse-error
  // prefixes, batch rows), so it is part of the verdict's identity.
  memo_append_str(key, req.name);
  memo_append_str(key, req.source);
  return key;
}

ExecResult execute(const Request& req,
                   const std::shared_ptr<VerdictMemo>& memo) {
  const char tag = cmd_tag(req.cmd);  // reject unknown cmds up front
  ExecResult res;
  std::ostringstream out;
  try {
    switch (tag) {
      case 'C': {
        if (req.k < 2 || req.k > 63)
          throw ModelError("invalid k value '" + std::to_string(req.k) +
                           "': expected an integer in [2, 63]");
        const Protocol p =
            build_protocol(parse_protocol_source(req.source, req.name));
        res.exit_code = render_check(p, req.k, req.options.jobs,
                                     req.options.symmetry, out);
        break;
      }
      case 'S': {
        const Protocol p =
            build_protocol(parse_protocol_source(req.source, req.name));
        res.exit_code =
            render_synthesize(p, req.options.all, req.options.jobs, out);
        break;
      }
      case 'L': {
        const LintResult lint = lint_ring_text(req.source, req.name);
        res.exit_code = render_lint(lint, req.name, req.options.json,
                                    req.options.werror, out);
        break;
      }
      case 'A': {
        const BatchOutcome outcome =
            batch_outcome(req.source, req.name, req.options, memo);
        out << batch_outcome_json(outcome);
        res.exit_code = outcome.ok ? 0 : 1;
        break;
      }
      case 'M': {
        if (req.k < 2 || req.k > 4095)
          throw ModelError("invalid k value '" + std::to_string(req.k) +
                           "': expected an integer in [2, 4095]");
        const Protocol p =
            build_protocol(parse_protocol_source(req.source, req.name));
        res.exit_code = render_simulate(p, req.k, req.options, out);
        break;
      }
    }
  } catch (const Error& e) {
    // Mirror the CLI's failure contract: a one-line `error:` message and
    // exit 1. Cached like any other verdict — the error is a pure function
    // of the request.
    out.str("");
    out << "error: " << e.what() << "\n";
    res.exit_code = 1;
  }
  res.output = out.str();
  return res;
}

}  // namespace ringstab::serve
