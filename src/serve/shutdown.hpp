// Signal-driven shutdown shared by the CLI front-ends and the daemon
// (docs/serve.md "Shutdown contract").
//
// The classic async-signal-handler route is useless here: flushing obs
// sinks and writing a manifest call malloc, iostreams, and mutexes — none
// async-signal-safe. Instead SIGINT/SIGTERM are *blocked* on the
// constructing thread (and, by inheritance, on every thread spawned
// after), and a dedicated watcher thread collects them with sigwait().
// The watcher runs ordinary code, so the callback may flush sinks, drain
// a server, or write files without restriction.
//
// Construct a ShutdownWatcher on the main thread BEFORE spawning workers
// or installing a Session, so the signal mask is inherited everywhere.
#pragma once

#include <atomic>
#include <csignal>
#include <functional>
#include <thread>

namespace ringstab::serve {

class ShutdownWatcher {
 public:
  /// Blocks SIGINT + SIGTERM for the calling thread and starts the
  /// watcher. `on_signal(sig)` runs on the watcher thread, at most once,
  /// when the first of the two signals arrives.
  explicit ShutdownWatcher(std::function<void(int)> on_signal);

  /// Disarms the watcher (an un-fired callback will never run), joins it,
  /// and restores the constructing thread's original signal mask.
  ~ShutdownWatcher();

  ShutdownWatcher(const ShutdownWatcher&) = delete;
  ShutdownWatcher& operator=(const ShutdownWatcher&) = delete;

  /// True once a signal has been received (callback ran or is running).
  bool signalled() const noexcept;

 private:
  std::function<void(int)> on_signal_;
  sigset_t old_mask_;
  std::thread thread_;
  // Written by the watcher thread / destructor, read anywhere.
  std::atomic<bool> stop_{false};
  std::atomic<bool> signalled_{false};
};

/// The CLI callback: mark the run interrupted, note the signal on stderr,
/// flush every registered sink (partial manifest included), and exit with
/// the conventional 128+sig status. Never returns.
[[noreturn]] void flush_and_exit_on_signal(int sig);

}  // namespace ringstab::serve
