#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/types.hpp"

namespace ringstab::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ModelError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path)
    throw ModelError("serve client: bad socket path: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("serve client: socket()");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("serve client: connect(" + socket_path + ")");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

Response Client::round_trip(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve client: write");
    }
    off += static_cast<std::size_t>(n);
  }

  for (;;) {
    const std::size_t nl = rx_.find('\n');
    if (nl != std::string::npos) {
      const std::string resp_line = rx_.substr(0, nl);
      rx_.erase(0, nl + 1);
      return decode_response(resp_line);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve client: read");
    }
    if (n == 0)
      throw ModelError(
          "serve client: daemon closed the connection mid-response");
    rx_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::request(const Request& req) {
  return round_trip(encode_request(req));
}

ServerStats Client::stats() {
  Request req;
  req.cmd = "stats";
  const Response resp = round_trip(encode_request(req));
  if (!resp.ok || !resp.has_stats)
    throw ModelError("serve client: stats request failed: " +
                     (resp.error.empty() ? "no stats in response"
                                         : resp.error));
  return resp.stats;
}

}  // namespace ringstab::serve
