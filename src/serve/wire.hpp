// JSONL wire framing for ringstab-serve (docs/serve.md).
//
// One request per line, one response per line, both single JSON objects
// with every control character escaped — a frame can never contain a raw
// newline, so framing is exactly "split on '\n'". Built on the obs JSON
// document model (metrics_json.hpp): insertion-ordered members, verbatim
// numbers, diagnosable parse errors.
#pragma once

#include <cstdint>
#include <string>

#include "serve/exec.hpp"

namespace ringstab::serve {

/// Daemon-side counters returned by the `stats` command.
struct ServerStats {
  std::uint64_t requests = 0;       // completed (including errors)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;  // resident now
  std::uint64_t cache_capacity = 0;
};

/// One response line. `ok=false` means the request itself failed
/// (malformed JSON, unknown cmd) and only `error` is meaningful; protocol-
/// level failures (parse errors in the source, a failing verdict) are
/// successful responses with a nonzero `exit`.
struct Response {
  bool ok = false;
  bool cached = false;
  int exit_code = 0;
  std::string output;
  std::string error;
  bool has_stats = false;  // `stats` responses carry the struct below
  ServerStats stats;
};

std::string encode_request(const Request& req);
/// Throws ModelError with a located message on malformed input.
Request decode_request(const std::string& line);

std::string encode_response(const Response& resp);
Response decode_response(const std::string& line);

}  // namespace ringstab::serve
