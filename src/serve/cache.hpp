// The warm verdict cache behind ringstab-serve (DESIGN.md §12).
//
// Maps the exact request identity — a byte-string key built by
// serve::cache_key from (command, source text, K, result-affecting
// options) — to the finished response bytes. Every cached computation is a
// pure function of its key (the same property VerdictMemo leans on), so a
// hit can never change a result, only skip recomputing it.
//
// Concurrency follows the VerdictMemo mold: the key's content hash picks
// one of kShards mutex-guarded shards; within a shard an intrusive LRU
// list bounds residency at capacity/kShards entries. Hit/miss counts are
// kept in relaxed atomics (always on, for the `stats` command and the
// bench) and mirrored into the `serve.cache_hits` / `serve.cache_misses`
// obs counters when a session is live.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "serve/hash.hpp"

namespace ringstab::serve {

/// A finished request: the exit code and the exact stdout bytes the local
/// CLI would have produced for the same (command, source, K, options).
struct ExecResult {
  int exit_code = 0;
  std::string output;
};

class VerdictCache {
 public:
  /// `capacity` bounds the total entry count (rounded up to one entry per
  /// shard); 0 disables caching entirely (every lookup misses).
  explicit VerdictCache(std::size_t capacity)
      : capacity_(capacity),
        per_shard_(capacity == 0 ? 0 : (capacity + kShards - 1) / kShards),
        hits_obs_(obs::counter("serve.cache_hits", /*approx=*/true)),
        misses_obs_(obs::counter("serve.cache_misses", /*approx=*/true)) {}
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// Full-key lookup; a hit refreshes the entry's LRU position.
  std::optional<ExecResult> get(const std::string& key) {
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_obs_.add(1);
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_obs_.add(1);
    return it->second->second;
  }

  /// Insert (first write wins; a racing duplicate carries the identical
  /// value because verdicts are pure functions of the key). Evicts the
  /// shard's least-recently-used entry when the shard is full.
  void put(const std::string& key, ExecResult value) {
    if (per_shard_ == 0) return;
    Shard& s = shard(key);
    std::lock_guard lock(s.mu);
    if (s.map.find(key) != s.map.end()) return;
    while (s.lru.size() >= per_shard_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    s.lru.emplace_front(key, std::move(value));
    s.map.emplace(key, s.lru.begin());
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    /// Most-recently-used first; map values point into this list.
    std::list<std::pair<std::string, ExecResult>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, ExecResult>>::iterator>
        map;
  };

  Shard& shard(const std::string& key) {
    return shards_[hash_bytes(key) % kShards];
  }
  const Shard& shard(const std::string& key) const {
    return shards_[hash_bytes(key) % kShards];
  }

  std::size_t capacity_;
  std::size_t per_shard_;
  obs::Counter& hits_obs_;    // registry references live for the process
  obs::Counter& misses_obs_;  // lifetime (same pattern as VerdictMemo)
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  mutable Shard shards_[kShards];
};

}  // namespace ringstab::serve
