#include "serve/wire.hpp"

#include <cstdio>
#include <limits>

#include "core/types.hpp"
#include "obs/metrics_json.hpp"

namespace ringstab::serve {

namespace {

using obs::json::Value;

std::size_t as_size(const Value& v, const char* key) {
  if (!v.is_number())
    throw ModelError(std::string("serve wire: field '") + key +
                     "' must be a non-negative integer");
  const std::uint64_t raw =
      v.as_u64(std::numeric_limits<std::uint64_t>::max());
  if (raw == std::numeric_limits<std::uint64_t>::max() &&
      v.number != "18446744073709551615")
    throw ModelError(std::string("serve wire: field '") + key +
                     "' is not a valid u64: " + v.number);
  return static_cast<std::size_t>(raw);
}

bool as_bool(const Value& v, const char* key) {
  if (v.kind != Value::Kind::Bool)
    throw ModelError(std::string("serve wire: field '") + key +
                     "' must be a boolean");
  return v.boolean;
}

std::string as_string(const Value& v, const char* key) {
  if (!v.is_string())
    throw ModelError(std::string("serve wire: field '") + key +
                     "' must be a string");
  return v.str;
}

double as_probability(const Value& v, const char* key) {
  if (!v.is_number())
    throw ModelError(std::string("serve wire: field '") + key +
                     "' must be a number");
  const double d = v.as_double(-1.0);
  if (!(d >= 0.0 && d <= 1.0))
    throw ModelError(std::string("serve wire: field '") + key +
                     "' must be a probability in [0, 1]");
  return d;
}

/// Render a probability with enough digits to round-trip exactly through
/// strtod, so the coin survives encode/decode bit-for-bit.
Value number_double(double d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return Value::number_raw(buf);
}

}  // namespace

std::string encode_request(const Request& req) {
  Value doc = Value::object();
  doc.add("cmd", Value::string(req.cmd));
  doc.add("source", Value::string(req.source));
  if (!req.name.empty()) doc.add("name", Value::string(req.name));
  if (req.k != 0) doc.add("k", Value::number_u64(req.k));
  Value options = Value::object();
  if (req.options.jobs != 1)
    options.add("jobs", Value::number_u64(req.options.jobs));
  if (req.options.symmetry) options.add("symmetry", Value::boolean_v(true));
  if (req.options.all) options.add("all", Value::boolean_v(true));
  if (req.options.json) options.add("json", Value::boolean_v(true));
  if (req.options.lint) options.add("lint", Value::boolean_v(true));
  if (req.options.werror) options.add("werror", Value::boolean_v(true));
  if (req.options.synth) options.add("synth", Value::boolean_v(true));
  if (req.options.check_k != 0)
    options.add("check_k", Value::number_u64(req.options.check_k));
  if (req.options.trajectories != 1000)
    options.add("trajectories", Value::number_u64(req.options.trajectories));
  if (req.options.sim_seed != 1)
    options.add("seed", Value::number_u64(req.options.sim_seed));
  if (req.options.round_cap != 100'000)
    options.add("cap", Value::number_u64(req.options.round_cap));
  if (req.options.coin != 0.5)
    options.add("coin", number_double(req.options.coin));
  if (req.options.scheduler != "coin")
    options.add("scheduler", Value::string(req.options.scheduler));
  if (req.options.target != "invariant")
    options.add("target", Value::string(req.options.target));
  if (req.options.start != "random")
    options.add("start", Value::string(req.options.start));
  if (req.options.sim_k != 0)
    options.add("sim_k", Value::number_u64(req.options.sim_k));
  if (!options.members.empty()) doc.add("options", std::move(options));
  return obs::json::dump(doc);
}

Request decode_request(const std::string& line) {
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ModelError(std::string("serve wire: malformed request JSON: ") +
                     e.what());
  }
  if (!doc.is_object())
    throw ModelError("serve wire: request must be a JSON object");

  Request req;
  bool saw_cmd = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "cmd") {
      req.cmd = as_string(value, "cmd");
      saw_cmd = true;
    } else if (key == "source") {
      req.source = as_string(value, "source");
    } else if (key == "name") {
      req.name = as_string(value, "name");
    } else if (key == "k") {
      req.k = as_size(value, "k");
    } else if (key == "options") {
      if (!value.is_object())
        throw ModelError("serve wire: field 'options' must be an object");
      for (const auto& [opt, v] : value.members) {
        if (opt == "jobs")
          req.options.jobs = as_size(v, "options.jobs");
        else if (opt == "symmetry")
          req.options.symmetry = as_bool(v, "options.symmetry");
        else if (opt == "all")
          req.options.all = as_bool(v, "options.all");
        else if (opt == "json")
          req.options.json = as_bool(v, "options.json");
        else if (opt == "lint")
          req.options.lint = as_bool(v, "options.lint");
        else if (opt == "werror")
          req.options.werror = as_bool(v, "options.werror");
        else if (opt == "synth")
          req.options.synth = as_bool(v, "options.synth");
        else if (opt == "check_k")
          req.options.check_k = as_size(v, "options.check_k");
        else if (opt == "trajectories")
          req.options.trajectories = as_size(v, "options.trajectories");
        else if (opt == "seed")
          req.options.sim_seed = as_size(v, "options.seed");
        else if (opt == "cap")
          req.options.round_cap = as_size(v, "options.cap");
        else if (opt == "coin")
          req.options.coin = as_probability(v, "options.coin");
        else if (opt == "scheduler")
          req.options.scheduler = as_string(v, "options.scheduler");
        else if (opt == "target")
          req.options.target = as_string(v, "options.target");
        else if (opt == "start")
          req.options.start = as_string(v, "options.start");
        else if (opt == "sim_k")
          req.options.sim_k = as_size(v, "options.sim_k");
        else
          throw ModelError("serve wire: unknown option '" + opt + "'");
      }
    } else {
      throw ModelError("serve wire: unknown request field '" + key + "'");
    }
  }
  if (!saw_cmd) throw ModelError("serve wire: request missing 'cmd'");
  return req;
}

std::string encode_response(const Response& resp) {
  Value doc = Value::object();
  doc.add("ok", Value::boolean_v(resp.ok));
  if (resp.cached) doc.add("cached", Value::boolean_v(true));
  doc.add("exit", Value::number_u64(
                      static_cast<std::uint64_t>(resp.exit_code)));
  if (!resp.output.empty()) doc.add("output", Value::string(resp.output));
  if (!resp.error.empty()) doc.add("error", Value::string(resp.error));
  if (resp.has_stats) {
    Value stats = Value::object();
    stats.add("requests", Value::number_u64(resp.stats.requests));
    stats.add("cache_hits", Value::number_u64(resp.stats.cache_hits));
    stats.add("cache_misses", Value::number_u64(resp.stats.cache_misses));
    stats.add("cache_evictions",
              Value::number_u64(resp.stats.cache_evictions));
    stats.add("cache_entries", Value::number_u64(resp.stats.cache_entries));
    stats.add("cache_capacity", Value::number_u64(resp.stats.cache_capacity));
    doc.add("stats", std::move(stats));
  }
  return obs::json::dump(doc);
}

Response decode_response(const std::string& line) {
  Value doc;
  try {
    doc = obs::json::parse(line);
  } catch (const obs::json::ParseError& e) {
    throw ModelError(std::string("serve wire: malformed response JSON: ") +
                     e.what());
  }
  if (!doc.is_object())
    throw ModelError("serve wire: response must be a JSON object");

  Response resp;
  bool saw_ok = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "ok") {
      resp.ok = as_bool(value, "ok");
      saw_ok = true;
    } else if (key == "cached") {
      resp.cached = as_bool(value, "cached");
    } else if (key == "exit") {
      resp.exit_code = static_cast<int>(as_size(value, "exit"));
    } else if (key == "output") {
      resp.output = as_string(value, "output");
    } else if (key == "error") {
      resp.error = as_string(value, "error");
    } else if (key == "stats") {
      if (!value.is_object())
        throw ModelError("serve wire: field 'stats' must be an object");
      resp.has_stats = true;
      for (const auto& [stat, v] : value.members) {
        const std::uint64_t n = as_size(v, "stats member");
        if (stat == "requests")
          resp.stats.requests = n;
        else if (stat == "cache_hits")
          resp.stats.cache_hits = n;
        else if (stat == "cache_misses")
          resp.stats.cache_misses = n;
        else if (stat == "cache_evictions")
          resp.stats.cache_evictions = n;
        else if (stat == "cache_entries")
          resp.stats.cache_entries = n;
        else if (stat == "cache_capacity")
          resp.stats.cache_capacity = n;
        // Unknown stats members are forward-compatible: ignored.
      }
    } else {
      throw ModelError("serve wire: unknown response field '" + key + "'");
    }
  }
  if (!saw_ok) throw ModelError("serve wire: response missing 'ok'");
  return resp;
}

}  // namespace ringstab::serve
