#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/types.hpp"
#include "obs/obs.hpp"
#include "serve/exec.hpp"

namespace ringstab::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ModelError(what + ": " + std::strerror(errno));
}

/// Writes all of `data` to `fd`, retrying on EINTR / short writes.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Buffered line reader over a blocking fd. A request line can be large
/// (it carries the whole .ring source, escaped) so the buffer grows as
/// needed; read_line returns false on EOF / error with no complete line.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n', scan_);
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        scan_ = 0;
        return true;
      }
      scan_ = buf_.size();
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF (or SHUT_RD during drain)
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t scan_ = 0;
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      synth_memo_(std::make_shared<VerdictMemo>()) {}

Server::~Server() { stop(); }

void Server::start() {
  if (options_.socket_path.empty())
    throw ModelError("serve: socket path must not be empty");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path)
    throw ModelError("serve: socket path too long (" +
                     std::to_string(options_.socket_path.size()) + " > " +
                     std::to_string(sizeof addr.sun_path - 1) +
                     " bytes): " + options_.socket_path);
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket()");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    // Deliberately no unlink-and-retry: a file already at the path may be
    // a live daemon's socket. The operator decides what to remove.
    throw_errno("serve: bind(" + options_.socket_path + ")");
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    errno = saved;
    throw_errno("serve: listen(" + options_.socket_path + ")");
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // ECONNABORTED etc. are transient; everything else (EBADF/EINVAL
      // after stop() closed the socket) ends the loop.
      if (errno == ECONNABORTED) continue;
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    std::lock_guard lock(conns_mu_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void Server::serve_connection(Connection* conn) {
  LineReader reader(conn->fd);
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;  // blank keep-alive lines are fine
    const Response resp = dispatch(line);
    if (!write_all(conn->fd, encode_response(resp) + "\n")) break;
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs::counter("serve.requests").add(1);
  }
  ::close(conn->fd);
  conn->done.store(true, std::memory_order_release);
}

Response Server::dispatch(const std::string& line) {
  const obs::Ticks t0 = obs::enabled() ? obs::now() : 0;
  Response resp;
  try {
    const Request req = decode_request(line);
    if (req.cmd == "stats") {
      resp.ok = true;
      resp.has_stats = true;
      resp.stats = stats();
      return resp;
    }
    Request run = req;
    if (run.options.jobs == 1) run.options.jobs = options_.default_jobs;
    // The cache key is over the original request: `jobs` (and therefore
    // the daemon-side default) is not part of the identity.
    const std::string key = cache_key(req);
    if (auto cached = cache_.get(key)) {
      resp.ok = true;
      resp.cached = true;
      resp.exit_code = cached->exit_code;
      resp.output = std::move(cached->output);
    } else {
      ExecResult res = execute(run, synth_memo_);
      cache_.put(key, res);
      resp.ok = true;
      resp.exit_code = res.exit_code;
      resp.output = std::move(res.output);
    }
  } catch (const Error& e) {
    resp.ok = false;
    resp.error = e.what();
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = std::string("internal error: ") + e.what();
  }
  if (obs::enabled() && t0 != 0)
    obs::histogram("serve.request_ns").record(obs::now() - t0);
  return resp;
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;

  // 1. No new connections: closing the fd makes the blocked accept()
  //    return with an error and the loop exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  accept_thread_.join();
  listen_fd_ = -1;

  // 2. Drain: half-close every live connection's read side. A handler
  //    blocked in read() sees EOF and exits after writing the response to
  //    the request it is working on now.
  {
    std::lock_guard lock(conns_mu_);
    for (const auto& conn : conns_)
      if (!conn->done.load(std::memory_order_acquire))
        ::shutdown(conn->fd, SHUT_RD);
  }

  // 3. Join everything, then remove the rendezvous point.
  std::list<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) conn->thread.join();
  ::unlink(options_.socket_path.c_str());
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.cache_capacity = cache_.capacity();
  return s;
}

}  // namespace ringstab::serve
