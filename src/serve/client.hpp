// Thin blocking client for the ringstab-serve daemon: connect to the
// Unix-domain socket, write one JSONL request per call, read back one
// JSONL response. Used by `ringstab-batch --serve`, `bench_serve`, and
// the serve tests.
#pragma once

#include <string>

#include "serve/wire.hpp"

namespace ringstab::serve {

class Client {
 public:
  /// Connects immediately; throws ModelError (with errno text) when the
  /// daemon isn't listening at `socket_path`.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// One round trip. Throws ModelError if the connection drops or the
  /// response line doesn't decode; daemon-reported failures come back as
  /// Response{ok=false, error=...} without throwing.
  Response request(const Request& req);

  /// The daemon's counters (`stats` command).
  ServerStats stats();

 private:
  Response round_trip(const std::string& line);

  int fd_ = -1;
  std::string rx_;  // partial-line carry-over between reads
};

}  // namespace ringstab::serve
