// Request execution shared by the local CLI front-ends and the
// ringstab-serve daemon (DESIGN.md §12, docs/serve.md).
//
// Byte-identity is the contract: `ringstab check/lint/synthesize` and a
// `check`/`lint`/`synthesize` request answered by the daemon must produce
// the same bytes, cold or cached. The only way to keep that true across
// refactors is to have exactly one implementation of each rendering, so
// the CLI's command bodies live here and both front-ends call them.
//
// `execute()` is a pure function of (cmd, source, k, result-affecting
// options): the thread count (`options.jobs`) is execution advice — every
// engine is bit-identical at any thread count by construction — and is
// therefore excluded from `cache_key()`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "analysis/lint.hpp"
#include "core/protocol.hpp"
#include "serve/cache.hpp"
#include "synthesis/portfolio.hpp"

namespace ringstab::serve {

/// Result-affecting request options plus the `jobs` execution hint.
struct RequestOptions {
  std::size_t jobs = 1;     // worker lanes; NOT part of the cache key
  bool symmetry = false;    // check/analyze: rotation-quotient engine
  bool all = false;         // synthesize: print every solution
  bool json = false;        // lint: machine-readable rendering
  bool lint = false;        // analyze: run the RS0xx lint passes
  bool werror = false;      // lint: exit 1 on warnings too (errors always 1)
  bool synth = false;       // analyze: try Problem 3.1 when uncertified
  std::size_t check_k = 0;  // analyze: global cross-check size (0 = off)

  // Monte Carlo estimation (cmd "simulate", and the analyze `sim_k`
  // column). All of these are part of the verdict's identity; `jobs` stays
  // out because the estimator is bit-identical at every thread count
  // (docs/simulation.md).
  std::size_t trajectories = 1000;  // sampled trajectories
  std::uint64_t sim_seed = 1;       // PRNG seed (field "seed" on the wire)
  std::size_t round_cap = 100'000;  // per-trajectory cap ("cap" on the wire)
  double coin = 0.5;                // synchronous-coin fire probability
  std::string scheduler = "coin";   // "coin" | "weighted"
  std::string target = "invariant";  // "invariant" | "one-token"
  std::string start = "random";      // "random" | "zero" | "three"
  std::size_t sim_k = 0;  // analyze: Monte Carlo probe ring size (0 = off)
};

/// One JSONL request: `{"cmd":..., "source":..., "k":..., "options":...}`.
struct Request {
  std::string cmd;             // "check" | "lint" | "synthesize" | "analyze"
  std::string source;          // .ring source text
  std::string name = "<request>";  // display name (lint summary, errors)
  std::size_t k = 0;           // check: ring size
  RequestOptions options;
};

// ── shared command renderers (the single source of the output bytes) ──

/// `ringstab check <file> -k K [--jobs N] [--symmetry]`.
int render_check(const Protocol& p, std::size_t k, std::size_t jobs,
                 bool symmetry, std::ostream& out);

/// `ringstab synthesize <file> [--all] [--jobs N]` (ring topology).
int render_synthesize(const Protocol& p, bool all, std::size_t jobs,
                      std::ostream& out);

/// `ringstab lint <file> [--json] [--werror]` over an already-computed
/// LintResult; `display_name` is the path/name echoed in the text summary
/// line. Exit 1 iff an error survives suppression — or, with `werror`, a
/// warning does.
int render_lint(const LintResult& lint, const std::string& display_name,
                bool json, bool werror, std::ostream& out);

/// `ringstab simulate <file> -k K --random [...]`: Monte Carlo estimate of
/// the expected convergence time under a probabilistic scheduler
/// (docs/simulation.md). Exit 0 iff no trajectory was censored. Throws
/// ModelError on unknown scheduler/target/start strings or a coin outside
/// [0, 1].
int render_simulate(const Protocol& p, std::size_t k,
                    const RequestOptions& options, std::ostream& out);

// ── batch rows ──

/// One `ringstab-batch` table row, shared verbatim between local execution
/// and the daemon's `analyze` command.
struct BatchOutcome {
  std::string name;
  std::string verdict;
  std::string expectation;  // "", "converges", "fails"
  bool ok = true;
};

/// Analyze one .ring file the way `ringstab-batch` does: annotation
/// markers, local analysis (ring or array), optional global cross-check at
/// `options.check_k`, optional synthesis diagnostic, optional lint.
/// `memo` (may be null) is the shared synthesis verdict memo.
BatchOutcome batch_outcome(const std::string& text,
                           const std::string& filename,
                           const RequestOptions& options,
                           const std::shared_ptr<VerdictMemo>& memo);

/// One-line JSON round-trip for shipping a BatchOutcome over the wire.
std::string batch_outcome_json(const BatchOutcome& outcome);
BatchOutcome parse_batch_outcome(const std::string& json_text);

// ── request execution ──

/// The exact cache identity of a request: a byte string over (cmd, k,
/// result-affecting options, source). Distinct identities always produce
/// distinct keys; `options.jobs` is deliberately excluded (results are
/// thread-count-invariant). Throws ModelError on an unknown cmd.
std::string cache_key(const Request& req);

/// Run one request to completion. Protocol-level failures (parse errors,
/// bad K) are part of the result — they come back as `output` text with a
/// nonzero exit code, exactly as the CLI reports them — so error verdicts
/// cache like any other. Only malformed requests (unknown cmd) throw.
ExecResult execute(const Request& req,
                   const std::shared_ptr<VerdictMemo>& memo = nullptr);

}  // namespace ringstab::serve
