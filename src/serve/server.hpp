// The ringstab-serve daemon core: a Unix-domain-socket JSONL server that
// answers check/lint/synthesize/analyze requests out of a warm exact-key
// verdict cache (docs/serve.md).
//
// Threading model: one accept-loop thread; one thread per connection
// (clients are few — a batch run, a CI job — and each connection pipelines
// many requests); heavy per-request work fans out through the engines'
// own `jobs` parallelism on the shared pool. Finished connection threads
// are reaped opportunistically by the accept loop and joined en masse by
// stop().
//
// Shutdown contract (graceful drain):
//   1. stop() closes the listening socket — no new connections.
//   2. Each live connection gets shutdown(fd, SHUT_RD): a blocked read
//      returns 0 ("client went away") while the write side stays open, so
//      the request in flight completes and its response is delivered.
//   3. stop() joins every connection thread, then unlinks the socket path.
// Observability (serve.request_ns, serve.cache_hits, …) is flushed by the
// caller's Session, not by the server itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/cache.hpp"
#include "serve/wire.hpp"
#include "synthesis/portfolio.hpp"

namespace ringstab::serve {

struct ServerOptions {
  std::string socket_path;          // required; unlinked on stop()
  std::size_t cache_capacity = 1024;  // verdict-cache entries (0 disables)
  std::size_t default_jobs = 1;     // jobs when a request doesn't say
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and joins everything (idempotent with stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on `socket_path` and starts the accept loop. Throws
  /// ModelError (with errno text) if the socket can't be created — e.g. a
  /// stale file at the path that isn't ours, or a path over the
  /// sockaddr_un limit.
  void start();

  /// Graceful drain per the contract above. Safe to call from any thread
  /// (the ShutdownWatcher callback calls it); idempotent.
  void stop();

  /// Live daemon counters (exact: atomics + cache internals).
  ServerStats stats() const;

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  /// Handles one decoded request line; never throws.
  Response dispatch(const std::string& line);
  void reap_finished_locked();  // requires conns_mu_

  ServerOptions options_;
  VerdictCache cache_;
  std::shared_ptr<VerdictMemo> synth_memo_;  // shared across analyze reqs

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace ringstab::serve
