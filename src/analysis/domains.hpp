// Abstract domains for the ring-DSL static analyses (src/analysis/absint):
// value sets over the finite domain, window boxes, tri-state truth, and the
// guard-implication lattice. Everything here is an over-approximation — an
// abstract answer of kTrue/kFalse is a proof, kMaybe is "cannot tell".
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ast.hpp"
#include "core/local_state.hpp"

namespace ringstab::absint {

/// A set of domain values as a bitmask. Ring domains are tiny (|D| ≤ 64 by
/// the GlobalStateId encoding budget long before this cap bites).
class ValueSet {
 public:
  ValueSet() = default;
  static ValueSet none() { return ValueSet(); }
  static ValueSet all(std::size_t domain_size) {
    ValueSet s;
    s.bits_ = domain_size >= 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << domain_size) - 1;
    return s;
  }
  static ValueSet of(Value v) {
    ValueSet s;
    s.add(v);
    return s;
  }

  void add(Value v) { bits_ |= std::uint64_t{1} << v; }
  void remove(Value v) { bits_ &= ~(std::uint64_t{1} << v); }
  bool contains(Value v) const { return (bits_ >> v) & 1; }
  bool empty() const { return bits_ == 0; }
  std::size_t count() const {
    return static_cast<std::size_t>(__builtin_popcountll(bits_));
  }

  ValueSet operator&(ValueSet o) const { return ValueSet(bits_ & o.bits_); }
  ValueSet operator|(ValueSet o) const { return ValueSet(bits_ | o.bits_); }
  bool operator==(const ValueSet&) const = default;

  /// Members in ascending order.
  std::vector<Value> values(std::size_t domain_size) const {
    std::vector<Value> out;
    for (std::size_t v = 0; v < domain_size && v < 64; ++v)
      if (contains(static_cast<Value>(v))) out.push_back(static_cast<Value>(v));
    return out;
  }

 private:
  explicit ValueSet(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_ = 0;
};

/// Tri-state truth of an abstract boolean. kTrue/kFalse are proofs over the
/// whole concretization; kMaybe is the lattice top.
enum class Truth { kFalse, kTrue, kMaybe };

inline Truth truth_not(Truth t) {
  if (t == Truth::kMaybe) return t;
  return t == Truth::kTrue ? Truth::kFalse : Truth::kTrue;
}

/// The set of int64 results an expression may evaluate to, with a size cap:
/// once more than kMaxValues distinct results accumulate the set spills to
/// top ("any int"). Domain variables contribute at most |D| values, so only
/// deep arithmetic spills.
class IntSet {
 public:
  static constexpr std::size_t kMaxValues = 64;

  static IntSet top() {
    IntSet s;
    s.top_ = true;
    return s;
  }
  static IntSet of(long long v) {
    IntSet s;
    s.values_.push_back(v);
    return s;
  }
  static IntSet from_values(std::vector<long long> vs) {
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
    IntSet s;
    if (vs.size() > kMaxValues) {
      s.top_ = true;
    } else {
      s.values_ = std::move(vs);
    }
    return s;
  }

  bool is_top() const { return top_; }
  bool empty() const { return !top_ && values_.empty(); }
  const std::vector<long long>& values() const { return values_; }
  bool contains(long long v) const {
    return top_ || std::binary_search(values_.begin(), values_.end(), v);
  }

  /// Truth of the set read as a boolean (C semantics: nonzero is true).
  Truth truth() const {
    if (top_) return Truth::kMaybe;
    const bool has_zero = contains(0);
    const bool has_nonzero =
        values_.size() > (has_zero ? std::size_t{1} : std::size_t{0});
    if (has_zero && has_nonzero) return Truth::kMaybe;
    if (has_zero) return Truth::kFalse;
    if (has_nonzero) return Truth::kTrue;
    return Truth::kFalse;  // empty: vacuous, caller checks empty() first
  }

 private:
  bool top_ = false;
  std::vector<long long> values_;  // sorted, deduplicated, ≤ kMaxValues
};

/// The box domain: one ValueSet per window offset, offsets [-left, right].
/// A box concretizes to the local states whose every variable lies in its
/// offset's set; any empty component means no state (bottom).
class Box {
 public:
  static Box top(const LocalStateSpace& space) {
    Box b;
    b.left_ = space.locality().left;
    b.sets_.assign(
        static_cast<std::size_t>(space.locality().window()),
        ValueSet::all(space.domain().size()));
    return b;
  }

  ValueSet& at(int offset) { return sets_[index(offset)]; }
  const ValueSet& at(int offset) const { return sets_[index(offset)]; }
  bool covers(int offset) const {
    const long long i = static_cast<long long>(offset) + left_;
    return i >= 0 && i < static_cast<long long>(sets_.size());
  }
  int min_offset() const { return -left_; }
  int max_offset() const { return static_cast<int>(sets_.size()) - left_ - 1; }

  bool is_bottom() const {
    return std::any_of(sets_.begin(), sets_.end(),
                       [](const ValueSet& s) { return s.empty(); });
  }

  /// Pointwise union (lattice join).
  Box join(const Box& o) const {
    Box out = *this;
    for (std::size_t i = 0; i < sets_.size(); ++i)
      out.sets_[i] = out.sets_[i] | o.sets_[i];
    return out;
  }

  bool operator==(const Box&) const = default;

 private:
  std::size_t index(int offset) const {
    return static_cast<std::size_t>(offset + left_);
  }
  int left_ = 0;
  std::vector<ValueSet> sets_;
};

/// Over-approximate the values `e` may take over the concretization of
/// `box`. Unknown names and division by zero degrade to top (never throw —
/// these are RS000's findings, not ours).
IntSet eval_abs(const Expr& e, const Box& box, const Domain& domain);

/// Tri-state truth of a guard over the box. kFalse proves the guard
/// unsatisfiable on every state the box covers.
Truth eval_guard(const Expr& e, const Box& box, const Domain& domain);

/// Refine `box` by assuming `guard` holds: the result's concretization
/// contains every state of `box` satisfying the guard (it may contain more —
/// refinement is sound, not exact). Conjunctions recurse, comparisons
/// against evaluable right-hand sides narrow single offsets, and a final
/// per-offset filtering pass drops values for which the guard is provably
/// false.
Box assume(Box box, const Expr& guard, const Domain& domain);

/// Abstract transfer of an assignment `x[0] := effect`: offset 0 becomes
/// the effect's image over `in` (clipped to the domain; out-of-domain
/// writes are RS001's findings and contribute nothing), all other offsets
/// are unchanged.
Box transfer(const Box& in, const Expr& effect, const Domain& domain);

/// The guard-implication lattice: how two guards relate over the full local
/// state space, proved abstractly. kUnknown means the boxes could not
/// decide; it never lies.
enum class GuardRelation {
  kDisjoint,           // a ∧ b unsatisfiable (proved)
  kEquivalent,         // a ⇔ b (proved both ways)
  kLeftImpliesRight,   // a ⇒ b (proved)
  kRightImpliesLeft,   // b ⇒ a (proved)
  kUnknown,            // none of the above provable with boxes
};

GuardRelation relate_guards(const Expr& a, const Expr& b,
                            const LocalStateSpace& space);

}  // namespace ringstab::absint
