#include "analysis/absint.hpp"

#include <algorithm>
#include <set>

#include "analysis/lint.hpp"
#include "core/fmt.hpp"
#include "local/precedence.hpp"
#include "local/self_disabling.hpp"

namespace ringstab {

namespace absint {
namespace {

IntSet lift_truth(Truth t) {
  switch (t) {
    case Truth::kFalse: return IntSet::of(0);
    case Truth::kTrue: return IntSet::of(1);
    case Truth::kMaybe: return IntSet::from_values({0, 1});
  }
  return IntSet::top();
}

/// Pairwise arithmetic image; any failure (division by zero alternative)
/// degrades that pair to top.
IntSet arith(const std::string& op, const IntSet& l, const IntSet& r) {
  if (l.is_top() || r.is_top()) return IntSet::top();
  std::vector<long long> out;
  for (const long long a : l.values())
    for (const long long b : r.values()) {
      if (op == "+") out.push_back(a + b);
      else if (op == "-") out.push_back(a - b);
      else if (op == "*") out.push_back(a * b);
      else if (op == "/") {
        if (b == 0) return IntSet::top();
        out.push_back(a / b);
      } else if (op == "%") {
        if (b == 0) return IntSet::top();
        out.push_back(a % b);
      } else {
        return IntSet::top();
      }
      if (out.size() > IntSet::kMaxValues * IntSet::kMaxValues)
        return IntSet::top();
    }
  return IntSet::from_values(std::move(out));
}

bool cmp(const std::string& op, long long a, long long b) {
  if (op == "==") return a == b;
  if (op == "!=") return a != b;
  if (op == "<") return a < b;
  if (op == "<=") return a <= b;
  if (op == ">") return a > b;
  return a >= b;  // ">="
}

Truth compare(const std::string& op, const IntSet& l, const IntSet& r) {
  if (l.is_top() || r.is_top()) return Truth::kMaybe;
  bool any_true = false, any_false = false;
  for (const long long a : l.values())
    for (const long long b : r.values())
      (cmp(op, a, b) ? any_true : any_false) = true;
  if (any_true && any_false) return Truth::kMaybe;
  return any_true ? Truth::kTrue : Truth::kFalse;
}

bool is_comparison(const std::string& op) {
  return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

std::string negate_comparison(const std::string& op) {
  if (op == "==") return "!=";
  if (op == "!=") return "==";
  if (op == "<") return ">=";
  if (op == "<=") return ">";
  if (op == ">") return "<=";
  return "<";  // ">="
}

std::string flip_comparison(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // == and != are symmetric
}

/// Structural refinement of one comparison `x[k] OP rhs`: keep the values v
/// of offset k for which some rhs value satisfies v OP r.
void narrow_offset(Box& box, int offset, const std::string& op,
                   const IntSet& rhs, const Domain& domain) {
  if (!box.covers(offset) || rhs.is_top()) return;
  ValueSet kept;
  for (const Value v : box.at(offset).values(domain.size())) {
    for (const long long r : rhs.values())
      if (cmp(op, v, r)) {
        kept.add(v);
        break;
      }
  }
  box.at(offset) = kept;
}

void assume_into(Box& box, const Expr& guard, const Domain& domain,
                 bool negated);

/// Refinement of `a OP b` (comparison, possibly under negation).
void assume_comparison(Box& box, const Expr& lhs, std::string op,
                       const Expr& rhs, const Domain& domain, bool negated) {
  if (negated) op = negate_comparison(op);
  if (lhs.kind == Expr::Kind::kVar) {
    narrow_offset(box, lhs.offset, op, eval_abs(rhs, box, domain), domain);
  }
  if (rhs.kind == Expr::Kind::kVar) {
    narrow_offset(box, rhs.offset, flip_comparison(op),
                  eval_abs(lhs, box, domain), domain);
  }
}

void assume_into(Box& box, const Expr& guard, const Domain& domain,
                 bool negated) {
  switch (guard.kind) {
    case Expr::Kind::kUnary:
      if (guard.op == "!")
        assume_into(box, *guard.lhs, domain, !negated);
      return;
    case Expr::Kind::kBinary:
      if (is_comparison(guard.op)) {
        assume_comparison(box, *guard.lhs, guard.op, *guard.rhs, domain,
                          negated);
        return;
      }
      // `&&` refines both conjuncts; `¬(a || b)` is a conjunction too.
      if ((guard.op == "&&" && !negated) || (guard.op == "||" && negated)) {
        assume_into(box, *guard.lhs, domain, negated);
        assume_into(box, *guard.rhs, domain, negated);
        return;
      }
      // A disjunction refines to the join of the branch refinements.
      if ((guard.op == "||" && !negated) || (guard.op == "&&" && negated)) {
        Box l = box, r = box;
        assume_into(l, *guard.lhs, domain, negated);
        assume_into(r, *guard.rhs, domain, negated);
        box = l.join(r);
        return;
      }
      return;
    default:
      return;  // bare values / variables: no structural refinement
  }
}

}  // namespace

IntSet eval_abs(const Expr& e, const Box& box, const Domain& domain) {
  switch (e.kind) {
    case Expr::Kind::kInt:
      return IntSet::of(e.value);
    case Expr::Kind::kName: {
      const auto v = domain.value_of(e.name);
      return v ? IntSet::of(*v) : IntSet::top();  // unknown name: RS000's job
    }
    case Expr::Kind::kVar: {
      if (!box.covers(e.offset)) return IntSet::top();
      std::vector<long long> vals;
      for (const Value v : box.at(e.offset).values(domain.size()))
        vals.push_back(v);
      return IntSet::from_values(std::move(vals));
    }
    case Expr::Kind::kUnary: {
      if (e.op == "!") return lift_truth(truth_not(eval_guard(*e.lhs, box, domain)));
      const IntSet inner = eval_abs(*e.lhs, box, domain);  // "-"
      if (inner.is_top()) return IntSet::top();
      std::vector<long long> vals;
      for (const long long v : inner.values()) vals.push_back(-v);
      return IntSet::from_values(std::move(vals));
    }
    case Expr::Kind::kBinary: {
      if (e.op == "&&" || e.op == "||") {
        const Truth l = eval_guard(*e.lhs, box, domain);
        const Truth r = eval_guard(*e.rhs, box, domain);
        if (e.op == "&&") {
          if (l == Truth::kFalse || r == Truth::kFalse)
            return lift_truth(Truth::kFalse);
          if (l == Truth::kTrue && r == Truth::kTrue)
            return lift_truth(Truth::kTrue);
          return lift_truth(Truth::kMaybe);
        }
        if (l == Truth::kTrue || r == Truth::kTrue)
          return lift_truth(Truth::kTrue);
        if (l == Truth::kFalse && r == Truth::kFalse)
          return lift_truth(Truth::kFalse);
        return lift_truth(Truth::kMaybe);
      }
      if (is_comparison(e.op))
        return lift_truth(compare(e.op, eval_abs(*e.lhs, box, domain),
                                  eval_abs(*e.rhs, box, domain)));
      return arith(e.op, eval_abs(*e.lhs, box, domain),
                   eval_abs(*e.rhs, box, domain));
    }
  }
  return IntSet::top();
}

Truth eval_guard(const Expr& e, const Box& box, const Domain& domain) {
  return eval_abs(e, box, domain).truth();
}

Box assume(Box box, const Expr& guard, const Domain& domain) {
  assume_into(box, guard, domain, /*negated=*/false);
  // Filtering pass: drop any remaining value the guard refutes outright
  // when pinned. This catches relational guards the structural walk cannot
  // (e.g. x[-1] + x[0] == 2 narrowing nothing by itself but refuting
  // endpoints), at |window| · |D| extra guard evaluations.
  for (int off = box.min_offset(); off <= box.max_offset(); ++off) {
    ValueSet kept;
    for (const Value v : box.at(off).values(domain.size())) {
      Box pinned = box;
      pinned.at(off) = ValueSet::of(v);
      if (eval_guard(guard, pinned, domain) != Truth::kFalse) kept.add(v);
    }
    box.at(off) = kept;
  }
  return box;
}

Box transfer(const Box& in, const Expr& effect, const Domain& domain) {
  Box out = in;
  const IntSet image = eval_abs(effect, in, domain);
  if (image.is_top()) {
    out.at(0) = ValueSet::all(domain.size());
    return out;
  }
  ValueSet written;
  for (const long long v : image.values())
    if (domain.contains(v)) written.add(static_cast<Value>(v));
  out.at(0) = written;
  return out;
}

GuardRelation relate_guards(const Expr& a, const Expr& b,
                            const LocalStateSpace& space) {
  const Domain& domain = space.domain();
  const Box top = Box::top(space);
  const Box in_a = assume(top, a, domain);
  const Box in_b = assume(top, b, domain);
  const bool a_unsat = in_a.is_bottom() || eval_guard(a, in_a, domain) == Truth::kFalse;
  const bool b_unsat = in_b.is_bottom() || eval_guard(b, in_b, domain) == Truth::kFalse;
  if (a_unsat || b_unsat) return GuardRelation::kDisjoint;
  // a ⇒ b iff b is provably true on every state satisfying a; the
  // guard-refined box over-approximates that set, so kTrue there is a proof.
  const bool a_implies_b = eval_guard(b, in_a, domain) == Truth::kTrue;
  const bool b_implies_a = eval_guard(a, in_b, domain) == Truth::kTrue;
  if (a_implies_b && b_implies_a) return GuardRelation::kEquivalent;
  if (a_implies_b) return GuardRelation::kLeftImpliesRight;
  if (b_implies_a) return GuardRelation::kRightImpliesLeft;
  const bool disjoint = eval_guard(b, in_a, domain) == Truth::kFalse ||
                        eval_guard(a, in_b, domain) == Truth::kFalse;
  return disjoint ? GuardRelation::kDisjoint : GuardRelation::kUnknown;
}

}  // namespace absint

using absint::Box;
using absint::Truth;
using absint::ValueSet;

AbsintResult analyze_source(const ProtocolSource& src) {
  const LocalStateSpace space(src.domain, src.locality);
  const Domain& domain = src.domain;
  AbsintResult res;
  res.actions.reserve(src.actions.size());

  for (const auto& a : src.actions) {
    ActionFacts facts;
    facts.in = Box::top(space);
    facts.out = Box::top(space);
    if (!a.guard) {
      res.actions.push_back(std::move(facts));
      continue;
    }
    facts.guard_truth = eval_guard(*a.guard, Box::top(space), domain);
    facts.in = absint::assume(Box::top(space), *a.guard, domain);
    if (facts.in.is_bottom()) facts.guard_truth = Truth::kFalse;

    // Self-disablement (Assumption 2) is a property of the *process*: after
    // the write, no action — not merely this one — may be enabled. Check
    // every guard against every effect image.
    bool all_disable = !a.effects.empty();
    Box joined = facts.in;
    bool first = true;
    for (const auto& effect : a.effects) {
      if (!effect) {
        all_disable = false;
        continue;
      }
      const Box out_e = absint::transfer(facts.in, *effect, domain);
      facts.writes = facts.writes | out_e.at(0);
      joined = first ? out_e : joined.join(out_e);
      first = false;
      if (out_e.is_bottom()) continue;  // the alternative never fires
      for (const auto& b : src.actions) {
        if (!b.guard) {
          all_disable = false;
          break;
        }
        if (eval_guard(*b.guard, out_e, domain) != Truth::kFalse) {
          all_disable = false;
          break;
        }
      }
    }
    facts.out = joined;
    // A vacuous action fires nowhere; it is trivially self-disabling.
    facts.proved_self_disabling =
        facts.guard_truth == Truth::kFalse || facts.in.is_bottom() ||
        all_disable;
    res.actions.push_back(std::move(facts));
  }

  res.all_proved_self_disabling =
      !res.actions.empty() &&
      std::all_of(res.actions.begin(), res.actions.end(),
                  [](const ActionFacts& f) { return f.proved_self_disabling; });

  // Persistent written-value envelope: descending Kleene iteration from
  // W_0 = D. Each step re-evaluates every action's write image over a box
  // whose every offset is restricted to W_n — sound because once every
  // process has moved n times, every readable variable's value lies in W_n.
  ValueSet w = ValueSet::all(domain.size());
  for (std::size_t iter = 0; iter <= domain.size(); ++iter) {
    Box env = Box::top(space);
    for (int off = env.min_offset(); off <= env.max_offset(); ++off)
      env.at(off) = env.at(off) & w;
    ValueSet next;
    for (std::size_t i = 0; i < src.actions.size(); ++i) {
      const auto& a = src.actions[i];
      if (!a.guard) continue;
      const Box in = absint::assume(env, *a.guard, domain);
      if (in.is_bottom()) continue;
      for (const auto& effect : a.effects) {
        if (!effect) continue;
        next = next | absint::transfer(in, *effect, domain).at(0);
      }
    }
    if (next == w) break;
    w = next;
  }
  res.persistent_values = w;
  return res;
}

absint::Truth prove_invariant_closure(const ProtocolSource& src) {
  if (!src.legit) return Truth::kMaybe;
  const LocalStateSpace space(src.domain, src.locality);
  const Domain& domain = src.domain;
  const Box top = Box::top(space);

  for (const auto& a : src.actions) {
    if (!a.guard) return Truth::kMaybe;
    // The mover fires inside I: its guard and its own LC hold.
    Box in = absint::assume(top, *a.guard, domain);
    in = absint::assume(in, *src.legit, domain);
    if (in.is_bottom()) continue;  // the action never fires inside I
    ValueSet written;
    for (const auto& effect : a.effects) {
      if (!effect) return Truth::kMaybe;
      const Box out = absint::transfer(in, *effect, domain);
      // The mover's own LC must survive its write.
      if (eval_guard(*src.legit, out, domain) != Truth::kTrue)
        return Truth::kMaybe;
      written = written | out.at(0);
    }
    // Every neighbor reading the written variable at offset `off` must keep
    // its LC too: its box is ⊤ refined by LC with the pre-write value range
    // at `off`, and LC must stay provably true once `off` is replaced by
    // the write image.
    for (int off = top.min_offset(); off <= top.max_offset(); ++off) {
      if (off == 0) continue;
      Box nb = absint::assume(top, *src.legit, domain);
      nb.at(off) = nb.at(off) & in.at(0);  // pre-write value seen at `off`
      if (nb.is_bottom()) continue;        // no legitimate neighbor sees it
      nb.at(off) = written;
      if (nb.is_bottom()) continue;
      if (eval_guard(*src.legit, nb, domain) != Truth::kTrue)
        return Truth::kMaybe;
    }
  }
  return Truth::kTrue;
}

TrailReplay replay_trail(const Protocol& p, const ContiguousTrail& trail) {
  TrailReplay res;
  const auto& space = p.space();
  const std::size_t k = static_cast<std::size_t>(trail.implied_ring_size());
  res.ring_size = k;
  if (k < static_cast<std::size_t>(space.locality().window()) || k < 2)
    return res;  // kNotInstantiable
  const int e = trail.num_enabled;
  const int pp = trail.propagation;
  const std::size_t round_len = static_cast<std::size_t>((e - 1) + 2 * pp);
  if (trail.steps.size() < round_len || round_len == 0)
    return res;

  // Round-start ring, reconstructed exactly as realize_trail does.
  std::vector<Value> ring(k, 0);
  for (int i = 0; i < e; ++i) {
    const LocalStateId v =
        (i == 0) ? trail.steps[0].from
                 : trail.steps[static_cast<std::size_t>(i - 1)].to;
    ring[static_cast<std::size_t>(i)] = space.self(v);
  }
  for (int j = 0; j < pp; ++j) {
    const std::size_t s_step = static_cast<std::size_t>((e - 1) + 2 * j + 1);
    ring[static_cast<std::size_t>(e + j)] = space.self(trail.steps[s_step].to);
  }
  for (int i = 0; i < e; ++i) {
    const LocalStateId expect =
        (i == 0) ? trail.steps[0].from
                 : trail.steps[static_cast<std::size_t>(i - 1)].to;
    if (local_state_of(p, ring, static_cast<std::size_t>(i)) != expect)
      return res;  // kNotInstantiable: windows inconsistent around the ring
  }
  const std::vector<Value> start = ring;

  // Walk the trail as the execution it shadows: the walk visits ring
  // positions left to right with wraparound — an s-arc moves the focus one
  // process rightward, a t-arc fires the focused process in place. Every
  // step asserts what the focused process's window must read at that
  // moment; a mismatch proves no execution of the ring follows the trail.
  res.verdict = TrailReplay::Verdict::kUnrealizable;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < trail.steps.size(); ++i) {
    const TrailStep& step = trail.steps[i];
    if (step.is_t) {
      const LocalStateId actual = local_state_of(p, ring, pos % k);
      if (actual != step.from) {
        res.reason = cat(
            "step ", i + 1, " expects process ", pos % k, " in local state ",
            space.brief(step.from), " before t#", step.t_arc_index,
            ", but the preceding writes leave it in ", space.brief(actual),
            ": no execution of the ring follows this trail");
        return res;
      }
      ring[pos % k] = space.self(step.to);
    } else {
      ++pos;
      const LocalStateId actual = local_state_of(p, ring, pos % k);
      if (actual != step.to) {
        res.reason = cat(
            "step ", i + 1, " claims process ", pos % k, " sits in local state ",
            space.brief(step.to), ", but the execution so far leaves it in ",
            space.brief(actual),
            ": no execution of the ring follows this trail");
        return res;
      }
    }
  }
  // Closure: the walk re-enters its start vertex at position `pos`, so the
  // final configuration must be the start configuration rotated by the
  // total s-arc drift — the livelock repeats shifted, not pinned.
  for (std::size_t i = 0; i < k; ++i) {
    if (ring[(i + pos) % k] != start[i]) {
      res.reason =
          "the trail's writes do not reproduce the start configuration "
          "(rotated by the walk's drift), so the walk does not close into "
          "an execution cycle";
      return res;
    }
  }
  res.verdict = TrailReplay::Verdict::kRealizable;
  return res;
}

namespace {

/// Write-projection check for the E = 1 certificate without building a
/// Protocol: the projected value multigraph of the chosen t-arcs must have
/// every arc on a directed value cycle (Def. 5.13 lifted to sets).
bool projection_forms_pseudo_livelocks(
    const LocalStateSpace& space, const std::vector<LocalTransition>& arcs) {
  const std::size_t n = space.domain().size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& t : arcs)
    adj[space.self(t.from)][space.self(t.to)] = true;
  // reach[a][b]: b reachable from a in ≥ 1 step.
  std::vector<std::vector<bool>> reach = adj;
  for (std::size_t m = 0; m < n; ++m)
    for (std::size_t a = 0; a < n; ++a)
      if (reach[a][m])
        for (std::size_t b = 0; b < n; ++b)
          if (reach[m][b]) reach[a][b] = true;
  for (const auto& t : arcs) {
    const Value from = space.self(t.from);
    const Value to = space.self(t.to);
    if (!(to == from || reach[to][from])) return false;
  }
  return true;
}

}  // namespace

StaticRejectionLane::StaticRejectionLane(const Protocol& skeleton,
                                         const TrailQuery& query)
    : skeleton_(skeleton) {
  skeleton_errors_ = lint_candidate_errors(skeleton);
  skeleton_self_disabling_ = is_self_disabling(skeleton);
  skeleton_enabled_.assign(skeleton.num_states(), false);
  for (const auto& t : skeleton.delta()) skeleton_enabled_[t.from] = true;
  // The certificate stage needs the concrete search to (a) accept an
  // |E| = 1 trail — true under the default require flags and under weaker
  // ones — and (b) consider every t-arc. A whitelist or a starved node
  // budget voids that; the ill-formedness screen stays on regardless.
  trail_certificates_ = query.t_arc_whitelist.empty() &&
                        query.node_budget >= 1'000'000 &&
                        (query.max_enabled == 0 || query.max_enabled >= 1) &&
                        (query.max_propagation == 0 ||
                         query.max_propagation >= 1);
}

std::optional<StaticRejectionLane::Rejection> StaticRejectionLane::refute(
    const std::vector<LocalTransition>& added) const {
  return refute_impl(added, /*try_trail=*/true);
}

std::optional<StaticRejectionLane::Rejection>
StaticRejectionLane::refute_ill_formed_only(
    const std::vector<LocalTransition>& added) const {
  return refute_impl(added, /*try_trail=*/false);
}

std::optional<StaticRejectionLane::Rejection> StaticRejectionLane::refute_impl(
    const std::vector<LocalTransition>& added, bool try_trail) const {
  // Errors of the skeleton itself (a pre-existing t-arc cycle, an empty
  // LC_r) are inherited by every revision: lint_candidate_errors on the
  // candidate would find the same findings.
  if (!skeleton_errors_.empty()) {
    Rejection rej;
    rej.kind = Rejection::Kind::kIllFormed;
    rej.diagnostics = skeleton_errors_;
    return rej;
  }

  // A candidate adds at most one transition per (deadlock) source state and
  // only targets states the skeleton does not fire from. Any t-arc cycle of
  // the revision therefore chains added arcs exclusively: skeleton arcs
  // start at skeleton-enabled states, which no arc of the revision can
  // enter (all targets are skeleton-deadlocks). Detecting a cycle among the
  // added arcs alone is thus exactly lint_candidate_errors' RS002 check.
  const auto next_added = [&](LocalStateId s) -> const LocalTransition* {
    for (const auto& t : added)
      if (t.from == s) return &t;
    return nullptr;
  };
  for (std::size_t i = 0; i < added.size(); ++i) {
    // Follow the added-arc chain from added[i] with a step cap of the set
    // size; revisiting the origin proves the cycle.
    LocalStateId at = added[i].to;
    for (std::size_t steps = 0; steps < added.size(); ++steps) {
      if (at == added[i].from) {
        Rejection rej;
        rej.kind = Rejection::Kind::kIllFormed;
        Diagnostic d;
        d.code = "RS002";
        d.severity = Severity::kError;
        std::string cyc = skeleton_.space().brief(added[i].from);
        LocalStateId walk = added[i].to;
        cyc += cat(" -> ", skeleton_.space().brief(walk));
        while (walk != added[i].from) {
          const LocalTransition* n = next_added(walk);
          walk = n->to;
          cyc += cat(" -> ", skeleton_.space().brief(walk));
        }
        d.message = cat(
            "added transitions close the local cycle ", cyc,
            ": a single process can fire forever (Assumption 1 fails); the "
            "trail pipeline is undefined [static]");
        rej.diagnostics.push_back(std::move(d));
        return rej;
      }
      const LocalTransition* n = next_added(at);
      if (n == nullptr) break;
      at = n->to;
    }
  }

  if (!try_trail || !trail_certificates_ || !skeleton_self_disabling_)
    return std::nullopt;

  // The certificate runs on the revision itself, so the revision must be
  // self-disabling (otherwise the concrete search analyzes the
  // make_self_disabling image, whose arcs differ): no arc target may have
  // gained an outgoing added arc.
  const auto target_enabled = [&](LocalStateId s) {
    if (skeleton_enabled_[s]) return true;
    return std::any_of(added.begin(), added.end(),
                       [&](const LocalTransition& t) { return t.from == s; });
  };
  for (const auto& t : skeleton_.delta())
    if (target_enabled(t.to)) return std::nullopt;
  for (const auto& t : added)
    if (target_enabled(t.to)) return std::nullopt;

  // |E| = 1 certificate: a cyclic chain of distinct t-arcs t_0 … t_{L-1}
  // with right_continues(to(t_i), from(t_{i+1})), pairwise-distinct s-arc
  // ids, a ¬LC_r visit, and a repetitive write projection is a qualifying
  // contiguous trail outright (w1 is automatic at |E| = 1), so the search
  // must report kTrailFound. Bounded DFS; giving up is always sound.
  const auto& space = skeleton_.space();
  std::vector<LocalTransition> arcs(skeleton_.delta().begin(),
                                    skeleton_.delta().end());
  arcs.insert(arcs.end(), added.begin(), added.end());
  std::sort(arcs.begin(), arcs.end());

  constexpr std::size_t kNodeCap = 65'536;
  std::size_t nodes = 0;
  std::vector<std::size_t> chain;
  std::vector<bool> used(arcs.size(), false);
  std::set<std::pair<LocalStateId, Value>> s_ids;  // (source, top value)

  const int right = space.locality().right;
  const auto rightmost = [&](LocalStateId v) {
    return space.value(v, right);
  };
  const auto illegit = [&](LocalStateId v) {
    return !skeleton_.is_legit(v);
  };

  std::optional<ContiguousTrail> found;
  auto dfs = [&](auto&& self, std::size_t start) -> bool {
    if (found || ++nodes > kNodeCap) return false;
    const std::size_t cur = chain.back();
    // Try closing the cycle back to the start arc.
    if (space.right_continues(arcs[cur].to, arcs[start].from) &&
        !s_ids.count({arcs[cur].to, rightmost(arcs[start].from)})) {
      bool visits_illegit = false;
      std::vector<LocalTransition> chosen;
      for (const std::size_t i : chain) {
        chosen.push_back(arcs[i]);
        if (illegit(arcs[i].from) || illegit(arcs[i].to))
          visits_illegit = true;
      }
      if (visits_illegit &&
          projection_forms_pseudo_livelocks(space, chosen)) {
        ContiguousTrail trail;
        trail.num_enabled = 1;
        trail.propagation = 1;
        trail.rounds = static_cast<int>(chain.size());
        for (std::size_t pos = 0; pos < chain.size(); ++pos) {
          const LocalTransition& t = arcs[chain[pos]];
          const LocalTransition& nxt =
              arcs[chain[(pos + 1) % chain.size()]];
          TrailStep ts;
          ts.is_t = true;
          ts.from = t.from;
          ts.to = t.to;
          ts.t_arc_index = chain[pos];  // arcs is sorted = revision delta()
          trail.steps.push_back(ts);
          TrailStep ss;
          ss.is_t = false;
          ss.from = t.to;
          ss.to = nxt.from;
          trail.steps.push_back(ss);
        }
        found = std::move(trail);
        return true;
      }
    }
    for (std::size_t j = 0; j < arcs.size(); ++j) {
      if (used[j] || found) continue;
      if (!space.right_continues(arcs[cur].to, arcs[j].from)) continue;
      const std::pair<LocalStateId, Value> sid{arcs[cur].to,
                                               rightmost(arcs[j].from)};
      if (s_ids.count(sid)) continue;
      used[j] = true;
      chain.push_back(j);
      s_ids.insert(sid);
      self(self, start);
      s_ids.erase(sid);
      chain.pop_back();
      used[j] = false;
      if (found) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < arcs.size() && !found; ++i) {
    chain.assign(1, i);
    used.assign(arcs.size(), false);
    used[i] = true;
    s_ids.clear();
    dfs(dfs, i);
  }
  if (!found) return std::nullopt;

  Rejection rej;
  rej.kind = Rejection::Kind::kTrail;
  rej.trail = std::move(found);
  return rej;
}

}  // namespace ringstab
