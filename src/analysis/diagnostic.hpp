// Structured diagnostics with stable codes, used by the lint passes
// (src/analysis/lint.hpp) and the front-ends' error reporting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/source.hpp"

namespace ringstab {

enum class Severity { kError, kWarning, kNote };

/// "error" / "warning" / "note".
const char* severity_name(Severity s);

/// One finding. `code` is a stable RS0xx identifier (see docs/lint.md for
/// the registry); `hint` is an optional fix-it suggestion; `file`/`span` are
/// empty/invalid when the finding has no source attribution (e.g. lint over
/// a programmatically built Protocol).
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  std::string message;
  std::string hint;
  std::string file;
  SourceSpan span;

  bool operator==(const Diagnostic&) const = default;
};

/// Compiler-style text rendering, one finding per line:
///   file:line:column: severity: message [RS0xx]
///       hint: ...
/// Location segments are omitted when absent.
std::string render_text(const std::vector<Diagnostic>& diags);

/// JSON rendering: {"diagnostics": [{"code": ..., "severity": ...,
/// "message": ..., "hint": ..., "file": ..., "line": N, "column": N}]}.
/// All keys are always present (absent location renders as "" / 0).
std::string render_json(const std::vector<Diagnostic>& diags);

/// Strict parser for render_json's output (round-trip testing and external
/// tooling). Throws ParseError on malformed input.
std::vector<Diagnostic> parse_diagnostics_json(std::string_view json);

}  // namespace ringstab
