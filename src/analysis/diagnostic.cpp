#include "analysis/diagnostic.hpp"

#include <cctype>
#include <sstream>

#include "core/fmt.hpp"
#include "core/types.hpp"

namespace ringstab {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string render_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (const auto& d : diags) {
    if (!d.file.empty()) {
      os << d.file;
      if (d.span.valid()) os << ':' << d.span.line << ':' << d.span.column;
      os << ": ";
    } else if (d.span.valid()) {
      os << d.span.line << ':' << d.span.column << ": ";
    }
    os << severity_name(d.severity) << ": " << d.message << " [" << d.code
       << "]\n";
    if (!d.hint.empty()) os << "    hint: " << d.hint << "\n";
  }
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

/// Minimal recursive-descent reader for the exact shape render_json emits.
class JsonReader {
 public:
  explicit JsonReader(std::string_view s) : s_(s) {}

  std::vector<Diagnostic> read() {
    std::vector<Diagnostic> out;
    expect('{');
    expect_key("diagnostics");
    expect('[');
    skip_ws();
    if (!at(']')) {
      for (;;) {
        out.push_back(read_diag());
        skip_ws();
        if (at(',')) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    expect(']');
    expect('}');
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(cat("diagnostics JSON: ", msg, " at offset ", pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool at(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

  void expect(char c) {
    skip_ws();
    if (!at(c)) fail(cat("expected '", c, "'"));
    ++pos_;
  }

  void expect_key(std::string_view key) {
    const std::string got = read_string();
    if (got != key) fail(cat("expected key \"", std::string(key), "\""));
    expect(':');
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          int v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= h - '0';
            else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
            else fail("bad \\u escape");
          }
          if (v > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(v));
          break;
        }
        default: fail(cat("unknown escape '\\", e, "'"));
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  long long read_int() {
    skip_ws();
    bool neg = false;
    if (at('-')) {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      fail("expected integer");
    long long v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + (s_[pos_++] - '0');
      if (v > 1'000'000'000) fail("integer too large");
    }
    return neg ? -v : v;
  }

  Diagnostic read_diag() {
    Diagnostic d;
    expect('{');
    expect_key("code");
    skip_ws();
    d.code = read_string();
    expect(',');
    expect_key("severity");
    skip_ws();
    const std::string sev = read_string();
    if (sev == "error") d.severity = Severity::kError;
    else if (sev == "warning") d.severity = Severity::kWarning;
    else if (sev == "note") d.severity = Severity::kNote;
    else fail(cat("unknown severity \"", sev, "\""));
    expect(',');
    expect_key("message");
    skip_ws();
    d.message = read_string();
    expect(',');
    expect_key("hint");
    skip_ws();
    d.hint = read_string();
    expect(',');
    expect_key("file");
    skip_ws();
    d.file = read_string();
    expect(',');
    expect_key("line");
    d.span.line = static_cast<int>(read_int());
    expect(',');
    expect_key("column");
    d.span.column = static_cast<int>(read_int());
    expect('}');
    return d;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  os << "{\n  \"diagnostics\": [";
  bool first = true;
  for (const auto& d : diags) {
    os << (first ? "\n" : ",\n") << "    {\"code\": \"";
    json_escape(os, d.code);
    os << "\", \"severity\": \"" << severity_name(d.severity)
       << "\", \"message\": \"";
    json_escape(os, d.message);
    os << "\", \"hint\": \"";
    json_escape(os, d.hint);
    os << "\", \"file\": \"";
    json_escape(os, d.file);
    os << "\", \"line\": " << d.span.line
       << ", \"column\": " << d.span.column << "}";
    first = false;
  }
  os << (first ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

std::vector<Diagnostic> parse_diagnostics_json(std::string_view json) {
  return JsonReader(json).read();
}

}  // namespace ringstab
