#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/absint.hpp"
#include "core/fmt.hpp"
#include "global/array_instance.hpp"
#include "global/checker.hpp"
#include "global/ring_instance.hpp"
#include "graph/cycles.hpp"
#include "graph/digraph.hpp"
#include "local/array.hpp"
#include "local/closure.hpp"
#include "local/deadlock.hpp"
#include "local/livelock.hpp"
#include "local/rcg.hpp"
#include "local/self_disabling.hpp"
#include "obs/obs.hpp"

namespace ringstab {

bool LintResult::has_error() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::kError;
                     });
}

std::size_t LintResult::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

namespace {

/// Routes pass findings into a LintResult: fills in the default file,
/// applies `allow(...)` suppressions, enforces the per-pass cap, and bumps
/// the emission counter.
class Collector {
 public:
  Collector(LintResult& res, const LintOptions& opts, std::string file)
      : res_(res), opts_(opts), file_(std::move(file)) {}

  void begin_pass() { pass_count_ = 0; }

  void emit(Diagnostic d) {
    if (d.file.empty()) d.file = file_;
    if (std::find(opts_.allow.begin(), opts_.allow.end(), d.code) !=
        opts_.allow.end()) {
      ++res_.suppressed;
      return;
    }
    if (pass_count_ >= opts_.max_diags_per_pass) return;
    ++pass_count_;
    obs::counter("lint.diags_emitted").add(1);
    res_.diagnostics.push_back(std::move(d));
  }

 private:
  LintResult& res_;
  const LintOptions& opts_;
  std::string file_;
  std::size_t pass_count_ = 0;
};

Digraph t_arc_graph(const Protocol& p) {
  Digraph g(p.num_states());
  for (const auto& t : p.delta())
    g.add_arc(static_cast<VertexId>(t.from), static_cast<VertexId>(t.to));
  return g;
}

std::optional<Cycle> find_t_arc_cycle(const Protocol& p) {
  const Digraph g = t_arc_graph(p);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) == 0) continue;
    if (auto cyc = find_cycle_through(g, v)) return cyc;
  }
  return std::nullopt;
}

std::string render_cycle(const LocalStateSpace& space, const Cycle& cyc) {
  return join(cyc, " -> ", [&](VertexId v) {
    return space.brief(static_cast<LocalStateId>(v));
  });
}

std::string render_sizes(const std::vector<std::size_t>& sizes,
                         std::size_t cap = 8) {
  std::string out;
  for (std::size_t i = 0; i < sizes.size() && i < cap; ++i)
    out += cat(i ? " " : "", sizes[i]);
  if (sizes.size() > cap) out += " ...";
  return out;
}

/// Proof results of the source-level abstract interpretation, threaded into
/// the protocol passes so a successful symbolic proof discharges the
/// corresponding concrete check. All-null/kMaybe (the lint_protocol entry
/// point) means "no proofs: run everything concretely".
struct SourceFacts {
  const AbsintResult* absint = nullptr;
  absint::Truth closure = absint::Truth::kMaybe;
};

// RS002: Assumption 1 (self-termination) and Assumption 2 (self-disabling).
void pass_rs002(const Protocol& p, Collector& c, const SourceFacts& facts) {
  obs::Span span("lint.pass.rs002");
  c.begin_pass();
  // RS101 discharge: a symbolic proof that every action's write falsifies
  // its own guard implies Assumption 2 outright, and Assumption 1 with it
  // (every t-arc then lands in a deadlock, so no t-arc cycle exists).
  if (facts.absint && facts.absint->all_proved_self_disabling) {
    obs::counter("lint.rs101_discharged").add(1);
    return;
  }
  if (const auto cyc = find_t_arc_cycle(p)) {
    const bool all_illegit =
        std::none_of(cyc->begin(), cyc->end(), [&](VertexId v) {
          return p.is_legit(static_cast<LocalStateId>(v));
        });
    Diagnostic d;
    d.code = "RS002";
    d.severity = Severity::kError;
    d.message = cat(
        "local transition cycle ", render_cycle(p.space(), *cyc),
        ": a single process can fire forever (Assumption 1 fails), so trail "
        "reasoning and make_self_disabling are undefined",
        all_illegit
            ? "; every state on the cycle is illegitimate, so the cycle is a "
              "one-process livelock outside I at every ring size"
            : "");
    d.hint =
        "break the cycle: make each action's write disable it (or at least "
        "terminate every chain of its own transitions)";
    c.emit(std::move(d));
    return;  // self-disablement is moot on a cyclic t-arc graph
  }
  if (is_self_disabling(p)) return;
  std::string examples;
  std::size_t offending = 0;
  for (const auto& t : p.delta()) {
    if (p.is_deadlock(t.to)) continue;
    ++offending;
    if (offending <= 4)
      examples += cat(offending > 1 ? ", " : "", p.space().brief(t.from),
                      " -> ", p.space().brief(t.to));
  }
  Diagnostic d;
  d.code = "RS002";
  d.severity = Severity::kWarning;
  d.message = cat(
      offending, " transition(s) leave their process enabled (", examples,
      offending > 4 ? ", ..." : "",
      "): Assumption 2 (self-disabling) fails, so livelock trail analysis "
      "falls back on the self-disabling image");
  d.hint =
      "apply make_self_disabling(p) or strengthen guards so each write "
      "disables its own process";
  c.emit(std::move(d));
}

// RS010 (protocol part): transition sources must lie on an RCG cycle to be
// realizable in some ring (Def. 4.1). On rings every local state has |D|
// continuations both ways, so this is a defensive invariant check.
void pass_rs010_rcg(const Protocol& p, Collector& c) {
  obs::Span span("lint.pass.rs010");
  c.begin_pass();
  const Digraph rcg = build_rcg(p.space());
  std::set<LocalStateId> sources;
  for (const auto& t : p.delta()) sources.insert(t.from);
  for (const LocalStateId s : sources) {
    if (find_cycle_through(rcg, static_cast<VertexId>(s))) continue;
    Diagnostic d;
    d.code = "RS010";
    d.severity = Severity::kWarning;
    d.message =
        cat("local state ", p.space().brief(s),
            " lies on no RCG cycle: no ring of any size realizes it, so its ",
            p.transitions_from(s).size(),
            " transition(s) can never fire (Def. 4.1)");
    d.hint = "remove the unreachable transitions";
    c.emit(std::move(d));
  }
}

// RS011: Theorem 4.2 witness — a deadlock-RCG cycle through ¬LC_r.
void pass_rs011(const Protocol& p, Collector& c, const LintOptions& opts) {
  obs::Span span("lint.pass.rs011");
  c.begin_pass();
  if (opts.array_topology) {
    try {
      const auto ada =
          analyze_array_deadlocks(p, opts.deadlock_spectrum_max_k);
      if (ada.deadlock_free_all_n) return;
      Diagnostic d;
      d.code = "RS011";
      d.severity = Severity::kWarning;
      d.message =
          cat("arrays deadlock outside I at sizes ",
              render_sizes(ada.deadlocked_sizes()),
              " (array analogue of Theorem 4.2)");
      d.hint =
          "resolve the illegitimate deadlocks (`ringstab synthesize`), or "
          "mark intent with '# lint: allow(RS011)' if this file is a "
          "synthesis input";
      c.emit(std::move(d));
    } catch (const Error& e) {
      Diagnostic d;
      d.code = "RS011";
      d.severity = Severity::kNote;
      d.message = cat("array deadlock analysis skipped: ", e.what());
      c.emit(std::move(d));
    }
    return;
  }
  const auto da =
      analyze_deadlocks(p, opts.deadlock_spectrum_max_k,
                        std::max<std::size_t>(opts.max_diags_per_pass, 1));
  if (da.deadlock_free_all_k) return;
  const std::string sizes = render_sizes(da.deadlocked_sizes());
  for (const auto& cyc : da.bad_cycles) {
    const auto it = std::find_if(cyc.begin(), cyc.end(), [&](VertexId v) {
      return !p.is_legit(static_cast<LocalStateId>(v));
    });
    Diagnostic d;
    d.code = "RS011";
    d.severity = Severity::kWarning;
    d.message = cat(
        "deadlock-RCG cycle ", render_cycle(p.space(), cyc),
        " passes through illegitimate deadlock ",
        it == cyc.end() ? "?" : p.space().brief(static_cast<LocalStateId>(*it)),
        ": rings built from it deadlock outside I (Theorem 4.2); affected "
        "sizes up to K=",
        opts.deadlock_spectrum_max_k, ": ", sizes);
    d.hint =
        "resolve the illegitimate deadlocks (`ringstab synthesize`), or mark "
        "intent with '# lint: allow(RS011)' if this file is a synthesis "
        "input";
    c.emit(std::move(d));
  }
}

// RS020: degenerate LC_r and unused domain values.
void pass_rs020(const Protocol& p, Collector& c) {
  obs::Span span("lint.pass.rs020");
  c.begin_pass();
  const std::size_t nl = p.num_legit();
  if (nl == 0) {
    Diagnostic d;
    d.code = "RS020";
    d.severity = Severity::kError;
    d.message =
        "LC_r holds in no local state: I(K) is empty for every K, so there "
        "is nothing to converge to";
    d.hint = "fix the 'legit:' predicate";
    c.emit(std::move(d));
  } else if (nl == p.num_states()) {
    Diagnostic d;
    d.code = "RS020";
    d.severity = Severity::kWarning;
    d.message =
        "LC_r holds in every local state: I(K) is the full state space, so "
        "stabilization is vacuous";
    d.hint = "fix the 'legit:' predicate";
    c.emit(std::move(d));
  }
  const Domain& dom = p.domain();
  std::vector<bool> used(dom.size(), false);
  for (const auto& t : p.delta()) {
    used[p.space().self(t.from)] = true;
    used[p.space().self(t.to)] = true;
  }
  for (LocalStateId s = 0; s < p.num_states(); ++s)
    if (p.is_legit(s)) used[p.space().self(s)] = true;
  for (Value v = 0; v < static_cast<Value>(dom.size()); ++v) {
    if (used[v]) continue;
    Diagnostic d;
    d.code = "RS020";
    d.severity = Severity::kNote;
    d.message = cat("domain value '", dom.name(v),
                    "' is never written, never enables an action and is "
                    "never legitimate as x[0]");
    d.hint = "drop it from the domain or use it";
    c.emit(std::move(d));
  }
}

// RS030: closure interference (Problem 3.1 forbids behavior change in I).
void pass_rs030(const Protocol& p, Collector& c, const LintOptions& opts,
                const SourceFacts& facts) {
  obs::Span span("lint.pass.rs030");
  c.begin_pass();
  // RS120 discharge: the symbolic closure certificate makes both the local
  // check and the K = window + 2 confirmation sweep redundant.
  if (facts.closure == absint::Truth::kTrue) {
    obs::counter("lint.rs120_discharged").add(1);
    if (opts.absint_certificates) {
      Diagnostic d;
      d.code = "RS120";
      d.severity = Severity::kNote;
      d.message =
          "invariant closure proved symbolically: every action's write "
          "keeps its own LC and every reading neighbor's LC true, so the "
          "RS030 expansion check and its confirmation sweep were skipped";
      c.emit(std::move(d));
    }
    return;
  }
  const ClosureCheck cc = check_invariant_closure(p);
  if (cc.verdict == ClosureCheck::Verdict::kClosed) return;
  // The local check is conservative; confirm on a small instance before
  // reporting an error.
  const std::size_t k = static_cast<std::size_t>(p.locality().window()) + 2;
  try {
    bool violated = false;
    if (opts.array_topology) {
      const ArrayInstance inst(p, k, opts.closure_confirm_budget);
      std::vector<ArrayInstance::Step> steps;
      for (GlobalStateId s = 0; s < inst.num_states() && !violated; ++s) {
        if (!inst.in_invariant(s)) continue;
        inst.successors(s, steps);
        for (const auto& st : steps)
          if (!inst.in_invariant(st.target)) {
            violated = true;
            break;
          }
      }
    } else {
      const RingInstance ring(p, k, opts.closure_confirm_budget);
      const GlobalChecker checker(ring);
      violated = !checker.check_closure();
    }
    if (!violated) return;  // local suspicion not realizable
    Diagnostic d;
    d.code = "RS030";
    d.severity = Severity::kError;
    d.message = cat(cc.describe(p), "; confirmed at ",
                    opts.array_topology ? "array length " : "K=", k,
                    ": a transition enabled inside I leaves I");
    d.hint =
        "disable the action inside I (conjoin the guard with a violated LC "
        "term); Problem 3.1 forbids changing behavior within the invariant";
    c.emit(std::move(d));
  } catch (const CapacityError&) {
    Diagnostic d;
    d.code = "RS030";
    d.severity = Severity::kNote;
    d.message =
        cat(cc.describe(p),
            "; could not be confirmed within the closure budget (instance "
            "exceeds ",
            opts.closure_confirm_budget, " states)");
    d.hint = "raise LintOptions::closure_confirm_budget to confirm";
    c.emit(std::move(d));
  }
}

// RS110: statically-unrealizable trails. When the Theorem 5.14 search does
// find a qualifying trail, replay it deterministically at its implied ring
// size; a replay failure proves the trail spurious *at that K* without any
// global sweep — the sound half of the paper's "we fail to reconstruct"
// discussion. Replay success means the trail is a concrete livelock, so no
// sound trail is ever flagged.
void pass_rs110(const Protocol& p, Collector& c, const LintOptions& opts) {
  if (opts.array_topology || opts.trail_replay_budget == 0) return;
  if (!is_self_disabling(p)) return;  // the trail indexes the s.d. image
  obs::Span span("lint.pass.rs110");
  c.begin_pass();
  TrailQuery query;
  query.node_budget = opts.trail_replay_budget;
  const auto live = check_livelock_freedom(p, query);
  if (live.verdict != LivelockAnalysis::Verdict::kTrailFound) return;
  const auto replay = replay_trail(p, *live.trail());
  if (replay.verdict == TrailReplay::Verdict::kRealizable) return;
  Diagnostic d;
  d.code = "RS110";
  d.severity = Severity::kNote;
  d.message = cat(
      "the qualifying contiguous trail (|E|=", live.trail()->num_enabled,
      ", P=", live.trail()->propagation, ", rounds=", live.trail()->rounds,
      ") is statically unrealizable at its implied ring size K=",
      live.trail()->implied_ring_size(), ": ",
      replay.verdict == TrailReplay::Verdict::kNotInstantiable
          ? "its windows are inconsistent around the ring"
          : replay.reason,
      " — the Theorem 5.14 rejection it witnesses is spurious at that size "
      "(livelocks at other sizes remain possible)");
  d.hint =
      "confirm with `ringstab analyze --check-k` at the sizes of interest, "
      "or acknowledge with '# lint: allow(RS110)'";
  c.emit(std::move(d));
}

void run_protocol_passes(const Protocol& p, Collector& c,
                         const LintOptions& opts, const SourceFacts& facts) {
  pass_rs002(p, c, facts);
  if (!opts.array_topology) pass_rs010_rcg(p, c);
  pass_rs011(p, c, opts);
  pass_rs020(p, c);
  pass_rs030(p, c, opts, facts);
  pass_rs110(p, c, opts);
}

}  // namespace

LintResult lint_protocol(const Protocol& p, const LintOptions& opts) {
  obs::Span span("lint.protocol");
  LintResult res;
  Collector c(res, opts, {});
  run_protocol_passes(p, c, opts, SourceFacts{});
  return res;
}

LintResult lint_source(const ProtocolSource& src, const LintOptions& opts) {
  obs::Span span("lint.source");
  LintOptions merged = opts;
  merged.allow.insert(merged.allow.end(), src.lint_allows.begin(),
                      src.lint_allows.end());
  if (src.array_topology) merged.array_topology = true;

  LintResult res;
  Collector c(res, merged, src.file);

  const LocalStateSpace space(src.domain, src.locality);
  std::vector<ActionExpansion> exps;
  exps.reserve(src.actions.size());
  for (const auto& a : src.actions) exps.push_back(expand_action(space, a));

  // RS000: expression evaluation failures (unresolved names, reads outside
  // the window, division by zero) — these abort parse_protocol with the same
  // location.
  {
    obs::Span sp("lint.pass.rs000");
    c.begin_pass();
    for (std::size_t i = 0; i < exps.size(); ++i)
      for (const auto& msg : exps[i].eval_errors) {
        Diagnostic d;
        d.code = "RS000";
        d.severity = Severity::kError;
        d.message = cat("in action '", src.actions[i].label, "': ", msg);
        d.span = src.actions[i].span;
        c.emit(std::move(d));
      }
  }

  // RS001: write discipline — out-of-domain writes and stutters.
  {
    obs::Span sp("lint.pass.rs001");
    c.begin_pass();
    for (std::size_t i = 0; i < exps.size(); ++i) {
      const auto& a = src.actions[i];
      for (const auto& msg : exps[i].domain_errors) {
        Diagnostic d;
        d.code = "RS001";
        d.severity = Severity::kError;
        d.message = cat("in action '", a.label, "': ", msg);
        d.hint =
            "writes must stay inside the domain; reduce modulo the domain "
            "size or extend the domain";
        d.span = a.span;
        c.emit(std::move(d));
      }
      if (!exps[i].stutter_states.empty() && !exps[i].transitions.empty()) {
        Diagnostic d;
        d.code = "RS001";
        d.severity = Severity::kWarning;
        d.message = cat(
            "action '", a.label, "' stutters (rewrites x[0] to its current "
            "value) at ", exps[i].stutter_states.size(),
            " enabled state(s), e.g. ",
            space.brief(exps[i].stutter_states.front()),
            "; stutter transitions carry no information and are dropped");
        d.hint =
            "strengthen the guard to exclude states already holding the "
            "written value";
        d.span = a.span;
        c.emit(std::move(d));
      }
    }
  }

  // RS003: cross-action overlap with conflicting writes.
  {
    obs::Span sp("lint.pass.rs003");
    c.begin_pass();
    std::map<LocalStateId, std::vector<std::pair<std::size_t, LocalStateId>>>
        by_from;
    for (std::size_t i = 0; i < exps.size(); ++i)
      for (const auto& t : exps[i].transitions)
        by_from[t.from].emplace_back(i, t.to);
    std::set<std::pair<std::size_t, std::size_t>> reported;
    for (const auto& [from, writes] : by_from) {
      for (std::size_t a = 0; a < writes.size(); ++a)
        for (std::size_t b = a + 1; b < writes.size(); ++b) {
          if (writes[a].first == writes[b].first) continue;  // same action
          if (writes[a].second == writes[b].second) continue;  // same write
          const auto pair =
              std::minmax(writes[a].first, writes[b].first);
          if (!reported.insert(pair).second) continue;
          const auto& dom = space.domain();
          Diagnostic d;
          d.code = "RS003";
          d.severity = Severity::kWarning;
          d.message = cat(
              "actions '", src.actions[pair.first].label, "' and '",
              src.actions[pair.second].label, "' overlap at ",
              space.brief(from), " with conflicting writes (x[0] := ",
              dom.name(space.self(writes[a].second)), " vs ",
              dom.name(space.self(writes[b].second)),
              "): the scheduler picks nondeterministically");
          d.hint =
              "make the guards mutually exclusive, or acknowledge the "
              "nondeterminism with '# lint: allow(RS003)'";
          d.span = src.actions[pair.second].span;
          c.emit(std::move(d));
        }
    }
  }

  // RS010 (source part): dead actions.
  {
    obs::Span sp("lint.pass.rs010");
    c.begin_pass();
    for (std::size_t i = 0; i < exps.size(); ++i) {
      if (!exps[i].transitions.empty()) continue;
      if (!exps[i].eval_errors.empty()) continue;  // already RS000
      const auto& a = src.actions[i];
      Diagnostic d;
      d.code = "RS010";
      d.severity = Severity::kWarning;
      d.message =
          exps[i].enabled_states == 0
              ? cat("action '", a.label,
                    "' is dead: its guard holds in no local state")
              : cat("action '", a.label,
                    "' is dead: every enabled assignment stutters, so it "
                    "generates no transitions");
      d.hint = "delete the action or fix its guard/assignment";
      d.span = a.span;
      c.emit(std::move(d));
    }
  }

  // Symbolic passes (RS1xx): abstract interpretation over the source —
  // no state-space expansion, proofs only (kMaybe defers to the concrete
  // passes below).
  const AbsintResult ai = analyze_source(src);
  SourceFacts facts;
  facts.absint = &ai;
  facts.closure = prove_invariant_closure(src);

  // RS100: vacuous guards. A guard proved unsatisfiable outright is a
  // symbolic dead action; one satisfiable only outside the persistent
  // written-value envelope W* can fire at most finitely often from an
  // arbitrary start (reported only when other actions do stay live in W* —
  // a protocol whose *every* action dies in W* has simply converged).
  {
    obs::Span sp("lint.pass.rs100");
    c.begin_pass();
    std::vector<bool> env_unsat(src.actions.size(), false);
    for (std::size_t i = 0; i < src.actions.size(); ++i) {
      const auto& a = src.actions[i];
      if (!a.guard || !exps[i].eval_errors.empty()) continue;
      if (ai.actions[i].guard_truth == absint::Truth::kFalse) {
        Diagnostic d;
        d.code = "RS100";
        d.severity = Severity::kWarning;
        d.message = cat("guard of action '", a.label,
                        "' is unsatisfiable (proved symbolically): the "
                        "action can never fire");
        d.hint = "delete the action or fix the contradictory guard";
        d.span = a.span;
        c.emit(std::move(d));
        env_unsat[i] = true;
        continue;
      }
      absint::Box env = absint::Box::top(space);
      for (int off = env.min_offset(); off <= env.max_offset(); ++off)
        env.at(off) = env.at(off) & ai.persistent_values;
      const absint::Box refined = absint::assume(env, *a.guard, src.domain);
      env_unsat[i] =
          refined.is_bottom() ||
          absint::eval_guard(*a.guard, refined, src.domain) ==
              absint::Truth::kFalse;
    }
    const bool all_dead =
        std::all_of(env_unsat.begin(), env_unsat.end(), [](bool b) { return b; });
    if (!all_dead) {
      for (std::size_t i = 0; i < src.actions.size(); ++i) {
        if (!env_unsat[i] || !src.actions[i].guard ||
            !exps[i].eval_errors.empty())
          continue;
        if (ai.actions[i].guard_truth == absint::Truth::kFalse) continue;
        Diagnostic d;
        d.code = "RS100";
        d.severity = Severity::kNote;
        d.message = cat(
            "action '", src.actions[i].label,
            "' is persistently vacuous: its guard is unsatisfiable once "
            "every variable lies in the persistent written-value envelope "
            "{",
            join(ai.persistent_values.values(src.domain.size()), ", ",
                 [&](Value v) { return std::string(src.domain.name(v)); }),
            "}, so it fires at most finitely often while other actions "
            "stay live");
        d.hint = "the action only matters during stabilization; delete it "
                 "if that was not intended";
        d.span = src.actions[i].span;
        c.emit(std::move(d));
      }
    }
  }

  // RS101 (certificate note; the discharge itself happens in pass_rs002).
  if (merged.absint_certificates && ai.all_proved_self_disabling) {
    obs::Span sp("lint.pass.rs101");
    c.begin_pass();
    Diagnostic d;
    d.code = "RS101";
    d.severity = Severity::kNote;
    d.message = cat(
        "all ", src.actions.size(),
        " action(s) proved self-disabling symbolically (every write "
        "falsifies its own guard): Assumption 2 holds, discharged without "
        "expanding the local state space");
    c.emit(std::move(d));
  }

  // RS102: guard-overlap determinism, refined by implication. RS003 reports
  // concrete overlap states; this pass proves the *containment structure*
  // between guards of actions with different write expressions, which
  // syntactic comparison cannot see.
  {
    obs::Span sp("lint.pass.rs102");
    c.begin_pass();
    for (std::size_t i = 0; i < src.actions.size(); ++i) {
      for (std::size_t j = i + 1; j < src.actions.size(); ++j) {
        const auto& a = src.actions[i];
        const auto& b = src.actions[j];
        if (!a.guard || !b.guard) continue;
        if (!exps[i].eval_errors.empty() || !exps[j].eval_errors.empty())
          continue;
        // Identical write sets cannot conflict on the written value.
        if (ai.actions[i].writes == ai.actions[j].writes &&
            ai.actions[i].writes.count() <= 1)
          continue;
        const auto rel = absint::relate_guards(*a.guard, *b.guard, space);
        const char* how = nullptr;
        switch (rel) {
          case absint::GuardRelation::kEquivalent:
            how = "is equivalent to";
            break;
          case absint::GuardRelation::kLeftImpliesRight:
            how = "implies";
            break;
          case absint::GuardRelation::kRightImpliesLeft:
            how = "is implied by";
            break;
          default:
            break;
        }
        if (how == nullptr) continue;
        Diagnostic d;
        d.code = "RS102";
        d.severity = Severity::kNote;
        d.message = cat(
            "guard of action '", a.label, "' ", how, " the guard of '",
            b.label,
            "' (proved symbolically): wherever the narrower guard holds "
            "both actions compete and the scheduler picks "
            "nondeterministically");
        d.hint =
            "make the guards mutually exclusive, or acknowledge with "
            "'# lint: allow(RS102)'";
        d.span = b.span;
        c.emit(std::move(d));
      }
    }
  }

  // Build the protocol best-effort (skipping bad writes, treating
  // unevaluable legitimacy as false) and run the protocol-level passes.
  std::vector<LocalTransition> delta;
  for (const auto& ex : exps)
    delta.insert(delta.end(), ex.transitions.begin(), ex.transitions.end());
  std::vector<bool> legit(space.size(), false);
  std::string legit_error;
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const LocalView view(space, s);
    try {
      legit[s] = src.legit && src.legit->eval(view) != 0;
    } catch (const ParseError& e) {
      if (legit_error.empty()) legit_error = e.what();
    }
  }
  if (!legit_error.empty()) {
    obs::Span sp("lint.pass.rs000");
    c.begin_pass();
    Diagnostic d;
    d.code = "RS000";
    d.severity = Severity::kError;
    d.message = cat("in 'legit': ", legit_error);
    d.span = src.legit_span;
    c.emit(std::move(d));
  }
  const Protocol p(src.name.empty() ? "<unnamed>" : src.name, space,
                   std::move(delta), std::move(legit));
  run_protocol_passes(p, c, merged, facts);
  return res;
}

LintResult lint_ring_file(const std::string& path, const LintOptions& opts) {
  obs::Span span("lint.file");
  try {
    return lint_ring_text(read_source_file(path), path, opts);
  } catch (const ParseError& e) {
    // read_source_file failed; report the unreadable file as RS000 with no
    // source span (lint_ring_text handles in-text parse errors itself).
    LintResult res;
    Collector c(res, opts, path);
    c.begin_pass();
    Diagnostic d;
    d.code = "RS000";
    d.severity = Severity::kError;
    d.message = e.what();
    c.emit(std::move(d));
    return res;
  }
}

LintResult lint_ring_text(const std::string& text, const std::string& path,
                          const LintOptions& opts) {
  try {
    return lint_source(parse_protocol_source(text, path), opts);
  } catch (const ParseError& e) {
    LintResult res;
    Collector c(res, opts, path);
    c.begin_pass();
    Diagnostic d;
    d.code = "RS000";
    d.severity = Severity::kError;
    // The parser's message already carries `path:line:column: error:`;
    // recover the span so the diagnostic structure matches.
    std::string msg = e.what();
    const std::string prefix = path + ":";
    if (msg.rfind(prefix, 0) == 0) {
      int line = 0, column = 0;
      std::size_t i = prefix.size();
      while (i < msg.size() && std::isdigit(static_cast<unsigned char>(msg[i])))
        line = line * 10 + (msg[i++] - '0');
      if (i < msg.size() && msg[i] == ':') {
        ++i;
        while (i < msg.size() &&
               std::isdigit(static_cast<unsigned char>(msg[i])))
          column = column * 10 + (msg[i++] - '0');
      }
      const std::string marker = ": error: ";
      const std::size_t at = msg.find(marker, prefix.size());
      if (line > 0 && at != std::string::npos) {
        d.span = SourceSpan{line, column};
        msg = msg.substr(at + marker.size());
      }
    }
    d.message = std::move(msg);
    c.emit(std::move(d));
    return res;
  }
}

std::vector<Diagnostic> lint_candidate_errors(const Protocol& p) {
  std::vector<Diagnostic> out;
  if (const auto cyc = find_t_arc_cycle(p)) {
    Diagnostic d;
    d.code = "RS002";
    d.severity = Severity::kError;
    d.message = cat("local transition cycle ",
                    render_cycle(p.space(), *cyc),
                    ": a single process can fire forever (Assumption 1 "
                    "fails); the trail pipeline is undefined");
    out.push_back(std::move(d));
  }
  if (p.num_legit() == 0) {
    Diagnostic d;
    d.code = "RS020";
    d.severity = Severity::kError;
    d.message = "LC_r holds in no local state: nothing to converge to";
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace ringstab
