// Abstract interpretation over parsed ring protocols: per-action transfer
// functions on the box domain, the written-value worklist fixpoint, the
// RS1xx symbolic pass results, and the synthesizers' static rejection lane.
//
// Soundness contract (DESIGN.md "Abstract interpretation"): every proof
// object here errs toward "cannot tell". A vacuous-guard verdict (RS100), a
// self-disablement proof (RS101), an implication (RS102), a closure
// certificate (RS120) and a static candidate rejection are all only emitted
// when the abstract semantics *proves* the property; the concrete passes
// remain the fallback for everything else.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/domains.hpp"
#include "core/parser.hpp"
#include "core/protocol.hpp"
#include "local/trail.hpp"

namespace ringstab {

/// Symbolic facts about one sourced action, derived without expanding the
/// local state space.
struct ActionFacts {
  /// eval_guard(guard, ⊤): kFalse proves the guard unsatisfiable (RS100).
  absint::Truth guard_truth = absint::Truth::kMaybe;
  /// Guard-refined input box (assume(⊤, guard)).
  absint::Box in;
  /// Join of the transfer images over every effect alternative.
  absint::Box out;
  /// Values the action may write (offset 0 of `out`).
  absint::ValueSet writes;
  /// True iff eval_guard(guard, out_e) == kFalse for every effect
  /// alternative e: the write provably falsifies its own guard (RS101).
  bool proved_self_disabling = false;
};

/// Result of the source-level abstract interpretation: one ActionFacts per
/// action, plus the persistent written-value envelope.
struct AbsintResult {
  std::vector<ActionFacts> actions;

  /// Descending worklist fixpoint of W_{n+1} = ∪_a writes(a | window ⊆ W_n)
  /// from W_0 = D: once every process has moved n times, every variable's
  /// value lies in W_n, so W* bounds the persistently reachable values.
  absint::ValueSet persistent_values;

  /// True iff every action is proved_self_disabling — Assumption 2 holds,
  /// discharged without expansion (RS101).
  bool all_proved_self_disabling = false;
};

/// Run the abstract interpretation over a parsed source. Pure; never throws
/// on malformed expressions (those degrade to top and stay RS000's job).
AbsintResult analyze_source(const ProtocolSource& src);

/// RS120: symbolic proof that the invariant I = ∧_r LC_r is closed under
/// every action — the mover's own LC survives its write, and so does the LC
/// of every neighbor whose window reads the written variable. kTrue is a
/// proof that lets RS030 skip both its expansion check and its confirmation
/// sweep; kMaybe defers to the concrete path.
absint::Truth prove_invariant_closure(const ProtocolSource& src);

/// RS110: deterministic replay of a contiguous trail at its implied ring
/// size. Reconstructs the round-start ring exactly as realize_trail does,
/// then fires the trail's t-arcs in pattern order. A read/write mismatch —
/// the previous segment's write cannot produce the local state the next
/// t-arc requires — proves the trail statically unrealizable at that K
/// (the Theorem 5.14 rejection is spurious there). Replay success
/// reconstructs a concrete closed execution: the trail is sound.
struct TrailReplay {
  enum class Verdict {
    kRealizable,      // replay closed: the trail is a concrete livelock at K
    kUnrealizable,    // replay derailed or failed to close (see `reason`)
    kNotInstantiable, // ring smaller than the window / inconsistent windows
  };
  Verdict verdict = Verdict::kNotInstantiable;
  std::size_t ring_size = 0;
  std::string reason;  // set iff kUnrealizable
};

TrailReplay replay_trail(const Protocol& p, const ContiguousTrail& trail);

/// The synthesizers' static rejection lane: facts computed once from the
/// skeleton let a candidate be refuted before Protocol construction, memo
/// traffic, trail searches or fixed-K sweeps. The lane only ever *rejects*,
/// and only with a certificate the concrete pipeline would also reject on:
///   kIllFormed — the added t-arcs close a local transition cycle (exactly
///     lint_candidate_errors' RS002 error), or the skeleton itself carries
///     an error-level diagnostic every revision inherits;
///   kTrail — a qualifying |E| = 1 contiguous trail was constructed
///     outright (distinct arcs, a ¬LC_r visit, a repetitive write
///     projection), so the trail search must return kTrailFound.
class StaticRejectionLane {
 public:
  /// `query` is the trail-search configuration the concrete pipeline will
  /// use; the lane only emits trail certificates the configured search
  /// would also find (restricted queries disable the certificate stage,
  /// never the soundness of the ill-formedness screen).
  explicit StaticRejectionLane(const Protocol& skeleton,
                               const TrailQuery& query = {});

  struct Rejection {
    enum class Kind { kIllFormed, kTrail };
    Kind kind = Kind::kIllFormed;
    std::vector<Diagnostic> diagnostics;      // kIllFormed: RS002/RS020 form
    std::optional<ContiguousTrail> trail;     // kTrail: the certificate
  };

  /// Try to refute the candidate `skeleton + added`. std::nullopt means the
  /// lane cannot decide; the concrete pipeline proceeds unchanged.
  std::optional<Rejection> refute(
      const std::vector<LocalTransition>& added) const;

  /// Ill-formedness screen only (no trail certificates) — the sound subset
  /// for the global synthesizer, whose rejections are fixed-K facts that a
  /// parameterized trail does not imply.
  std::optional<Rejection> refute_ill_formed_only(
      const std::vector<LocalTransition>& added) const;

 private:
  std::optional<Rejection> refute_impl(
      const std::vector<LocalTransition>& added, bool try_trail) const;

  const Protocol& skeleton_;
  std::vector<Diagnostic> skeleton_errors_;  // inherited by every candidate
  bool skeleton_self_disabling_ = false;
  bool trail_certificates_ = false;  // query compatible with the certificate
  // skeleton_enabled_[s]: s has an outgoing skeleton t-arc.
  std::vector<bool> skeleton_enabled_;
};

}  // namespace ringstab
