// Static-analysis passes over a Protocol and, when available, its .ring
// source: machine-checkable well-formedness per the paper's preconditions.
//
// Pass registry (stable codes; full table in docs/lint.md):
//   RS000  front-end error (syntax / unresolved name / unreadable file)
//   RS001  write-discipline: stutter assignments (warning) and out-of-domain
//          writes (error)
//   RS002  self-termination / self-disablement (Assumptions 1 & 2): a t-arc
//          cycle is an error (trail reasoning undefined, and an all-illegit
//          cycle is a one-process livelock); non-self-disabling transitions
//          are a warning
//   RS003  overlapping actions with conflicting writes from one local state
//          (cross-action nondeterminism)
//   RS010  dead actions (no transitions) and, defensively, RCG-unrealizable
//          transition sources (Def. 4.1)
//   RS011  illegitimate-deadlock witness: a deadlock-RCG cycle through ¬LC_r
//          proves rings of matching sizes deadlock outside I (Theorem 4.2)
//   RS020  degenerate LC_r (empty = error / full = warning) and unused
//          domain values (note)
//   RS030  closure interference: a transition enabled inside I whose write
//          leaves I (violates Problem 3.1's no-behavior-change constraint)
//
// Symbolic passes (RS1xx) — abstract interpretation over the source
// (src/analysis/absint.hpp), proofs only, no state-space expansion:
//   RS100  vacuous guards: proved unsatisfiable outright (warning), or
//          unsatisfiable inside the persistent written-value envelope W*
//          (note)
//   RS101  Assumption 2 discharged symbolically: every write falsifies
//          every guard (certificate note, gated by absint_certificates;
//          the discharge itself always short-circuits RS002)
//   RS102  guard containment between actions with different writes,
//          proved by implication — refines RS003's concrete overlap
//   RS110  statically-unrealizable trail: the Theorem 5.14 finding
//          replayed symbolically fails, so the livelock rejection it
//          witnesses is spurious at the implied ring size
//   RS120  invariant closure proved symbolically (certificate note, gated
//          by absint_certificates; the proof always discharges RS030's
//          concrete sweep)
//
// File-wide suppression: a `# lint: allow(RS003, RS011)` comment in the
// .ring source drops matching findings (counted in LintResult::suppressed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/parser.hpp"
#include "core/protocol.hpp"

namespace ringstab {

struct LintOptions {
  /// Per-pass cap on emitted findings (witness lists can be long).
  std::size_t max_diags_per_pass = 8;
  /// RS011 reports deadlocked ring sizes up to this K.
  std::size_t deadlock_spectrum_max_k = 16;
  /// RS030 confirms local closure suspicions with a global sweep at
  /// K = window + 2 when the instance fits this many states; otherwise the
  /// suspicion downgrades to a note.
  std::uint64_t closure_confirm_budget = std::uint64_t{1} << 20;
  /// Analyze as an open array (batch `# topology: array` convention):
  /// RS011 uses the array deadlock analysis and ring-only passes are
  /// skipped.
  bool array_topology = false;
  /// Emit RS101/RS120 positive-certificate notes when the symbolic proofs
  /// succeed. Off by default — a note on every healthy file is noise; the
  /// discharge wiring (skipped concrete RS002/RS030 checks) is active
  /// regardless.
  bool absint_certificates = false;
  /// RS110: node budget for the contiguous-trail search whose finding is
  /// replayed statically. 0 disables the pass.
  std::size_t trail_replay_budget = 4'000'000;
  /// Codes to suppress, merged with the source's `# lint: allow(...)`.
  std::vector<std::string> allow;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  /// Findings dropped by allow() suppressions.
  std::size_t suppressed = 0;

  bool has_error() const;
  std::size_t count(Severity s) const;
};

/// Protocol-level passes only (RS002/RS010/RS011/RS020/RS030); findings
/// carry no source spans.
LintResult lint_protocol(const Protocol& p, const LintOptions& opts = {});

/// Source + protocol passes: expands each action for located RS001/RS003/
/// RS010 findings, then runs the protocol passes on the built protocol.
/// Honors the source's `# lint: allow(...)` directives and
/// `# topology: array` marker.
LintResult lint_source(const ProtocolSource& src, const LintOptions& opts = {});

/// Read + parse + lint a .ring file. Parse failures come back as RS000
/// diagnostics instead of exceptions.
LintResult lint_ring_file(const std::string& path, const LintOptions& opts = {});

/// Parse + lint .ring text already in memory (the serve daemon's lint
/// command); `path` labels diagnostics exactly as lint_ring_file would.
/// In-text parse failures come back as RS000 diagnostics.
LintResult lint_ring_text(const std::string& text, const std::string& path,
                          const LintOptions& opts = {});

/// Error-severity-only fast subset used by the synthesizers' pre-filter:
/// a candidate revision with a t-arc cycle (RS002: the trail pipeline is
/// undefined and would throw mid-portfolio) or an empty LC_r (RS020) can
/// never be a valid solution. Cheap — no RCG/spectrum/global work.
std::vector<Diagnostic> lint_candidate_errors(const Protocol& p);

}  // namespace ringstab
