#include "graph/parallel_scc.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "core/types.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;
// Regions at or below this size skip the FB machinery and run serial
// Tarjan: the sweep setup would cost more than the decomposition.
constexpr std::size_t kSerialRegion = 4096;

struct Run {
  const CsrGraph& g;
  CsrGraph tr;  // transpose
  std::size_t num_threads;
  ParallelSccResult res;
  std::vector<std::uint32_t> region;  // current region id per live vertex
  PackedBitset fwd, bwd;              // BFS scratch, cleared via visit lists

  explicit Run(const CsrGraph& graph, std::size_t threads)
      : g(graph), num_threads(threads) {}

  std::uint32_t n() const { return g.num_vertices(); }
  bool live(std::uint32_t v) const { return res.component[v] == kNone; }

  // ---- transpose + self-loop detection (parallel) ----------------------
  void build_transpose() {
    const std::uint32_t nv = n();
    std::vector<std::uint64_t> cursor(nv, 0);  // in-degrees, then offsets
    parallel_for(nv, num_threads, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      for (std::uint64_t v = chunk.begin; v < chunk.end; ++v) {
        for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
          const std::uint32_t w = g.col[e];
          if (w == v) res.self_loop.set_atomic(v);
          std::atomic_ref<std::uint64_t> deg(cursor[w]);
          deg.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    tr.row.assign(nv + 1, 0);
    for (std::uint32_t v = 0; v < nv; ++v) {
      tr.row[v + 1] = tr.row[v] + cursor[v];
      cursor[v] = tr.row[v];
    }
    tr.col.assign(g.num_edges(), 0);
    parallel_for(nv, num_threads, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      for (std::uint64_t v = chunk.begin; v < chunk.end; ++v) {
        for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
          std::atomic_ref<std::uint64_t> slot(cursor[g.col[e]]);
          tr.col[slot.fetch_add(1, std::memory_order_relaxed)] =
              static_cast<std::uint32_t>(v);
        }
      }
    });
  }

  // ---- trim: peel vertices that cannot lie on a cycle ------------------
  // Kahn-style worklist over both edge directions, O(V+E) total. Every
  // trimmed vertex is its own (trivial) SCC. The trimmed set is the unique
  // fixpoint of the removal rule, so it is schedule-independent.
  void trim() {
    const std::uint32_t nv = n();
    std::vector<std::uint32_t> ind(nv, 0), outd(nv, 0);
    parallel_for(nv, num_threads, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      for (std::uint64_t v = chunk.begin; v < chunk.end; ++v) {
        std::uint32_t self = 0;
        for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e)
          if (g.col[e] == v) ++self;
        // Self-loops never keep a vertex alive: its SCC is {v} either way
        // and the self_loop bitset carries the cycle verdict.
        outd[v] = static_cast<std::uint32_t>(g.row[v + 1] - g.row[v]) - self;
        ind[v] = static_cast<std::uint32_t>(tr.row[v + 1] - tr.row[v]) - self;
      }
    });
    std::vector<std::uint32_t> queue;
    PackedBitset queued(nv);
    for (std::uint32_t v = 0; v < nv; ++v)
      if (ind[v] == 0 || outd[v] == 0) {
        queue.push_back(v);
        queued.set(v);
      }
    std::uint64_t trimmed = 0;
    while (!queue.empty()) {
      const std::uint32_t v = queue.back();
      queue.pop_back();
      res.component[v] = v;
      ++trimmed;
      for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
        const std::uint32_t w = g.col[e];
        if (w == v || !live(w)) continue;
        if (--ind[w] == 0 && !queued.test(w)) {
          queue.push_back(w);
          queued.set(w);
        }
      }
      for (std::uint64_t e = tr.row[v]; e < tr.row[v + 1]; ++e) {
        const std::uint32_t u = tr.col[e];
        if (u == v || !live(u)) continue;
        if (--outd[u] == 0 && !queued.test(u)) {
          queue.push_back(u);
          queued.set(u);
        }
      }
    }
    obs::counter("scc.trimmed").add(trimmed);
  }

  // ---- level-synchronous BFS within one region -------------------------
  // Returns the visit list; the corresponding bits of `mark` are set and
  // must be cleared by the caller via the list.
  std::vector<std::uint32_t> bfs(const CsrGraph& graph, std::uint32_t pivot,
                                 std::uint32_t rid, PackedBitset& mark) {
    std::vector<std::uint32_t> visited{pivot};
    mark.set(pivot);
    std::vector<std::uint32_t> frontier{pivot};
    while (!frontier.empty()) {
      const std::uint64_t fsize = frontier.size();
      const std::uint64_t chunks = num_chunks(fsize, 0);
      std::vector<std::vector<std::uint32_t>> next(chunks);
      parallel_for(fsize, num_threads, 0,
                   [&](const ChunkRange& chunk, std::size_t) {
        std::vector<std::uint32_t>& out = next[chunk.index];
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
          const std::uint32_t v = frontier[i];
          for (std::uint64_t e = graph.row[v]; e < graph.row[v + 1]; ++e) {
            const std::uint32_t w = graph.col[e];
            if (region[w] != rid || !live(w)) continue;
            if (mark.test_and_set_atomic(w)) out.push_back(w);
          }
        }
      });
      frontier.clear();
      for (auto& chunk_out : next)
        frontier.insert(frontier.end(), chunk_out.begin(), chunk_out.end());
      visited.insert(visited.end(), frontier.begin(), frontier.end());
    }
    return visited;
  }

  // ---- serial Tarjan leaf for small regions ----------------------------
  void tarjan_region(std::uint32_t rid,
                     const std::vector<std::uint32_t>& members) {
    std::unordered_map<std::uint32_t, std::uint32_t> index, low;
    index.reserve(members.size());
    low.reserve(members.size());
    PackedBitset on_stack(n());  // sparse use; members are few
    std::vector<std::uint32_t> stack;
    std::uint32_t next_index = 0;

    struct Frame {
      std::uint32_t v;
      std::uint64_t edge;
    };
    std::vector<Frame> call;
    auto in_region = [&](std::uint32_t w) {
      return region[w] == rid && live(w);
    };

    for (const std::uint32_t root : members) {
      if (!live(root) || index.count(root)) continue;
      call.push_back({root, g.row[root]});
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack.set(root);
      while (!call.empty()) {
        Frame& f = call.back();
        const std::uint32_t v = f.v;
        bool descended = false;
        while (f.edge < g.row[v + 1]) {
          const std::uint32_t w = g.col[f.edge++];
          if (!in_region(w)) continue;
          if (!index.count(w)) {
            call.push_back({w, g.row[w]});
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack.set(w);
            descended = true;
            break;
          }
          if (on_stack.test(w)) low[v] = std::min(low[v], index[w]);
        }
        if (descended) continue;
        if (low[v] == index[v]) {
          std::vector<std::uint32_t> comp;
          while (true) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            on_stack.reset(w);
            comp.push_back(w);
            if (w == v) break;
          }
          const std::uint32_t label =
              *std::min_element(comp.begin(), comp.end());
          for (const std::uint32_t w : comp) {
            res.component[w] = label;
            if (comp.size() > 1) res.nontrivial.set(w);
          }
        }
        call.pop_back();
        if (!call.empty())
          low[call.back().v] = std::min(low[call.back().v], low[v]);
      }
    }
  }

  // ---- FB/FWBW region recursion ----------------------------------------
  void decompose() {
    const std::uint32_t nv = n();
    std::vector<std::uint32_t> survivors;
    for (std::uint32_t v = 0; v < nv; ++v)
      if (live(v)) survivors.push_back(v);
    if (survivors.empty()) return;
    region.assign(nv, 0);
    fwd.assign(nv);
    bwd.assign(nv);

    struct Region {
      std::uint32_t id;
      std::vector<std::uint32_t> members;  // ascending
    };
    std::vector<Region> work;
    work.push_back({0, std::move(survivors)});
    std::uint32_t next_id = 1;
    std::uint64_t fb_sccs = 0, tarjan_regions = 0;

    while (!work.empty()) {
      Region r = std::move(work.back());
      work.pop_back();
      if (r.members.size() <= kSerialRegion) {
        ++tarjan_regions;
        tarjan_region(r.id, r.members);
        continue;
      }
      // Members are kept ascending, so the pivot — and with it the whole
      // decomposition — is a pure function of the graph.
      const std::uint32_t pivot = r.members.front();
      const auto f_list = bfs(g, pivot, r.id, fwd);
      const auto b_list = bfs(tr, pivot, r.id, bwd);
      ++fb_sccs;

      std::vector<std::uint32_t> f_only, b_only, rest;
      bool scc_nontrivial = false;
      for (const std::uint32_t v : r.members) {
        if (!live(v)) continue;
        const bool in_f = fwd.test(v), in_b = bwd.test(v);
        if (in_f && in_b) {
          // pivot = min(region) and pivot ∈ SCC, so pivot is also the
          // smallest member of the SCC: the canonical label.
          res.component[v] = pivot;
          if (v != pivot) scc_nontrivial = true;
        } else if (in_f) {
          f_only.push_back(v);
        } else if (in_b) {
          b_only.push_back(v);
        } else {
          rest.push_back(v);
        }
      }
      if (scc_nontrivial)
        for (const std::uint32_t v : r.members)
          if (res.component[v] == pivot) res.nontrivial.set(v);
      for (const std::uint32_t v : f_list) fwd.reset(v);
      for (const std::uint32_t v : b_list) bwd.reset(v);
      for (auto* part : {&f_only, &b_only, &rest}) {
        if (part->empty()) continue;
        const std::uint32_t id = next_id++;
        for (const std::uint32_t v : *part) region[v] = id;
        work.push_back({id, std::move(*part)});
      }
    }
    obs::counter("scc.fb_pivots").add(fb_sccs);
    obs::counter("scc.tarjan_regions").add(tarjan_regions);
  }
};

}  // namespace

ParallelSccResult parallel_scc(const CsrGraph& g, std::size_t num_threads) {
  const obs::Span span("scc.parallel");
  Run run(g, num_threads == 0 ? 1 : num_threads);
  const std::uint32_t n = run.n();
  run.res.component.assign(n, kNone);
  run.res.nontrivial.assign(n);
  run.res.self_loop.assign(n);
  if (n == 0) return std::move(run.res);
  run.build_transpose();
  run.trim();
  run.decompose();
  std::uint64_t comps = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    RINGSTAB_ASSERT(run.res.component[v] != kNone, "unlabeled vertex");
    if (run.res.component[v] == v) ++comps;
  }
  run.res.num_components = comps;
  obs::counter("scc.vertices").add(n);
  if (obs::enabled()) {
    // SCC size distribution. Component labels are canonical min-member ids
    // (bit-identical at every thread count), so these are problem-shaped —
    // the merged histogram must match at 1 vs N threads (test_obs locks
    // this in over the zoo).
    std::vector<std::uint32_t> size_of(n, 0);
    for (std::uint32_t v = 0; v < n; ++v) ++size_of[run.res.component[v]];
    obs::Histogram& region_size = obs::histogram("scc.region_size");
    for (std::uint32_t v = 0; v < n; ++v)
      if (size_of[v] > 0) region_size.record(size_of[v]);
  }
  return std::move(run.res);
}

std::vector<std::uint32_t> canonical_scc_labels(
    const std::vector<std::uint32_t>& component) {
  std::uint32_t max_id = 0;
  for (const std::uint32_t c : component) max_id = std::max(max_id, c);
  std::vector<std::uint32_t> first(component.empty() ? 0 : max_id + 1, kNone);
  for (std::uint32_t v = 0; v < component.size(); ++v)
    if (first[component[v]] == kNone) first[component[v]] = v;
  std::vector<std::uint32_t> out(component.size());
  for (std::uint32_t v = 0; v < component.size(); ++v)
    out[v] = first[component[v]];
  return out;
}

std::vector<std::uint32_t> extract_component_cycle(
    const CsrGraph& g, const ParallelSccResult& scc, std::uint32_t start) {
  if (scc.self_loop.test(start)) return {start};
  RINGSTAB_ASSERT(scc.nontrivial.test(start), "start is not on a cycle");
  const std::uint32_t comp = scc.component[start];
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::vector<std::uint32_t> stack{start};
  parent.emplace(start, start);
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
      const std::uint32_t w = g.col[e];
      if (scc.component[w] != comp) continue;
      if (w == start) {
        std::vector<std::uint32_t> cyc{start};
        for (std::uint32_t x = v; x != start; x = parent.at(x))
          cyc.push_back(x);
        std::reverse(cyc.begin() + 1, cyc.end());
        return cyc;
      }
      if (!parent.emplace(w, v).second) continue;
      stack.push_back(w);
    }
  }
  RINGSTAB_ASSERT(false, "nontrivial SCC without a cycle through its root");
  return {};
}

}  // namespace ringstab
