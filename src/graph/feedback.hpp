// Minimal feedback vertex sets restricted to candidate vertices.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace ringstab {

/// Enumerate minimal sets S ⊆ candidates such that deleting S from `g`
/// leaves no directed cycle through any marked vertex. (This is the paper's
/// `Resolve` computation: marked = illegitimate local deadlocks, candidates =
/// deadlocks in ¬LC_r that synthesis is allowed to resolve.)
///
/// Throws ModelError if some cycle through a marked vertex contains no
/// candidate vertex (then no S ⊆ candidates works). Results are
/// deduplicated, inclusion-minimal, sorted by (size, lexicographic), and
/// capped at `max_sets` (the cap applies after minimization of discovered
/// sets; for the tiny graphs this library targets, enumeration is exhaustive
/// well below any reasonable cap).
std::vector<std::vector<VertexId>> minimal_feedback_sets(
    const Digraph& g, const std::vector<bool>& marked,
    const std::vector<bool>& candidates, std::size_t max_sets = 256);

/// True iff removing `removed` from `g` leaves no cycle through a marked
/// vertex.
bool breaks_all_marked_cycles(const Digraph& g, const std::vector<bool>& marked,
                              const std::vector<VertexId>& removed);

}  // namespace ringstab
