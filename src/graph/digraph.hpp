// Small dense directed-graph toolkit used for RCG/LTG analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace ringstab {

using VertexId = std::uint32_t;

/// Directed graph over a fixed vertex set [0, n). Parallel arcs are
/// collapsed (the analyses are relational); self-loops are allowed and
/// meaningful (an s-arc self-loop is a one-vertex continuation cycle).
class Digraph {
 public:
  explicit Digraph(std::size_t num_vertices);

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_arcs() const { return num_arcs_; }

  /// Insert u→v (idempotent).
  void add_arc(VertexId u, VertexId v);

  bool has_arc(VertexId u, VertexId v) const;

  /// Out-neighbors in ascending order.
  const std::vector<VertexId>& out(VertexId u) const { return adj_[u]; }

  std::size_t out_degree(VertexId u) const { return adj_[u].size(); }
  std::vector<std::size_t> in_degrees() const;

  /// Subgraph over the same vertex ids keeping only arcs whose endpoints are
  /// both in `keep`.
  Digraph induced(const std::vector<bool>& keep) const;

  /// Arc-reversed copy.
  Digraph reversed() const;

 private:
  std::vector<std::vector<VertexId>> adj_;
  std::size_t num_arcs_ = 0;
};

}  // namespace ringstab
