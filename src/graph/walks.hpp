// Closed-walk length spectra: for which ring sizes does a cycle structure
// yield a witness?
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace ringstab {

/// For each length k in [1, max_len], whether `g` has a closed walk of
/// length k through at least one marked vertex. By Theorem 4.2's witness
/// construction, a closed walk of length K in the deadlock-induced RCG
/// through an illegitimate vertex is exactly a globally deadlocked ring of
/// size K outside I.
struct WalkSpectrum {
  std::vector<bool> feasible;  // index k (0 unused); size max_len+1

  bool at(std::size_t k) const { return k < feasible.size() && feasible[k]; }
  /// Smallest feasible length, or 0 if none up to max_len.
  std::size_t smallest() const;
};

WalkSpectrum closed_walk_lengths(const Digraph& g,
                                 const std::vector<bool>& marked,
                                 std::size_t max_len);

/// A concrete closed walk of exactly `len` arcs through a marked vertex,
/// listed as len vertices v0 ... v_{len-1} with arcs v_i → v_{(i+1) mod len},
/// rotated so v0 is marked. nullopt if infeasible.
std::optional<std::vector<VertexId>> closed_walk_of_length(
    const Digraph& g, const std::vector<bool>& marked, std::size_t len);

}  // namespace ringstab
