// Graphviz DOT export for analysis graphs.
#pragma once

#include <functional>
#include <string>

#include "graph/digraph.hpp"

namespace ringstab {

struct DotOptions {
  std::string graph_name = "g";
  /// Label per vertex; default is the numeric id.
  std::function<std::string(VertexId)> label;
  /// Extra attributes (e.g. "style=filled,fillcolor=gray") per vertex.
  std::function<std::string(VertexId)> vertex_attrs;
  /// Extra attributes per arc.
  std::function<std::string(VertexId, VertexId)> arc_attrs;
  /// Skip vertices entirely (isolated helper states).
  std::function<bool(VertexId)> include;
};

std::string to_dot(const Digraph& g, const DotOptions& opts = {});

}  // namespace ringstab
