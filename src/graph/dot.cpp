#include "graph/dot.hpp"

#include <sstream>

namespace ringstab {

std::string to_dot(const Digraph& g, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph " << (opts.graph_name.empty() ? "g" : opts.graph_name)
     << " {\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (opts.include && !opts.include(v)) continue;
    os << "  n" << v;
    os << " [label=\"" << (opts.label ? opts.label(v) : std::to_string(v))
       << "\"";
    if (opts.vertex_attrs) {
      const std::string extra = opts.vertex_attrs(v);
      if (!extra.empty()) os << "," << extra;
    }
    os << "];\n";
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (opts.include && !opts.include(u)) continue;
    for (VertexId v : g.out(u)) {
      if (opts.include && !opts.include(v)) continue;
      os << "  n" << u << " -> n" << v;
      if (opts.arc_attrs) {
        const std::string extra = opts.arc_attrs(u, v);
        if (!extra.empty()) os << " [" << extra << "]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ringstab
