#include "graph/digraph.hpp"

#include <algorithm>

namespace ringstab {

Digraph::Digraph(std::size_t num_vertices) : adj_(num_vertices) {}

void Digraph::add_arc(VertexId u, VertexId v) {
  RINGSTAB_ASSERT(u < adj_.size() && v < adj_.size(),
                  "arc endpoint out of range");
  auto& row = adj_[u];
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it != row.end() && *it == v) return;
  row.insert(it, v);
  ++num_arcs_;
}

bool Digraph::has_arc(VertexId u, VertexId v) const {
  RINGSTAB_ASSERT(u < adj_.size() && v < adj_.size(),
                  "arc endpoint out of range");
  const auto& row = adj_[u];
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::size_t> Digraph::in_degrees() const {
  std::vector<std::size_t> deg(num_vertices(), 0);
  for (const auto& row : adj_)
    for (VertexId v : row) ++deg[v];
  return deg;
}

Digraph Digraph::induced(const std::vector<bool>& keep) const {
  RINGSTAB_ASSERT(keep.size() == num_vertices(),
                  "induced mask has wrong size");
  Digraph g(num_vertices());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    if (!keep[u]) continue;
    for (VertexId v : adj_[u])
      if (keep[v]) g.add_arc(u, v);
  }
  return g;
}

Digraph Digraph::reversed() const {
  Digraph g(num_vertices());
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (VertexId v : adj_[u]) g.add_arc(v, u);
  return g;
}

}  // namespace ringstab
