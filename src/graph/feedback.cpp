#include "graph/feedback.hpp"

#include <algorithm>
#include <set>

#include "core/fmt.hpp"
#include "graph/cycles.hpp"
#include "graph/scc.hpp"

namespace ringstab {
namespace {

// Some cycle through a marked, non-removed vertex within the non-removed
// subgraph — or nullopt if none remains.
std::optional<Cycle> bad_cycle(const Digraph& g, const std::vector<bool>& marked,
                               const std::vector<bool>& removed) {
  std::vector<bool> keep(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) keep[v] = !removed[v];
  const Digraph sub = g.induced(keep);
  const SccResult scc = strongly_connected_components(sub);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!keep[v] || !marked[v]) continue;
    if (!on_cycle(sub, scc, v)) continue;
    auto c = find_cycle_through(sub, v);
    RINGSTAB_ASSERT(c.has_value(), "SCC says cycle exists but DFS found none");
    return c;
  }
  return std::nullopt;
}

class Enumerator {
 public:
  Enumerator(const Digraph& g, const std::vector<bool>& marked,
             const std::vector<bool>& candidates, std::size_t max_sets)
      : g_(g), marked_(marked), candidates_(candidates), max_sets_(max_sets) {}

  std::vector<std::vector<VertexId>> run() {
    std::vector<bool> removed(g_.num_vertices(), false);
    std::vector<VertexId> chosen;
    branch(removed, chosen);

    // Keep only inclusion-minimal sets.
    std::vector<std::vector<VertexId>> sets(found_.begin(), found_.end());
    std::vector<std::vector<VertexId>> minimal;
    for (const auto& s : sets) {
      const bool has_subset =
          std::any_of(sets.begin(), sets.end(), [&](const auto& t) {
            return t.size() < s.size() &&
                   std::includes(s.begin(), s.end(), t.begin(), t.end());
          });
      if (!has_subset) minimal.push_back(s);
    }
    std::sort(minimal.begin(), minimal.end(),
              [](const auto& a, const auto& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
    if (minimal.size() > max_sets_) minimal.resize(max_sets_);
    return minimal;
  }

 private:
  void branch(std::vector<bool>& removed, std::vector<VertexId>& chosen) {
    if (found_.size() >= kSearchCap) return;
    // The subtree below depends only on the removal *set*, not the order
    // the vertices were chosen in — prune revisits or the walk degenerates
    // to one branch per permutation (factorial blowup, each node paying an
    // SCC pass; matching's size-12 Resolve sets took ~25 s unpruned).
    {
      auto key = chosen;
      std::sort(key.begin(), key.end());
      if (!visited_.insert(std::move(key)).second) return;
    }
    auto cycle = bad_cycle(g_, marked_, removed);
    if (!cycle) {
      auto s = chosen;
      std::sort(s.begin(), s.end());
      found_.insert(std::move(s));
      return;
    }
    bool any = false;
    for (VertexId v : *cycle) {
      if (!candidates_[v]) continue;
      any = true;
      removed[v] = true;
      chosen.push_back(v);
      branch(removed, chosen);
      chosen.pop_back();
      removed[v] = false;
    }
    if (!any && chosen.empty())
      throw ModelError(
          cat("a cycle through a marked vertex contains no candidate vertex; "
              "no feedback set within the candidates exists (cycle length ",
              cycle->size(), ")"));
    // If !any deeper in the recursion the branch is simply infeasible.
  }

  static constexpr std::size_t kSearchCap = 100000;

  const Digraph& g_;
  const std::vector<bool>& marked_;
  const std::vector<bool>& candidates_;
  std::size_t max_sets_;
  std::set<std::vector<VertexId>> found_;
  std::set<std::vector<VertexId>> visited_;
};

}  // namespace

std::vector<std::vector<VertexId>> minimal_feedback_sets(
    const Digraph& g, const std::vector<bool>& marked,
    const std::vector<bool>& candidates, std::size_t max_sets) {
  RINGSTAB_ASSERT(marked.size() == g.num_vertices() &&
                      candidates.size() == g.num_vertices(),
                  "mask size mismatch");
  return Enumerator(g, marked, candidates, max_sets).run();
}

bool breaks_all_marked_cycles(const Digraph& g, const std::vector<bool>& marked,
                              const std::vector<VertexId>& removed_list) {
  std::vector<bool> removed(g.num_vertices(), false);
  for (VertexId v : removed_list) removed[v] = true;
  std::vector<bool> keep(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) keep[v] = !removed[v];
  const Digraph sub = g.induced(keep);
  std::vector<bool> marked_kept(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    marked_kept[v] = keep[v] && marked[v];
  return !any_marked_on_cycle(sub, marked_kept);
}

}  // namespace ringstab
