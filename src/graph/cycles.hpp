// Cycle search and enumeration.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace ringstab {

/// A simple cycle listed as its vertex sequence v0, v1, ..., v_{m-1} with
/// arcs v_i → v_{i+1 mod m}. A self-loop is the length-1 cycle {v}.
using Cycle = std::vector<VertexId>;

/// Find some simple cycle through `v`, optionally restricted to vertices
/// where `allowed` holds (v itself must be allowed). Returns the cycle
/// rotated to start at v, or nullopt.
std::optional<Cycle> find_cycle_through(const Digraph& g, VertexId v,
                                        const std::vector<bool>* allowed =
                                            nullptr);

/// Enumerate simple cycles (Johnson's algorithm), capped at `max_cycles`.
/// Cycles are canonicalized to start at their smallest vertex and returned
/// sorted by (length, lexicographic).
std::vector<Cycle> simple_cycles(const Digraph& g,
                                 std::size_t max_cycles = 100000);

/// Cycles passing through at least one marked vertex.
std::vector<Cycle> simple_cycles_through(const Digraph& g,
                                         const std::vector<bool>& marked,
                                         std::size_t max_cycles = 100000);

}  // namespace ringstab
