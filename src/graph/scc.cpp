#include "graph/scc.hpp"

#include <algorithm>

namespace ringstab {

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;

  SccResult res;
  res.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    VertexId v;
    std::size_t child = 0;
  };
  std::vector<Frame> call;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call.push_back({root});
    while (!call.empty()) {
      Frame& f = call.back();
      const VertexId v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      const auto& out = g.out(v);
      while (f.child < out.size()) {
        const VertexId w = out[f.child++];
        if (index[w] == kUnvisited) {
          call.push_back({w});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        const auto comp = static_cast<std::uint32_t>(res.num_components++);
        std::uint32_t size = 0;
        while (true) {
          const VertexId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          res.component[w] = comp;
          ++size;
          if (w == v) break;
        }
        res.component_size.push_back(size);
      }
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        low[parent.v] = std::min(low[parent.v], low[v]);
      }
    }
  }
  return res;
}

bool on_cycle(const Digraph& g, const SccResult& scc, VertexId v) {
  return scc.component_size[scc.component[v]] > 1 || g.has_arc(v, v);
}

bool any_marked_on_cycle(const Digraph& g, const std::vector<bool>& marked) {
  const SccResult scc = strongly_connected_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (marked[v] && on_cycle(g, scc, v)) return true;
  return false;
}

}  // namespace ringstab
