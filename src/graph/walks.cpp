#include "graph/walks.hpp"

#include <algorithm>

namespace ringstab {

std::size_t WalkSpectrum::smallest() const {
  for (std::size_t k = 1; k < feasible.size(); ++k)
    if (feasible[k]) return k;
  return 0;
}

WalkSpectrum closed_walk_lengths(const Digraph& g,
                                 const std::vector<bool>& marked,
                                 std::size_t max_len) {
  const std::size_t n = g.num_vertices();
  WalkSpectrum spec;
  spec.feasible.assign(max_len + 1, false);

  // One forward DP per marked start vertex; graphs here have ≤ a few
  // thousand vertices and max_len ≤ a few hundred.
  std::vector<bool> cur(n), next(n);
  for (VertexId m = 0; m < n; ++m) {
    if (!marked[m]) continue;
    std::fill(cur.begin(), cur.end(), false);
    cur[m] = true;
    for (std::size_t k = 1; k <= max_len; ++k) {
      std::fill(next.begin(), next.end(), false);
      for (VertexId u = 0; u < n; ++u) {
        if (!cur[u]) continue;
        for (VertexId v : g.out(u)) next[v] = true;
      }
      std::swap(cur, next);
      if (cur[m]) spec.feasible[k] = true;
      if (std::none_of(cur.begin(), cur.end(), [](bool b) { return b; }))
        break;
    }
  }
  return spec;
}

std::optional<std::vector<VertexId>> closed_walk_of_length(
    const Digraph& g, const std::vector<bool>& marked, std::size_t len) {
  const std::size_t n = g.num_vertices();
  if (len == 0) return std::nullopt;

  for (VertexId m = 0; m < n; ++m) {
    if (!marked[m]) continue;
    // reach[k][v]: v reachable from m in exactly k steps.
    std::vector<std::vector<bool>> reach(len + 1,
                                         std::vector<bool>(n, false));
    reach[0][m] = true;
    for (std::size_t k = 1; k <= len; ++k)
      for (VertexId u = 0; u < n; ++u) {
        if (!reach[k - 1][u]) continue;
        for (VertexId v : g.out(u)) reach[k][v] = true;
      }
    if (!reach[len][m]) continue;

    // Backtrack from (len, m) to (0, m).
    std::vector<VertexId> walk(len + 1);
    walk[len] = m;
    for (std::size_t k = len; k > 0; --k) {
      const VertexId v = walk[k];
      for (VertexId u = 0; u < n; ++u) {
        if (reach[k - 1][u] && g.has_arc(u, v)) {
          walk[k - 1] = u;
          break;
        }
      }
    }
    walk.pop_back();  // drop the duplicate of m at the end
    return walk;
  }
  return std::nullopt;
}

}  // namespace ringstab
