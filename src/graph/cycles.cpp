#include "graph/cycles.hpp"

#include <algorithm>

#include "graph/scc.hpp"

namespace ringstab {
namespace {

// DFS from each successor of v back to v, avoiding revisits.
std::optional<Cycle> cycle_via_dfs(const Digraph& g, VertexId v,
                                   const std::vector<bool>* allowed) {
  const std::size_t n = g.num_vertices();
  auto ok = [&](VertexId u) { return allowed == nullptr || (*allowed)[u]; };
  if (!ok(v)) return std::nullopt;
  if (g.has_arc(v, v)) return Cycle{v};

  std::vector<VertexId> parent(n, kInvalidLocalState);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack;
  for (VertexId w : g.out(v)) {
    if (!ok(w) || visited[w]) continue;
    visited[w] = true;
    parent[w] = v;
    stack.push_back(w);
  }
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (VertexId w : g.out(u)) {
      if (w == v) {
        Cycle c{v};
        for (VertexId x = u; x != v; x = parent[x]) c.push_back(x);
        std::reverse(c.begin() + 1, c.end());
        return c;
      }
      if (!ok(w) || visited[w]) continue;
      visited[w] = true;
      parent[w] = u;
      stack.push_back(w);
    }
  }
  return std::nullopt;
}

// Johnson's simple-cycle enumeration, recursion bounded by vertex count.
class Johnson {
 public:
  Johnson(const Digraph& g, std::size_t max_cycles)
      : g_(g), max_cycles_(max_cycles) {}

  std::vector<Cycle> run() {
    const std::size_t n = g_.num_vertices();
    blocked_.assign(n, false);
    block_list_.assign(n, {});
    for (VertexId s = 0; s < n && cycles_.size() < max_cycles_; ++s) {
      start_ = s;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& b : block_list_) b.clear();
      circuit(s);
    }
    std::sort(cycles_.begin(), cycles_.end(),
              [](const Cycle& a, const Cycle& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
    return std::move(cycles_);
  }

 private:
  bool circuit(VertexId v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (VertexId w : g_.out(v)) {
      if (w < start_) continue;  // canonical: cycles start at min vertex
      if (w == start_) {
        if (cycles_.size() < max_cycles_) cycles_.push_back(path_);
        found = true;
      } else if (!blocked_[w]) {
        if (circuit(w)) found = true;
      }
      if (cycles_.size() >= max_cycles_) break;
    }
    if (found) {
      unblock(v);
    } else {
      for (VertexId w : g_.out(v)) {
        if (w < start_) continue;
        auto& bl = block_list_[w];
        if (std::find(bl.begin(), bl.end(), v) == bl.end()) bl.push_back(v);
      }
    }
    path_.pop_back();
    return found;
  }

  void unblock(VertexId v) {
    blocked_[v] = false;
    auto pending = std::move(block_list_[v]);
    block_list_[v].clear();
    for (VertexId w : pending)
      if (blocked_[w]) unblock(w);
  }

  const Digraph& g_;
  std::size_t max_cycles_;
  VertexId start_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<VertexId>> block_list_;
  std::vector<VertexId> path_;
  std::vector<Cycle> cycles_;
};

}  // namespace

std::optional<Cycle> find_cycle_through(const Digraph& g, VertexId v,
                                        const std::vector<bool>* allowed) {
  return cycle_via_dfs(g, v, allowed);
}

std::vector<Cycle> simple_cycles(const Digraph& g, std::size_t max_cycles) {
  return Johnson(g, max_cycles).run();
}

std::vector<Cycle> simple_cycles_through(const Digraph& g,
                                         const std::vector<bool>& marked,
                                         std::size_t max_cycles) {
  auto all = simple_cycles(g, max_cycles);
  std::vector<Cycle> out;
  for (auto& c : all)
    if (std::any_of(c.begin(), c.end(), [&](VertexId v) { return marked[v]; }))
      out.push_back(std::move(c));
  return out;
}

}  // namespace ringstab
