// Iterative Tarjan strongly-connected components.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace ringstab {

struct SccResult {
  /// Component id per vertex; components are numbered in reverse topological
  /// order of the condensation (Tarjan's natural output order).
  std::vector<std::uint32_t> component;
  std::vector<std::uint32_t> component_size;
  std::size_t num_components = 0;
};

SccResult strongly_connected_components(const Digraph& g);

/// True iff `v` lies on some directed cycle of `g` (its SCC is nontrivial or
/// it has a self-loop).
bool on_cycle(const Digraph& g, const SccResult& scc, VertexId v);

/// True iff any vertex with `marked[v]` lies on a directed cycle.
bool any_marked_on_cycle(const Digraph& g, const std::vector<bool>& marked);

}  // namespace ringstab
