// Parallel strongly-connected components over compact CSR digraphs.
//
// The scheme is forward–backward reachability coloring (FB/FWBW) with trim
// preprocessing:
//  * trim peels vertices that cannot lie on a cycle (no live predecessor or
//    no live successor) via a Kahn-style worklist — O(V+E) total, and on
//    the DAG-shaped ¬I graphs of converging protocols it usually decides
//    everything before a single reachability sweep runs;
//  * each surviving region picks its smallest vertex as pivot and computes
//    the forward set F and backward set B by level-synchronous BFS — the
//    memory-bound part, parallelized over the shared jthread pool — so
//    F ∩ B is one SCC and F \ SCC, B \ SCC, rest recurse independently;
//  * regions at or below a small threshold fall back to serial iterative
//    Tarjan (same partition, no sweep overhead).
//
// The output is canonical and therefore bit-identical for every thread
// count and schedule: component[v] is the smallest vertex id in v's SCC, a
// pure function of the graph. This makes the engine verdict- and
// witness-compatible with the serial `strongly_connected_components`
// (graph/scc.hpp): the partitions agree after canonical relabeling, and
// cycle extraction below is deterministic given the CSR edge order.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/bitset.hpp"

namespace ringstab {

/// Compact forward CSR over vertices [0, n): the out-edges of v are
/// col[row[v]], …, col[row[v]+1]-1] in a caller-chosen deterministic order.
struct CsrGraph {
  std::vector<std::uint64_t> row;  // size n + 1; row[0] == 0
  std::vector<std::uint32_t> col;

  std::uint32_t num_vertices() const {
    return row.empty() ? 0 : static_cast<std::uint32_t>(row.size() - 1);
  }
  std::uint64_t num_edges() const { return col.size(); }
};

/// The canonical SCC partition. Unlike SccResult (Tarjan's reverse
/// topological numbering), components are labeled by their smallest member,
/// which is algorithm- and thread-count-independent.
struct ParallelSccResult {
  /// component[v] = smallest vertex id in v's SCC.
  std::vector<std::uint32_t> component;
  /// v's SCC has >= 2 vertices.
  PackedBitset nontrivial;
  /// v has an edge v -> v (a one-vertex cycle; its SCC is still {v}).
  PackedBitset self_loop;
  std::uint64_t num_components = 0;

  /// v lies on some directed cycle.
  bool on_cycle(std::uint32_t v) const {
    return nontrivial.test(v) || self_loop.test(v);
  }
};

/// FB/FWBW SCC decomposition of `g`. `num_threads <= 1` runs every sweep
/// inline on the caller; the result is identical either way.
ParallelSccResult parallel_scc(const CsrGraph& g, std::size_t num_threads);

/// Relabel an arbitrary component-id vector (e.g. SccResult::component from
/// the serial Tarjan) so component[v] = smallest vertex in v's component —
/// the normal form parallel_scc emits, for cross-validation.
std::vector<std::uint32_t> canonical_scc_labels(
    const std::vector<std::uint32_t>& component);

/// A deterministic simple cycle through `start`, restricted to start's SCC:
/// {start} if start has a self-loop, else the first DFS path (CSR edge
/// order) from start back to itself through component members. `start` must
/// lie on a cycle.
std::vector<std::uint32_t> extract_component_cycle(
    const CsrGraph& g, const ParallelSccResult& scc, std::uint32_t start);

}  // namespace ringstab
