// One-call markdown reporting: everything ringstab knows about a protocol.
#pragma once

#include <string>

#include "core/protocol.hpp"

namespace ringstab {

struct ReportOptions {
  /// Spot-check sizes for the exhaustive cross-validation section (skipped
  /// for instances over the state budget).
  std::size_t min_ring = 2;
  std::size_t max_ring = 7;
  GlobalStateId max_states = GlobalStateId{1} << 22;

  /// Random-scheduler simulation section (0 trials = skip).
  std::size_t sim_trials = 200;
  std::size_t sim_ring = 16;
  std::uint64_t sim_seed = 1;

  /// Treat the protocol under the array convention instead of a ring.
  bool array_topology = false;

  /// Worker threads for the exhaustive and simulation sections (1 = serial
  /// engine, 0 = all cores).
  std::size_t num_threads = 1;

  /// Append a per-section wall-clock table ("## Section timings").
  bool section_timings = true;
};

/// Render a complete markdown analysis report: the protocol as guarded
/// commands, the local closure/deadlock/livelock verdicts with witnesses,
/// exhaustive spot checks, and simulated recovery statistics.
std::string markdown_report(const Protocol& p, const ReportOptions& options = {});

}  // namespace ringstab
