#include "report/report.hpp"

#include <functional>
#include <sstream>

#include "analysis/lint.hpp"
#include "core/fmt.hpp"
#include "core/printer.hpp"
#include "global/array_instance.hpp"
#include "global/checker.hpp"
#include "global/cutoff.hpp"
#include "global/symmetry.hpp"
#include "global/trail_check.hpp"
#include "local/array.hpp"
#include "local/closure.hpp"
#include "local/convergence.hpp"
#include "obs/obs.hpp"
#include "transform/transform.hpp"
#include "sim/simulator.hpp"

namespace ringstab {
namespace {

/// Wall-clock per report section, on the obs monotonic clock (always on —
/// the timing table is part of the report, independent of --stats/--trace).
class SectionTimer {
 public:
  void measure(const char* name, const std::function<void()>& section) {
    const obs::Span span(name);  // mirrors the table into obs sinks
    const obs::Ticks t0 = obs::now();
    section();
    rows_.emplace_back(name, static_cast<double>(obs::now() - t0) / 1e6);
  }

  void table(std::ostringstream& os) const {
    os << "## Section timings\n\n| section | ms |\n|---|---|\n";
    double total = 0;
    for (const auto& [name, ms] : rows_) {
      os << "| " << name << " | " << ms << " |\n";
      total += ms;
    }
    os << "| **total** | " << total << " |\n\n";
  }

 private:
  std::vector<std::pair<std::string, double>> rows_;
};

void ring_report(const Protocol& p, const ReportOptions& opt,
                 std::ostringstream& os, SectionTimer& timer) {
  // Closure.
  timer.measure("report.closure", [&] {
    const auto closure = check_invariant_closure(p);
    os << "## Invariant closure\n\n"
       << (closure.verdict == ClosureCheck::Verdict::kClosed
               ? "Locally certified closed: every action preserves I(K) for "
                 "every K.\n"
               : cat("Local check is inconclusive (", closure.describe(p),
                     "); see the exhaustive section below for per-size "
                     "ground truth.\n"))
       << "\n";
  });

  // Local convergence analysis.
  timer.measure("report.local_analysis", [&] {
    const auto conv = check_convergence(p, {}, 64);
    os << "## Local analysis (valid for every ring size)\n\n"
       << conv.summary(p) << "\n\n";
    if (!conv.deadlocks.deadlock_free_all_k) {
      os << "Bad cycles in the deadlock RCG:\n\n";
      for (const auto& c : conv.deadlocks.bad_cycles) {
        os << "- `";
        for (auto v : c) os << p.space().brief(v) << " ";
        os << "` (length " << c.size() << ")\n";
      }
      os << "\nDeadlocked ring sizes up to " << conv.deadlocks.spectrum_max_k
         << ": "
         << join(conv.deadlocks.deadlocked_sizes(), " ",
                 [](std::size_t k) { return std::to_string(k); })
         << "\n\n";
    }
    if (conv.livelocks.trail()) {
      os << "Witness trail: `" << conv.livelocks.trail()->to_string(p)
         << "`\n\n";
      const auto real = realize_trail(p, *conv.livelocks.trail());
      os << "Trail realization at K=" << real.ring_size << ": **"
         << to_string(real.verdict) << "**\n\n";
    }
    if (!conv.livelocks.covers_all_livelocks) {
      const auto combo = check_livelock_freedom_bidirectional(p);
      os << "_Bidirectional ring: the single-orientation verdict covers "
            "rightward contiguous livelocks only. Combined two-orientation "
            "check: "
         << (combo.verdict ==
                     BidirectionalLivelockAnalysis::Verdict::kLivelockFree
                 ? "no contiguous livelocks in either direction."
                 : "a qualifying trail exists in at least one orientation.")
         << "_\n\n";
    }
  });

  // Exhaustive cross-checks. The necklace-quotient column shows the
  // rotation-symmetry reduction the `--symmetry` engine exploits (its
  // verdicts are identical; tests cross-validate the two).
  timer.measure("report.exhaustive_checks", [&] {
    os << "## Exhaustive spot checks\n\n"
       << "| K | states | necklaces | deadlocks outside I | livelock | "
          "strong self-stabilization |\n|---|---|---|---|---|---|\n";
    for (std::size_t k = opt.min_ring; k <= opt.max_ring; ++k) {
      try {
        const RingInstance ring(p, k, opt.max_states);
        const auto res = GlobalChecker(ring, opt.num_threads).check_all();
        const auto census = necklace_census(ring, 0, opt.num_threads);
        os << "| " << k << " | " << res.num_states << " | "
           << census.num_necklaces << " | "
           << res.num_deadlocks_outside_i << " | "
           << (res.has_livelock ? "yes" : "no") << " | "
           << (res.strongly_converges()
                   ? cat("yes (worst recovery ", res.max_recovery_steps,
                         " steps)")
                   : "no")
           << " |\n";
      } catch (const CapacityError&) {
        os << "| " << k << " | over budget | — | — | — | — |\n";
      }
    }
    os << "\n";
  });

  // Simulation.
  if (opt.sim_trials > 0) {
    timer.measure("report.simulation", [&] {
      const auto stats =
          measure_convergence(p, opt.sim_ring, opt.sim_trials, opt.sim_seed,
                              1'000'000, Scheduler::kUniformRandom,
                              opt.num_threads);
      os << "## Simulated recovery (K=" << opt.sim_ring << ", "
         << opt.sim_trials << " random starts)\n\n"
         << "converged " << stats.converged << "/" << stats.trials
         << ", steps: mean " << stats.mean_steps << ", p50 "
         << stats.p50_steps << ", p95 " << stats.p95_steps << ", max "
         << stats.max_steps << "\n\n";
    });
  }
}

void array_report(const Protocol& p, const ReportOptions& opt,
                  std::ostringstream& os, SectionTimer& timer) {
  timer.measure("report.array_analysis", [&] {
    const auto res = analyze_array_deadlocks(p, 64);
    os << "## Array analysis (valid for every length)\n\n"
       << (res.deadlock_free_all_n
               ? "Deadlock-free outside I for every array length.\n"
               : cat("Deadlocked lengths up to ", res.spectrum_max_n, ": ",
                     join(res.deadlocked_sizes(), " ",
                          [](std::size_t n) { return std::to_string(n); }),
                     "\n"))
       << "\nTermination: "
       << (array_terminates_always(p)
               ? "guaranteed under every schedule (unidirectional, "
                 "self-disabling).\n"
               : "not guaranteed by the local argument.\n");
  });
  timer.measure("report.exhaustive_checks", [&] {
    os << "\n## Exhaustive spot checks\n\n"
       << "| n | states | deadlocks outside I | livelock | terminates "
          "|\n|---|---|---|---|---|\n";
    for (std::size_t n = opt.min_ring; n <= opt.max_ring; ++n) {
      try {
        const ArrayInstance inst(p, n, opt.max_states);
        const auto check = check_array(inst);
        os << "| " << n << " | " << inst.num_states() << " | "
           << check.num_deadlocks_outside_i << " | "
           << (check.has_livelock ? "yes" : "no") << " | "
           << (check.terminates ? "yes" : "no") << " |\n";
      } catch (const CapacityError&) {
        os << "| " << n << " | over budget | — | — | — |\n";
      }
    }
    os << "\n";
  });
}

}  // namespace

std::string markdown_report(const Protocol& p, const ReportOptions& opt) {
  const obs::Span span("report.markdown_report");
  std::ostringstream os;
  os << "# ringstab report: " << p.name() << "\n\n"
     << "- domain: " << p.domain().size() << " values\n"
     << "- locality: reads " << -p.locality().left << " .. "
     << p.locality().right << "\n"
     << "- local states: " << p.num_states() << " (" << p.num_legit()
     << " legitimate)\n"
     << "- local transitions: " << p.delta().size() << "\n\n"
     << "## Guarded commands\n\n```\n";
  for (const auto& a : to_guarded_commands(p)) os << a.text << "\n";
  os << "```\n\n";

  SectionTimer timer;
  timer.measure("report.lint", [&] {
    LintOptions lint_opts;
    lint_opts.array_topology = opt.array_topology;
    const LintResult lint = lint_protocol(p, lint_opts);
    os << "## Lint\n\n";
    if (lint.diagnostics.empty()) {
      os << "Protocol-level passes are clean "
            "(RS002/RS010/RS011/RS020/RS030).\n\n";
    } else {
      os << "```\n" << render_text(lint.diagnostics) << "```\n\n";
    }
  });
  if (opt.array_topology)
    array_report(p, opt, os, timer);
  else
    ring_report(p, opt, os, timer);
  if (opt.section_timings) timer.table(os);
  return os.str();
}

}  // namespace ringstab
