// Immutable parameterized ring protocol, represented by its template process.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/local_state.hpp"
#include "core/transition.hpp"

namespace ringstab {

/// A parameterized protocol p(K) on a ring, represented — as in the paper —
/// entirely by its representative process P_r: a local state space, a set of
/// local transitions δ_r, and the local legitimacy predicate LC_r. The
/// conjunctive global invariant is I(K) = ∧_{r} LC_r.
///
/// Protocol values are immutable; analyses are pure functions over them, and
/// synthesis produces revised copies via with_delta()/with_added().
class Protocol {
 public:
  /// `legit[s]` is LC_r evaluated at local state s. Transitions must write
  /// only offset 0 and must actually change it (stutter transitions carry no
  /// information under interleaving semantics and are rejected).
  Protocol(std::string name, LocalStateSpace space,
           std::vector<LocalTransition> delta, std::vector<bool> legit);

  const std::string& name() const { return name_; }
  const LocalStateSpace& space() const { return space_; }
  const Domain& domain() const { return space_.domain(); }
  const Locality& locality() const { return space_.locality(); }

  /// All local transitions, sorted by (from, to), duplicates removed.
  const std::vector<LocalTransition>& delta() const { return delta_; }

  bool is_legit(LocalStateId s) const { return legit_[s]; }
  const std::vector<bool>& legit_mask() const { return legit_; }

  bool is_enabled(LocalStateId s) const {
    return out_offset_[s] != out_offset_[s + 1];
  }
  bool is_deadlock(LocalStateId s) const { return !is_enabled(s); }

  /// Outgoing local transitions of `s` (contiguous in delta()).
  std::span<const LocalTransition> transitions_from(LocalStateId s) const {
    return {delta_.data() + out_offset_[s], delta_.data() + out_offset_[s + 1]};
  }

  /// Index into delta() of a transition's position; used by analyses that
  /// address t-arcs with bitsets.
  std::size_t index_of(const LocalTransition& t) const;

  /// All local deadlock states, ascending.
  std::vector<LocalStateId> local_deadlocks() const;

  /// Local deadlock states violating LC_r (illegitimate deadlocks),
  /// ascending.
  std::vector<LocalStateId> illegitimate_deadlocks() const;

  std::size_t num_states() const { return space_.size(); }
  std::size_t num_legit() const;

  /// A copy with a different transition set (legitimacy unchanged).
  Protocol with_delta(std::string name,
                      std::vector<LocalTransition> delta) const;

  /// A copy with extra transitions added to δ_r.
  Protocol with_added(std::string name,
                      std::vector<LocalTransition> extra) const;

 private:
  std::string name_;
  LocalStateSpace space_;
  std::vector<LocalTransition> delta_;
  std::vector<bool> legit_;
  std::vector<std::uint32_t> out_offset_;  // CSR offsets into delta_
};

}  // namespace ringstab
