#include "core/types.hpp"

#include <sstream>

namespace ringstab::detail {

void assert_fail(const char* cond, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "ringstab internal invariant violated: " << cond << " at " << file
     << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace ringstab::detail
