// Source locations for .ring text, carried from lexer tokens through the
// parser into diagnostics (src/analysis) and error messages.
#pragma once

namespace ringstab {

/// A 1-based line/column position in a .ring source file. A default
/// constructed span (line 0) means "no location available" — diagnostics
/// produced from a bare Protocol (no DSL source) carry invalid spans.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  bool operator==(const SourceSpan&) const = default;
};

}  // namespace ringstab
