// Lexer for the .ring guarded-command language.
#pragma once

#include <string_view>
#include <vector>

#include "core/token.hpp"

namespace ringstab {

/// Tokenize a .ring source text. Throws ParseError with line/column on
/// unrecognized input. `#` starts a comment to end of line.
std::vector<Token> lex(std::string_view source);

}  // namespace ringstab
