// Lexer for the .ring guarded-command language.
#pragma once

#include <string_view>
#include <vector>

#include "core/token.hpp"

namespace ringstab {

/// Tokenize a .ring source text. Throws ParseError on unrecognized input;
/// the message is prefixed `file:line:column: error:` (or `line:column:` when
/// `file` is empty). `#` starts a comment to end of line.
std::vector<Token> lex(std::string_view source, std::string_view file = {});

}  // namespace ringstab
