// Serializing protocols back into parseable .ring source.
#pragma once

#include <string>

#include "core/protocol.hpp"

namespace ringstab {

/// Render a protocol as .ring source text. Round-trip exact:
/// parse_protocol(to_ring_source(p)) has the same domain, locality, δ_r and
/// LC_r as p (the cube covers of the legitimacy mask and of each transition
/// group are expanded back to the identical sets).
std::string to_ring_source(const Protocol& p);

}  // namespace ringstab
