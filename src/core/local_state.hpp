// Dense mixed-radix encoding of the representative process's local states.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/locality.hpp"
#include "core/types.hpp"

namespace ringstab {

/// The local state space S_r^l of the representative process: all valuations
/// of the readable window. States are densely numbered in [0, size()).
///
/// Window positions are addressed by *offset* in [-left, +right]; offset 0 is
/// the process's own (writable) variable.
class LocalStateSpace {
 public:
  LocalStateSpace(Domain domain, Locality locality);

  const Domain& domain() const { return domain_; }
  const Locality& locality() const { return locality_; }

  /// Number of local states: |D|^window.
  std::size_t size() const { return size_; }

  /// Value of the window variable at `offset` (in [-left, right]).
  Value value(LocalStateId s, int offset) const;

  /// Value of the writable variable x_r.
  Value self(LocalStateId s) const { return value(s, 0); }

  /// Copy of `s` with the variable at `offset` replaced.
  LocalStateId with_value(LocalStateId s, int offset, Value v) const;

  /// Copy of `s` with x_r replaced — the only change a local transition may
  /// make.
  LocalStateId with_self(LocalStateId s, Value v) const {
    return with_value(s, 0, v);
  }

  /// Encode a full window valuation, listed from offset -left to +right.
  LocalStateId encode(std::span<const Value> window) const;

  /// Decode to a window valuation, listed from offset -left to +right.
  std::vector<Value> decode(LocalStateId s) const;

  /// Compact dump using domain abbreviations, window order: "lls".
  std::string brief(LocalStateId s) const;

  /// Verbose dump: "⟨x[-1]=left, x[0]=left, x[+1]=self⟩".
  std::string describe(LocalStateId s) const;

  /// True iff `v` can be the local state of the *right successor* P_{r+1}
  /// when P_r is in local state `u`: the two windows agree on the variables
  /// they share (offsets [1-left, right] of u == offsets [-left, right-1] of
  /// v). This is the paper's right-continuation relation (Def. 4.1).
  bool right_continues(LocalStateId u, LocalStateId v) const;

  /// All right continuations of `u`, in increasing id order. Exactly
  /// |D| states (the successor's rightmost variable is unconstrained).
  std::vector<LocalStateId> right_continuations(LocalStateId u) const;

  bool operator==(const LocalStateSpace& other) const {
    return domain_ == other.domain_ && locality_ == other.locality_;
  }

 private:
  std::size_t index_of(int offset) const;

  Domain domain_;
  Locality locality_;
  std::size_t size_ = 0;
  std::vector<std::uint32_t> pow_;  // pow_[p] = |D|^p, p = offset + left
};

}  // namespace ringstab
