// Fundamental value types and error hierarchy shared by every ringstab module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ringstab {

/// A single variable value. Every paper protocol has tiny domains (2..3
/// values); 8 bits leaves ample headroom for user protocols.
using Value = std::uint8_t;

/// Index of a local state of the representative process, i.e. a mixed-radix
/// encoding of the readable window. Dense: all ids in [0, space.size()).
using LocalStateId = std::uint32_t;

/// Index of a global ring state (mixed-radix over all K variables).
using GlobalStateId = std::uint64_t;

inline constexpr LocalStateId kInvalidLocalState = 0xffffffffu;

/// Root of the ringstab error hierarchy. All public entry points report
/// user-facing failures by throwing a subclass of Error.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed protocol definitions (domain mismatches, non-self writes, ...).
class ModelError : public Error {
 public:
  using Error::Error;
};

/// Errors from the .ring guarded-command front-end.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A requested instantiation exceeds configured resource budgets
/// (e.g. |D|^K global states would overflow or blow the state budget).
class CapacityError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

/// Internal invariant check; always on (analysis code is not hot enough to
/// justify compiling these out, and silent corruption of verdicts is worse
/// than a small constant cost).
#define RINGSTAB_ASSERT(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ringstab::detail::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

}  // namespace ringstab
