// The readable window of the representative process on a ring.
#pragma once

#include "core/types.hpp"

namespace ringstab {

/// Which ring variables the representative process P_r can read, expressed
/// as offsets relative to its own variable x_r. P_r reads
/// x_{r-left}, ..., x_r, ..., x_{r+right} and writes exactly x_r.
///
/// The paper's unidirectional rings are {left=1, right=0}
/// (R_r = {x_{r-1}, x_r}); its bidirectional rings are {left=1, right=1}.
struct Locality {
  int left = 1;
  int right = 0;

  /// Number of readable variables.
  int window() const { return left + 1 + right; }

  /// A unidirectional ring in the paper's sense: information flows from a
  /// process to its (right) successor only, so P_r does not read successors.
  bool is_unidirectional() const { return right == 0; }

  void validate() const {
    if (left < 0 || right < 0)
      throw ModelError("locality spans must be non-negative");
    if (left + right == 0)
      throw ModelError(
          "locality must read at least one neighbor (window of size 1 makes "
          "the continuation relation vacuous)");
    if (window() > 8) throw ModelError("locality window too large (max 8)");
  }

  bool operator==(const Locality&) const = default;
};

}  // namespace ringstab
