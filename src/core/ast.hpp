// Expression AST for .ring guards, effects and legitimacy predicates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/builder.hpp"

namespace ringstab {

/// Expression node. Expressions evaluate to int64; booleans are 0/1 and any
/// nonzero value is truthy (C semantics, as in Dijkstra-style guard sugar).
struct Expr {
  enum class Kind {
    kInt,      // literal
    kName,     // domain value name, resolved at evaluation time
    kVar,      // x[offset]
    kUnary,    // op: '-' or '!'
    kBinary,   // op: one of "|| && == != < <= > >= + - * / %"
  };

  Kind kind;
  long long value = 0;     // kInt
  std::string name;        // kName
  int offset = 0;          // kVar
  std::string op;          // kUnary/kBinary
  std::unique_ptr<Expr> lhs, rhs;

  static std::unique_ptr<Expr> literal(long long v);
  static std::unique_ptr<Expr> domain_name(std::string n);
  static std::unique_ptr<Expr> var(int offset);
  static std::unique_ptr<Expr> unary(std::string op, std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> binary(std::string op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);

  /// Evaluate over one local state. Domain value names resolve through the
  /// view's domain. Throws ParseError for unknown names, division by zero.
  long long eval(const LocalView& view) const;

  /// Render back to source-ish text (for diagnostics).
  std::string to_string() const;
};

/// Shared-ownership wrapper so parsed expressions can be captured by the
/// std::function guards handed to ProtocolBuilder.
using ExprPtr = std::shared_ptr<const Expr>;

}  // namespace ringstab
