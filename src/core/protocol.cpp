#include "core/protocol.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace ringstab {

Protocol::Protocol(std::string name, LocalStateSpace space,
                   std::vector<LocalTransition> delta,
                   std::vector<bool> legit)
    : name_(std::move(name)),
      space_(std::move(space)),
      delta_(std::move(delta)),
      legit_(std::move(legit)) {
  if (legit_.size() != space_.size())
    throw ModelError(cat("protocol '", name_, "': legitimacy mask has ",
                         legit_.size(), " entries for ", space_.size(),
                         " local states"));

  std::sort(delta_.begin(), delta_.end());
  delta_.erase(std::unique(delta_.begin(), delta_.end()), delta_.end());

  for (const auto& t : delta_) {
    if (t.from >= space_.size() || t.to >= space_.size())
      throw ModelError(cat("protocol '", name_,
                           "': transition references invalid local state"));
    if (t.from == t.to)
      throw ModelError(cat("protocol '", name_, "': stutter transition at ",
                           space_.brief(t.from)));
    // A local transition may change only the writable variable (offset 0).
    if (space_.with_self(t.from, space_.self(t.to)) != t.to)
      throw ModelError(cat("protocol '", name_, "': transition ",
                           space_.brief(t.from), " → ", space_.brief(t.to),
                           " writes a non-writable variable"));
  }

  out_offset_.assign(space_.size() + 1, 0);
  for (const auto& t : delta_) ++out_offset_[t.from + 1];
  for (std::size_t i = 1; i < out_offset_.size(); ++i)
    out_offset_[i] += out_offset_[i - 1];
}

std::size_t Protocol::index_of(const LocalTransition& t) const {
  auto it = std::lower_bound(delta_.begin(), delta_.end(), t);
  RINGSTAB_ASSERT(it != delta_.end() && *it == t,
                  "transition not in protocol");
  return static_cast<std::size_t>(it - delta_.begin());
}

std::vector<LocalStateId> Protocol::local_deadlocks() const {
  std::vector<LocalStateId> out;
  for (LocalStateId s = 0; s < space_.size(); ++s)
    if (is_deadlock(s)) out.push_back(s);
  return out;
}

std::vector<LocalStateId> Protocol::illegitimate_deadlocks() const {
  std::vector<LocalStateId> out;
  for (LocalStateId s = 0; s < space_.size(); ++s)
    if (is_deadlock(s) && !legit_[s]) out.push_back(s);
  return out;
}

std::size_t Protocol::num_legit() const {
  return static_cast<std::size_t>(
      std::count(legit_.begin(), legit_.end(), true));
}

Protocol Protocol::with_delta(std::string name,
                              std::vector<LocalTransition> delta) const {
  return Protocol(std::move(name), space_, std::move(delta), legit_);
}

Protocol Protocol::with_added(std::string name,
                              std::vector<LocalTransition> extra) const {
  std::vector<LocalTransition> all = delta_;
  all.insert(all.end(), extra.begin(), extra.end());
  return Protocol(std::move(name), space_, std::move(all), legit_);
}

}  // namespace ringstab
