// Tokens of the .ring guarded-command language.
#pragma once

#include <string>

namespace ringstab {

enum class TokenKind {
  kIdent,    // protocol names, keywords, domain value names
  kInt,      // integer literal
  kLBracket, // [
  kRBracket, // ]
  kLParen,   // (
  kRParen,   // )
  kSemi,     // ;
  kColon,    // :
  kComma,    // ,
  kArrow,    // ->
  kAssign,   // :=
  kPipe,     // |
  kOrOr,     // ||
  kAndAnd,   // &&
  kNot,      // !
  kEq,       // ==
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kPlus,     // +
  kMinus,    // -
  kStar,     // *
  kSlash,    // /
  kPercent,  // %
  kDotDot,   // ..
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier spelling
  long long value = 0;  // integer literal value
  int line = 1;
  int column = 1;
};

/// Printable token-kind name for diagnostics.
const char* token_kind_name(TokenKind k);

}  // namespace ringstab
