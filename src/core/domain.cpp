#include "core/domain.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/fmt.hpp"

namespace ringstab {

Domain::Domain(std::vector<std::string> names) : names_(std::move(names)) {
  if (names_.empty()) throw ModelError("domain must have at least one value");
  if (names_.size() > 64)
    throw ModelError("domain too large (max 64 values): " +
                     std::to_string(names_.size()));
  std::unordered_set<std::string_view> seen;
  for (const auto& n : names_) {
    if (n.empty()) throw ModelError("domain value names must be non-empty");
    if (!seen.insert(n).second)
      throw ModelError("duplicate domain value name: " + n);
  }
}

Domain Domain::range(std::size_t size) {
  std::vector<std::string> names;
  names.reserve(size);
  for (std::size_t i = 0; i < size; ++i) names.push_back(std::to_string(i));
  return Domain(std::move(names));
}

Domain Domain::named(std::vector<std::string> names) {
  return Domain(std::move(names));
}

const std::string& Domain::name(Value v) const {
  RINGSTAB_ASSERT(v < names_.size(), "domain value out of range");
  return names_[v];
}

char Domain::abbrev(Value v) const { return name(v).front(); }

std::optional<Value> Domain::value_of(std::string_view name) const {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return std::nullopt;
  return static_cast<Value>(it - names_.begin());
}

}  // namespace ringstab
