#include "core/local_state.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace ringstab {

LocalStateSpace::LocalStateSpace(Domain domain, Locality locality)
    : domain_(std::move(domain)), locality_(locality) {
  locality_.validate();
  const std::size_t d = domain_.size();
  const int w = locality_.window();
  std::size_t n = 1;
  pow_.resize(static_cast<std::size_t>(w) + 1);
  for (int p = 0; p <= w; ++p) {
    pow_[static_cast<std::size_t>(p)] = static_cast<std::uint32_t>(n);
    if (p < w) {
      if (n > (1u << 24) / d)
        throw CapacityError("local state space too large");
      n *= d;
    }
  }
  size_ = n;
}

std::size_t LocalStateSpace::index_of(int offset) const {
  RINGSTAB_ASSERT(offset >= -locality_.left && offset <= locality_.right,
                  cat("window offset ", offset, " out of range"));
  return static_cast<std::size_t>(offset + locality_.left);
}

Value LocalStateSpace::value(LocalStateId s, int offset) const {
  RINGSTAB_ASSERT(s < size_, "local state id out of range");
  const std::size_t p = index_of(offset);
  return static_cast<Value>((s / pow_[p]) % domain_.size());
}

LocalStateId LocalStateSpace::with_value(LocalStateId s, int offset,
                                         Value v) const {
  RINGSTAB_ASSERT(s < size_, "local state id out of range");
  RINGSTAB_ASSERT(v < domain_.size(), "value out of domain");
  const std::size_t p = index_of(offset);
  const Value old = static_cast<Value>((s / pow_[p]) % domain_.size());
  return s + (static_cast<LocalStateId>(v) - static_cast<LocalStateId>(old)) *
                 pow_[p];
}

LocalStateId LocalStateSpace::encode(std::span<const Value> window) const {
  RINGSTAB_ASSERT(window.size() == static_cast<std::size_t>(locality_.window()),
                  "window valuation has wrong arity");
  LocalStateId s = 0;
  for (std::size_t p = 0; p < window.size(); ++p) {
    RINGSTAB_ASSERT(window[p] < domain_.size(), "value out of domain");
    s += static_cast<LocalStateId>(window[p]) * pow_[p];
  }
  return s;
}

std::vector<Value> LocalStateSpace::decode(LocalStateId s) const {
  RINGSTAB_ASSERT(s < size_, "local state id out of range");
  const int w = locality_.window();
  std::vector<Value> out(static_cast<std::size_t>(w));
  for (int p = 0; p < w; ++p)
    out[static_cast<std::size_t>(p)] = static_cast<Value>(
        (s / pow_[static_cast<std::size_t>(p)]) % domain_.size());
  return out;
}

std::string LocalStateSpace::brief(LocalStateId s) const {
  std::string out;
  for (Value v : decode(s)) out.push_back(domain_.abbrev(v));
  return out;
}

std::string LocalStateSpace::describe(LocalStateId s) const {
  const auto vals = decode(s);
  std::ostringstream os;
  os << "⟨";
  for (int p = 0; p < locality_.window(); ++p) {
    if (p > 0) os << ", ";
    const int offset = p - locality_.left;
    os << "x[" << offset << "]=" << domain_.name(vals[static_cast<std::size_t>(p)]);
  }
  os << "⟩";
  return os.str();
}

bool LocalStateSpace::right_continues(LocalStateId u, LocalStateId v) const {
  // Shared offsets: k in [1-left, right] of u align with k-1 of v.
  for (int k = 1 - locality_.left; k <= locality_.right; ++k)
    if (value(u, k) != value(v, k - 1)) return false;
  return true;
}

std::vector<LocalStateId> LocalStateSpace::right_continuations(
    LocalStateId u) const {
  // v is determined on offsets [-left, right-1] by u's offsets [1-left,
  // right]; its rightmost variable is free.
  LocalStateId base = 0;
  for (int k = 1 - locality_.left; k <= locality_.right; ++k) {
    const std::size_t p = static_cast<std::size_t>((k - 1) + locality_.left);
    base += static_cast<LocalStateId>(value(u, k)) * pow_[p];
  }
  const std::size_t top = static_cast<std::size_t>(locality_.window() - 1);
  std::vector<LocalStateId> out;
  out.reserve(domain_.size());
  for (std::size_t v = 0; v < domain_.size(); ++v)
    out.push_back(base + static_cast<LocalStateId>(v) * pow_[top]);
  return out;
}

}  // namespace ringstab
