// Programmatic protocol construction from guarded-command actions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// Read-only view of one local state handed to guard/effect callbacks.
/// `view[offset]` is the window variable at that offset (0 = own variable).
class LocalView {
 public:
  LocalView(const LocalStateSpace& space, LocalStateId s)
      : space_(&space), s_(s) {}

  Value operator[](int offset) const { return space_->value(s_, offset); }
  Value self() const { return space_->self(s_); }
  LocalStateId id() const { return s_; }
  const Domain& domain() const { return space_->domain(); }

  /// Is `offset` inside the readable window? (Used by the .ring evaluator
  /// to reject out-of-locality variable references with a ParseError.)
  bool in_window(int offset) const {
    const auto& loc = space_->locality();
    return offset >= -loc.left && offset <= loc.right;
  }

 private:
  const LocalStateSpace* space_;
  LocalStateId s_;
};

/// Builds a Protocol from Dijkstra-style guarded commands, mirroring the
/// paper's action notation `grd → stmt`. Guards and effects are expanded over
/// the whole (small) local state space at build() time.
///
///   auto p = ProtocolBuilder("agreement", Domain::range(2), {1, 0})
///                .legitimate([](const LocalView& v) { return v[-1] == v[0]; })
///                .action("t01", [](auto& v) { return v[-1]==1 && v[0]==0; },
///                                [](auto& v) { return Value{1}; })
///                .build();
class ProtocolBuilder {
 public:
  using Guard = std::function<bool(const LocalView&)>;
  using Effect = std::function<Value(const LocalView&)>;
  using MultiEffect = std::function<std::vector<Value>(const LocalView&)>;

  ProtocolBuilder(std::string name, Domain domain, Locality locality);

  /// LC_r, the local conjunct of the invariant. Required before build().
  ProtocolBuilder& legitimate(Guard lc);

  /// Deterministic action: where `guard` holds and the effect changes x_r,
  /// add the corresponding local transitions.
  ProtocolBuilder& action(std::string label, Guard guard, Effect effect);

  /// Nondeterministic action (e.g. `m_r := right | left`): each returned
  /// value yields a transition.
  ProtocolBuilder& action(std::string label, Guard guard, MultiEffect effect);

  /// Raw transition escape hatch.
  ProtocolBuilder& transition(LocalStateId from, Value new_self);

  /// Expand all actions and produce the protocol. Throws ModelError if no
  /// legitimacy predicate was given or an effect leaves the domain.
  Protocol build() const;

 private:
  struct Action {
    std::string label;
    Guard guard;
    MultiEffect effect;
  };

  std::string name_;
  LocalStateSpace space_;
  Guard lc_;
  std::vector<Action> actions_;
  std::vector<LocalTransition> raw_;
};

}  // namespace ringstab
