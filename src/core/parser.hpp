// Parser for the .ring guarded-command protocol language.
//
// Example source (binary agreement on a unidirectional ring):
//
//   protocol agreement;
//   domain 2;              # or: domain left, self, right;
//   reads -1 .. 0;         # window offsets; 0 is always the writable var
//   legit: x[-1] == x[0];
//   action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1;
//   action t10: x[-1] == 0 && x[0] == 1 -> x[0] := 0;
//
// A nondeterministic assignment lists alternatives:
//   action: x[-1]==0 && x[0]==0 && x[1]==0 -> x[0] := 1 | x[0] := 2;
//
// Comments may carry directives consumed by tooling (batch runner, lint):
//   # expect: fails / # expect: converges   — batch expectation markers
//   # topology: array                       — check as an open array
//   # lint: allow(RS003, RS011)             — suppress lint codes file-wide
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/ast.hpp"
#include "core/protocol.hpp"
#include "core/source.hpp"

namespace ringstab {

/// One `action` declaration as written: label, guard and assignment
/// alternatives as expression trees, plus the source span of the `action`
/// keyword for diagnostics.
struct SourcedAction {
  std::string label;
  SourceSpan span;
  ExprPtr guard;
  std::vector<ExprPtr> effects;
};

/// The syntactic content of a .ring file after parsing but before expansion
/// into a Protocol's transition relation. Keeping this intermediate form
/// around lets the lint engine (src/analysis) attribute semantic findings —
/// stutters, out-of-domain writes, conflicting overlaps — to source spans.
struct ProtocolSource {
  std::string file = "<input>";
  std::string name;
  SourceSpan name_span;
  Domain domain = Domain::range(1);
  SourceSpan domain_span;
  Locality locality;
  ExprPtr legit;
  SourceSpan legit_span;
  std::vector<SourcedAction> actions;

  /// Lint codes suppressed via `# lint: allow(RSxxx)` comments.
  std::vector<std::string> lint_allows;
  /// `# topology: array` marker (batch convention) was present.
  bool array_topology = false;
  /// `# expect: fails` marker was present.
  bool expects_failure = false;
};

/// Result of expanding one action over the local state space: the transitions
/// it generates plus everything that went wrong on the way. Shared by
/// build_protocol (which escalates problems to ParseError) and the lint
/// passes (which turn them into located diagnostics).
struct ActionExpansion {
  std::vector<LocalTransition> transitions;
  /// Enabled states where some assignment alternative rewrote x[0] to its
  /// current value (the builder silently drops such stutters).
  std::vector<LocalStateId> stutter_states;
  /// Out-of-domain writes, formatted `assignment '...' evaluates to N, ...`.
  std::vector<std::string> domain_errors;
  /// Expression evaluation failures (unknown names, division by zero, reads
  /// outside the window), deduplicated.
  std::vector<std::string> eval_errors;
  /// Number of local states where the guard held.
  std::size_t enabled_states = 0;
};

/// Expand `action` over every local state of `space`.
ActionExpansion expand_action(const LocalStateSpace& space,
                              const SourcedAction& action);

/// Parse .ring text into its syntactic form. Throws ParseError with a
/// `file:line:column: error:` prefix on syntax errors.
ProtocolSource parse_protocol_source(std::string_view source,
                                     std::string file = "<input>");

/// Expand a parsed source into a Protocol. Throws ParseError (located at the
/// offending declaration) on evaluation errors, out-of-domain writes, or a
/// missing declaration.
Protocol build_protocol(const ProtocolSource& src);

/// Parse .ring source text into a Protocol. Equivalent to
/// build_protocol(parse_protocol_source(source)).
Protocol parse_protocol(std::string_view source);

/// Convenience: read the file and parse it; errors carry the file path.
Protocol parse_protocol_file(const std::string& path);

/// Slurp a file for parse_protocol_source. Throws ParseError if unreadable.
std::string read_source_file(const std::string& path);

}  // namespace ringstab
