// Parser for the .ring guarded-command protocol language.
//
// Example source (binary agreement on a unidirectional ring):
//
//   protocol agreement;
//   domain 2;              # or: domain left, self, right;
//   reads -1 .. 0;         # window offsets; 0 is always the writable var
//   legit: x[-1] == x[0];
//   action t01: x[-1] == 1 && x[0] == 0 -> x[0] := 1;
//   action t10: x[-1] == 0 && x[0] == 1 -> x[0] := 0;
//
// A nondeterministic assignment lists alternatives:
//   action: x[-1]==0 && x[0]==0 && x[1]==0 -> x[0] := 1 | x[0] := 2;
#pragma once

#include <string>
#include <string_view>

#include "core/protocol.hpp"

namespace ringstab {

/// Parse .ring source text into a Protocol. Throws ParseError on syntax or
/// semantic errors (unknown values, writes outside the domain, missing
/// declarations).
Protocol parse_protocol(std::string_view source);

/// Convenience: read the file and parse it.
Protocol parse_protocol_file(const std::string& path);

}  // namespace ringstab
