// Pretty-printing protocols back into guarded-command notation.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// One printed guarded command: a cube over window offsets and a write.
struct PrintedAction {
  /// allowed[p] = set of admissible values for window position p (offset
  /// p - left). The guard is the conjunction of the per-offset memberships.
  std::vector<std::vector<Value>> allowed;
  Value write_from;  // value of x[0] in every source state of this cube
  Value write_to;    // value written to x[0]
  std::string text;  // rendered form
};

/// A cube: one admissible value set per window position; denotes the product
/// set of local states.
using Cube = std::vector<std::vector<Value>>;

/// Cover an arbitrary set of local states with maximal cubes (greedy,
/// deterministic, exact: the cubes partition-cover exactly `states`).
std::vector<Cube> cover_with_cubes(const LocalStateSpace& space,
                                   const std::set<LocalStateId>& states);

/// Cover δ_r with guarded commands: transitions are grouped by their
/// (x[0]-before, x[0]-after) write pair, and each group's source set is
/// covered greedily with maximal cubes. The output is deterministic and
/// exact: expanding the printed actions reproduces δ_r.
std::vector<PrintedAction> to_guarded_commands(const Protocol& p);

/// Whole-protocol description: header (name, domain, locality, |LC_r|)
/// followed by one line per guarded command.
std::string describe(const Protocol& p);

/// One-line rendering of a single transition:
/// "⟨l,l⟩ → ⟨l,s⟩  [x0: left→self]".
std::string describe_transition(const Protocol& p, const LocalTransition& t);

}  // namespace ringstab
