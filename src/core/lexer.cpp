#include "core/lexer.hpp"

#include <cctype>

#include "core/fmt.hpp"
#include "core/types.hpp"

namespace ringstab {

const char* token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view src, std::string_view file) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;

  auto error = [&](const std::string& msg) -> ParseError {
    const std::string prefix =
        file.empty() ? cat(line, ":", col) : cat(file, ":", line, ":", col);
    return ParseError(cat(prefix, ": error: ", msg));
  };
  auto push = [&](TokenKind k, std::string text = {}, long long v = 0) {
    out.push_back(Token{k, std::move(text), v, line, col});
  };
  auto advance = [&](std::size_t n) {
    for (std::size_t j = 0; j < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                src[j] == '_'))
        ++j;
      push(TokenKind::kIdent, std::string(src.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      long long v = 0;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
        v = v * 10 + (src[j] - '0');
        if (v > 1'000'000'000) throw error("integer literal too large");
        ++j;
      }
      push(TokenKind::kInt, std::string(src.substr(i, j - i)), v);
      advance(j - i);
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('-', '>')) { push(TokenKind::kArrow); advance(2); continue; }
    if (two(':', '=')) { push(TokenKind::kAssign); advance(2); continue; }
    if (two('|', '|')) { push(TokenKind::kOrOr); advance(2); continue; }
    if (two('&', '&')) { push(TokenKind::kAndAnd); advance(2); continue; }
    if (two('=', '=')) { push(TokenKind::kEq); advance(2); continue; }
    if (two('!', '=')) { push(TokenKind::kNe); advance(2); continue; }
    if (two('<', '=')) { push(TokenKind::kLe); advance(2); continue; }
    if (two('>', '=')) { push(TokenKind::kGe); advance(2); continue; }
    if (two('.', '.')) { push(TokenKind::kDotDot); advance(2); continue; }

    switch (c) {
      case '[': push(TokenKind::kLBracket); break;
      case ']': push(TokenKind::kRBracket); break;
      case '(': push(TokenKind::kLParen); break;
      case ')': push(TokenKind::kRParen); break;
      case ';': push(TokenKind::kSemi); break;
      case ':': push(TokenKind::kColon); break;
      case ',': push(TokenKind::kComma); break;
      case '|': push(TokenKind::kPipe); break;
      case '!': push(TokenKind::kNot); break;
      case '<': push(TokenKind::kLt); break;
      case '>': push(TokenKind::kGt); break;
      case '+': push(TokenKind::kPlus); break;
      case '-': push(TokenKind::kMinus); break;
      case '*': push(TokenKind::kStar); break;
      case '/': push(TokenKind::kSlash); break;
      case '%': push(TokenKind::kPercent); break;
      default:
        throw error(cat("unexpected character '", c, "'"));
    }
    advance(1);
  }
  push(TokenKind::kEof);
  return out;
}

}  // namespace ringstab
