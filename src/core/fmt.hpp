// Minimal string-building helpers (the toolchain lacks <format>).
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace ringstab {

/// Concatenate the stream representations of all arguments.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Join container elements with a separator, using each element's stream
/// representation (or a projection).
template <typename Container, typename Proj>
std::string join(const Container& items, const std::string& sep, Proj proj) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << proj(item);
  }
  return os.str();
}

template <typename Container>
std::string join(const Container& items, const std::string& sep) {
  return join(items, sep, [](const auto& x) -> const auto& { return x; });
}

}  // namespace ringstab
