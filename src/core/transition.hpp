// Local transitions of the representative process.
#pragma once

#include <compare>

#include "core/types.hpp"

namespace ringstab {

/// A local transition (s, s') of P_r: the window valuation changes only at
/// offset 0 (the writable variable). Protocol construction enforces this.
struct LocalTransition {
  LocalStateId from = kInvalidLocalState;
  LocalStateId to = kInvalidLocalState;

  auto operator<=>(const LocalTransition&) const = default;
};

}  // namespace ringstab
