// Finite value domains with optional symbolic names (e.g. left/self/right).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace ringstab {

/// A finite, named value domain. Every process variable of a protocol ranges
/// over the same Domain (the paper's protocols are uniform; heterogeneous
/// variables can be modelled by a product domain).
class Domain {
 public:
  /// Domain {0, 1, ..., size-1} with numeric names.
  static Domain range(std::size_t size);

  /// Domain with one value per name, in order. Names must be unique and
  /// non-empty.
  static Domain named(std::vector<std::string> names);

  std::size_t size() const { return names_.size(); }

  /// Human-readable name of a value.
  const std::string& name(Value v) const;

  /// Single-character abbreviation used in compact state dumps ("lls").
  char abbrev(Value v) const;

  /// Look up a value by name (also accepts the numeric spelling).
  std::optional<Value> value_of(std::string_view name) const;

  bool contains(long long raw) const {
    return raw >= 0 && static_cast<std::size_t>(raw) < size();
  }

  bool operator==(const Domain&) const = default;

 private:
  explicit Domain(std::vector<std::string> names);

  std::vector<std::string> names_;
};

}  // namespace ringstab
