#include "core/printer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/fmt.hpp"

namespace ringstab {
namespace {

// Render one cube as a guard over offsets, e.g.
// "x[-1]=left ∧ x[0]∈{left,right} → x[0]:=self".
std::string render(const LocalStateSpace& space, const PrintedAction& a) {
  const auto& dom = space.domain();
  const int left = space.locality().left;
  std::vector<std::string> conj;
  for (std::size_t p = 0; p < a.allowed.size(); ++p) {
    const auto& vals = a.allowed[p];
    if (vals.size() == dom.size()) continue;  // unconstrained
    const int offset = static_cast<int>(p) - left;
    if (vals.size() == 1) {
      conj.push_back(cat("x[", offset, "]=", dom.name(vals[0])));
    } else if (vals.size() == dom.size() - 1) {
      // complement form reads better: x[k] != v
      for (Value v = 0; v < dom.size(); ++v)
        if (std::find(vals.begin(), vals.end(), v) == vals.end())
          conj.push_back(cat("x[", offset, "]≠", dom.name(v)));
    } else {
      conj.push_back(cat(
          "x[", offset, "]∈{",
          join(vals, ",", [&](Value v) { return dom.name(v); }), "}"));
    }
  }
  std::string guard = conj.empty() ? std::string("true") : join(conj, " ∧ ");
  return cat(guard, "  →  x[0] := ", dom.name(a.write_to));
}

// Visit every state of a cube.
template <typename Fn>
void for_each_cube_state(const LocalStateSpace& space, const Cube& cube,
                         Fn&& fn) {
  std::vector<std::size_t> idx(cube.size(), 0);
  while (true) {
    std::vector<Value> vals(cube.size());
    for (std::size_t i = 0; i < cube.size(); ++i) vals[i] = cube[i][idx[i]];
    fn(space.encode(vals));
    std::size_t i = 0;
    for (; i < cube.size(); ++i) {
      if (++idx[i] < cube[i].size()) break;
      idx[i] = 0;
    }
    if (i == cube.size()) break;
  }
}

}  // namespace

std::vector<Cube> cover_with_cubes(const LocalStateSpace& space,
                                   const std::set<LocalStateId>& states) {
  const auto& dom = space.domain();
  const int w = space.locality().window();

  std::vector<Cube> out;
  std::set<LocalStateId> remaining = states;
  while (!remaining.empty()) {
    const LocalStateId seed = *remaining.begin();
    // Start from the singleton cube at `seed` and grow each position's
    // value set as long as the whole cube stays inside `states`.
    Cube allowed(static_cast<std::size_t>(w));
    const auto seed_vals = space.decode(seed);
    for (int pos = 0; pos < w; ++pos)
      allowed[static_cast<std::size_t>(pos)] = {
          seed_vals[static_cast<std::size_t>(pos)]};

    auto cube_inside = [&](const Cube& cube) {
      bool ok = true;
      for_each_cube_state(space, cube, [&](LocalStateId s) {
        if (!states.count(s)) ok = false;
      });
      return ok;
    };

    for (int pos = 0; pos < w; ++pos) {
      for (Value v = 0; v < dom.size(); ++v) {
        const auto& slot = allowed[static_cast<std::size_t>(pos)];
        if (std::find(slot.begin(), slot.end(), v) != slot.end()) continue;
        auto trial = allowed;
        trial[static_cast<std::size_t>(pos)].push_back(v);
        std::sort(trial[static_cast<std::size_t>(pos)].begin(),
                  trial[static_cast<std::size_t>(pos)].end());
        if (cube_inside(trial)) allowed = std::move(trial);
      }
    }
    for_each_cube_state(space, allowed,
                        [&](LocalStateId s) { remaining.erase(s); });
    out.push_back(std::move(allowed));
  }
  return out;
}

std::vector<PrintedAction> to_guarded_commands(const Protocol& p) {
  const auto& space = p.space();

  // Group source states by write pair (a -> b).
  std::map<std::pair<Value, Value>, std::set<LocalStateId>> groups;
  for (const auto& t : p.delta())
    groups[{space.self(t.from), space.self(t.to)}].insert(t.from);

  std::vector<PrintedAction> out;
  for (auto& [pair, sources] : groups) {
    for (Cube& cube : cover_with_cubes(space, sources)) {
      PrintedAction act;
      act.allowed = std::move(cube);
      act.write_from = pair.first;
      act.write_to = pair.second;
      act.text = render(space, act);
      out.push_back(std::move(act));
    }
  }
  return out;
}

std::string describe(const Protocol& p) {
  std::ostringstream os;
  os << "protocol " << p.name() << ": |D|=" << p.domain().size()
     << ", window [-" << p.locality().left << ".." << p.locality().right
     << "], " << p.num_states() << " local states (" << p.num_legit()
     << " legitimate), " << p.delta().size() << " local transitions\n";
  for (const auto& a : to_guarded_commands(p)) os << "  " << a.text << "\n";
  return os.str();
}

std::string describe_transition(const Protocol& p, const LocalTransition& t) {
  const auto& space = p.space();
  const auto& dom = space.domain();
  return cat("⟨", space.brief(t.from), "⟩→⟨", space.brief(t.to), "⟩ [x0: ",
             dom.name(space.self(t.from)), "→", dom.name(space.self(t.to)),
             "]");
}

}  // namespace ringstab
