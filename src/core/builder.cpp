#include "core/builder.hpp"

#include "core/fmt.hpp"

namespace ringstab {

ProtocolBuilder::ProtocolBuilder(std::string name, Domain domain,
                                 Locality locality)
    : name_(std::move(name)), space_(std::move(domain), locality) {}

ProtocolBuilder& ProtocolBuilder::legitimate(Guard lc) {
  lc_ = std::move(lc);
  return *this;
}

ProtocolBuilder& ProtocolBuilder::action(std::string label, Guard guard,
                                         Effect effect) {
  return action(std::move(label), std::move(guard),
                MultiEffect([effect = std::move(effect)](const LocalView& v) {
                  return std::vector<Value>{effect(v)};
                }));
}

ProtocolBuilder& ProtocolBuilder::action(std::string label, Guard guard,
                                         MultiEffect effect) {
  actions_.push_back({std::move(label), std::move(guard), std::move(effect)});
  return *this;
}

ProtocolBuilder& ProtocolBuilder::transition(LocalStateId from,
                                             Value new_self) {
  raw_.push_back({from, space_.with_self(from, new_self)});
  return *this;
}

Protocol ProtocolBuilder::build() const {
  if (!lc_)
    throw ModelError(cat("protocol '", name_,
                         "': no legitimacy predicate given"));

  std::vector<bool> legit(space_.size(), false);
  std::vector<LocalTransition> delta = raw_;

  for (LocalStateId s = 0; s < space_.size(); ++s) {
    const LocalView view(space_, s);
    legit[s] = lc_(view);
    for (const auto& a : actions_) {
      if (!a.guard(view)) continue;
      for (Value v : a.effect(view)) {
        if (v >= space_.domain().size())
          throw ModelError(cat("protocol '", name_, "': action '", a.label,
                               "' writes value ", int(v),
                               " outside the domain at state ",
                               space_.brief(s)));
        if (v == space_.self(s))
          continue;  // effect leaves x_r unchanged: no transition
        delta.push_back({s, space_.with_self(s, v)});
      }
    }
  }
  return Protocol(name_, space_, std::move(delta), std::move(legit));
}

}  // namespace ringstab
