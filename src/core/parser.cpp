#include "core/parser.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "core/ast.hpp"
#include "core/fmt.hpp"
#include "core/lexer.hpp"

namespace ringstab {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : tokens_(lex(src)) {}

  Protocol run() {
    while (!at(TokenKind::kEof)) declaration();
    if (!name_) fail("missing 'protocol <name>;' declaration");
    if (!domain_) fail("missing 'domain ...;' declaration");
    if (!locality_) fail("missing 'reads <lo> .. <hi>;' declaration");
    if (!legit_) fail("missing 'legit: <expr>;' declaration");

    ProtocolBuilder builder(*name_, *domain_, *locality_);
    ExprPtr legit = std::move(legit_);
    builder.legitimate([legit](const LocalView& v) {
      return legit->eval(v) != 0;
    });
    for (auto& a : actions_) {
      ExprPtr guard = a.guard;
      std::vector<ExprPtr> effects = a.effects;
      builder.action(
          a.label, [guard](const LocalView& v) { return guard->eval(v) != 0; },
          ProtocolBuilder::MultiEffect([effects](const LocalView& v) {
            std::vector<Value> out;
            out.reserve(effects.size());
            for (const auto& e : effects) {
              const long long raw = e->eval(v);
              if (!v.domain().contains(raw))
                throw ParseError(cat("assignment '", e->to_string(),
                                     "' evaluates to ", raw,
                                     ", outside the domain"));
              out.push_back(static_cast<Value>(raw));
            }
            return out;
          }));
    }
    return builder.build();
  }

 private:
  struct ParsedAction {
    std::string label;
    ExprPtr guard;
    std::vector<ExprPtr> effects;
  };

  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = tokens_[pos_];
    throw ParseError(cat("parse error at ", t.line, ":", t.column, ": ", msg));
  }

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind k) const { return peek().kind == k; }
  bool at_ident(std::string_view word) const {
    return at(TokenKind::kIdent) && peek().text == word;
  }

  Token take() { return tokens_[pos_++]; }

  Token expect(TokenKind k, const std::string& what) {
    if (!at(k))
      fail(cat("expected ", what.empty() ? token_kind_name(k) : what.c_str(),
               ", found ", token_kind_name(peek().kind)));
    return take();
  }

  long long expect_int() {
    bool neg = false;
    if (at(TokenKind::kMinus)) {
      take();
      neg = true;
    }
    const Token t = expect(TokenKind::kInt, "integer");
    return neg ? -t.value : t.value;
  }

  void declaration() {
    const Token head = expect(TokenKind::kIdent, "declaration keyword");
    if (head.text == "protocol") {
      name_ = expect(TokenKind::kIdent, "protocol name").text;
    } else if (head.text == "domain") {
      parse_domain();
    } else if (head.text == "reads") {
      const long long lo = expect_int();
      expect(TokenKind::kDotDot, "'..'");
      const long long hi = expect_int();
      if (lo > 0 || hi < 0) fail("reads range must include offset 0");
      locality_ = Locality{static_cast<int>(-lo), static_cast<int>(hi)};
    } else if (head.text == "legit") {
      expect(TokenKind::kColon, "':'");
      legit_ = parse_expr();
    } else if (head.text == "action") {
      parse_action();
      return;  // parse_action consumed the ';'
    } else {
      fail(cat("unknown declaration '", head.text, "'"));
    }
    expect(TokenKind::kSemi, "';'");
  }

  void parse_domain() {
    if (at(TokenKind::kInt)) {
      const long long n = take().value;
      if (n < 1 || n > 64) fail("domain size must be in [1, 64]");
      domain_ = Domain::range(static_cast<std::size_t>(n));
      return;
    }
    std::vector<std::string> names;
    names.push_back(expect(TokenKind::kIdent, "domain value name").text);
    while (at(TokenKind::kComma)) {
      take();
      names.push_back(expect(TokenKind::kIdent, "domain value name").text);
    }
    domain_ = Domain::named(std::move(names));
  }

  void parse_action() {
    ParsedAction act;
    // Optional label: "action <label> : guard -> ..." — a label is an ident
    // directly followed by ':'.
    if (at(TokenKind::kIdent) &&
        tokens_[pos_ + 1].kind == TokenKind::kColon) {
      act.label = take().text;
      take();  // ':'
    } else if (at(TokenKind::kColon)) {
      take();  // anonymous "action: guard -> ..."
    }
    act.guard = parse_expr();
    expect(TokenKind::kArrow, "'->'");
    act.effects.push_back(parse_assign());
    while (at(TokenKind::kPipe)) {
      take();
      act.effects.push_back(parse_assign());
    }
    expect(TokenKind::kSemi, "';'");
    if (act.label.empty())
      act.label = cat("a", actions_.size());
    actions_.push_back(std::move(act));
  }

  ExprPtr parse_assign() {
    // x[0] := expr
    const Token x = expect(TokenKind::kIdent, "'x'");
    if (x.text != "x") fail("assignment target must be x[0]");
    expect(TokenKind::kLBracket, "'['");
    const long long off = expect_int();
    if (off != 0) fail("only x[0] is writable");
    expect(TokenKind::kRBracket, "']'");
    expect(TokenKind::kAssign, "':='");
    return parse_expr();
  }

  // Precedence-climbing expression parser.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      take();
      lhs = Expr::binary("||", clone(lhs), clone(parse_and()));
    }
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_cmp();
    while (at(TokenKind::kAndAnd)) {
      take();
      lhs = Expr::binary("&&", clone(lhs), clone(parse_cmp()));
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    auto lhs = parse_sum();
    const auto op = [&]() -> std::optional<std::string> {
      switch (peek().kind) {
        case TokenKind::kEq: return "==";
        case TokenKind::kNe: return "!=";
        case TokenKind::kLt: return "<";
        case TokenKind::kLe: return "<=";
        case TokenKind::kGt: return ">";
        case TokenKind::kGe: return ">=";
        default: return std::nullopt;
      }
    }();
    if (!op) return lhs;
    take();
    return Expr::binary(*op, clone(lhs), clone(parse_sum()));
  }

  ExprPtr parse_sum() {
    auto lhs = parse_term();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const std::string op = at(TokenKind::kPlus) ? "+" : "-";
      take();
      lhs = Expr::binary(op, clone(lhs), clone(parse_term()));
    }
    return lhs;
  }

  ExprPtr parse_term() {
    auto lhs = parse_unary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      const std::string op = at(TokenKind::kStar)    ? "*"
                             : at(TokenKind::kSlash) ? "/"
                                                     : "%";
      take();
      lhs = Expr::binary(op, clone(lhs), clone(parse_unary()));
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus)) {
      take();
      return Expr::unary("-", clone(parse_unary()));
    }
    if (at(TokenKind::kNot)) {
      take();
      return Expr::unary("!", clone(parse_unary()));
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::kInt)) return Expr::literal(take().value);
    if (at(TokenKind::kLParen)) {
      take();
      auto e = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    if (at(TokenKind::kIdent)) {
      const Token id = take();
      if (id.text == "x") {
        expect(TokenKind::kLBracket, "'['");
        const long long off = expect_int();
        expect(TokenKind::kRBracket, "']'");
        return Expr::var(static_cast<int>(off));
      }
      return Expr::domain_name(id.text);
    }
    fail(cat("expected expression, found ", token_kind_name(peek().kind)));
  }

  // Expr builders return unique_ptr; analyses share them as ExprPtr. The
  // parser moves unique ownership into shared wrappers at each composition.
  static std::unique_ptr<Expr> clone(ExprPtr p) {
    // ExprPtr values produced by this parser are uniquely owned until
    // composed, so a structural copy keeps things simple and safe.
    auto copy = std::make_unique<Expr>();
    copy->kind = p->kind;
    copy->value = p->value;
    copy->name = p->name;
    copy->offset = p->offset;
    copy->op = p->op;
    if (p->lhs) copy->lhs = clone(ExprPtr(p, p->lhs.get()));
    if (p->rhs) copy->rhs = clone(ExprPtr(p, p->rhs.get()));
    return copy;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  std::optional<std::string> name_;
  std::optional<Domain> domain_;
  std::optional<Locality> locality_;
  ExprPtr legit_;
  std::vector<ParsedAction> actions_;
};

}  // namespace

Protocol parse_protocol(std::string_view source) {
  return Parser(source).run();
}

Protocol parse_protocol_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_protocol(buf.str());
}

}  // namespace ringstab
