#include "core/parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/ast.hpp"
#include "core/fmt.hpp"
#include "core/lexer.hpp"

namespace ringstab {
namespace {

SourceSpan span_of(const Token& t) { return SourceSpan{t.line, t.column}; }

class Parser {
 public:
  Parser(std::string_view src, std::string_view file)
      : tokens_(lex(src, file)), file_(file) {}

  ProtocolSource run() {
    while (!at(TokenKind::kEof)) declaration();
    if (!out_.name_span.valid()) fail("missing 'protocol <name>;' declaration");
    if (!domain_) fail("missing 'domain ...;' declaration");
    if (!locality_) fail("missing 'reads <lo> .. <hi>;' declaration");
    if (!out_.legit) fail("missing 'legit: <expr>;' declaration");
    out_.domain = std::move(*domain_);
    out_.locality = *locality_;
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = tokens_[pos_];
    throw ParseError(
        cat(file_, ":", t.line, ":", t.column, ": error: ", msg));
  }

  const Token& peek() const { return tokens_[pos_]; }
  bool at(TokenKind k) const { return peek().kind == k; }

  Token take() { return tokens_[pos_++]; }

  Token expect(TokenKind k, const std::string& what) {
    if (!at(k))
      fail(cat("expected ", what.empty() ? token_kind_name(k) : what.c_str(),
               ", found ", token_kind_name(peek().kind)));
    return take();
  }

  long long expect_int() {
    bool neg = false;
    if (at(TokenKind::kMinus)) {
      take();
      neg = true;
    }
    const Token t = expect(TokenKind::kInt, "integer");
    return neg ? -t.value : t.value;
  }

  void declaration() {
    const Token head = expect(TokenKind::kIdent, "declaration keyword");
    if (head.text == "protocol") {
      const Token name = expect(TokenKind::kIdent, "protocol name");
      out_.name = name.text;
      out_.name_span = span_of(name);
    } else if (head.text == "domain") {
      out_.domain_span = span_of(head);
      parse_domain();
    } else if (head.text == "reads") {
      const long long lo = expect_int();
      expect(TokenKind::kDotDot, "'..'");
      const long long hi = expect_int();
      if (lo > 0 || hi < 0) fail("reads range must include offset 0");
      locality_ = Locality{static_cast<int>(-lo), static_cast<int>(hi)};
    } else if (head.text == "legit") {
      expect(TokenKind::kColon, "':'");
      out_.legit_span = span_of(head);
      out_.legit = parse_expr();
    } else if (head.text == "action") {
      parse_action(head);
      return;  // parse_action consumed the ';'
    } else {
      fail(cat("unknown declaration '", head.text, "'"));
    }
    expect(TokenKind::kSemi, "';'");
  }

  void parse_domain() {
    if (at(TokenKind::kInt)) {
      const long long n = take().value;
      if (n < 1 || n > 64) fail("domain size must be in [1, 64]");
      domain_ = Domain::range(static_cast<std::size_t>(n));
      return;
    }
    std::vector<std::string> names;
    names.push_back(expect(TokenKind::kIdent, "domain value name").text);
    while (at(TokenKind::kComma)) {
      take();
      names.push_back(expect(TokenKind::kIdent, "domain value name").text);
    }
    domain_ = Domain::named(std::move(names));
  }

  void parse_action(const Token& head) {
    SourcedAction act;
    act.span = span_of(head);
    // Optional label: "action <label> : guard -> ..." — a label is an ident
    // directly followed by ':'.
    if (at(TokenKind::kIdent) &&
        tokens_[pos_ + 1].kind == TokenKind::kColon) {
      act.label = take().text;
      take();  // ':'
    } else if (at(TokenKind::kColon)) {
      take();  // anonymous "action: guard -> ..."
    }
    act.guard = parse_expr();
    expect(TokenKind::kArrow, "'->'");
    act.effects.push_back(parse_assign());
    while (at(TokenKind::kPipe)) {
      take();
      act.effects.push_back(parse_assign());
    }
    expect(TokenKind::kSemi, "';'");
    if (act.label.empty())
      act.label = cat("a", out_.actions.size());
    out_.actions.push_back(std::move(act));
  }

  ExprPtr parse_assign() {
    // x[0] := expr
    const Token x = expect(TokenKind::kIdent, "'x'");
    if (x.text != "x") fail("assignment target must be x[0]");
    expect(TokenKind::kLBracket, "'['");
    const long long off = expect_int();
    if (off != 0) fail("only x[0] is writable");
    expect(TokenKind::kRBracket, "']'");
    expect(TokenKind::kAssign, "':='");
    return parse_expr();
  }

  // Precedence-climbing expression parser.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      take();
      lhs = Expr::binary("||", clone(lhs), clone(parse_and()));
    }
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_cmp();
    while (at(TokenKind::kAndAnd)) {
      take();
      lhs = Expr::binary("&&", clone(lhs), clone(parse_cmp()));
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    auto lhs = parse_sum();
    const auto op = [&]() -> std::optional<std::string> {
      switch (peek().kind) {
        case TokenKind::kEq: return "==";
        case TokenKind::kNe: return "!=";
        case TokenKind::kLt: return "<";
        case TokenKind::kLe: return "<=";
        case TokenKind::kGt: return ">";
        case TokenKind::kGe: return ">=";
        default: return std::nullopt;
      }
    }();
    if (!op) return lhs;
    take();
    return Expr::binary(*op, clone(lhs), clone(parse_sum()));
  }

  ExprPtr parse_sum() {
    auto lhs = parse_term();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const std::string op = at(TokenKind::kPlus) ? "+" : "-";
      take();
      lhs = Expr::binary(op, clone(lhs), clone(parse_term()));
    }
    return lhs;
  }

  ExprPtr parse_term() {
    auto lhs = parse_unary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      const std::string op = at(TokenKind::kStar)    ? "*"
                             : at(TokenKind::kSlash) ? "/"
                                                     : "%";
      take();
      lhs = Expr::binary(op, clone(lhs), clone(parse_unary()));
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus)) {
      take();
      return Expr::unary("-", clone(parse_unary()));
    }
    if (at(TokenKind::kNot)) {
      take();
      return Expr::unary("!", clone(parse_unary()));
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::kInt)) return Expr::literal(take().value);
    if (at(TokenKind::kLParen)) {
      take();
      auto e = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    if (at(TokenKind::kIdent)) {
      const Token id = take();
      if (id.text == "x") {
        expect(TokenKind::kLBracket, "'['");
        const long long off = expect_int();
        expect(TokenKind::kRBracket, "']'");
        return Expr::var(static_cast<int>(off));
      }
      return Expr::domain_name(id.text);
    }
    fail(cat("expected expression, found ", token_kind_name(peek().kind)));
  }

  // Expr builders return unique_ptr; analyses share them as ExprPtr. The
  // parser moves unique ownership into shared wrappers at each composition.
  static std::unique_ptr<Expr> clone(ExprPtr p) {
    // ExprPtr values produced by this parser are uniquely owned until
    // composed, so a structural copy keeps things simple and safe.
    auto copy = std::make_unique<Expr>();
    copy->kind = p->kind;
    copy->value = p->value;
    copy->name = p->name;
    copy->offset = p->offset;
    copy->op = p->op;
    if (p->lhs) copy->lhs = clone(ExprPtr(p, p->lhs.get()));
    if (p->rhs) copy->rhs = clone(ExprPtr(p, p->rhs.get()));
    return copy;
  }

  std::vector<Token> tokens_;
  std::string file_;
  std::size_t pos_ = 0;

  std::optional<Domain> domain_;
  std::optional<Locality> locality_;
  ProtocolSource out_;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Scan comments for tooling directives: batch markers (`# expect: fails`,
// `# topology: array`) and lint suppressions (`# lint: allow(RS003, RS011)`).
void scan_directives(std::string_view src, ProtocolSource& out) {
  std::size_t start = 0;
  while (start <= src.size()) {
    const std::size_t nl = src.find('\n', start);
    const std::string_view line =
        src.substr(start, nl == std::string_view::npos ? nl : nl - start);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      const std::string_view comment = line.substr(hash + 1);
      if (comment.find("expect: fails") != std::string_view::npos)
        out.expects_failure = true;
      if (comment.find("topology: array") != std::string_view::npos)
        out.array_topology = true;
      const std::size_t lint = comment.find("lint:");
      if (lint != std::string_view::npos) {
        const std::size_t open = comment.find("allow(", lint);
        const std::size_t close =
            open == std::string_view::npos ? open : comment.find(')', open);
        if (open != std::string_view::npos &&
            close != std::string_view::npos) {
          std::string_view codes =
              comment.substr(open + 6, close - open - 6);
          while (!codes.empty()) {
            const std::size_t comma = codes.find(',');
            const std::string code = trim(codes.substr(0, comma));
            if (!code.empty()) out.lint_allows.push_back(code);
            if (comma == std::string_view::npos) break;
            codes.remove_prefix(comma + 1);
          }
        }
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
}

}  // namespace

ActionExpansion expand_action(const LocalStateSpace& space,
                              const SourcedAction& action) {
  ActionExpansion ex;
  auto record = [](std::vector<std::string>& into, std::string msg) {
    if (std::find(into.begin(), into.end(), msg) == into.end())
      into.push_back(std::move(msg));
  };
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const LocalView view(space, s);
    bool enabled = false;
    try {
      enabled = action.guard->eval(view) != 0;
    } catch (const ParseError& e) {
      record(ex.eval_errors, cat("guard '", action.guard->to_string(),
                                 "': ", e.what()));
      continue;
    }
    if (!enabled) continue;
    ++ex.enabled_states;
    bool stuttered = false;
    for (const auto& effect : action.effects) {
      long long raw = 0;
      try {
        raw = effect->eval(view);
      } catch (const ParseError& e) {
        record(ex.eval_errors, cat("assignment '", effect->to_string(),
                                   "': ", e.what()));
        continue;
      }
      if (!view.domain().contains(raw)) {
        record(ex.domain_errors,
               cat("assignment '", effect->to_string(), "' evaluates to ",
                   raw, ", outside the domain (at ", space.brief(s), ")"));
        continue;
      }
      const Value v = static_cast<Value>(raw);
      if (v == space.self(s)) {
        stuttered = true;
        continue;
      }
      ex.transitions.push_back(LocalTransition{s, space.with_self(s, v)});
    }
    if (stuttered) ex.stutter_states.push_back(s);
  }
  return ex;
}

ProtocolSource parse_protocol_source(std::string_view source,
                                     std::string file) {
  ProtocolSource out = Parser(source, file).run();
  out.file = std::move(file);
  scan_directives(source, out);
  return out;
}

Protocol build_protocol(const ProtocolSource& src) {
  auto at = [&](SourceSpan sp) {
    return sp.valid() ? cat(src.file, ":", sp.line, ":", sp.column,
                            ": error: ")
                      : cat(src.file, ": error: ");
  };
  if (!src.legit)
    throw ParseError(cat(at(SourceSpan{}),
                         "missing 'legit: <expr>;' declaration"));
  const LocalStateSpace space(src.domain, src.locality);

  std::vector<LocalTransition> delta;
  for (const auto& a : src.actions) {
    ActionExpansion ex = expand_action(space, a);
    if (!ex.eval_errors.empty())
      throw ParseError(cat(at(a.span), "in action '", a.label, "': ",
                           ex.eval_errors.front()));
    if (!ex.domain_errors.empty())
      throw ParseError(cat(at(a.span), "in action '", a.label, "': ",
                           ex.domain_errors.front()));
    delta.insert(delta.end(), ex.transitions.begin(), ex.transitions.end());
  }

  std::vector<bool> legit(space.size(), false);
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const LocalView view(space, s);
    try {
      legit[s] = src.legit->eval(view) != 0;
    } catch (const ParseError& e) {
      throw ParseError(cat(at(src.legit_span), "in 'legit': ", e.what()));
    }
  }
  return Protocol(src.name, space, std::move(delta), std::move(legit));
}

Protocol parse_protocol(std::string_view source) {
  return build_protocol(parse_protocol_source(source));
}

std::string read_source_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Protocol parse_protocol_file(const std::string& path) {
  return build_protocol(parse_protocol_source(read_source_file(path), path));
}

}  // namespace ringstab
