#include "core/ast.hpp"

#include "core/fmt.hpp"

namespace ringstab {

std::unique_ptr<Expr> Expr::literal(long long v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kInt;
  e->value = v;
  return e;
}

std::unique_ptr<Expr> Expr::domain_name(std::string n) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kName;
  e->name = std::move(n);
  return e;
}

std::unique_ptr<Expr> Expr::var(int offset) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->offset = offset;
  return e;
}

std::unique_ptr<Expr> Expr::unary(std::string op, std::unique_ptr<Expr> sub) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = std::move(op);
  e->lhs = std::move(sub);
  return e;
}

std::unique_ptr<Expr> Expr::binary(std::string op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = std::move(op);
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

long long Expr::eval(const LocalView& view) const {
  switch (kind) {
    case Kind::kInt:
      return value;
    case Kind::kName: {
      auto v = view.domain().value_of(name);
      if (!v) throw ParseError(cat("unknown domain value '", name, "'"));
      return *v;
    }
    case Kind::kVar:
      if (!view.in_window(offset))
        throw ParseError(cat("variable x[", offset,
                             "] is outside the declared locality"));
      return view[offset];
    case Kind::kUnary: {
      const long long a = lhs->eval(view);
      if (op == "-") return -a;
      if (op == "!") return a == 0 ? 1 : 0;
      break;
    }
    case Kind::kBinary: {
      const long long a = lhs->eval(view);
      // Short-circuit logical operators.
      if (op == "||") return (a != 0 || rhs->eval(view) != 0) ? 1 : 0;
      if (op == "&&") return (a != 0 && rhs->eval(view) != 0) ? 1 : 0;
      const long long b = rhs->eval(view);
      if (op == "==") return a == b ? 1 : 0;
      if (op == "!=") return a != b ? 1 : 0;
      if (op == "<") return a < b ? 1 : 0;
      if (op == "<=") return a <= b ? 1 : 0;
      if (op == ">") return a > b ? 1 : 0;
      if (op == ">=") return a >= b ? 1 : 0;
      if (op == "+") return a + b;
      if (op == "-") return a - b;
      if (op == "*") return a * b;
      if (op == "/") {
        if (b == 0) throw ParseError("division by zero in expression");
        return a / b;
      }
      if (op == "%") {
        if (b == 0) throw ParseError("modulo by zero in expression");
        return ((a % b) + b) % b;  // mathematical modulo: guards use mod |D|
      }
      break;
    }
  }
  throw ParseError(cat("malformed expression node (op '", op, "')"));
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kInt: return std::to_string(value);
    case Kind::kName: return name;
    case Kind::kVar: return cat("x[", offset, "]");
    case Kind::kUnary: return cat(op, lhs->to_string());
    case Kind::kBinary:
      return cat("(", lhs->to_string(), " ", op, " ", rhs->to_string(), ")");
  }
  return "?";
}

}  // namespace ringstab
