#include "transform/transform.hpp"

#include <algorithm>
#include <optional>

#include "core/fmt.hpp"
#include "local/livelock.hpp"

namespace ringstab {
namespace {

// Map a state of `from` into `to` by transforming its window valuation.
template <typename Fn>
LocalStateId map_state(const LocalStateSpace& from, const LocalStateSpace& to,
                       LocalStateId s, Fn&& window_fn) {
  return to.encode(window_fn(from.decode(s)));
}

}  // namespace

Protocol reverse_orientation(const Protocol& p) {
  const auto& space = p.space();
  const Locality loc{p.locality().right, p.locality().left};
  const LocalStateSpace mirrored(space.domain(), loc);

  auto flip = [](std::vector<Value> w) {
    std::reverse(w.begin(), w.end());
    return w;
  };

  std::vector<bool> legit(mirrored.size(), false);
  for (LocalStateId s = 0; s < space.size(); ++s)
    legit[map_state(space, mirrored, s, flip)] = p.is_legit(s);

  std::vector<LocalTransition> delta;
  delta.reserve(p.delta().size());
  for (const auto& t : p.delta())
    delta.push_back({map_state(space, mirrored, t.from, flip),
                     map_state(space, mirrored, t.to, flip)});

  return Protocol(p.name() + "_rev", mirrored, std::move(delta),
                  std::move(legit));
}

Protocol rename_values(const Protocol& p, const std::vector<Value>& perm) {
  const auto& space = p.space();
  const std::size_t d = space.domain().size();
  if (perm.size() != d)
    throw ModelError("permutation arity does not match the domain");
  std::vector<bool> hit(d, false);
  for (Value v : perm) {
    if (v >= d || hit[v])
      throw ModelError("value renaming must be a bijection on the domain");
    hit[v] = true;
  }

  std::vector<std::string> names(d);
  for (Value v = 0; v < d; ++v)
    names[perm[v]] = space.domain().name(v);
  const LocalStateSpace renamed(Domain::named(std::move(names)),
                                p.locality());

  auto apply = [&](std::vector<Value> w) {
    for (auto& v : w) v = perm[v];
    return w;
  };

  std::vector<bool> legit(renamed.size(), false);
  for (LocalStateId s = 0; s < space.size(); ++s)
    legit[map_state(space, renamed, s, apply)] = p.is_legit(s);

  std::vector<LocalTransition> delta;
  delta.reserve(p.delta().size());
  for (const auto& t : p.delta())
    delta.push_back({map_state(space, renamed, t.from, apply),
                     map_state(space, renamed, t.to, apply)});

  return Protocol(p.name() + "_pi", renamed, std::move(delta),
                  std::move(legit));
}

namespace {

// Pairing of layer values: v = a * |D2| + b.
Value pair_value(Value a, Value b, std::size_t d2) {
  return static_cast<Value>(a * d2 + b);
}

}  // namespace

Protocol layer_product(const Protocol& p1, const Protocol& p2,
                       const std::string& name) {
  if (p1.locality() != p2.locality())
    throw ModelError("layer_product requires identical localities");
  const std::size_t d1 = p1.domain().size();
  const std::size_t d2 = p2.domain().size();
  if (d1 * d2 > 64)
    throw ModelError("product domain too large (max 64 values)");

  std::vector<std::string> names;
  names.reserve(d1 * d2);
  for (Value a = 0; a < d1; ++a)
    for (Value b = 0; b < d2; ++b)
      names.push_back(cat(p1.domain().name(a), "_", p2.domain().name(b)));
  const LocalStateSpace space(Domain::named(std::move(names)),
                              p1.locality());

  const int w = p1.locality().window();
  auto split = [&](LocalStateId s) {
    std::vector<Value> w1(static_cast<std::size_t>(w)),
        w2(static_cast<std::size_t>(w));
    const auto vals = space.decode(s);
    for (int i = 0; i < w; ++i) {
      w1[static_cast<std::size_t>(i)] =
          static_cast<Value>(vals[static_cast<std::size_t>(i)] / d2);
      w2[static_cast<std::size_t>(i)] =
          static_cast<Value>(vals[static_cast<std::size_t>(i)] % d2);
    }
    return std::make_pair(p1.space().encode(w1), p2.space().encode(w2));
  };

  std::vector<bool> legit(space.size(), false);
  std::vector<LocalTransition> delta;
  for (LocalStateId s = 0; s < space.size(); ++s) {
    const auto [s1, s2] = split(s);
    legit[s] = p1.is_legit(s1) && p2.is_legit(s2);
    // Layer-1 moves: replace the pair's first component.
    for (const auto& t : p1.transitions_from(s1)) {
      const Value new_a = p1.space().self(t.to);
      const Value b = static_cast<Value>(space.self(s) % d2);
      delta.push_back({s, space.with_self(s, pair_value(new_a, b, d2))});
    }
    // Layer-2 moves.
    for (const auto& t : p2.transitions_from(s2)) {
      const Value a = static_cast<Value>(space.self(s) / d2);
      const Value new_b = p2.space().self(t.to);
      delta.push_back({s, space.with_self(s, pair_value(a, new_b, d2))});
    }
  }
  return Protocol(
      name.empty() ? cat(p1.name(), "_x_", p2.name()) : name, space,
      std::move(delta), std::move(legit));
}

ValueCanonicalKey value_canonical_key(const Protocol& p) {
  const std::size_t d = p.domain().size();
  if (d > 8) throw ModelError("canonicalization supports |D| ≤ 8");
  std::vector<Value> perm(d);
  for (std::size_t i = 0; i < d; ++i) perm[i] = static_cast<Value>(i);

  std::optional<ValueCanonicalKey> best;
  do {
    const Protocol q = rename_values(p, perm);
    ValueCanonicalKey key{q.legit_mask(), q.delta()};
    if (!best || key < *best) best = std::move(key);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return *best;
}

std::vector<std::vector<std::size_t>> value_symmetry_orbits(
    const std::vector<Protocol>& protocols) {
  std::vector<std::vector<std::size_t>> orbits;
  std::vector<ValueCanonicalKey> keys;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const ValueCanonicalKey key = value_canonical_key(protocols[i]);
    bool placed = false;
    for (std::size_t o = 0; o < orbits.size() && !placed; ++o) {
      if (keys[o] == key) {
        orbits[o].push_back(i);
        placed = true;
      }
    }
    if (!placed) {
      orbits.push_back({i});
      keys.push_back(key);
    }
  }
  return orbits;
}

BidirectionalLivelockAnalysis check_livelock_freedom_bidirectional(
    const Protocol& p) {
  BidirectionalLivelockAnalysis res;
  const auto fwd = check_livelock_freedom(p);
  const auto bwd = check_livelock_freedom(reverse_orientation(p));
  res.forward_free = fwd.verdict == LivelockAnalysis::Verdict::kLivelockFree;
  res.backward_free = bwd.verdict == LivelockAnalysis::Verdict::kLivelockFree;
  using V = BidirectionalLivelockAnalysis::Verdict;
  if (res.forward_free && res.backward_free)
    res.verdict = V::kLivelockFree;
  else if (fwd.verdict == LivelockAnalysis::Verdict::kTrailFound ||
           bwd.verdict == LivelockAnalysis::Verdict::kTrailFound)
    res.verdict = V::kTrailFound;
  else
    res.verdict = V::kInconclusive;
  return res;
}

LocalStateId product_layer1(const Protocol& product, const Protocol& p1,
                            const Protocol& p2, LocalStateId s) {
  const int w = product.locality().window();
  const std::size_t d2 = p2.domain().size();
  std::vector<Value> w1(static_cast<std::size_t>(w));
  const auto vals = product.space().decode(s);
  for (int i = 0; i < w; ++i)
    w1[static_cast<std::size_t>(i)] =
        static_cast<Value>(vals[static_cast<std::size_t>(i)] / d2);
  return p1.space().encode(w1);
}

LocalStateId product_layer2(const Protocol& product, const Protocol& p1,
                            const Protocol& p2, LocalStateId s) {
  (void)p1;
  const int w = product.locality().window();
  const std::size_t d2 = p2.domain().size();
  std::vector<Value> w2(static_cast<std::size_t>(w));
  const auto vals = product.space().decode(s);
  for (int i = 0; i < w; ++i)
    w2[static_cast<std::size_t>(i)] =
        static_cast<Value>(vals[static_cast<std::size_t>(i)] % d2);
  return p2.space().encode(w2);
}

}  // namespace ringstab
