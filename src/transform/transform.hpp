// Protocol transformations: mirroring, value symmetry, and layering.
//
// These give the library the compositional vocabulary the paper's related
// work revolves around (layering/modularization, composition — Section 7),
// and they double as powerful metamorphic test oracles: every analysis in
// ringstab must be invariant under reverse() and rename_values(), and
// layer_product() preserves convergence of silent protocols.
#pragma once

#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace ringstab {

/// Mirror the ring orientation: the window [-L, R] becomes [-R, L] and
/// every local state reads backwards. Running p clockwise is running
/// reverse(p) counter-clockwise, so all size-indexed properties (deadlock
/// spectra, livelocks, convergence) coincide.
Protocol reverse_orientation(const Protocol& p);

/// Transport the protocol along a value permutation π (π must be a
/// bijection on the domain): states, transitions and LC_r relabel. Every
/// analysis is invariant; value names are composed as "π(name)".
Protocol rename_values(const Protocol& p, const std::vector<Value>& perm);

/// Asynchronous layered product: each process carries a pair (a, b) with a
/// from p1's domain and b from p2's; a step moves exactly one layer
/// (interleaving); LC = LC1 ∧ LC2. Both inputs must share the same
/// locality. The product invariant is the conjunction of the layers', and
/// a product state is a local deadlock iff both layers are.
Protocol layer_product(const Protocol& p1, const Protocol& p2,
                       const std::string& name = "");

/// A canonical key for a protocol modulo value renaming: the
/// lexicographically least (legitimacy mask, transition list) over all |D|!
/// value permutations. Two protocols have equal keys iff some renaming maps
/// one onto the other. |D| ≤ 8.
struct ValueCanonicalKey {
  std::vector<bool> legit;
  std::vector<LocalTransition> delta;

  bool operator==(const ValueCanonicalKey&) const = default;
  bool operator<(const ValueCanonicalKey& o) const {
    if (legit != o.legit) return legit < o.legit;
    return delta < o.delta;
  }
};

ValueCanonicalKey value_canonical_key(const Protocol& p);

/// Partition protocols into value-symmetry orbits; returns one
/// representative index per orbit (first occurrence order).
std::vector<std::vector<std::size_t>> value_symmetry_orbits(
    const std::vector<Protocol>& protocols);

/// Strengthened livelock check for bidirectional rings (the paper's future
/// work #2 made executable): Theorem 5.14's trail search models enablement
/// circulating rightward; running it on BOTH p and reverse_orientation(p)
/// also covers leftward-circulating contiguous livelocks. The combined
/// verdict is livelock-free iff both searches find no qualifying trail.
/// Still a sufficient condition (mixed-direction livelocks remain out of
/// scope), but strictly stronger than the one-orientation check.
struct BidirectionalLivelockAnalysis {
  enum class Verdict { kLivelockFree, kTrailFound, kInconclusive };
  Verdict verdict = Verdict::kInconclusive;
  bool forward_free = false;   // no rightward contiguous trail
  bool backward_free = false;  // no leftward contiguous trail (via mirror)
};

BidirectionalLivelockAnalysis check_livelock_freedom_bidirectional(
    const Protocol& p);

/// Projections out of a product state id (inverse of the pairing used by
/// layer_product): layer-1 and layer-2 local states.
LocalStateId product_layer1(const Protocol& product, const Protocol& p1,
                            const Protocol& p2, LocalStateId s);
LocalStateId product_layer2(const Protocol& product, const Protocol& p1,
                            const Protocol& p2, LocalStateId s);

}  // namespace ringstab
