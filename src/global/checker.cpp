#include "global/checker.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "core/fmt.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace ringstab {
namespace {

constexpr std::uint32_t kUnvisited = 0xffffffffu;

// Iterative Tarjan over the implicit global transition graph restricted to
// states outside I. Stops early when a nontrivial SCC is found (if
// `first_only`), otherwise collects all states on ¬I cycles. Serial; the
// precomputed invariant mask is supplied by the checker.
class OutsideInvariantScc {
 public:
  OutsideInvariantScc(const RingInstance& ring, const PackedBitset& in_inv,
                      bool first_only)
      : ring_(ring), first_only_(first_only), in_inv_(in_inv) {
    index_.assign(ring.num_states(), kUnvisited);
    low_.assign(ring.num_states(), 0);
    on_stack_.assign(ring.num_states(), false);
  }

  void run() {
    for (GlobalStateId root = 0; root < ring_.num_states(); ++root) {
      if (done_) break;
      if (index_[root] != kUnvisited) continue;
      if (in_inv_.test(root)) continue;
      visit(root);
    }
    obs::counter("checker.tarjan_states_visited").add(next_index_);
  }

  std::optional<std::vector<GlobalStateId>> witness_cycle;
  std::vector<GlobalStateId> cycle_states;

 private:
  struct Frame {
    GlobalStateId v;
    std::vector<GlobalStateId> children;
    std::size_t next_child = 0;
  };

  void expand(GlobalStateId v, std::vector<GlobalStateId>& out) {
    out.clear();
    static thread_local std::vector<RingInstance::Step> succ;
    ring_.successors(v, succ);
    for (const auto& s : succ)
      if (!in_inv_.test(s.target)) out.push_back(s.target);
  }

  void visit(GlobalStateId root) {
    std::vector<Frame> call;
    call.push_back({root, {}, 0});
    expand(root, call.back().children);
    index_[root] = low_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const GlobalStateId v = f.v;
      bool descended = false;
      while (f.next_child < f.children.size()) {
        const GlobalStateId w = f.children[f.next_child++];
        if (index_[w] == kUnvisited) {
          call.push_back({w, {}, 0});
          expand(w, call.back().children);
          index_[w] = low_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = true;
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;

      if (low_[v] == index_[v]) {
        // Pop the component.
        std::vector<GlobalStateId> comp;
        while (true) {
          const GlobalStateId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        if (comp.size() > 1) {  // global self-loops cannot exist
          if (first_only_ && !witness_cycle) {
            witness_cycle = extract_cycle(comp);
            done_ = true;
            return;
          }
          cycle_states.insert(cycle_states.end(), comp.begin(), comp.end());
        }
      }
      call.pop_back();
      if (!call.empty())
        low_[call.back().v] = std::min(low_[call.back().v], low_[v]);
    }
  }

  // A simple cycle inside one nontrivial SCC: DFS from comp[0] back to it,
  // restricted to component members.
  std::vector<GlobalStateId> extract_cycle(
      const std::vector<GlobalStateId>& comp) {
    std::vector<GlobalStateId> sorted = comp;
    std::sort(sorted.begin(), sorted.end());
    auto in_comp = [&](GlobalStateId s) {
      return std::binary_search(sorted.begin(), sorted.end(), s);
    };
    const GlobalStateId start = comp[0];

    // Iterative DFS with parent links back to `start`.
    std::unordered_map<GlobalStateId, GlobalStateId> parent;
    std::vector<GlobalStateId> stack{start};
    std::vector<GlobalStateId> kids;
    parent.emplace(start, start);
    while (!stack.empty()) {
      const GlobalStateId v = stack.back();
      stack.pop_back();
      expand(v, kids);
      for (GlobalStateId w : kids) {
        if (!in_comp(w)) continue;
        if (w == start) {
          // Reconstruct v -> ... -> start.
          std::vector<GlobalStateId> cyc{start};
          for (GlobalStateId x = v; x != start; x = parent.at(x))
            cyc.push_back(x);
          std::reverse(cyc.begin() + 1, cyc.end());
          return cyc;
        }
        if (!parent.emplace(w, v).second) continue;
        stack.push_back(w);
      }
    }
    RINGSTAB_ASSERT(false, "nontrivial SCC without a cycle");
    return {};
  }

  const RingInstance& ring_;
  bool first_only_;
  const PackedBitset& in_inv_;
  bool done_ = false;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<GlobalStateId> stack_;
};

}  // namespace

const PackedBitset& GlobalChecker::invariant_mask() const {
  const GlobalStateId n = ring_->num_states();
  if (inv_mask_.size() == n) return inv_mask_;  // already built (n > 0)
  const obs::Span span("checker.invariant_mask");
  obs::Counter& swept = obs::counter("checker.states_swept");
  PackedBitset mask(n);
  // Chunks start on multiples of a 64-aligned grain, so each chunk's bits
  // live in chunk-private words: plain set() is race-free.
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    auto cur = ring_->cursor(chunk.begin);
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance())
      if (cur.in_invariant()) mask.set(s);
    swept.add(chunk.end - chunk.begin);
  });
  if (obs::enabled())
    obs::counter("checker.invariant_states").add(mask.count());
  inv_mask_ = std::move(mask);
  return inv_mask_;
}

std::size_t GlobalChecker::count_deadlocks_outside_invariant(
    std::vector<GlobalStateId>* samples, std::size_t max_samples) const {
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.deadlock_census");
  obs::Counter& swept = obs::counter("checker.states_swept");
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::size_t> counts(chunks, 0);
  std::vector<std::vector<GlobalStateId>> found(samples ? chunks : 0);
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    auto cur = ring_->cursor(chunk.begin);
    std::size_t count = 0;
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      if (in_inv.test(s)) continue;
      if (!cur.is_deadlock()) continue;
      ++count;
      if (samples && found[chunk.index].size() < max_samples)
        found[chunk.index].push_back(s);
    }
    counts[chunk.index] = count;
    swept.add(chunk.end - chunk.begin);
  });
  std::size_t count = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    count += counts[c];
    if (samples)
      for (GlobalStateId s : found[c])
        if (samples->size() < max_samples) samples->push_back(s);
  }
  obs::counter("checker.deadlocks_found").add(count);
  return count;
}

std::optional<std::vector<GlobalStateId>> GlobalChecker::find_livelock()
    const {
  OutsideInvariantScc scc(*ring_, invariant_mask(), /*first_only=*/true);
  const obs::Span span("checker.tarjan_livelock");
  scc.run();
  return scc.witness_cycle;
}

std::vector<GlobalStateId> GlobalChecker::livelock_states() const {
  OutsideInvariantScc scc(*ring_, invariant_mask(), /*first_only=*/false);
  const obs::Span span("checker.tarjan_livelock");
  scc.run();
  std::sort(scc.cycle_states.begin(), scc.cycle_states.end());
  return scc.cycle_states;
}

bool GlobalChecker::check_closure(
    std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation) const {
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.closure");
  // Own counter, not states_swept: the early exit on a violation makes the
  // closure scan's coverage depend on chunk timing, while states_swept is
  // kept exact and thread-count-invariant.
  obs::Counter& swept = obs::counter("checker.closure_states_scanned");
  const std::uint64_t chunks = num_chunks(n, 0);
  using Violation = std::pair<GlobalStateId, GlobalStateId>;
  std::vector<std::optional<Violation>> found(chunks);
  // The serial engine reports the violation with the smallest source state.
  // Chunks above the lowest chunk known to hold one can stop early; the
  // merge picks the lowest chunk, so the reported pair is identical for
  // every thread count.
  std::atomic<std::uint64_t> first_chunk{chunks};
  parallel_for(n, num_threads_, 0,
               [&](const ChunkRange& chunk, std::size_t) {
    if (chunk.index > first_chunk.load(std::memory_order_relaxed)) return;
    auto cur = ring_->cursor(chunk.begin);
    std::vector<RingInstance::Step> succ;
    swept.add(chunk.end - chunk.begin);
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
      if (!in_inv.test(s)) continue;
      cur.successors(succ);
      for (const auto& step : succ) {
        if (!in_inv.test(step.target)) {
          found[chunk.index] = {s, step.target};
          std::uint64_t prev = first_chunk.load(std::memory_order_relaxed);
          while (chunk.index < prev &&
                 !first_chunk.compare_exchange_weak(
                     prev, chunk.index, std::memory_order_relaxed)) {
          }
          return;
        }
      }
    }
  });
  for (std::uint64_t c = 0; c < chunks; ++c) {
    if (found[c]) {
      if (violation) *violation = *found[c];
      return false;
    }
  }
  return true;
}

bool GlobalChecker::check_weak_convergence() const {
  const GlobalStateId n = ring_->num_states();
  // Backward fixpoint over the implicit graph, as synchronous (Jacobi)
  // rounds: a round reads `reaches`, writes `next`, and the two swap. The
  // fixpoint is the same set the seed's in-place scan computed.
  PackedBitset reaches = invariant_mask();
  const obs::Span span("checker.weak_convergence");
  obs::Counter& rounds = obs::counter("checker.fixpoint_rounds");
  obs::Counter& frontier = obs::counter("checker.frontier_states");
  PackedBitset next(n);
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint8_t> chunk_changed(chunks, 0);
  while (true) {
    rounds.add(1);
    next = reaches;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    parallel_for(n, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      auto cur = ring_->cursor(chunk.begin);
      std::vector<RingInstance::Step> succ;
      bool changed = false;
      std::uint64_t grew = 0;
      for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
        if (reaches.test(s)) continue;
        cur.successors(succ);
        for (const auto& step : succ) {
          if (reaches.test(step.target)) {
            next.set(s);
            changed = true;
            ++grew;
            break;
          }
        }
      }
      chunk_changed[chunk.index] = changed;
      frontier.add(grew);
    });
    if (std::find(chunk_changed.begin(), chunk_changed.end(), 1) ==
        chunk_changed.end())
      break;
    std::swap(reaches, next);
  }
  return reaches.count() == n;
}

std::size_t GlobalChecker::max_recovery_steps() const {
  const GlobalStateId n = ring_->num_states();
  const PackedBitset& in_inv = invariant_mask();
  const obs::Span span("checker.recovery_layering");
  // Each ¬I state resolves its depth exactly once in both engines, so the
  // total is thread-count-invariant: |¬I| states.
  obs::Counter& resolved_ctr = obs::counter("checker.recovery_resolved");
  if (num_threads_ <= 1) {
    // Longest path in the ¬I subgraph, all of whose maximal paths end in I
    // (valid when strongly converging). Memoized DFS.
    constexpr std::uint32_t kUnknown = 0xfffffffeu;
    constexpr std::uint32_t kInProgress = 0xfffffffdu;
    std::vector<std::uint32_t> depth(n, kUnknown);

    std::size_t best = 0;
    std::uint64_t serial_resolved = 0;
    auto dfs = [&](auto&& self, GlobalStateId s) -> std::uint32_t {
      if (in_inv.test(s)) return 0;
      if (depth[s] == kInProgress)
        throw ModelError("cycle outside I: not strongly converging");
      if (depth[s] != kUnknown) return depth[s];
      depth[s] = kInProgress;
      std::vector<RingInstance::Step> local;
      ring_->successors(s, local);
      if (local.empty())
        throw ModelError("deadlock outside I: not strongly converging");
      std::uint32_t d = 0;
      for (const auto& step : local)
        d = std::max(d, 1 + self(self, step.target));
      depth[s] = d;
      ++serial_resolved;
      return d;
    };
    for (GlobalStateId s = 0; s < n; ++s)
      best = std::max<std::size_t>(best, dfs(dfs, s));
    resolved_ctr.add(serial_resolved);
    return best;
  }

  // Parallel layering: depth(s in I) = 0; a state resolves to 1 + max of
  // its successors' depths once all of them have resolved. Depths are set
  // at most once and never change, so in-place relaxed publication is safe
  // and the fixpoint (the exact longest path to I) is the same as the
  // serial DFS for every thread count and schedule.
  constexpr std::uint32_t kUnknown = 0xffffffffu;
  std::vector<std::uint32_t> depth(n);
  parallel_for(n, num_threads_, 0, [&](const ChunkRange& chunk, std::size_t) {
    for (GlobalStateId s = chunk.begin; s < chunk.end; ++s)
      depth[s] = in_inv.test(s) ? 0 : kUnknown;
  });
  std::uint64_t remaining = n - in_inv.count();
  const std::uint64_t chunks = num_chunks(n, 0);
  std::vector<std::uint64_t> resolved(chunks);
  std::vector<std::uint32_t> chunk_best(chunks);
  std::size_t best = 0;
  while (remaining > 0) {
    std::fill(resolved.begin(), resolved.end(), 0);
    std::fill(chunk_best.begin(), chunk_best.end(), 0);
    parallel_for(n, num_threads_, 0,
                 [&](const ChunkRange& chunk, std::size_t) {
      auto cur = ring_->cursor(chunk.begin);
      std::vector<RingInstance::Step> succ;
      for (GlobalStateId s = chunk.begin; s < chunk.end; ++s, cur.advance()) {
        std::atomic_ref<std::uint32_t> mine(depth[s]);
        if (mine.load(std::memory_order_relaxed) != kUnknown) continue;
        cur.successors(succ);
        if (succ.empty())
          throw ModelError("deadlock outside I: not strongly converging");
        std::uint32_t d = 0;
        bool all_known = true;
        for (const auto& step : succ) {
          std::atomic_ref<std::uint32_t> theirs(depth[step.target]);
          const std::uint32_t t = theirs.load(std::memory_order_relaxed);
          if (t == kUnknown) {
            all_known = false;
            break;
          }
          d = std::max(d, 1 + t);
        }
        if (!all_known) continue;
        mine.store(d, std::memory_order_relaxed);
        ++resolved[chunk.index];
        chunk_best[chunk.index] = std::max(chunk_best[chunk.index], d);
      }
    });
    std::uint64_t progress = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      progress += resolved[c];
      best = std::max<std::size_t>(best, chunk_best[c]);
    }
    if (progress == 0)
      throw ModelError("cycle outside I: not strongly converging");
    resolved_ctr.add(progress);
    remaining -= progress;
  }
  return best;
}

GlobalCheckResult GlobalChecker::check_all() const {
  const obs::Span span("checker.check_all");
  GlobalCheckResult res;
  res.ring_size = ring_->ring_size();
  res.num_states = ring_->num_states();
  res.num_deadlocks_outside_i =
      count_deadlocks_outside_invariant(&res.deadlock_samples);
  auto cycle = find_livelock();
  res.has_livelock = cycle.has_value();
  if (cycle) res.livelock_cycle = std::move(*cycle);
  res.closure_ok = check_closure(&res.closure_violation);
  res.weakly_converges = check_weak_convergence();
  if (res.strongly_converges()) res.max_recovery_steps = max_recovery_steps();
  return res;
}

bool strongly_stabilizing(const RingInstance& ring, std::size_t num_threads) {
  const GlobalChecker checker(ring, num_threads);
  if (!checker.check_closure()) return false;
  if (checker.count_deadlocks_outside_invariant() > 0) return false;
  return !checker.find_livelock().has_value();
}

}  // namespace ringstab
