#include "global/checker.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/fmt.hpp"

namespace ringstab {
namespace {

constexpr std::uint32_t kUnvisited = 0xffffffffu;

// One pass over the state space; repeated in_invariant() calls during SCC
// exploration would re-derive K local states each time.
std::vector<bool> invariant_mask(const RingInstance& ring) {
  std::vector<bool> mask(ring.num_states());
  for (GlobalStateId s = 0; s < ring.num_states(); ++s)
    mask[s] = ring.in_invariant(s);
  return mask;
}

// Iterative Tarjan over the implicit global transition graph restricted to
// states outside I. Stops early when a nontrivial SCC is found (if
// `first_only`), otherwise collects all states on ¬I cycles.
class OutsideInvariantScc {
 public:
  OutsideInvariantScc(const RingInstance& ring, bool first_only)
      : ring_(ring), first_only_(first_only), in_inv_(invariant_mask(ring)) {
    index_.assign(ring.num_states(), kUnvisited);
    low_.assign(ring.num_states(), 0);
    on_stack_.assign(ring.num_states(), false);
  }

  void run() {
    for (GlobalStateId root = 0; root < ring_.num_states(); ++root) {
      if (done_) return;
      if (index_[root] != kUnvisited) continue;
      if (in_inv_[root]) continue;
      visit(root);
    }
  }

  std::optional<std::vector<GlobalStateId>> witness_cycle;
  std::vector<GlobalStateId> cycle_states;

 private:
  struct Frame {
    GlobalStateId v;
    std::vector<GlobalStateId> children;
    std::size_t next_child = 0;
  };

  void expand(GlobalStateId v, std::vector<GlobalStateId>& out) {
    out.clear();
    static thread_local std::vector<RingInstance::Step> succ;
    ring_.successors(v, succ);
    for (const auto& s : succ)
      if (!in_inv_[s.target]) out.push_back(s.target);
  }

  void visit(GlobalStateId root) {
    std::vector<Frame> call;
    call.push_back({root, {}, 0});
    expand(root, call.back().children);
    index_[root] = low_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const GlobalStateId v = f.v;
      bool descended = false;
      while (f.next_child < f.children.size()) {
        const GlobalStateId w = f.children[f.next_child++];
        if (index_[w] == kUnvisited) {
          call.push_back({w, {}, 0});
          expand(w, call.back().children);
          index_[w] = low_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = true;
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;

      if (low_[v] == index_[v]) {
        // Pop the component.
        std::vector<GlobalStateId> comp;
        while (true) {
          const GlobalStateId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        if (comp.size() > 1) {  // global self-loops cannot exist
          if (first_only_ && !witness_cycle) {
            witness_cycle = extract_cycle(comp);
            done_ = true;
            return;
          }
          cycle_states.insert(cycle_states.end(), comp.begin(), comp.end());
        }
      }
      call.pop_back();
      if (!call.empty())
        low_[call.back().v] = std::min(low_[call.back().v], low_[v]);
    }
  }

  // A simple cycle inside one nontrivial SCC: DFS from comp[0] back to it,
  // restricted to component members.
  std::vector<GlobalStateId> extract_cycle(
      const std::vector<GlobalStateId>& comp) {
    std::vector<GlobalStateId> sorted = comp;
    std::sort(sorted.begin(), sorted.end());
    auto in_comp = [&](GlobalStateId s) {
      return std::binary_search(sorted.begin(), sorted.end(), s);
    };
    const GlobalStateId start = comp[0];

    // Iterative DFS with parent links back to `start`.
    std::unordered_map<GlobalStateId, GlobalStateId> parent;
    std::vector<GlobalStateId> stack{start};
    std::vector<GlobalStateId> kids;
    parent.emplace(start, start);
    while (!stack.empty()) {
      const GlobalStateId v = stack.back();
      stack.pop_back();
      expand(v, kids);
      for (GlobalStateId w : kids) {
        if (!in_comp(w)) continue;
        if (w == start) {
          // Reconstruct v -> ... -> start.
          std::vector<GlobalStateId> cyc{start};
          for (GlobalStateId x = v; x != start; x = parent.at(x))
            cyc.push_back(x);
          std::reverse(cyc.begin() + 1, cyc.end());
          return cyc;
        }
        if (!parent.emplace(w, v).second) continue;
        stack.push_back(w);
      }
    }
    RINGSTAB_ASSERT(false, "nontrivial SCC without a cycle");
    return {};
  }

  const RingInstance& ring_;
  bool first_only_;
  std::vector<bool> in_inv_;
  bool done_ = false;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<GlobalStateId> stack_;
};

}  // namespace

std::size_t GlobalChecker::count_deadlocks_outside_invariant(
    std::vector<GlobalStateId>* samples, std::size_t max_samples) const {
  std::size_t count = 0;
  std::vector<RingInstance::Step> succ;
  for (GlobalStateId s = 0; s < ring_->num_states(); ++s) {
    if (ring_->in_invariant(s)) continue;
    if (!ring_->is_deadlock(s)) continue;
    ++count;
    if (samples && samples->size() < max_samples) samples->push_back(s);
  }
  return count;
}

std::optional<std::vector<GlobalStateId>> GlobalChecker::find_livelock()
    const {
  OutsideInvariantScc scc(*ring_, /*first_only=*/true);
  scc.run();
  return scc.witness_cycle;
}

std::vector<GlobalStateId> GlobalChecker::livelock_states() const {
  OutsideInvariantScc scc(*ring_, /*first_only=*/false);
  scc.run();
  std::sort(scc.cycle_states.begin(), scc.cycle_states.end());
  return scc.cycle_states;
}

bool GlobalChecker::check_closure(
    std::optional<std::pair<GlobalStateId, GlobalStateId>>* violation) const {
  std::vector<RingInstance::Step> succ;
  for (GlobalStateId s = 0; s < ring_->num_states(); ++s) {
    if (!ring_->in_invariant(s)) continue;
    ring_->successors(s, succ);
    for (const auto& step : succ) {
      if (!ring_->in_invariant(step.target)) {
        if (violation) *violation = {s, step.target};
        return false;
      }
    }
  }
  return true;
}

bool GlobalChecker::check_weak_convergence() const {
  const GlobalStateId n = ring_->num_states();
  std::vector<bool> reaches(n, false);
  GlobalStateId remaining = 0;
  for (GlobalStateId s = 0; s < n; ++s) {
    reaches[s] = ring_->in_invariant(s);
    if (!reaches[s]) ++remaining;
  }
  // Backward fixpoint over the implicit graph.
  std::vector<RingInstance::Step> succ;
  bool changed = true;
  while (changed && remaining > 0) {
    changed = false;
    for (GlobalStateId s = 0; s < n; ++s) {
      if (reaches[s]) continue;
      ring_->successors(s, succ);
      for (const auto& step : succ) {
        if (reaches[step.target]) {
          reaches[s] = true;
          --remaining;
          changed = true;
          break;
        }
      }
    }
  }
  return remaining == 0;
}

std::size_t GlobalChecker::max_recovery_steps() const {
  // Longest path in the ¬I subgraph, all of whose maximal paths end in I
  // (valid when strongly converging). Memoized DFS.
  const GlobalStateId n = ring_->num_states();
  constexpr std::uint32_t kUnknown = 0xfffffffeu;
  constexpr std::uint32_t kInProgress = 0xfffffffdu;
  std::vector<std::uint32_t> depth(n, kUnknown);
  const std::vector<bool> in_inv = invariant_mask(*ring_);

  std::size_t best = 0;
  std::vector<RingInstance::Step> succ;
  auto dfs = [&](auto&& self, GlobalStateId s) -> std::uint32_t {
    if (in_inv[s]) return 0;
    if (depth[s] == kInProgress)
      throw ModelError("cycle outside I: not strongly converging");
    if (depth[s] != kUnknown) return depth[s];
    depth[s] = kInProgress;
    std::vector<RingInstance::Step> local;
    ring_->successors(s, local);
    if (local.empty())
      throw ModelError("deadlock outside I: not strongly converging");
    std::uint32_t d = 0;
    for (const auto& step : local)
      d = std::max(d, 1 + self(self, step.target));
    depth[s] = d;
    return d;
  };
  for (GlobalStateId s = 0; s < n; ++s)
    best = std::max<std::size_t>(best, dfs(dfs, s));
  return best;
}

GlobalCheckResult GlobalChecker::check_all() const {
  GlobalCheckResult res;
  res.ring_size = ring_->ring_size();
  res.num_states = ring_->num_states();
  res.num_deadlocks_outside_i =
      count_deadlocks_outside_invariant(&res.deadlock_samples);
  auto cycle = find_livelock();
  res.has_livelock = cycle.has_value();
  if (cycle) res.livelock_cycle = std::move(*cycle);
  res.closure_ok = check_closure(&res.closure_violation);
  res.weakly_converges = check_weak_convergence();
  if (res.strongly_converges()) res.max_recovery_steps = max_recovery_steps();
  return res;
}

bool strongly_stabilizing(const RingInstance& ring) {
  const GlobalChecker checker(ring);
  if (!checker.check_closure()) return false;
  if (checker.count_deadlocks_outside_invariant() > 0) return false;
  return !checker.find_livelock().has_value();
}

}  // namespace ringstab
